#include "io/mtx_graph.h"

#include <fstream>
#include <istream>
#include <limits>
#include <unordered_set>

#include "graph/builder.h"
#include "util/error.h"
#include "util/strings.h"

namespace credo::io {
namespace {

using util::ParseError;

}  // namespace

graph::FactorGraph read_mtx_graph_stream(std::istream& in,
                                         const graph::BeliefConfig& cfg,
                                         const std::string& name) {
  std::string line;
  std::uint64_t lineno = 0;

  // Banner.
  if (!std::getline(in, line)) throw ParseError(name, 1, "empty file");
  ++lineno;
  const auto banner = util::trim(line);
  if (!util::starts_with(banner, "%%MatrixMarket")) {
    throw ParseError(name, lineno, "missing %%MatrixMarket banner");
  }
  const auto fields = util::split(banner);
  const bool symmetric =
      fields.size() >= 5 && util::iequals(fields[4], "symmetric");
  if (fields.size() >= 3 && !util::iequals(fields[2], "coordinate")) {
    throw ParseError(name, lineno,
                     "only coordinate (sparse) matrices are supported");
  }

  // Dimensions.
  std::uint64_t rows = 0;
  std::uint64_t entries = 0;
  for (;;) {
    if (!std::getline(in, line)) {
      throw ParseError(name, lineno, "missing dimensions line");
    }
    ++lineno;
    const auto t = util::trim(line);
    if (t.empty() || t[0] == '%') continue;
    util::FieldCursor c(t);
    const auto r = c.next_u64();
    const auto cols = c.next_u64();
    const auto e = c.next_u64();
    if (!r || !cols || !e) {
      throw ParseError(name, lineno, "malformed dimensions line");
    }
    rows = std::max(*r, *cols);
    entries = *e;
    break;
  }
  if (rows == 0) throw ParseError(name, lineno, "graph has no vertices");
  if (rows > std::numeric_limits<graph::NodeId>::max()) {
    throw ParseError(name, lineno, "vertex count exceeds NodeId range");
  }

  util::Prng rng(cfg.seed);
  graph::GraphBuilder b;
  if (cfg.shared_joint) {
    b.use_shared_joint(graph::random_joint(cfg.beliefs, cfg.coupling, rng));
  }
  b.reserve(static_cast<graph::NodeId>(rows), 2 * entries);
  for (graph::NodeId v = 0; v < rows; ++v) {
    if (rng.bernoulli(cfg.observed_fraction)) {
      b.add_observed_node(
          cfg.beliefs, static_cast<std::uint32_t>(rng.uniform(cfg.beliefs)));
    } else {
      b.add_node(graph::random_prior(cfg.beliefs, rng));
    }
  }

  // Edges: dedupe (u,v)/(v,u) so `general` files with explicit back-edges
  // do not double the undirected multiplicity.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(entries);
  std::uint64_t parsed = 0;
  while (parsed < entries) {
    if (!std::getline(in, line)) {
      throw ParseError(name, lineno, "edge list truncated");
    }
    ++lineno;
    const auto t = util::trim(line);
    if (t.empty() || t[0] == '%') continue;
    util::FieldCursor c(t);
    const auto u = c.next_u64();
    const auto v = c.next_u64();
    if (!u || !v || *u < 1 || *v < 1 || *u > rows || *v > rows) {
      throw ParseError(name, lineno, "edge endpoints out of range");
    }
    ++parsed;
    if (*u == *v) continue;  // drop self loops
    const std::uint64_t a = std::min(*u, *v) - 1;
    const std::uint64_t z = std::max(*u, *v) - 1;
    if (!seen.insert((a << 32) | z).second) continue;
    const auto src = static_cast<graph::NodeId>(a);
    const auto dst = static_cast<graph::NodeId>(z);
    if (cfg.shared_joint) {
      b.add_undirected(src, dst);
    } else {
      b.add_undirected(src, dst,
                       graph::random_joint(cfg.beliefs, cfg.coupling, rng));
    }
  }
  (void)symmetric;  // both symmetries produce undirected pairs for BP
  return b.finalize();
}

graph::FactorGraph read_mtx_graph(const std::string& path,
                                  const graph::BeliefConfig& cfg) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open MTX file: " + path);
  return read_mtx_graph_stream(in, cfg, path);
}

}  // namespace credo::io
