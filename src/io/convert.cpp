#include "io/convert.h"

#include "io/bif.h"
#include "io/mtx_belief.h"
#include "io/xmlbif.h"

namespace credo::io {

void bayes_net_to_mtx(const BayesNet& net, const std::string& node_path,
                      const std::string& edge_path) {
  write_mtx_belief(net.to_factor_graph(), node_path, edge_path);
}

void convert_bif_to_mtx(const std::string& bif_path,
                        const std::string& node_path,
                        const std::string& edge_path) {
  bayes_net_to_mtx(read_bif(bif_path), node_path, edge_path);
}

void convert_xmlbif_to_mtx(const std::string& xmlbif_path,
                           const std::string& node_path,
                           const std::string& edge_path) {
  bayes_net_to_mtx(read_xmlbif(xmlbif_path), node_path, edge_path);
}

}  // namespace credo::io
