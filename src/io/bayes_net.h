// Bayesian-network description — the logical content of a BIF / XML-BIF
// file, kept separate from the runtime FactorGraph.
//
// The legacy parsers produce a BayesNet; to_factor_graph() lowers it to the
// pairwise MRF representation the engines run on, applying the Markov
// assumption the paper describes (§2.1): multi-parent CPTs are factored into
// pairwise conditionals by marginalizing over the other parents under
// uniform assumptions, and every dependency becomes an undirected MRF edge
// (two directed edges).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/factor_graph.h"
#include "util/prng.h"

namespace credo::io {

/// A discrete variable: name plus named outcomes.
struct BayesVar {
  std::string name;
  std::vector<std::string> outcomes;

  [[nodiscard]] std::uint32_t arity() const noexcept {
    return static_cast<std::uint32_t>(outcomes.size());
  }
};

/// One conditional probability table: p(child | parents...).
/// `values` is row-major over parent assignments (first parent slowest,
/// last parent fastest) with the child outcome varying fastest within each
/// row; a root node has no parents and `values` is just its prior.
struct BayesCpt {
  std::uint32_t child = 0;
  std::vector<std::uint32_t> parents;
  std::vector<float> values;
};

/// A parsed Bayesian network.
struct BayesNet {
  std::string name;
  std::vector<BayesVar> variables;
  std::vector<BayesCpt> cpts;

  /// Index of a variable by name; throws util::InvalidArgument when absent.
  [[nodiscard]] std::uint32_t index_of(const std::string& var_name) const;

  /// Structural validation: every variable has exactly one CPT, parent
  /// indices are in range, table sizes match arities. Throws
  /// util::InvalidArgument on violation.
  void validate() const;

  /// Lowers to the pairwise MRF FactorGraph (per-edge JointStore). Root
  /// CPTs become priors; each (parent, child) dependency becomes an
  /// undirected edge whose joint matrix is the CPT marginalized over the
  /// remaining parents (uniform weights).
  [[nodiscard]] graph::FactorGraph to_factor_graph() const;

  /// Generates a random DAG-structured network: `n` variables of `arity`
  /// states, each non-root choosing up to `max_parents` parents among
  /// earlier variables. Used to fabricate BIF/XML-BIF bench inputs.
  static BayesNet random(std::uint32_t n, std::uint32_t arity,
                         std::uint32_t max_parents, std::uint64_t seed);

  /// The paper's running example (Fig. 1): the family-out problem.
  /// Variables: family-out (fo), bowel-problem (bp), light-on (lo),
  /// dog-out (do), hear-bark (hb).
  static BayesNet family_out();
};

}  // namespace credo::io
