#include "io/bayes_net.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "graph/builder.h"
#include "util/error.h"

namespace credo::io {
namespace {

/// Number of rows a CPT has: product of parent arities.
std::size_t cpt_rows(const BayesNet& net, const BayesCpt& c) {
  std::size_t rows = 1;
  for (const auto p : c.parents) rows *= net.variables[p].arity();
  return rows;
}

}  // namespace

std::uint32_t BayesNet::index_of(const std::string& var_name) const {
  for (std::uint32_t i = 0; i < variables.size(); ++i) {
    if (variables[i].name == var_name) return i;
  }
  throw util::InvalidArgument("unknown variable: " + var_name);
}

void BayesNet::validate() const {
  std::vector<std::uint8_t> seen(variables.size(), 0);
  for (const auto& v : variables) {
    if (v.outcomes.empty() || v.outcomes.size() > graph::kMaxStates) {
      throw util::InvalidArgument("variable '" + v.name +
                                  "' has invalid outcome count");
    }
  }
  for (const auto& c : cpts) {
    if (c.child >= variables.size()) {
      throw util::InvalidArgument("CPT child index out of range");
    }
    if (seen[c.child]) {
      throw util::InvalidArgument("duplicate CPT for variable '" +
                                  variables[c.child].name + "'");
    }
    seen[c.child] = 1;
    for (const auto p : c.parents) {
      if (p >= variables.size()) {
        throw util::InvalidArgument("CPT parent index out of range");
      }
      if (p == c.child) {
        throw util::InvalidArgument("variable cannot be its own parent");
      }
    }
    const std::size_t expect =
        cpt_rows(*this, c) * variables[c.child].arity();
    if (c.values.size() != expect) {
      throw util::InvalidArgument(
          "CPT for '" + variables[c.child].name + "' has " +
          std::to_string(c.values.size()) + " values, expected " +
          std::to_string(expect));
    }
  }
  for (std::uint32_t i = 0; i < variables.size(); ++i) {
    if (!seen[i]) {
      throw util::InvalidArgument("variable '" + variables[i].name +
                                  "' has no CPT");
    }
  }
}

graph::FactorGraph BayesNet::to_factor_graph() const {
  validate();
  graph::GraphBuilder b;
  std::uint64_t dependency_pairs = 0;
  for (const auto& c : cpts) dependency_pairs += c.parents.size();
  b.reserve(static_cast<graph::NodeId>(variables.size()),
            2 * dependency_pairs);
  // Priors: root CPT for roots; uniform for non-roots (their information
  // arrives through the edges).
  for (std::uint32_t i = 0; i < variables.size(); ++i) {
    const std::uint32_t arity = variables[i].arity();
    graph::BeliefVec prior = graph::BeliefVec::uniform(arity);
    for (const auto& c : cpts) {
      if (c.child == i && c.parents.empty()) {
        prior = graph::BeliefVec(
            std::span<const float>(c.values.data(), arity));
        graph::normalize(prior);
      }
    }
    b.add_node(prior, variables[i].name);
  }
  // Pairwise factorization of each conditional CPT.
  for (const auto& c : cpts) {
    if (c.parents.empty()) continue;
    const std::uint32_t child_arity = variables[c.child].arity();
    // Strides: values index = (Σ_k state_k * stride_k) * child_arity + s_c.
    std::vector<std::size_t> stride(c.parents.size(), 1);
    for (std::size_t k = c.parents.size(); k-- > 1;) {
      stride[k - 1] =
          stride[k] * variables[c.parents[k]].arity();
    }
    const std::size_t rows = cpt_rows(*this, c);
    for (std::size_t k = 0; k < c.parents.size(); ++k) {
      const std::uint32_t parent = c.parents[k];
      const std::uint32_t parent_arity = variables[parent].arity();
      graph::JointMatrix m(parent_arity, child_arity);
      // Marginalize the CPT over all other parents with uniform weights.
      for (std::size_t row = 0; row < rows; ++row) {
        const auto pstate = static_cast<std::uint32_t>(
            (row / stride[k]) % parent_arity);
        for (std::uint32_t s = 0; s < child_arity; ++s) {
          m.at(pstate, s) += c.values[row * child_arity + s];
        }
      }
      // Row-normalize.
      for (std::uint32_t r = 0; r < parent_arity; ++r) {
        float sum = 0.0f;
        for (std::uint32_t s = 0; s < child_arity; ++s) sum += m.at(r, s);
        if (sum > 0.0f) {
          for (std::uint32_t s = 0; s < child_arity; ++s) m.at(r, s) /= sum;
        }
      }
      b.add_undirected(parent, c.child, m);
    }
  }
  return b.finalize();
}

BayesNet BayesNet::random(std::uint32_t n, std::uint32_t arity,
                          std::uint32_t max_parents, std::uint64_t seed) {
  CREDO_CHECK_MSG(n >= 1 && arity >= 2 && arity <= graph::kMaxStates,
                  "bad random BayesNet shape");
  util::Prng rng(seed);
  BayesNet net;
  net.name = "random_" + std::to_string(n);
  char buf[32];
  for (std::uint32_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "v%u", i);
    BayesVar var;
    var.name = buf;
    for (std::uint32_t s = 0; s < arity; ++s) {
      std::snprintf(buf, sizeof(buf), "s%u", s);
      var.outcomes.push_back(buf);
    }
    net.variables.push_back(std::move(var));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    BayesCpt cpt;
    cpt.child = i;
    const std::uint32_t k =
        i == 0 ? 0
               : static_cast<std::uint32_t>(rng.uniform(
                     std::min<std::uint64_t>(max_parents, i) + 1));
    std::vector<std::uint32_t> pool(i);
    std::iota(pool.begin(), pool.end(), 0u);
    for (std::uint32_t j = 0; j < k; ++j) {
      const auto pick = rng.uniform(pool.size());
      cpt.parents.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    std::size_t rows = 1;
    for (const auto p : cpt.parents) rows *= net.variables[p].arity();
    cpt.values.resize(rows * arity);
    for (std::size_t r = 0; r < rows; ++r) {
      float sum = 0.0f;
      for (std::uint32_t s = 0; s < arity; ++s) {
        const float v = 0.05f + rng.uniform01f();
        cpt.values[r * arity + s] = v;
        sum += v;
      }
      for (std::uint32_t s = 0; s < arity; ++s) {
        cpt.values[r * arity + s] /= sum;
      }
    }
    net.cpts.push_back(std::move(cpt));
  }
  return net;
}

BayesNet BayesNet::family_out() {
  BayesNet net;
  net.name = "family-out";
  auto var = [&](const char* name) {
    net.variables.push_back(BayesVar{name, {"true", "false"}});
  };
  var("family-out");     // 0: fo
  var("bowel-problem");  // 1: bp
  var("light-on");       // 2: lo
  var("dog-out");        // 3: do
  var("hear-bark");      // 4: hb
  // Priors and CPTs follow Charniak's classic numbers (paper Fig. 1).
  net.cpts.push_back({0, {}, {0.15f, 0.85f}});
  net.cpts.push_back({1, {}, {0.01f, 0.99f}});
  // p(lo | fo): fo=true -> 0.6, fo=false -> 0.05.
  net.cpts.push_back({2, {0}, {0.6f, 0.4f, 0.05f, 0.95f}});
  // p(do | fo, bp): rows (fo,bp) = TT, TF, FT, FF.
  net.cpts.push_back({3,
                      {0, 1},
                      {0.99f, 0.01f, 0.90f, 0.10f, 0.97f, 0.03f, 0.30f,
                       0.70f}});
  // p(hb | do): do=true -> 0.7, do=false -> 0.01.
  net.cpts.push_back({4, {3}, {0.7f, 0.3f, 0.01f, 0.99f}});
  return net;
}

}  // namespace credo::io
