// Bayesian Interchange Format (BIF) reader/writer.
//
// This is the legacy path the paper measures against (§3.2): a
// recursive-descent parser over BIF's context-free grammar that — exactly
// like the implementations the paper critiques — must slurp the whole file
// into memory before walking the production rules. The supported grammar is
// the classic BIF 0.15 subset used by the Bayesian Network Repository:
//
//   network   := "network" WORD "{" property* "}"
//   variable  := "variable" WORD "{"
//                   "type" "discrete" "[" INT "]" "{" WORD ("," WORD)* "}" ";"
//                   property* "}"
//   prob      := "probability" "(" WORD ("|" WORD ("," WORD)*)? ")" "{"
//                   ( "table" FLOAT ("," FLOAT)* ";"
//                   | ( "(" WORD ("," WORD)* ")" FLOAT ("," FLOAT)* ";" )+ )
//                "}"
//   property  := "property" <chars> ";"
//
// Entry rows keyed by parent outcomes — the "(true) 0.2, 0.8;" form — may
// appear in any order; "table" lists the full CPT with parents varying
// slowest and the child outcome fastest (BayesCpt's layout).
#pragma once

#include <string>

#include "io/bayes_net.h"

namespace credo::io {

/// Parses a BIF file. Reads the entire file into memory first (inherent to
/// the format, and the behaviour the paper benchmarks). Throws
/// util::ParseError / util::IoError.
[[nodiscard]] BayesNet read_bif(const std::string& path);

/// Parses BIF from an in-memory string (`name` used in error messages).
[[nodiscard]] BayesNet read_bif_string(const std::string& text,
                                       const std::string& name);

/// Writes `net` as BIF text.
[[nodiscard]] std::string write_bif_string(const BayesNet& net);

/// Writes `net` as a BIF file. Throws util::IoError on failure.
void write_bif(const BayesNet& net, const std::string& path);

}  // namespace credo::io
