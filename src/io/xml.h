// Minimal from-scratch XML parser — just enough for XML-BIF.
//
// Builds a DOM over the whole document (like the parsers the paper
// benchmarks, XML cannot be consumed as independent lines). Supported:
// elements, attributes (single or double quoted), text content, comments,
// processing instructions/prolog, CDATA, and the five predefined entities.
// Not supported (not needed for XML-BIF): DTDs, namespaces, encodings other
// than ASCII/UTF-8 passthrough.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace credo::io {

/// One parsed element. Text content is concatenated across child text nodes
/// (interleaved text ordering is not preserved — XML-BIF never relies on
/// it).
struct XmlElement {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<XmlElement>> children;
  std::string text;

  /// First child with the given element name, or nullptr.
  [[nodiscard]] const XmlElement* child(const std::string& tag) const;

  /// All children with the given element name.
  [[nodiscard]] std::vector<const XmlElement*> children_named(
      const std::string& tag) const;

  /// Attribute value or empty string.
  [[nodiscard]] std::string attribute(const std::string& key) const;
};

/// Parses a document; returns its root element.
/// Throws util::ParseError (with `name` as the file tag) on malformed XML.
[[nodiscard]] std::unique_ptr<XmlElement> parse_xml(const std::string& text,
                                                    const std::string& name);

}  // namespace credo::io
