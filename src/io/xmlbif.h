// XML-BIF (BIF 0.3 XML interchange) reader/writer — the second legacy
// format of §3.2. Structure:
//
//   <BIF VERSION="0.3"><NETWORK>
//     <NAME>net</NAME>
//     <VARIABLE TYPE="nature">
//       <NAME>A</NAME><OUTCOME>true</OUTCOME><OUTCOME>false</OUTCOME>
//     </VARIABLE>
//     <DEFINITION>
//       <FOR>B</FOR><GIVEN>A</GIVEN><TABLE>0.2 0.8 0.7 0.3</TABLE>
//     </DEFINITION>
//   </NETWORK></BIF>
//
// TABLE values use the same layout as BayesCpt (parents slowest, child
// outcome fastest).
#pragma once

#include <string>

#include "io/bayes_net.h"

namespace credo::io {

/// Parses an XML-BIF file (whole-document DOM parse — the memory behaviour
/// the paper measures). Throws util::ParseError / util::IoError.
[[nodiscard]] BayesNet read_xmlbif(const std::string& path);

/// Parses XML-BIF from a string (`name` used in error messages).
[[nodiscard]] BayesNet read_xmlbif_string(const std::string& text,
                                          const std::string& name);

/// Serializes `net` as XML-BIF text.
[[nodiscard]] std::string write_xmlbif_string(const BayesNet& net);

/// Writes `net` as an XML-BIF file. Throws util::IoError on failure.
void write_xmlbif(const BayesNet& net, const std::string& path);

}  // namespace credo::io
