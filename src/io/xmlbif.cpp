#include "io/xmlbif.h"

#include <fstream>
#include <sstream>

#include "io/xml.h"
#include "util/error.h"
#include "util/strings.h"

namespace credo::io {
namespace {

using util::ParseError;

[[noreturn]] void fail(const std::string& name, const std::string& what) {
  throw ParseError(name, 0, what);
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

BayesNet read_xmlbif_string(const std::string& text,
                            const std::string& name) {
  const auto root = parse_xml(text, name);
  if (root->name != "BIF") fail(name, "root element must be <BIF>");
  const XmlElement* network = root->child("NETWORK");
  if (network == nullptr) fail(name, "missing <NETWORK>");

  BayesNet net;
  if (const auto* n = network->child("NAME")) {
    net.name = std::string(util::trim(n->text));
  }
  for (const auto* v : network->children_named("VARIABLE")) {
    BayesVar var;
    const auto* vn = v->child("NAME");
    if (vn == nullptr) fail(name, "<VARIABLE> missing <NAME>");
    var.name = std::string(util::trim(vn->text));
    for (const auto* o : v->children_named("OUTCOME")) {
      var.outcomes.emplace_back(util::trim(o->text));
    }
    if (var.outcomes.empty()) {
      fail(name, "variable '" + var.name + "' has no outcomes");
    }
    net.variables.push_back(std::move(var));
  }
  for (const auto* d : network->children_named("DEFINITION")) {
    BayesCpt cpt;
    const auto* forEl = d->child("FOR");
    if (forEl == nullptr) fail(name, "<DEFINITION> missing <FOR>");
    cpt.child = net.index_of(std::string(util::trim(forEl->text)));
    for (const auto* g : d->children_named("GIVEN")) {
      cpt.parents.push_back(
          net.index_of(std::string(util::trim(g->text))));
    }
    const auto* t = d->child("TABLE");
    if (t == nullptr) fail(name, "<DEFINITION> missing <TABLE>");
    util::FieldCursor c(t->text);
    while (auto f = c.next()) {
      const auto v = util::parse_float(*f);
      if (!v) {
        fail(name, "malformed table value '" + std::string(*f) + "'");
      }
      cpt.values.push_back(*v);
    }
    net.cpts.push_back(std::move(cpt));
  }
  try {
    net.validate();
  } catch (const util::InvalidArgument& e) {
    fail(name, e.what());
  }
  return net;
}

BayesNet read_xmlbif(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::IoError("cannot open XML-BIF file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return read_xmlbif_string(buf.str(), path);
}

std::string write_xmlbif_string(const BayesNet& net) {
  net.validate();
  std::ostringstream os;
  os << "<?xml version=\"1.0\"?>\n<BIF VERSION=\"0.3\">\n<NETWORK>\n";
  os << "<NAME>" << escape(net.name.empty() ? "unnamed" : net.name)
     << "</NAME>\n";
  for (const auto& v : net.variables) {
    os << "<VARIABLE TYPE=\"nature\">\n  <NAME>" << escape(v.name)
       << "</NAME>\n";
    for (const auto& o : v.outcomes) {
      os << "  <OUTCOME>" << escape(o) << "</OUTCOME>\n";
    }
    os << "</VARIABLE>\n";
  }
  for (const auto& c : net.cpts) {
    os << "<DEFINITION>\n  <FOR>" << escape(net.variables[c.child].name)
       << "</FOR>\n";
    for (const auto p : c.parents) {
      os << "  <GIVEN>" << escape(net.variables[p].name) << "</GIVEN>\n";
    }
    os << "  <TABLE>";
    for (std::size_t i = 0; i < c.values.size(); ++i) {
      if (i > 0) os << ' ';
      os << c.values[i];
    }
    os << "</TABLE>\n</DEFINITION>\n";
  }
  os << "</NETWORK>\n</BIF>\n";
  return os.str();
}

void write_xmlbif(const BayesNet& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot open for writing: " + path);
  out << write_xmlbif_string(net);
  if (!out) throw util::IoError("write failed: " + path);
}

}  // namespace credo::io
