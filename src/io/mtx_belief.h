// The MTX-belief input format (§3.2) — the paper's replacement for BIF.
//
// A belief network is split across two Matrix-Market-derived files that can
// be streamed line by line, never holding the raw text in memory:
//
//   Node file:
//     %%MatrixMarket credo beliefs            <- banner (first line)
//     % free-form comments                    <- '%' comments anywhere
//     N N N                                   <- dimensions line
//     id id p_1 ... p_k [*]                   <- one line per node
//
//   Edge file:
//     %%MatrixMarket credo joints             <- banner
//     %%shared-joint K v_11 ... v_KK          <- optional shared matrix
//     N N M                                   <- dimensions line
//     src dst [v_11 ... v_RC]                 <- one line per directed edge
//
// Node lines repeat the id ("nothing but self-cycling nodes", §3.2) so the
// file remains a valid MTX edge list to other tools. A trailing '*' marks an
// observed node. Edge lines carry a full row-major R x C conditional matrix
// (R = arity(src), C = arity(dst)) unless a %%shared-joint header supplied
// the single matrix every edge shares (§2.2). Ids are 1-based as in MTX.
//
// Parsing needs no grammar — a handful of field splits per line — and node
// lines are consumed before edge lines, so memory use is the graph itself.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/factor_graph.h"

namespace credo::io {

/// Statistics from a parse, used by the parser-comparison bench (§3.2.1).
struct ParseStats {
  std::uint64_t lines = 0;
  std::uint64_t bytes = 0;
};

/// Reads a belief network from the node/edge file pair.
/// Throws util::IoError if a file cannot be opened, util::ParseError on
/// malformed content.
[[nodiscard]] graph::FactorGraph read_mtx_belief(
    const std::string& node_path, const std::string& edge_path,
    ParseStats* stats = nullptr);

/// Stream-based form (tests drive this with istringstream).
[[nodiscard]] graph::FactorGraph read_mtx_belief_streams(
    std::istream& nodes, std::istream& edges, ParseStats* stats = nullptr);

/// Writes `g` as an MTX-belief file pair. A graph with a shared JointStore
/// produces a %%shared-joint header and bare edge lines.
void write_mtx_belief(const graph::FactorGraph& g,
                      const std::string& node_path,
                      const std::string& edge_path);

/// Stream-based writer.
void write_mtx_belief_streams(const graph::FactorGraph& g,
                              std::ostream& nodes, std::ostream& edges);

}  // namespace credo::io
