#include "io/mtx_belief.h"

#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>

#include "graph/builder.h"
#include "util/error.h"
#include "util/strings.h"

namespace credo::io {
namespace {

using graph::BeliefVec;
using graph::GraphBuilder;
using graph::JointMatrix;
using graph::kMaxStates;
using graph::NodeId;
using util::FieldCursor;
using util::ParseError;

constexpr std::string_view kNodeBanner = "%%MatrixMarket credo beliefs";
constexpr std::string_view kEdgeBanner = "%%MatrixMarket credo joints";
constexpr std::string_view kSharedJoint = "%%shared-joint";
// Family extension headers (DESIGN.md §5g), edge file only. Backward
// compatible: absent headers mean tabular, and old readers skip unknown
// '%'-lines in files that do not carry closed-form families.
constexpr std::string_view kFamilyHeader = "%%family";
constexpr std::string_view kLdpcVarsHeader = "%%ldpc-variables";

struct LineReader {
  std::istream& in;
  std::string file;
  std::string line;
  std::uint64_t lineno = 0;
  ParseStats* stats;

  /// Next non-empty, non-comment line (comment = starts with '%'). The
  /// %%shared-joint / %%family / %%ldpc-variables extension lines are NOT
  /// skipped; callers check for them.
  std::optional<std::string_view> next(bool keep_extensions = false) {
    while (std::getline(in, line)) {
      ++lineno;
      if (stats != nullptr) {
        ++stats->lines;
        stats->bytes += line.size() + 1;
      }
      const auto t = util::trim(line);
      if (t.empty()) continue;
      if (t[0] == '%') {
        if (keep_extensions &&
            (util::starts_with(t, kSharedJoint) ||
             util::starts_with(t, kFamilyHeader) ||
             util::starts_with(t, kLdpcVarsHeader))) {
          return t;
        }
        continue;
      }
      return t;
    }
    return std::nullopt;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(file, lineno, what);
  }
};

/// Parses "N N N" / "N N M" dimension lines; returns {nodes, entries}.
std::pair<std::uint64_t, std::uint64_t> parse_dims(LineReader& r,
                                                   std::string_view l) {
  FieldCursor c(l);
  const auto a = c.next_u64();
  const auto b = c.next_u64();
  const auto m = c.next_u64();
  if (!a || !b || !m || !c.done()) r.fail("malformed dimensions line");
  if (*a != *b) r.fail("dimensions line must be square (N N count)");
  return {*a, *m};
}

/// Parses rows x cols values into `m` (reused across lines: a fresh
/// JointMatrix is a 4 KiB zero-fill, which dominates per-edge parsing).
void parse_matrix_values(LineReader& r, FieldCursor& c, std::uint32_t rows,
                         std::uint32_t cols, JointMatrix& m) {
  m.rows = rows;
  m.cols = cols;
  for (std::uint32_t i = 0; i < rows; ++i) {
    for (std::uint32_t j = 0; j < cols; ++j) {
      const auto v = c.next_float();
      if (!v) r.fail("joint matrix truncated");
      if (*v < 0.0f) r.fail("negative probability in joint matrix");
      m.at(i, j) = *v;
    }
  }
}

}  // namespace

graph::FactorGraph read_mtx_belief_streams(std::istream& nodes,
                                           std::istream& edges,
                                           ParseStats* stats) {
  GraphBuilder b;
  std::vector<std::uint32_t> arity;

  // ---- Node file ----
  LineReader nr{nodes, "<nodes>", {}, 0, stats};
  {
    std::string first;
    if (!std::getline(nodes, first)) nr.fail("empty node file");
    ++nr.lineno;
    if (stats != nullptr) {
      ++stats->lines;
      stats->bytes += first.size() + 1;
    }
    if (!util::starts_with(util::trim(first), kNodeBanner)) {
      nr.fail("missing node banner '" + std::string(kNodeBanner) + "'");
    }
  }
  const auto ndims = nr.next();
  if (!ndims) nr.fail("missing node dimensions line");
  const auto [n_nodes, n_entries] = parse_dims(nr, *ndims);
  if (n_entries != n_nodes) nr.fail("node file entry count must equal N");
  arity.reserve(n_nodes);
  b.reserve(static_cast<NodeId>(n_nodes), 0);

  for (std::uint64_t i = 0; i < n_nodes; ++i) {
    const auto l = nr.next();
    if (!l) nr.fail("node file truncated");
    FieldCursor c(*l);
    const auto id1 = c.next_u64();
    const auto id2 = c.next_u64();
    if (!id1 || !id2) nr.fail("malformed node line");
    if (*id1 != *id2) nr.fail("node line ids must match (self-cycle form)");
    if (*id1 != i + 1) nr.fail("node ids must be dense, 1-based, in order");
    BeliefVec prior;
    bool observed = false;
    float sum = 0.0f;
    while (auto f = c.next()) {
      if (*f == "*") {
        observed = true;
        if (!c.done()) nr.fail("'*' must be the last field");
        break;
      }
      const auto v = util::parse_float(*f);
      if (!v) nr.fail("malformed probability '" + std::string(*f) + "'");
      if (*v < 0.0f) nr.fail("negative prior probability");
      if (prior.size >= kMaxStates) nr.fail("too many states (max 32)");
      prior.v[prior.size++] = *v;
      sum += *v;
    }
    if (prior.size == 0) nr.fail("node line carries no probabilities");
    if (sum <= 0.0f) nr.fail("prior sums to zero");
    graph::normalize(prior);
    arity.push_back(prior.size);
    const NodeId id = b.add_node(prior);
    if (observed) {
      // Find the point-mass state; an observed node must be a point mass.
      std::uint32_t state = 0;
      float best = -1.0f;
      for (std::uint32_t s = 0; s < prior.size; ++s) {
        if (prior.v[s] > best) {
          best = prior.v[s];
          state = s;
        }
      }
      b.observe(id, state);
    }
  }

  // ---- Edge file ----
  LineReader er{edges, "<edges>", {}, 0, stats};
  {
    std::string first;
    if (!std::getline(edges, first)) er.fail("empty edge file");
    ++er.lineno;
    if (stats != nullptr) {
      ++stats->lines;
      stats->bytes += first.size() + 1;
    }
    if (!util::starts_with(util::trim(first), kEdgeBanner)) {
      er.fail("missing edge banner '" + std::string(kEdgeBanner) + "'");
    }
  }
  bool shared = false;
  graph::FactorFamily family = graph::FactorFamily::kTabular;
  std::uint64_t ldpc_vars = 0;
  bool have_ldpc_vars = false;
  auto l = er.next(/*keep_extensions=*/true);
  while (l && util::starts_with(*l, "%%")) {
    if (util::starts_with(*l, kSharedJoint)) {
      FieldCursor c(l->substr(kSharedJoint.size()));
      const auto k = c.next_u64();
      if (!k || *k < 1 || *k > kMaxStates) {
        er.fail("bad shared-joint arity");
      }
      JointMatrix m;
      parse_matrix_values(er, c, static_cast<std::uint32_t>(*k),
                          static_cast<std::uint32_t>(*k), m);
      if (!c.done()) er.fail("trailing fields after shared joint matrix");
      b.use_shared_joint(m);
      shared = true;
    } else if (util::starts_with(*l, kLdpcVarsHeader)) {
      FieldCursor c(l->substr(kLdpcVarsHeader.size()));
      const auto v = c.next_u64();
      if (!v || !c.done()) er.fail("malformed %%ldpc-variables line");
      ldpc_vars = *v;
      have_ldpc_vars = true;
    } else if (util::starts_with(*l, kFamilyHeader)) {
      FieldCursor c(l->substr(kFamilyHeader.size()));
      const auto name = c.next();
      if (!name || !c.done()) er.fail("malformed %%family line");
      const auto f = graph::family_from_name(*name);
      if (!f) er.fail("unknown factor family '" + std::string(*name) + "'");
      family = *f;
    }
    l = er.next(/*keep_extensions=*/true);
  }
  if (graph::is_ldpc(family)) {
    if (shared) er.fail("%%family and %%shared-joint are exclusive");
    if (!have_ldpc_vars) {
      er.fail("LDPC families require a %%ldpc-variables line");
    }
    if (ldpc_vars == 0 || ldpc_vars >= n_nodes) {
      er.fail("%%ldpc-variables must be in [1, nodes)");
    }
    b.use_family(family);
    b.set_ldpc_variables(static_cast<NodeId>(ldpc_vars));
  } else if (have_ldpc_vars) {
    er.fail("%%ldpc-variables requires an LDPC %%family line");
  }
  if (!l) er.fail("missing edge dimensions line");
  const auto [e_nodes, e_count] = parse_dims(er, *l);
  if (e_nodes != n_nodes) {
    er.fail("edge file node count disagrees with node file");
  }
  b.reserve(static_cast<NodeId>(n_nodes), e_count);
  JointMatrix scratch;  // reused across edge lines
  for (std::uint64_t i = 0; i < e_count; ++i) {
    const auto el = er.next();
    if (!el) er.fail("edge file truncated");
    FieldCursor c(*el);
    const auto s = c.next_u64();
    const auto d = c.next_u64();
    if (!s || !d || *s < 1 || *d < 1 || *s > n_nodes || *d > n_nodes) {
      er.fail("edge endpoints out of range");
    }
    const auto src = static_cast<NodeId>(*s - 1);
    const auto dst = static_cast<NodeId>(*d - 1);
    if (shared || graph::is_ldpc(family)) {
      if (!c.done()) er.fail("per-edge values in a matrix-free edge file");
      b.add_edge(src, dst);
    } else {
      parse_matrix_values(er, c, arity[src], arity[dst], scratch);
      if (!c.done()) er.fail("trailing fields after joint matrix");
      b.add_edge(src, dst, scratch);
    }
  }
  return b.finalize();
}

graph::FactorGraph read_mtx_belief(const std::string& node_path,
                                   const std::string& edge_path,
                                   ParseStats* stats) {
  std::ifstream nodes(node_path);
  if (!nodes) throw util::IoError("cannot open node file: " + node_path);
  std::ifstream edges(edge_path);
  if (!edges) throw util::IoError("cannot open edge file: " + edge_path);
  try {
    return read_mtx_belief_streams(nodes, edges, stats);
  } catch (const ParseError& e) {
    // Re-tag stream pseudo-names with real paths.
    const std::string which = e.file() == "<nodes>" ? node_path : edge_path;
    throw ParseError(which, e.line(), e.message());
  }
}

void write_mtx_belief_streams(const graph::FactorGraph& g,
                              std::ostream& nodes, std::ostream& edges) {
  nodes << kNodeBanner << '\n';
  nodes << "% Credo node beliefs: id id p_1..p_k [*]\n";
  nodes << g.num_nodes() << ' ' << g.num_nodes() << ' ' << g.num_nodes()
        << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    nodes << (v + 1) << ' ' << (v + 1);
    const auto& p = g.prior(v);
    for (std::uint32_t s = 0; s < p.size; ++s) nodes << ' ' << p.v[s];
    if (g.observed(v)) nodes << " *";
    nodes << '\n';
  }

  edges << kEdgeBanner << '\n';
  const auto& joints = g.joints();
  if (graph::is_ldpc(g.family())) {
    edges << kFamilyHeader << ' ' << graph::family_name(g.family()) << '\n';
    edges << kLdpcVarsHeader << ' ' << g.ldpc_variables() << '\n';
  }
  if (joints.is_shared()) {
    const auto& m = joints.shared_matrix();
    edges << kSharedJoint << ' ' << m.rows;
    for (std::uint32_t i = 0; i < m.rows; ++i) {
      for (std::uint32_t j = 0; j < m.cols; ++j) {
        edges << ' ' << m.at(i, j);
      }
    }
    edges << '\n';
  }
  edges << g.num_nodes() << ' ' << g.num_nodes() << ' ' << g.num_edges()
        << '\n';
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    edges << (ed.src + 1) << ' ' << (ed.dst + 1);
    if (!joints.is_shared() && !joints.is_closed_form()) {
      const auto& m = joints.at(e);
      for (std::uint32_t i = 0; i < m.rows; ++i) {
        for (std::uint32_t j = 0; j < m.cols; ++j) {
          edges << ' ' << m.at(i, j);
        }
      }
    }
    edges << '\n';
  }
}

void write_mtx_belief(const graph::FactorGraph& g,
                      const std::string& node_path,
                      const std::string& edge_path) {
  std::ofstream nodes(node_path);
  if (!nodes) throw util::IoError("cannot open for writing: " + node_path);
  std::ofstream edges(edge_path);
  if (!edges) throw util::IoError("cannot open for writing: " + edge_path);
  write_mtx_belief_streams(g, nodes, edges);
  if (!nodes || !edges) {
    throw util::IoError("write failed for MTX-belief pair");
  }
}

}  // namespace credo::io
