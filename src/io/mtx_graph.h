// Plain Matrix Market edge-list reader — the format the paper's real
// benchmark graphs ship in (networkrepository.com) and the base the
// MTX-belief format extends (§3.2).
//
// Supported: the `%%MatrixMarket matrix coordinate <field> <symmetry>`
// banner, '%' comments, a rows/cols/entries header, and one edge per line
// (1-based ids; any trailing weight value is ignored). `symmetric` inputs
// produce one undirected edge per entry; `general` inputs treat each entry
// as an undirected edge too (BP needs both directions), deduplicating
// explicit back-edges.
//
// Since plain MTX carries no probabilities, beliefs are synthesized from a
// graph::BeliefConfig — exactly the paper's procedure of "randomly
// encod[ing] generated beliefs" into each downloaded graph.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/factor_graph.h"
#include "graph/generators.h"

namespace credo::io {

/// Reads a plain Matrix Market graph and synthesizes beliefs per `cfg`.
/// Self loops are dropped. Throws util::IoError / util::ParseError.
[[nodiscard]] graph::FactorGraph read_mtx_graph(
    const std::string& path, const graph::BeliefConfig& cfg);

/// Stream form (tests use istringstream).
[[nodiscard]] graph::FactorGraph read_mtx_graph_stream(
    std::istream& in, const graph::BeliefConfig& cfg,
    const std::string& name = "<mtx>");

}  // namespace credo::io
