#include "io/xml.h"

#include "util/error.h"
#include "util/strings.h"

namespace credo::io {
namespace {

using util::ParseError;

class XmlParser {
 public:
  XmlParser(const std::string& text, std::string name)
      : text_(text), name_(std::move(name)) {}

  std::unique_ptr<XmlElement> parse() {
    skip_misc();
    auto root = parse_element();
    skip_misc();
    if (pos_ != text_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(name_, line_, what);
  }

  [[nodiscard]] bool at(std::string_view s) const noexcept {
    return text_.compare(pos_, s.size(), s) == 0;
  }

  char cur() const {
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void bump() {
    if (text_[pos_] == '\n') ++line_;
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\r' || text_[pos_] == '\n')) {
      bump();
    }
  }

  void skip_until(std::string_view terminator) {
    while (pos_ < text_.size() && !at(terminator)) bump();
    if (pos_ >= text_.size()) {
      fail("unterminated construct (expected '" + std::string(terminator) +
           "')");
    }
    pos_ += terminator.size();
  }

  /// Skips whitespace, comments, PIs and the prolog between elements.
  void skip_misc() {
    for (;;) {
      skip_ws();
      if (at("<!--")) {
        pos_ += 4;
        skip_until("-->");
      } else if (at("<?")) {
        pos_ += 2;
        skip_until("?>");
      } else if (at("<!DOCTYPE")) {
        // Consume to the matching '>' (internal subsets unsupported).
        while (pos_ < text_.size() && text_[pos_] != '>') bump();
        if (pos_ < text_.size()) bump();
      } else {
        return;
      }
    }
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                      c == '.' || c == ':';
      if (!ok) break;
      ++pos_;
    }
    if (pos_ == start) fail("expected a name");
    return text_.substr(start, pos_ - start);
  }

  void decode_entity(std::string& out) {
    // pos_ is at '&'.
    const std::size_t semi = text_.find(';', pos_);
    if (semi == std::string::npos || semi - pos_ > 8) {
      fail("malformed entity reference");
    }
    const std::string_view ent(text_.data() + pos_ + 1, semi - pos_ - 1);
    if (ent == "lt") {
      out += '<';
    } else if (ent == "gt") {
      out += '>';
    } else if (ent == "amp") {
      out += '&';
    } else if (ent == "apos") {
      out += '\'';
    } else if (ent == "quot") {
      out += '"';
    } else if (!ent.empty() && ent[0] == '#') {
      const bool hex = ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X');
      unsigned long code = 0;
      try {
        code = std::stoul(std::string(ent.substr(hex ? 2 : 1)), nullptr,
                          hex ? 16 : 10);
      } catch (...) {
        fail("malformed character reference");
      }
      if (code == 0 || code > 0x7f) {
        fail("character references above ASCII are unsupported");
      }
      out += static_cast<char>(code);
    } else {
      fail("unknown entity '&" + std::string(ent) + ";'");
    }
    pos_ = semi + 1;
  }

  std::string parse_attr_value() {
    const char quote = cur();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute");
    bump();
    std::string out;
    while (cur() != quote) {
      if (cur() == '&') {
        decode_entity(out);
      } else {
        out += cur();
        bump();
      }
    }
    bump();
    return out;
  }

  std::unique_ptr<XmlElement> parse_element() {
    if (cur() != '<') fail("expected '<'");
    bump();
    auto el = std::make_unique<XmlElement>();
    el->name = parse_name();
    for (;;) {
      skip_ws();
      if (at("/>")) {
        pos_ += 2;
        return el;
      }
      if (cur() == '>') {
        bump();
        break;
      }
      std::string key = parse_name();
      skip_ws();
      if (cur() != '=') fail("expected '=' in attribute");
      bump();
      skip_ws();
      el->attributes.emplace_back(std::move(key), parse_attr_value());
    }
    // Content.
    for (;;) {
      if (at("</")) {
        pos_ += 2;
        const std::string close = parse_name();
        if (close != el->name) {
          fail("mismatched closing tag </" + close + "> for <" + el->name +
               ">");
        }
        skip_ws();
        if (cur() != '>') fail("expected '>' after closing tag");
        bump();
        return el;
      }
      if (at("<!--")) {
        pos_ += 4;
        skip_until("-->");
      } else if (at("<![CDATA[")) {
        pos_ += 9;
        const std::size_t end = text_.find("]]>", pos_);
        if (end == std::string::npos) fail("unterminated CDATA");
        el->text.append(text_, pos_, end - pos_);
        for (; pos_ < end; ++pos_) {
          if (text_[pos_] == '\n') ++line_;
        }
        pos_ = end + 3;
      } else if (at("<?")) {
        pos_ += 2;
        skip_until("?>");
      } else if (cur() == '<') {
        el->children.push_back(parse_element());
      } else if (cur() == '&') {
        decode_entity(el->text);
      } else {
        el->text += cur();
        bump();
      }
    }
  }

  const std::string& text_;
  std::string name_;
  std::size_t pos_ = 0;
  std::uint64_t line_ = 1;
};

}  // namespace

const XmlElement* XmlElement::child(const std::string& tag) const {
  for (const auto& c : children) {
    if (c->name == tag) return c.get();
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::children_named(
    const std::string& tag) const {
  std::vector<const XmlElement*> out;
  for (const auto& c : children) {
    if (c->name == tag) out.push_back(c.get());
  }
  return out;
}

std::string XmlElement::attribute(const std::string& key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return v;
  }
  return {};
}

std::unique_ptr<XmlElement> parse_xml(const std::string& text,
                                      const std::string& name) {
  XmlParser p(text, name);
  return p.parse();
}

}  // namespace credo::io
