#include "io/bif.h"

#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace credo::io {
namespace {

using util::ParseError;

/// Token kinds for the BIF lexer.
enum class Tok {
  kWord,    // identifiers, keywords, numbers
  kLBrace,  // {
  kRBrace,  // }
  kLParen,  // (
  kRParen,  // )
  kLBrack,  // [
  kRBrack,  // ]
  kComma,
  kSemi,
  kPipe,
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string_view text;
  std::uint64_t line = 1;
};

/// Whole-buffer lexer: BIF's grammar forces loading the full text first.
class Lexer {
 public:
  Lexer(std::string_view text, std::string name)
      : text_(text), name_(std::move(name)) {
    advance();
  }

  [[nodiscard]] const Token& peek() const noexcept { return cur_; }

  Token take() {
    Token t = cur_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(name_, cur_.line, what);
  }

  /// Consumes a punctuation token of the given kind or fails.
  void expect(Tok kind, const char* what) {
    if (cur_.kind != kind) fail(std::string("expected ") + what);
    advance();
  }

  /// Consumes a word token and returns its text.
  std::string_view word(const char* what) {
    if (cur_.kind != Tok::kWord) fail(std::string("expected ") + what);
    const auto t = cur_.text;
    advance();
    return t;
  }

  /// Consumes the specific keyword or fails.
  void keyword(std::string_view kw) {
    if (cur_.kind != Tok::kWord || cur_.text != kw) {
      fail("expected keyword '" + std::string(kw) + "'");
    }
    advance();
  }

  [[nodiscard]] bool at_keyword(std::string_view kw) const noexcept {
    return cur_.kind == Tok::kWord && cur_.text == kw;
  }

 private:
  void advance() {
    skip_ws_and_comments();
    cur_.line = line_;
    if (pos_ >= text_.size()) {
      cur_ = {Tok::kEnd, {}, line_};
      return;
    }
    const char c = text_[pos_];
    const auto punct = [&](Tok k) {
      cur_ = {k, text_.substr(pos_, 1), line_};
      ++pos_;
    };
    switch (c) {
      case '{': punct(Tok::kLBrace); return;
      case '}': punct(Tok::kRBrace); return;
      case '(': punct(Tok::kLParen); return;
      case ')': punct(Tok::kRParen); return;
      case '[': punct(Tok::kLBrack); return;
      case ']': punct(Tok::kRBrack); return;
      case ',': punct(Tok::kComma); return;
      case ';': punct(Tok::kSemi); return;
      case '|': punct(Tok::kPipe); return;
      default: break;
    }
    // Word: identifier / number / quoted string.
    if (c == '"') {
      const std::size_t start = ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') bump();
      if (pos_ >= text_.size()) {
        throw ParseError(name_, line_, "unterminated string");
      }
      cur_ = {Tok::kWord, text_.substr(start, pos_ - start), line_};
      ++pos_;
      return;
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !is_delim(text_[pos_])) bump();
    if (pos_ == start) {
      throw ParseError(name_, line_,
                       std::string("unexpected character '") + c + "'");
    }
    cur_ = {Tok::kWord, text_.substr(start, pos_ - start), line_};
  }

  static bool is_delim(char c) noexcept {
    switch (c) {
      case '{': case '}': case '(': case ')': case '[': case ']':
      case ',': case ';': case '|': case '"':
      case ' ': case '\t': case '\r': case '\n': case '\f': case '\v':
        return true;
      default:
        return false;
    }
  }

  void bump() {
    if (text_[pos_] == '\n') ++line_;
    ++pos_;
  }

  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
          c == '\v') {
        bump();
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') bump();
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          bump();
        }
        if (pos_ + 1 >= text_.size()) {
          throw ParseError(name_, line_, "unterminated block comment");
        }
        pos_ += 2;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::string name_;
  std::size_t pos_ = 0;
  std::uint64_t line_ = 1;
  Token cur_;
};

/// Recursive-descent parser producing a BayesNet.
class BifParser {
 public:
  BifParser(std::string_view text, std::string name)
      : lex_(text, std::move(name)) {}

  BayesNet parse() {
    parse_network();
    while (lex_.peek().kind != Tok::kEnd) {
      if (lex_.at_keyword("variable")) {
        parse_variable();
      } else if (lex_.at_keyword("probability")) {
        parse_probability();
      } else {
        lex_.fail("expected 'variable' or 'probability'");
      }
    }
    net_.validate();
    return std::move(net_);
  }

 private:
  void skip_properties() {
    while (lex_.at_keyword("property")) {
      lex_.take();
      // A property's payload is free-form up to the semicolon.
      while (lex_.peek().kind != Tok::kSemi &&
             lex_.peek().kind != Tok::kEnd) {
        lex_.take();
      }
      lex_.expect(Tok::kSemi, "';' ending property");
    }
  }

  void parse_network() {
    lex_.keyword("network");
    net_.name = std::string(lex_.word("network name"));
    lex_.expect(Tok::kLBrace, "'{'");
    skip_properties();
    lex_.expect(Tok::kRBrace, "'}'");
  }

  void parse_variable() {
    lex_.keyword("variable");
    BayesVar var;
    var.name = std::string(lex_.word("variable name"));
    lex_.expect(Tok::kLBrace, "'{'");
    lex_.keyword("type");
    lex_.keyword("discrete");
    lex_.expect(Tok::kLBrack, "'['");
    const auto n = util::parse_u64(lex_.word("outcome count"));
    if (!n || *n == 0 || *n > graph::kMaxStates) {
      lex_.fail("bad outcome count");
    }
    lex_.expect(Tok::kRBrack, "']'");
    lex_.expect(Tok::kLBrace, "'{'");
    for (std::uint64_t i = 0; i < *n; ++i) {
      if (i > 0) lex_.expect(Tok::kComma, "','");
      var.outcomes.emplace_back(lex_.word("outcome name"));
    }
    lex_.expect(Tok::kRBrace, "'}'");
    lex_.expect(Tok::kSemi, "';'");
    skip_properties();
    lex_.expect(Tok::kRBrace, "'}'");
    net_.variables.push_back(std::move(var));
  }

  float parse_float_word(const char* what) {
    const auto f = util::parse_float(lex_.word(what));
    if (!f) lex_.fail(std::string("malformed number for ") + what);
    return *f;
  }

  void parse_probability() {
    lex_.keyword("probability");
    lex_.expect(Tok::kLParen, "'('");
    BayesCpt cpt;
    cpt.child = index_or_fail(lex_.word("variable name"));
    if (lex_.peek().kind == Tok::kPipe) {
      lex_.take();
      cpt.parents.push_back(
          index_or_fail(lex_.word("parent name")));
      while (lex_.peek().kind == Tok::kComma) {
        lex_.take();
        cpt.parents.push_back(
            index_or_fail(lex_.word("parent name")));
      }
    }
    lex_.expect(Tok::kRParen, "')'");
    lex_.expect(Tok::kLBrace, "'{'");

    const std::uint32_t child_arity =
        net_.variables[cpt.child].arity();
    std::size_t rows = 1;
    for (const auto p : cpt.parents) {
      rows *= net_.variables[p].arity();
    }
    cpt.values.assign(rows * child_arity, -1.0f);

    if (lex_.at_keyword("table")) {
      lex_.take();
      for (std::size_t i = 0; i < cpt.values.size(); ++i) {
        if (i > 0) lex_.expect(Tok::kComma, "','");
        cpt.values[i] = parse_float_word("table value");
      }
      lex_.expect(Tok::kSemi, "';'");
    } else {
      // Row entries keyed by parent outcomes: "(true, false) 0.2, 0.8;".
      while (lex_.peek().kind == Tok::kLParen) {
        lex_.take();
        std::size_t row = 0;
        for (std::size_t k = 0; k < cpt.parents.size(); ++k) {
          if (k > 0) lex_.expect(Tok::kComma, "','");
          const auto& pv = net_.variables[cpt.parents[k]];
          const auto outcome = lex_.word("parent outcome");
          std::size_t idx = pv.outcomes.size();
          for (std::size_t o = 0; o < pv.outcomes.size(); ++o) {
            if (pv.outcomes[o] == outcome) {
              idx = o;
              break;
            }
          }
          if (idx == pv.outcomes.size()) {
            lex_.fail("unknown outcome '" + std::string(outcome) +
                      "' for parent '" + pv.name + "'");
          }
          row = row * pv.arity() + idx;
        }
        lex_.expect(Tok::kRParen, "')'");
        for (std::uint32_t s = 0; s < child_arity; ++s) {
          if (s > 0) lex_.expect(Tok::kComma, "','");
          cpt.values[row * child_arity + s] =
              parse_float_word("probability value");
        }
        lex_.expect(Tok::kSemi, "';'");
      }
      for (const float v : cpt.values) {
        if (v < 0.0f) lex_.fail("probability table has missing rows");
      }
    }
    lex_.expect(Tok::kRBrace, "'}'");
    net_.cpts.push_back(std::move(cpt));
  }

  std::uint32_t index_or_fail(std::string_view name) {
    for (std::uint32_t i = 0; i < net_.variables.size(); ++i) {
      if (net_.variables[i].name == name) return i;
    }
    lex_.fail("unknown variable '" + std::string(name) + "'");
  }

  Lexer lex_;
  BayesNet net_;
};

}  // namespace

BayesNet read_bif_string(const std::string& text, const std::string& name) {
  BifParser parser(text, name);
  return parser.parse();
}

BayesNet read_bif(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::IoError("cannot open BIF file: " + path);
  // BIF's grammar requires the whole text in memory (§3.2).
  std::ostringstream buf;
  buf << in.rdbuf();
  return read_bif_string(buf.str(), path);
}

std::string write_bif_string(const BayesNet& net) {
  net.validate();
  std::ostringstream os;
  os << "network " << (net.name.empty() ? "unnamed" : net.name) << " {\n}\n";
  for (const auto& v : net.variables) {
    os << "variable " << v.name << " {\n  type discrete [ "
       << v.outcomes.size() << " ] { ";
    for (std::size_t i = 0; i < v.outcomes.size(); ++i) {
      if (i > 0) os << ", ";
      os << v.outcomes[i];
    }
    os << " };\n}\n";
  }
  for (const auto& c : net.cpts) {
    os << "probability ( " << net.variables[c.child].name;
    if (!c.parents.empty()) {
      os << " | ";
      for (std::size_t i = 0; i < c.parents.size(); ++i) {
        if (i > 0) os << ", ";
        os << net.variables[c.parents[i]].name;
      }
    }
    os << " ) {\n  table ";
    for (std::size_t i = 0; i < c.values.size(); ++i) {
      if (i > 0) os << ", ";
      os << c.values[i];
    }
    os << ";\n}\n";
  }
  return os.str();
}

void write_bif(const BayesNet& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot open for writing: " + path);
  out << write_bif_string(net);
  if (!out) throw util::IoError("write failed: " + path);
}

}  // namespace credo::io
