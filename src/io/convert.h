// Format conversion entry points (the migration path the paper implies:
// legacy BIF/XML-BIF content moves to the MTX-belief format once, then all
// later runs stream it).
#pragma once

#include <string>

#include "io/bayes_net.h"

namespace credo::io {

/// Lowers a BayesNet to a FactorGraph and writes it as an MTX-belief pair.
void bayes_net_to_mtx(const BayesNet& net, const std::string& node_path,
                      const std::string& edge_path);

/// Converts a BIF file to an MTX-belief pair.
void convert_bif_to_mtx(const std::string& bif_path,
                        const std::string& node_path,
                        const std::string& edge_path);

/// Converts an XML-BIF file to an MTX-belief pair.
void convert_xmlbif_to_mtx(const std::string& xmlbif_path,
                           const std::string& node_path,
                           const std::string& edge_path);

}  // namespace credo::io
