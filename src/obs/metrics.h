// Process-wide metrics registry (DESIGN.md §5e).
//
// The serve layer, the graph cache and the BP runtime all emit operational
// numbers; before this layer each kept private accounting that could not be
// observed from a live process or reconciled across layers. The registry is
// the one source of truth: monotonic Counters, last-value Gauges and
// fixed-bucket latency/size Histograms, all registered by name (+ optional
// Prometheus-style labels) and scraped as Prometheus text exposition or a
// JSON dump.
//
// Hot-path cost model: every metric is sharded into cache-line-sized cells,
// one per hardware-thread slot, and an increment is a single relaxed atomic
// RMW on the calling thread's own cell — no locks, no shared line
// ping-pong. Aggregation happens only on scrape (sum over shards), so a
// scrape sees a consistent-enough view (each cell individually atomic,
// counters monotonic) without ever stalling writers. Registration takes a
// mutex once; call sites keep the returned reference.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace credo::obs {

/// Prometheus-style labels: ordered key/value pairs, part of the metric's
/// identity ({} and {status="ok"} are distinct time series of one family).
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

/// Shard count: power of two, enough slots that a typical worker team maps
/// one thread per cell.
inline constexpr unsigned kShards = 16;

/// Stable per-thread shard slot (first-come numbering, wrapped).
[[nodiscard]] unsigned shard_index() noexcept;

/// One cache line per cell so concurrent writers never share a line.
struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace detail

/// Monotonic counter. Increments are relaxed adds on the caller's shard.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) noexcept {
    cells_[detail::shard_index()].value.fetch_add(n,
                                                  std::memory_order_relaxed);
  }

  /// Sum over shards (scrape-time only).
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : cells_) {
      total += c.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  detail::CounterCell cells_[detail::kShards];
};

/// Last-value gauge (queue depth, cache size). Set wins; not sharded —
/// gauges are written at queue transitions, not in kernel loops.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept {
    // CAS loop rather than fetch_add(double) so pre-C++20 atomics on odd
    // toolchains are not required.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-only aggregate of a histogram at scrape time.
struct HistogramSnapshot {
  /// Finite upper bounds; the implicit +Inf bucket is counts.back().
  std::vector<double> bounds;
  /// Per-bucket (non-cumulative) counts; size() == bounds.size() + 1.
  std::vector<std::uint64_t> counts;
  double sum = 0.0;
  std::uint64_t count = 0;
  double max = 0.0;  // largest observed value (exact, not bucketed)

  /// Interpolated quantile (q in [0,1]) from the bucket counts: linear
  /// within the owning bucket, clamped by the exact max for the tail. 0 on
  /// an empty histogram.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Bucket-wise difference against an earlier snapshot of the same
  /// histogram (for before/after reporting over a shared registry).
  [[nodiscard]] HistogramSnapshot since(const HistogramSnapshot& earlier)
      const;
};

/// Fixed-bucket histogram. An observation is two relaxed RMWs (bucket count
/// + sum) and a shard-local max update on the caller's shard.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
  };

  std::vector<double> bounds_;  // sorted, strictly increasing, finite
  std::vector<Shard> shards_;
};

/// Default exponential-ish latency buckets in seconds (100µs .. 10s).
[[nodiscard]] std::vector<double> default_latency_buckets();

/// Power-of-two buckets 1..2^(n-1) (iteration counts and similar).
[[nodiscard]] std::vector<double> pow2_buckets(unsigned n);

/// Decade buckets 1, 10, ... 10^(n-1) (frontier/queue sizes).
[[nodiscard]] std::vector<double> decade_buckets(unsigned n);

/// Point-in-time view of a whole registry, keyed by the full series name
/// (`name{label="v",...}`). Supports before/after differencing so several
/// reports can share one process-wide registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter value (0 when the series has never been registered).
  [[nodiscard]] std::uint64_t counter(const std::string& series) const;
  /// Histogram snapshot (empty when absent).
  [[nodiscard]] HistogramSnapshot histogram(const std::string& series) const;

  /// Series-wise difference for counters and histograms; gauges keep their
  /// later value (they are not monotonic).
  [[nodiscard]] MetricsSnapshot since(const MetricsSnapshot& earlier) const;
};

/// The registry. Metrics are created on first use and live as long as the
/// registry; returned references stay valid forever (call sites cache
/// them). Re-registering the same series returns the same instance and
/// checks that the kind (and histogram buckets) agree.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels = {});
  [[nodiscard]] Gauge& gauge(const std::string& name,
                             const std::string& help,
                             const Labels& labels = {});
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     const std::string& help,
                                     std::vector<double> bounds,
                                     const Labels& labels = {});

  /// Prometheus text exposition (families sorted by name, series by label
  /// string, histograms with cumulative `_bucket{le=...}` + `_sum` +
  /// `_count`). Deterministic given the same metric values.
  void write_prometheus(std::ostream& os) const;

  /// The same data as one JSON object (counters/gauges/histograms maps).
  void write_json(std::ostream& os) const;

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// The process-wide registry (what every layer uses unless a caller
  /// injects its own — tests isolate by constructing their own).
  [[nodiscard]] static MetricsRegistry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    std::string label_key;  // rendered `{k="v",...}` or empty
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::map<std::string, Series> series;  // by label_key
  };

  Series& resolve(const std::string& name, const std::string& help,
                  Kind kind, const Labels& labels);

  mutable std::mutex mu_;  // registration + scrape; never on the inc path
  std::map<std::string, Family> families_;
};

}  // namespace credo::obs
