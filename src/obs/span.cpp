#include "obs/span.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <ostream>

namespace credo::obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string seconds(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::uint64_t next_span_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void write_span_json(std::ostream& os, const Span& span) {
  os << "{\"id\":" << span.id                              //
     << ",\"tag\":\"" << json_escape(span.tag) << '"'      //
     << ",\"graph\":\"" << json_escape(span.graph) << '"'  //
     << ",\"engine\":\"" << json_escape(span.engine) << '"'
     << ",\"status\":\"" << json_escape(span.status) << '"'
     << ",\"error\":\"" << json_escape(span.error) << '"'
     << ",\"cache_hit\":" << (span.cache_hit ? "true" : "false")
     << ",\"iterations\":" << span.iterations             //
     << ",\"queue_s\":" << seconds(span.queue_s)          //
     << ",\"parse_s\":" << seconds(span.parse_s)          //
     << ",\"run_s\":" << seconds(span.run_s)              //
     << ",\"unpermute_s\":" << seconds(span.unpermute_s)  //
     << ",\"run_modelled_s\":" << seconds(span.run_modelled_s)
     << ",\"total_wall_s\":" << seconds(span.total_wall_s()) << "}";
}

SpanLog::SpanLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void SpanLog::record(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[next_] = std::move(span);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<Span> SpanLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  // Oldest first: the cursor points at the oldest entry once wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void SpanLog::write_jsonl(std::ostream& os) const {
  for (const auto& span : snapshot()) {
    write_span_json(os, span);
    os << '\n';
  }
}

std::uint64_t SpanLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t SpanLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace credo::obs
