#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/error.h"

namespace credo::obs {
namespace detail {

unsigned shard_index() noexcept {
  static std::atomic<unsigned> next{0};
  static thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot & (kShards - 1);
}

}  // namespace detail

namespace {

/// Shortest round-trip-ish rendering: integers print bare, everything else
/// through %g — deterministic for the golden-output tests.
std::string format_value(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 &&
      v < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

/// `name{le="x",...}` with the le label spliced in front of the existing
/// ones, Prometheus-style (order inside the braces is not significant; a
/// fixed order keeps output deterministic).
std::string bucket_series(const std::string& name,
                          const std::string& label_key,
                          const std::string& le) {
  std::string out = name;
  out += "_bucket{le=\"";
  out += le;
  out.push_back('"');
  if (!label_key.empty()) {
    out.push_back(',');
    out.append(label_key, 1, label_key.size() - 2);  // strip outer {}
  }
  out.push_back('}');
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), shards_(detail::kShards) {
  CREDO_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  CREDO_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                  "histogram bounds must be sorted ascending");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    CREDO_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                    "histogram bounds must be strictly increasing");
  }
  for (auto& shard : shards_) {
    shard.counts = std::vector<std::atomic<std::uint64_t>>(bounds_.size() +
                                                           1);
  }
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // +Inf = size()
  Shard& shard = shards_[detail::shard_index()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> needs C++20 library support; a CAS loop is
  // portable and shard-local, so contention stays within one thread's cell.
  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + v,
                                          std::memory_order_relaxed)) {
  }
  double mx = shard.max.load(std::memory_order_relaxed);
  while (v > mx && !shard.max.compare_exchange_weak(
                       mx, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < shard.counts.size(); ++b) {
      snap.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, shard.max.load(std::memory_order_relaxed));
  }
  for (const auto c : snap.counts) snap.count += c;
  return snap;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t prev = cum;
    cum += counts[b];
    if (static_cast<double>(cum) >= rank && counts[b] > 0) {
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      // The exact max upper-bounds every bucket, not just +Inf: without the
      // clamp an interpolated p99 could exceed the reported max.
      const double hi =
          b < bounds.size() ? std::min(bounds[b], max) : max;
      if (hi <= lo) return hi;
      const double frac = (rank - static_cast<double>(prev)) /
                          static_cast<double>(counts[b]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
  }
  return max;
}

HistogramSnapshot HistogramSnapshot::since(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot out = *this;
  if (earlier.counts.size() != counts.size()) return out;  // shape changed
  for (std::size_t b = 0; b < counts.size(); ++b) {
    out.counts[b] -= std::min(earlier.counts[b], counts[b]);
  }
  out.count = 0;
  for (const auto c : out.counts) out.count += c;
  out.sum -= std::min(earlier.sum, sum);
  // max cannot be differenced; keep the later (upper-bounds the window).
  return out;
}

std::vector<double> default_latency_buckets() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
          5e-2, 0.1,    0.25, 0.5,  1.0,    2.5,  5.0,  10.0};
}

std::vector<double> pow2_buckets(unsigned n) {
  std::vector<double> b;
  b.reserve(n);
  double v = 1.0;
  for (unsigned i = 0; i < n; ++i, v *= 2.0) b.push_back(v);
  return b;
}

std::vector<double> decade_buckets(unsigned n) {
  std::vector<double> b;
  b.reserve(n);
  double v = 1.0;
  for (unsigned i = 0; i < n; ++i, v *= 10.0) b.push_back(v);
  return b;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

std::uint64_t MetricsSnapshot::counter(const std::string& series) const {
  const auto it = counters.find(series);
  return it == counters.end() ? 0 : it->second;
}

HistogramSnapshot MetricsSnapshot::histogram(
    const std::string& series) const {
  const auto it = histograms.find(series);
  return it == histograms.end() ? HistogramSnapshot{} : it->second;
}

MetricsSnapshot MetricsSnapshot::since(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot out = *this;
  for (auto& [name, value] : out.counters) {
    const auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) value -= std::min(it->second, value);
  }
  for (auto& [name, hist] : out.histograms) {
    const auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end()) hist = hist.since(it->second);
  }
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::Series& MetricsRegistry::resolve(const std::string& name,
                                                  const std::string& help,
                                                  Kind kind,
                                                  const Labels& labels) {
  // Caller holds mu_.
  const std::string label_key = render_labels(labels);
  auto [fit, inserted] = families_.try_emplace(name);
  Family& family = fit->second;
  if (inserted) {
    family.kind = kind;
    family.help = help;
  } else {
    CREDO_CHECK_MSG(family.kind == kind,
                    "metric family re-registered as a different kind: " +
                        name);
  }
  auto [sit, series_inserted] = family.series.try_emplace(label_key);
  if (series_inserted) sit->second.label_key = label_key;
  return sit->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = resolve(name, help, Kind::kCounter, labels);
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help,
                              const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = resolve(name, help, Kind::kGauge, labels);
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds,
                                      const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = resolve(name, help, Kind::kHistogram, labels);
  if (!s.histogram) {
    s.histogram = std::make_unique<Histogram>(std::move(bounds));
  } else {
    CREDO_CHECK_MSG(s.histogram->bounds() == bounds,
                    "histogram re-registered with different buckets: " +
                        name);
  }
  return *s.histogram;
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      os << "# HELP " << name << ' ' << family.help << '\n';
    }
    os << "# TYPE " << name << ' '
       << (family.kind == Kind::kCounter
               ? "counter"
               : family.kind == Kind::kGauge ? "gauge" : "histogram")
       << '\n';
    for (const auto& [label_key, series] : family.series) {
      if (series.counter) {
        os << name << label_key << ' '
           << format_value(static_cast<double>(series.counter->value()))
           << '\n';
      } else if (series.gauge) {
        os << name << label_key << ' '
           << format_value(series.gauge->value()) << '\n';
      } else if (series.histogram) {
        const auto snap = series.histogram->snapshot();
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
          cum += snap.counts[b];
          os << bucket_series(name, label_key,
                              format_value(snap.bounds[b]))
             << ' ' << cum << '\n';
        }
        cum += snap.counts.back();
        os << bucket_series(name, label_key, "+Inf") << ' ' << cum << '\n';
        os << name << "_sum" << label_key << ' ' << format_value(snap.sum)
           << '\n';
        os << name << "_count" << label_key << ' ' << snap.count << '\n';
      }
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, family] : families_) {
    if (family.kind != Kind::kCounter) continue;
    for (const auto& [label_key, series] : family.series) {
      if (!series.counter) continue;
      if (!first) os << ',';
      first = false;
      os << '"' << json_escape(name + label_key)
         << "\":" << series.counter->value();
    }
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, family] : families_) {
    if (family.kind != Kind::kGauge) continue;
    for (const auto& [label_key, series] : family.series) {
      if (!series.gauge) continue;
      if (!first) os << ',';
      first = false;
      os << '"' << json_escape(name + label_key)
         << "\":" << format_value(series.gauge->value());
    }
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, family] : families_) {
    if (family.kind != Kind::kHistogram) continue;
    for (const auto& [label_key, series] : family.series) {
      if (!series.histogram) continue;
      if (!first) os << ',';
      first = false;
      const auto snap = series.histogram->snapshot();
      os << '"' << json_escape(name + label_key) << "\":{\"buckets\":[";
      for (std::size_t b = 0; b < snap.counts.size(); ++b) {
        if (b > 0) os << ',';
        os << "{\"le\":"
           << (b < snap.bounds.size()
                   ? format_value(snap.bounds[b])
                   : std::string("\"+Inf\""))
           << ",\"count\":" << snap.counts[b] << '}';
      }
      os << "],\"sum\":" << format_value(snap.sum)
         << ",\"count\":" << snap.count
         << ",\"max\":" << format_value(snap.max) << '}';
    }
  }
  os << "}}";
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, family] : families_) {
    for (const auto& [label_key, series] : family.series) {
      const std::string full = name + label_key;
      if (series.counter) {
        snap.counters[full] = series.counter->value();
      } else if (series.gauge) {
        snap.gauges[full] = series.gauge->value();
      } else if (series.histogram) {
        snap.histograms[full] = series.histogram->snapshot();
      }
    }
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dtor'd
  return *registry;
}

}  // namespace credo::obs
