// Per-request tracing for the serve layer (DESIGN.md §5e).
//
// A Span is the record of one request's life: a process-unique id, the
// graph it named, the engine that ran, the phase timings the request moved
// through (queue wait, graph resolution/parse, the engine run with both
// wall and modelled time, belief un-permutation) and its terminal status.
// The server fills one Span per request — including requests that never
// ran (rejections, queued cancellations) — and hands it to a SpanLog, a
// bounded ring that drops the oldest entries under overload rather than
// growing without bound. `credo serve --spans out.jsonl` dumps the ring as
// JSON Lines, one span per line, ready for jq or a trace viewer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace credo::obs {

/// One request's trace record.
struct Span {
  /// Process-unique, monotonically assigned (see next_span_id()).
  std::uint64_t id = 0;

  /// Client tag echoed from the request (may be empty).
  std::string tag;

  /// What the request ran on: "nodes|edges" for file pairs, "inline" for
  /// preloaded graphs, empty when rejected before resolution.
  std::string graph;

  /// Engine that ran (human-readable name), empty if none was chosen.
  std::string engine;

  /// Terminal status name (util::status_code_name) and error detail.
  std::string status = "error";
  std::string error;

  bool cache_hit = false;

  // Phase timings, wall-clock seconds. Phases a request never entered
  // stay 0 (a rejected request has only queue time).
  double queue_s = 0.0;      // admission to dequeue
  double parse_s = 0.0;      // graph resolution (cache fetch or reorder)
  double run_s = 0.0;        // engine run, host wall time
  double unpermute_s = 0.0;  // belief un-permutation inside Engine::run

  /// Modelled engine-run time (perf cost model) — the deterministic
  /// counterpart of run_s.
  double run_modelled_s = 0.0;

  /// BP iterations the run performed (0 when it never ran).
  std::uint32_t iterations = 0;

  [[nodiscard]] double total_wall_s() const noexcept {
    return queue_s + parse_s + run_s + unpermute_s;
  }
};

/// Next process-unique span id (atomic counter starting at 1).
[[nodiscard]] std::uint64_t next_span_id() noexcept;

/// Writes one span as a single JSON object line.
void write_span_json(std::ostream& os, const Span& span);

/// Bounded, thread-safe ring of completed spans.
class SpanLog {
 public:
  /// Keeps at most `capacity` spans; older entries are dropped (counted).
  explicit SpanLog(std::size_t capacity = 4096);

  void record(Span span);

  /// Copy of the retained spans, oldest first.
  [[nodiscard]] std::vector<Span> snapshot() const;

  /// JSON Lines dump of the retained spans, oldest first.
  void write_jsonl(std::ostream& os) const;

  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Span> ring_;      // circular once full
  std::size_t next_ = 0;        // write cursor
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace credo::obs
