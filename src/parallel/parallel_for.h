// OpenMP-style loop scheduling over a ThreadPool.
//
// Mirrors the schedules the paper tried in §2.4: static (contiguous blocks),
// dynamic (chunked work queue — more overhead, better for BP's tail-heavy
// work distribution) and guided (shrinking chunks). parallel_reduce adds the
// reduction pattern the convergence check uses.
//
// Two dispatch granularities:
//  * chunk-granular (templated, header-only): the body receives a whole
//    [lo, hi) range plus the worker index, so the element loop lives in the
//    caller and inlines — no type-erased call per element. This is what the
//    engines' hot loops use.
//  * element-granular (std::function, in the .cpp): the original per-index
//    API, kept for callers that don't care about dispatch overhead. It is
//    implemented on top of the chunk-granular layer.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "parallel/thread_pool.h"

namespace credo::parallel {

/// Loop schedule, as in OpenMP.
enum class Schedule {
  kStatic,   // contiguous equal blocks, no runtime coordination
  kDynamic,  // fixed-size chunks claimed from a shared counter
  kGuided,   // exponentially shrinking chunks
};

namespace detail {

/// Shared chunk dispenser for dynamic/guided schedules.
struct ChunkCounter {
  std::atomic<std::uint64_t> next;
  std::uint64_t end;
  std::uint64_t min_chunk;
  unsigned team;

  /// Claims the next chunk; returns false when the range is exhausted.
  bool claim(Schedule schedule, std::uint64_t& lo, std::uint64_t& hi) {
    if (schedule == Schedule::kDynamic) {
      lo = next.fetch_add(min_chunk, std::memory_order_relaxed);
      if (lo >= end) return false;
      hi = end < lo + min_chunk ? end : lo + min_chunk;
      return true;
    }
    // Guided: chunk = remaining / team, floored at min_chunk. A CAS loop is
    // needed because the chunk size depends on the current position.
    std::uint64_t cur = next.load(std::memory_order_relaxed);
    for (;;) {
      if (cur >= end) return false;
      const std::uint64_t remaining = end - cur;
      std::uint64_t size = remaining / team;
      if (size < min_chunk) size = min_chunk;
      const std::uint64_t want = end < cur + size ? end : cur + size;
      if (next.compare_exchange_weak(cur, want,
                                     std::memory_order_relaxed)) {
        lo = cur;
        hi = want;
        return true;
      }
    }
  }
};

}  // namespace detail

/// Chunk-granular dispatch: runs body(lo, hi, worker) over disjoint
/// subranges covering [begin, end). The static schedule hands each worker
/// one contiguous block; dynamic/guided hand out chunks from a shared
/// counter. `chunk` is the dynamic chunk size / guided minimum.
template <typename Body>
void parallel_for_chunked(ThreadPool& pool, std::uint64_t begin,
                          std::uint64_t end, Schedule schedule,
                          std::uint64_t chunk, Body&& body) {
  if (begin >= end) return;
  const unsigned team = pool.size();
  if (schedule == Schedule::kStatic) {
    const std::uint64_t span = end - begin;
    pool.run_team([&](unsigned w) {
      const std::uint64_t lo = begin + span * w / team;
      const std::uint64_t hi = begin + span * (w + 1) / team;
      if (lo < hi) body(lo, hi, w);
    });
    return;
  }
  detail::ChunkCounter counter{std::atomic<std::uint64_t>(begin), end,
                               chunk > 0 ? chunk : 1, team};
  pool.run_team([&](unsigned w) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    while (counter.claim(schedule, lo, hi)) body(lo, hi, w);
  });
}

/// Chunk-granular reduction: body(lo, hi, worker, partial) accumulates into
/// one cache-line-padded double per worker; the partials are summed in
/// worker order, so for a fixed schedule-to-worker chunk assignment the
/// result is reproducible (and exact whenever the addends are exactly
/// representable).
template <typename Body>
[[nodiscard]] double parallel_reduce_chunked(ThreadPool& pool,
                                             std::uint64_t begin,
                                             std::uint64_t end,
                                             Schedule schedule,
                                             std::uint64_t chunk,
                                             Body&& body) {
  struct alignas(64) Padded {
    double v = 0.0;
  };
  std::vector<Padded> partials(pool.size());
  parallel_for_chunked(pool, begin, end, schedule, chunk,
                       [&](std::uint64_t lo, std::uint64_t hi, unsigned w) {
                         body(lo, hi, w, partials[w].v);
                       });
  double sum = 0.0;
  for (const auto& p : partials) sum += p.v;
  return sum;
}

/// Runs body(i) for i in [begin, end) across the pool's team.
/// `chunk` applies to dynamic/guided (minimum chunk for guided).
void parallel_for(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  Schedule schedule, std::uint64_t chunk,
                  const std::function<void(std::uint64_t)>& body);

/// Runs body(i, partial) with one `partial` accumulator per worker, then
/// returns the sum of partials — the reduction idiom of Algorithm 1's
/// convergence sum.
[[nodiscard]] double parallel_reduce(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    Schedule schedule, std::uint64_t chunk,
    const std::function<void(std::uint64_t, double&)>& body);

/// Like parallel_for, but the body also receives the worker index — used
/// for lock-free per-worker sinks (metering, local queues).
void parallel_for_indexed(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    Schedule schedule, std::uint64_t chunk,
    const std::function<void(std::uint64_t, unsigned)>& body);

/// Worker-indexed reduction.
[[nodiscard]] double parallel_reduce_indexed(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    Schedule schedule, std::uint64_t chunk,
    const std::function<void(std::uint64_t, unsigned, double&)>& body);

}  // namespace credo::parallel
