// OpenMP-style loop scheduling over a ThreadPool.
//
// Mirrors the schedules the paper tried in §2.4: static (contiguous blocks),
// dynamic (chunked work queue — more overhead, better for BP's tail-heavy
// work distribution) and guided (shrinking chunks). parallel_reduce adds the
// reduction pattern the convergence check uses.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/thread_pool.h"

namespace credo::parallel {

/// Loop schedule, as in OpenMP.
enum class Schedule {
  kStatic,   // contiguous equal blocks, no runtime coordination
  kDynamic,  // fixed-size chunks claimed from a shared counter
  kGuided,   // exponentially shrinking chunks
};

/// Runs body(i) for i in [begin, end) across the pool's team.
/// `chunk` applies to dynamic/guided (minimum chunk for guided).
void parallel_for(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  Schedule schedule, std::uint64_t chunk,
                  const std::function<void(std::uint64_t)>& body);

/// Runs body(i, partial) with one `partial` accumulator per worker, then
/// returns the sum of partials — the reduction idiom of Algorithm 1's
/// convergence sum.
[[nodiscard]] double parallel_reduce(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    Schedule schedule, std::uint64_t chunk,
    const std::function<void(std::uint64_t, double&)>& body);

/// Like parallel_for, but the body also receives the worker index — used
/// for lock-free per-worker sinks (metering, local queues).
void parallel_for_indexed(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    Schedule schedule, std::uint64_t chunk,
    const std::function<void(std::uint64_t, unsigned)>& body);

/// Worker-indexed reduction.
[[nodiscard]] double parallel_reduce_indexed(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    Schedule schedule, std::uint64_t chunk,
    const std::function<void(std::uint64_t, unsigned, double&)>& body);

}  // namespace credo::parallel
