// Element-granular (std::function) entry points, implemented on top of the
// chunk-granular templates in the header. Each body call still pays one
// type-erased dispatch per element — callers on a hot path should use
// parallel_for_chunked / parallel_reduce_chunked instead.
#include "parallel/parallel_for.h"

namespace credo::parallel {

void parallel_for(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  Schedule schedule, std::uint64_t chunk,
                  const std::function<void(std::uint64_t)>& body) {
  parallel_for_chunked(pool, begin, end, schedule, chunk,
                       [&](std::uint64_t lo, std::uint64_t hi, unsigned) {
                         for (std::uint64_t i = lo; i < hi; ++i) body(i);
                       });
}

double parallel_reduce(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    Schedule schedule, std::uint64_t chunk,
    const std::function<void(std::uint64_t, double&)>& body) {
  return parallel_reduce_chunked(
      pool, begin, end, schedule, chunk,
      [&](std::uint64_t lo, std::uint64_t hi, unsigned, double& partial) {
        for (std::uint64_t i = lo; i < hi; ++i) body(i, partial);
      });
}

void parallel_for_indexed(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    Schedule schedule, std::uint64_t chunk,
    const std::function<void(std::uint64_t, unsigned)>& body) {
  parallel_for_chunked(pool, begin, end, schedule, chunk,
                       [&](std::uint64_t lo, std::uint64_t hi, unsigned w) {
                         for (std::uint64_t i = lo; i < hi; ++i) body(i, w);
                       });
}

double parallel_reduce_indexed(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    Schedule schedule, std::uint64_t chunk,
    const std::function<void(std::uint64_t, unsigned, double&)>& body) {
  return parallel_reduce_chunked(
      pool, begin, end, schedule, chunk,
      [&](std::uint64_t lo, std::uint64_t hi, unsigned w, double& partial) {
        for (std::uint64_t i = lo; i < hi; ++i) body(i, w, partial);
      });
}

}  // namespace credo::parallel
