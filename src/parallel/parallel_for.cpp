#include "parallel/parallel_for.h"

#include <algorithm>

#include "util/error.h"

namespace credo::parallel {
namespace {

/// Shared chunk dispenser for dynamic/guided schedules.
struct ChunkCounter {
  std::atomic<std::uint64_t> next;
  std::uint64_t end;
  std::uint64_t min_chunk;
  unsigned team;

  /// Claims the next chunk; returns false when the range is exhausted.
  bool claim(Schedule schedule, std::uint64_t& lo, std::uint64_t& hi) {
    if (schedule == Schedule::kDynamic) {
      lo = next.fetch_add(min_chunk, std::memory_order_relaxed);
      if (lo >= end) return false;
      hi = std::min(end, lo + min_chunk);
      return true;
    }
    // Guided: chunk = remaining / team, floored at min_chunk. A CAS loop is
    // needed because the chunk size depends on the current position.
    std::uint64_t cur = next.load(std::memory_order_relaxed);
    for (;;) {
      if (cur >= end) return false;
      const std::uint64_t remaining = end - cur;
      const std::uint64_t size =
          std::max<std::uint64_t>(min_chunk, remaining / team);
      const std::uint64_t want = std::min(end, cur + size);
      if (next.compare_exchange_weak(cur, want,
                                     std::memory_order_relaxed)) {
        lo = cur;
        hi = want;
        return true;
      }
    }
  }
};

void dispatch(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
              Schedule schedule, std::uint64_t chunk,
              const std::function<void(std::uint64_t, unsigned)>& body) {
  if (begin >= end) return;
  const unsigned team = pool.size();
  if (schedule == Schedule::kStatic) {
    const std::uint64_t span = end - begin;
    pool.run_team([&](unsigned w) {
      const std::uint64_t lo = begin + span * w / team;
      const std::uint64_t hi = begin + span * (w + 1) / team;
      for (std::uint64_t i = lo; i < hi; ++i) body(i, w);
    });
    return;
  }
  ChunkCounter counter{std::atomic<std::uint64_t>(begin), end,
                       std::max<std::uint64_t>(1, chunk), team};
  pool.run_team([&](unsigned w) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    while (counter.claim(schedule, lo, hi)) {
      for (std::uint64_t i = lo; i < hi; ++i) body(i, w);
    }
  });
}

}  // namespace

void parallel_for(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  Schedule schedule, std::uint64_t chunk,
                  const std::function<void(std::uint64_t)>& body) {
  dispatch(pool, begin, end, schedule, chunk,
           [&](std::uint64_t i, unsigned) { body(i); });
}

double parallel_reduce(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    Schedule schedule, std::uint64_t chunk,
    const std::function<void(std::uint64_t, double&)>& body) {
  return parallel_reduce_indexed(
      pool, begin, end, schedule, chunk,
      [&](std::uint64_t i, unsigned, double& p) { body(i, p); });
}

void parallel_for_indexed(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    Schedule schedule, std::uint64_t chunk,
    const std::function<void(std::uint64_t, unsigned)>& body) {
  dispatch(pool, begin, end, schedule, chunk, body);
}

double parallel_reduce_indexed(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    Schedule schedule, std::uint64_t chunk,
    const std::function<void(std::uint64_t, unsigned, double&)>& body) {
  struct alignas(64) Padded {
    double v = 0.0;
  };
  std::vector<Padded> partials(pool.size());
  dispatch(pool, begin, end, schedule, chunk,
           [&](std::uint64_t i, unsigned w) { body(i, w, partials[w].v); });
  double sum = 0.0;
  for (const auto& p : partials) sum += p.v;
  return sum;
}

}  // namespace credo::parallel
