// Per-worker deterministic random streams for concurrent schedulers.
//
// The relaxed priority schedulers (bp/runtime/mq_schedule.h) randomize heap
// selection on every push and pop. Sharing one Prng across a team would
// serialize the hot path on its state; giving each worker a thread_local
// would make runs irreproducible (stream assignment would depend on which
// OS thread picked up which worker index first). Instead each worker index
// owns a cache-line-padded Prng seeded by splitmix64(seed ^ index), so the
// stream a worker sees is a pure function of (seed, worker) — a
// single-worker run replays exactly, and multi-worker runs stay free of
// false sharing.
#pragma once

#include <cstdint>
#include <vector>

#include "util/prng.h"

namespace credo::parallel {

/// One decorrelated Prng per worker slot, padded so neighboring workers'
/// generator state never shares a cache line.
class WorkerRngs {
 public:
  WorkerRngs(std::uint64_t seed, unsigned workers) {
    slots_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      slots_.emplace_back(util::splitmix64(seed ^ (0x9e3779b97f4a7c15ULL *
                                                   (w + 1))));
    }
  }

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(slots_.size());
  }

  [[nodiscard]] util::Prng& at(unsigned worker) noexcept {
    return slots_[worker].rng;
  }

 private:
  struct alignas(64) Slot {
    util::Prng rng;
    explicit Slot(std::uint64_t seed) noexcept : rng(seed) {}
  };
  std::vector<Slot> slots_;
};

}  // namespace credo::parallel
