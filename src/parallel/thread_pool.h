// Fixed-size worker pool — the substrate under the CPU-parallel BP engine.
//
// Deliberately fork/join shaped (like an OpenMP parallel region) rather than
// a persistent task graph: the paper's §2.4 finding is precisely that
// region-granular parallelism cannot amortize its overheads on BP's sub-
// millisecond loops, and the engine meters one parallel_region event per
// dispatch so the cost model can reproduce that result.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace credo::parallel {

/// A pool of `threads` workers executing range tasks. Thread-safe for one
/// dispatcher at a time (matching OpenMP's single-team model).
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). The calling thread does not count as
  /// a worker; dispatch blocks until the team finishes.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs `fn(worker_index)` on every worker and waits for all of them —
  /// one fork/join region. `fn` must be safe to call concurrently.
  void run_team(const std::function<void(unsigned)>& fn);

 private:
  void worker_loop(unsigned index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* task_ = nullptr;
  std::uint64_t epoch_ = 0;  // increments per region; workers wake on change
  unsigned remaining_ = 0;
  bool stop_ = false;
};

}  // namespace credo::parallel
