#include "parallel/thread_pool.h"

#include "util/error.h"

namespace credo::parallel {

ThreadPool::ThreadPool(unsigned threads) {
  CREDO_CHECK_MSG(threads >= 1, "pool needs at least one worker");
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    ++epoch_;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_team(const std::function<void(unsigned)>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  task_ = &fn;
  remaining_ = static_cast<unsigned>(workers_.size());
  ++epoch_;
  cv_start_.notify_all();
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  task_ = nullptr;
}

void ThreadPool::worker_loop(unsigned index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return epoch_ != seen; });
      seen = epoch_;
      if (stop_) return;
      task = task_;
    }
    if (task != nullptr) {
      (*task)(index);
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace credo::parallel
