// Gaussian naive Bayes. The paper notes its independence assumption is
// violated by the interrelated graph-metadata features (§4.3), which is
// exactly what the comparison bench shows.
#pragma once

#include "ml/classifier.h"

namespace credo::ml {

class GaussianNaiveBayes final : public Classifier {
 public:
  [[nodiscard]] std::string name() const override {
    return "Gaussian Naive Bayes";
  }
  void fit(const Dataset& d) override;
  [[nodiscard]] int predict(const std::vector<double>& row) const override;

 private:
  // Per class: log-prior plus per-feature mean/variance.
  std::vector<double> log_prior_;
  std::vector<std::vector<double>> mean_;
  std::vector<std::vector<double>> var_;
};

}  // namespace credo::ml
