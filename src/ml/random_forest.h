// Random forest: bagged CART trees with per-split feature subsampling.
// The paper's tuned forest (max-depth 6, 14 estimators) reaches 94.7% F1
// (§4.3) and its averaged impurity importances are Fig. 5.
#pragma once

#include "ml/decision_tree.h"

namespace credo::ml {

struct RandomForestParams {
  std::size_t n_trees = 14;     // the paper's tuned estimator count
  std::uint32_t max_depth = 6;  // the paper's tuned depth
  /// Features considered per split; 0 = floor(sqrt(n_features)).
  std::size_t max_features = 0;
  std::uint64_t seed = 7;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(RandomForestParams params = {});

  [[nodiscard]] std::string name() const override { return "Random Forest"; }
  void fit(const Dataset& d) override;
  [[nodiscard]] int predict(const std::vector<double>& row) const override;

  /// Mean impurity-decrease importances across trees, normalized (Fig. 5).
  [[nodiscard]] std::vector<double> feature_importances() const;

  /// Serializes the fitted forest to text (used by Dispatcher::save).
  [[nodiscard]] std::string serialize() const;

  /// Reconstructs a forest from serialize() output. Throws
  /// util::InvalidArgument on malformed input.
  static RandomForest deserialize(const std::string& text);

 private:
  RandomForestParams params_;
  std::vector<DecisionTree> trees_;
  int n_classes_ = 0;
};

}  // namespace credo::ml
