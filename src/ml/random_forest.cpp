#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/error.h"

namespace credo::ml {

RandomForest::RandomForest(RandomForestParams params)
    : params_(std::move(params)) {
  CREDO_CHECK_MSG(params_.n_trees >= 1, "forest needs at least one tree");
}

void RandomForest::fit(const Dataset& d) {
  CREDO_CHECK_MSG(d.size() > 0, "cannot fit a forest on an empty dataset");
  trees_.clear();
  n_classes_ = d.num_classes();
  util::Prng rng(params_.seed);
  const std::size_t mf =
      params_.max_features > 0
          ? params_.max_features
          : static_cast<std::size_t>(
                std::max(1.0, std::floor(std::sqrt(
                                  static_cast<double>(d.features())))));
  for (std::size_t t = 0; t < params_.n_trees; ++t) {
    DecisionTreeParams tp;
    tp.max_depth = params_.max_depth;
    tp.max_features = mf;
    tp.seed = rng();
    DecisionTree tree(tp);
    // Bootstrap sample expressed as per-row multiplicities.
    std::vector<std::uint32_t> weights(d.size(), 0);
    for (std::size_t i = 0; i < d.size(); ++i) {
      ++weights[rng.uniform(d.size())];
    }
    tree.fit_weighted(d, weights);
    trees_.push_back(std::move(tree));
  }
}

int RandomForest::predict(const std::vector<double>& row) const {
  CREDO_CHECK_MSG(!trees_.empty(), "predict before fit");
  std::vector<std::size_t> votes(static_cast<std::size_t>(n_classes_), 0);
  for (const auto& t : trees_) {
    ++votes[static_cast<std::size_t>(t.predict(row))];
  }
  return static_cast<int>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

std::vector<double> RandomForest::feature_importances() const {
  CREDO_CHECK_MSG(!trees_.empty(), "importances before fit");
  std::vector<double> sum;
  for (const auto& t : trees_) {
    const auto imp = t.feature_importances();
    if (sum.empty()) sum.assign(imp.size(), 0.0);
    for (std::size_t j = 0; j < imp.size(); ++j) sum[j] += imp[j];
  }
  const double total = std::accumulate(sum.begin(), sum.end(), 0.0);
  if (total > 0) {
    for (auto& v : sum) v /= total;
  }
  return sum;
}

std::string RandomForest::serialize() const {
  CREDO_CHECK_MSG(!trees_.empty(), "serialize before fit");
  std::ostringstream os;
  os << "forest " << trees_.size() << ' ' << n_classes_ << '\n';
  for (const auto& t : trees_) os << t.serialize();
  return os.str();
}

RandomForest RandomForest::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  std::size_t count = 0;
  int classes = 0;
  if (!(is >> tag >> count >> classes) || tag != "forest" || count == 0) {
    throw util::InvalidArgument("malformed serialized random forest");
  }
  std::string line;
  std::getline(is, line);  // end of header line
  RandomForest forest;
  forest.n_classes_ = classes;
  // Split the remaining text at each "tree" header.
  std::string rest((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  for (std::size_t t = 0; t < count; ++t) {
    const std::size_t next = rest.find("tree ", pos + 1);
    const std::string chunk = rest.substr(
        pos, next == std::string::npos ? std::string::npos : next - pos);
    forest.trees_.push_back(DecisionTree::deserialize(chunk));
    if (next == std::string::npos && t + 1 < count) {
      throw util::InvalidArgument("serialized forest has too few trees");
    }
    pos = next;
  }
  return forest;
}

}  // namespace credo::ml
