// Principal component analysis (power iteration with deflation) — used by
// the ablation reproducing the paper's observation that PCA preprocessing
// *worsens* the classifiers on these features (§3.7, §4.3).
#pragma once

#include <cstdint>

#include "ml/dataset.h"

namespace credo::ml {

class Pca {
 public:
  /// Fits `components` principal directions on (mean-centered,
  /// unit-scaled) features of `d`. components must be <= feature count.
  void fit(const Dataset& d, std::size_t components);

  /// Projects a dataset onto the fitted components (labels carried over).
  [[nodiscard]] Dataset transform(const Dataset& d) const;

  /// Variance captured by each component, descending.
  [[nodiscard]] const std::vector<double>& explained_variance() const {
    return eigenvalues_;
  }

 private:
  [[nodiscard]] std::vector<double> standardize(
      const std::vector<double>& row) const;

  std::vector<double> mean_;
  std::vector<double> scale_;
  std::vector<std::vector<double>> components_;  // each of length f
  std::vector<double> eigenvalues_;
};

}  // namespace credo::ml
