#include "ml/dataset.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace credo::ml {
namespace {

/// Indices grouped by class, each group shuffled.
std::vector<std::vector<std::size_t>> by_class(const Dataset& d,
                                               util::Prng& rng) {
  std::vector<std::vector<std::size_t>> groups(
      static_cast<std::size_t>(d.num_classes()));
  for (std::size_t i = 0; i < d.size(); ++i) {
    groups[static_cast<std::size_t>(d.y[i])].push_back(i);
  }
  for (auto& g : groups) {
    for (std::size_t i = g.size(); i > 1; --i) {
      std::swap(g[i - 1], g[rng.uniform(i)]);
    }
  }
  return groups;
}

}  // namespace

int Dataset::num_classes() const noexcept {
  int m = 0;
  for (const int label : y) m = std::max(m, label + 1);
  return m;
}

void Dataset::add(std::vector<double> row, int label) {
  CREDO_CHECK_MSG(x.empty() || row.size() == x.front().size(),
                  "inconsistent feature width");
  CREDO_CHECK_MSG(label >= 0, "labels must be non-negative");
  x.push_back(std::move(row));
  y.push_back(label);
}

Dataset Dataset::subset(const std::vector<std::size_t>& idx) const {
  Dataset out;
  out.x.reserve(idx.size());
  out.y.reserve(idx.size());
  for (const auto i : idx) {
    out.x.push_back(x[i]);
    out.y.push_back(y[i]);
  }
  return out;
}

Split stratified_split(const Dataset& d, double train_fraction,
                       util::Prng& rng) {
  CREDO_CHECK_MSG(train_fraction > 0.0 && train_fraction < 1.0,
                  "train_fraction must be in (0,1)");
  std::vector<std::size_t> train_idx;
  std::vector<std::size_t> test_idx;
  for (const auto& g : by_class(d, rng)) {
    const auto cut = static_cast<std::size_t>(
        std::lround(train_fraction * static_cast<double>(g.size())));
    for (std::size_t i = 0; i < g.size(); ++i) {
      (i < cut ? train_idx : test_idx).push_back(g[i]);
    }
  }
  return {d.subset(train_idx), d.subset(test_idx)};
}

Dataset balanced_sample(const Dataset& d, std::size_t count,
                        util::Prng& rng) {
  auto groups = by_class(d, rng);
  const std::size_t classes = groups.size();
  CREDO_CHECK_MSG(classes >= 1, "dataset has no labels");
  std::vector<std::size_t> idx;
  const std::size_t per_class =
      std::max<std::size_t>(1, count / classes);
  for (auto& g : groups) {
    const std::size_t take = std::min(per_class, g.size());
    idx.insert(idx.end(), g.begin(), g.begin() + take);
  }
  // Shuffle the union so class runs do not bias downstream splits.
  for (std::size_t i = idx.size(); i > 1; --i) {
    std::swap(idx[i - 1], idx[rng.uniform(i)]);
  }
  return d.subset(idx);
}

std::vector<Dataset> stratified_folds(const Dataset& d, std::size_t k,
                                      util::Prng& rng) {
  CREDO_CHECK_MSG(k >= 2, "need at least two folds");
  std::vector<std::vector<std::size_t>> fold_idx(k);
  for (const auto& g : by_class(d, rng)) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      fold_idx[i % k].push_back(g[i]);
    }
  }
  std::vector<Dataset> folds;
  folds.reserve(k);
  for (const auto& idx : fold_idx) folds.push_back(d.subset(idx));
  return folds;
}

void MinMaxScaler::fit(const Dataset& d) {
  CREDO_CHECK_MSG(!d.x.empty(), "cannot fit scaler on empty dataset");
  const std::size_t f = d.features();
  lo_.assign(f, std::numeric_limits<double>::infinity());
  hi_.assign(f, -std::numeric_limits<double>::infinity());
  for (const auto& row : d.x) {
    for (std::size_t j = 0; j < f; ++j) {
      lo_[j] = std::min(lo_[j], row[j]);
      hi_[j] = std::max(hi_[j], row[j]);
    }
  }
}

std::vector<double> MinMaxScaler::transform_row(
    const std::vector<double>& row) const {
  CREDO_CHECK_MSG(row.size() == lo_.size(), "feature width mismatch");
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    const double span = hi_[j] - lo_[j];
    out[j] = span > 0 ? (row[j] - lo_[j]) / span : 0.0;
    out[j] = std::clamp(out[j], 0.0, 1.0);
  }
  return out;
}

Dataset MinMaxScaler::transform(const Dataset& d) const {
  Dataset out;
  out.y = d.y;
  out.x.reserve(d.size());
  for (const auto& row : d.x) out.x.push_back(transform_row(row));
  return out;
}

std::vector<std::vector<double>> correlation_with_label(const Dataset& d) {
  const std::size_t f = d.features();
  const std::size_t cols = f + 1;  // + label
  const auto n = static_cast<double>(d.size());
  CREDO_CHECK_MSG(d.size() >= 2, "need at least two rows for correlation");

  auto value = [&](std::size_t row, std::size_t col) {
    return col < f ? d.x[row][col] : static_cast<double>(d.y[row]);
  };
  std::vector<double> mean(cols, 0.0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t c = 0; c < cols; ++c) mean[c] += value(i, c);
  }
  for (auto& m : mean) m /= n;

  std::vector<std::vector<double>> cov(cols, std::vector<double>(cols, 0.0));
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t a = 0; a < cols; ++a) {
      const double da = value(i, a) - mean[a];
      for (std::size_t b = a; b < cols; ++b) {
        cov[a][b] += da * (value(i, b) - mean[b]);
      }
    }
  }
  std::vector<double> sd(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    sd[c] = std::sqrt(cov[c][c] / n);
  }
  std::vector<std::vector<double>> corr(cols,
                                        std::vector<double>(cols, 0.0));
  for (std::size_t a = 0; a < cols; ++a) {
    for (std::size_t b = a; b < cols; ++b) {
      const double denom = sd[a] * sd[b] * n;
      const double r = denom > 0 ? cov[a][b] / denom : (a == b ? 1.0 : 0.0);
      corr[a][b] = r;
      corr[b][a] = r;
    }
  }
  return corr;
}

}  // namespace credo::ml
