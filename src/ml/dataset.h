// Tabular dataset handling for the §3.7 classifier work: rows of continuous
// features with integer class labels, stratified splitting, k-fold cross
// validation, min-max normalization and feature covariance (Fig. 4).
#pragma once

#include <cstdint>
#include <vector>

#include "util/prng.h"

namespace credo::ml {

/// Feature matrix + labels. Rows are observations.
struct Dataset {
  std::vector<std::vector<double>> x;
  std::vector<int> y;

  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
  [[nodiscard]] std::size_t features() const noexcept {
    return x.empty() ? 0 : x.front().size();
  }
  /// Number of classes = max label + 1.
  [[nodiscard]] int num_classes() const noexcept;

  void add(std::vector<double> row, int label);

  /// Rows whose indices are in `idx`.
  [[nodiscard]] Dataset subset(const std::vector<std::size_t>& idx) const;
};

/// A train/test split.
struct Split {
  Dataset train;
  Dataset test;
};

/// Shuffles and splits with per-class proportions preserved
/// (train_fraction in (0,1); the paper uses 0.6).
[[nodiscard]] Split stratified_split(const Dataset& d, double train_fraction,
                                     util::Prng& rng);

/// Draws a class-balanced random sample of `count` rows (the paper's
/// "well-balanced samples"); count is capped by availability.
[[nodiscard]] Dataset balanced_sample(const Dataset& d, std::size_t count,
                                      util::Prng& rng);

/// K disjoint folds for cross-validation, stratified by class.
[[nodiscard]] std::vector<Dataset> stratified_folds(const Dataset& d,
                                                    std::size_t k,
                                                    util::Prng& rng);

/// Per-feature min-max scaling fit on one dataset and applied to others.
class MinMaxScaler {
 public:
  void fit(const Dataset& d);
  [[nodiscard]] Dataset transform(const Dataset& d) const;
  [[nodiscard]] std::vector<double> transform_row(
      const std::vector<double>& row) const;

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

/// Pearson correlation matrix over features and the label (last row/col) —
/// the quantity behind the paper's Fig. 4 covariance analysis.
[[nodiscard]] std::vector<std::vector<double>> correlation_with_label(
    const Dataset& d);

}  // namespace credo::ml
