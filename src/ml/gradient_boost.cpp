#include "ml/gradient_boost.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace credo::ml {
namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

GradientBoost::GradientBoost(GradientBoostParams params)
    : params_(std::move(params)) {
  CREDO_CHECK_MSG(params_.n_rounds >= 1 && params_.learning_rate > 0,
                  "bad boosting parameters");
}

double GradientBoost::RegTree::eval(const std::vector<double>& row) const {
  std::int32_t cur = 0;
  for (;;) {
    const RegNode& n = nodes[static_cast<std::size_t>(cur)];
    if (n.is_leaf()) return n.value;
    cur = row[static_cast<std::size_t>(n.feature)] < n.threshold ? n.left
                                                                 : n.right;
  }
}

std::int32_t GradientBoost::build(RegTree& tree, const Dataset& d,
                                  const std::vector<double>& residual,
                                  std::vector<std::size_t>& rows,
                                  std::uint32_t depth) const {
  double sum = 0.0;
  for (const auto i : rows) sum += residual[i];
  const double mean = sum / static_cast<double>(rows.size());

  RegNode node;
  node.value = mean;
  const auto id = static_cast<std::int32_t>(tree.nodes.size());
  tree.nodes.push_back(node);
  if (depth >= params_.max_depth || rows.size() < 4) return id;

  // Variance-reduction split search.
  double node_sse = 0.0;
  for (const auto i : rows) {
    const double delta = residual[i] - mean;
    node_sse += delta * delta;
  }
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;
  std::vector<std::size_t> sorted = rows;
  for (std::size_t f = 0; f < d.features(); ++f) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) {
                return d.x[a][f] < d.x[b][f];
              });
    double lsum = 0.0;
    double lsq = 0.0;
    double rsum = sum;
    double rsq = 0.0;
    for (const auto i : rows) rsq += residual[i] * residual[i];
    for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
      const std::size_t i = sorted[k];
      lsum += residual[i];
      lsq += residual[i] * residual[i];
      rsum -= residual[i];
      rsq -= residual[i] * residual[i];
      const double v = d.x[i][f];
      const double vn = d.x[sorted[k + 1]][f];
      if (vn <= v) continue;
      const auto ln = static_cast<double>(k + 1);
      const auto rn = static_cast<double>(sorted.size() - k - 1);
      const double sse =
          (lsq - lsum * lsum / ln) + (rsq - rsum * rsum / rn);
      const double gain = node_sse - sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (v + vn);
      }
    }
  }
  if (best_feature < 0) return id;

  std::vector<std::size_t> lrows;
  std::vector<std::size_t> rrows;
  for (const auto i : rows) {
    (d.x[i][static_cast<std::size_t>(best_feature)] < best_threshold
         ? lrows
         : rrows)
        .push_back(i);
  }
  if (lrows.empty() || rrows.empty()) return id;
  tree.nodes[static_cast<std::size_t>(id)].feature = best_feature;
  tree.nodes[static_cast<std::size_t>(id)].threshold = best_threshold;
  const auto l = build(tree, d, residual, lrows, depth + 1);
  const auto r = build(tree, d, residual, rrows, depth + 1);
  tree.nodes[static_cast<std::size_t>(id)].left = l;
  tree.nodes[static_cast<std::size_t>(id)].right = r;
  return id;
}

GradientBoost::RegTree GradientBoost::fit_tree(
    const Dataset& d, const std::vector<double>& residual,
    std::uint32_t /*depth_limit*/) const {
  RegTree tree;
  std::vector<std::size_t> rows(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) rows[i] = i;
  build(tree, d, residual, rows, 0);
  return tree;
}

void GradientBoost::fit(const Dataset& d) {
  CREDO_CHECK_MSG(d.size() > 0, "cannot fit boosting on an empty dataset");
  if (d.num_classes() > 2) {
    throw util::InvalidArgument("GradientBoost supports binary labels only");
  }
  trees_.clear();
  double pos = 0.0;
  for (const auto label : d.y) pos += label;
  const double p =
      std::clamp(pos / static_cast<double>(d.size()), 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(p / (1.0 - p));

  std::vector<double> score(d.size(), base_score_);
  std::vector<double> residual(d.size());
  for (std::size_t round = 0; round < params_.n_rounds; ++round) {
    for (std::size_t i = 0; i < d.size(); ++i) {
      residual[i] = static_cast<double>(d.y[i]) - sigmoid(score[i]);
    }
    RegTree tree = fit_tree(d, residual, params_.max_depth);
    for (std::size_t i = 0; i < d.size(); ++i) {
      score[i] += params_.learning_rate * tree.eval(d.x[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

int GradientBoost::predict(const std::vector<double>& row) const {
  CREDO_CHECK_MSG(!trees_.empty(), "predict before fit");
  double score = base_score_;
  for (const auto& t : trees_) {
    score += params_.learning_rate * t.eval(row);
  }
  return score >= 0.0 ? 1 : 0;
}

}  // namespace credo::ml
