// CART decision tree (gini impurity, axis-aligned splits) — the paper's
// depth-2 tuned tree scores 89.5% F1 (§4.3) and its structure is Fig. 6.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace credo::ml {

/// Tree hyperparameters.
struct DecisionTreeParams {
  std::uint32_t max_depth = 2;        // the paper's tuned depth
  std::size_t min_samples_split = 2;
  /// Consider only this many randomly chosen features per split
  /// (0 = all; random forests pass sqrt(f)).
  std::size_t max_features = 0;
  std::uint64_t seed = 1;
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeParams params = {});

  [[nodiscard]] std::string name() const override { return "Decision Tree"; }
  void fit(const Dataset& d) override;
  [[nodiscard]] int predict(const std::vector<double>& row) const override;

  /// Impurity-decrease feature importances, normalized to sum 1
  /// (Fig. 5's per-feature contributions come from averaging these across
  /// a forest).
  [[nodiscard]] std::vector<double> feature_importances() const;

  /// Renders the fitted tree as indented text (Fig. 6's structure).
  /// `feature_names` must cover the training feature count.
  [[nodiscard]] std::string to_text(
      const std::vector<std::string>& feature_names) const;

  /// Fits on a bootstrap-weighted dataset (used by the forest): row i
  /// participates weight[i] times.
  void fit_weighted(const Dataset& d,
                    const std::vector<std::uint32_t>& weights);

  /// Serializes the fitted tree to a line-oriented text form (stable across
  /// versions of this library; used by Dispatcher::save).
  [[nodiscard]] std::string serialize() const;

  /// Reconstructs a tree from serialize() output. Throws
  /// util::InvalidArgument on malformed input.
  static DecisionTree deserialize(const std::string& text);

 private:
  struct Node {
    // Internal nodes: split on feature < threshold -> left else right.
    int feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    // Leaves: majority label.
    int label = 0;
    double impurity = 0.0;
    double samples = 0.0;

    [[nodiscard]] bool is_leaf() const noexcept { return feature < 0; }
  };

  std::int32_t build(const Dataset& d,
                     const std::vector<std::uint32_t>& weights,
                     std::vector<std::size_t>& rows, std::uint32_t depth,
                     util::Prng& rng);

  DecisionTreeParams params_;
  std::vector<Node> nodes_;
  std::size_t n_features_ = 0;
  int n_classes_ = 0;
};

}  // namespace credo::ml
