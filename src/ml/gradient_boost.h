// Gradient-boosted decision trees for binary classification (logistic
// loss, shallow CART regressors on the gradient). The paper notes boosting
// "needs hundreds of thousands of training data to be useful" for this
// task — reproduced by its behaviour on the small dataset in Fig. 10.
#pragma once

#include <cstdint>

#include "ml/classifier.h"

namespace credo::ml {

struct GradientBoostParams {
  std::size_t n_rounds = 50;
  std::uint32_t max_depth = 3;
  double learning_rate = 0.1;
};

class GradientBoost final : public Classifier {
 public:
  explicit GradientBoost(GradientBoostParams params = {});

  [[nodiscard]] std::string name() const override {
    return "Gradient Boosting";
  }
  void fit(const Dataset& d) override;
  [[nodiscard]] int predict(const std::vector<double>& row) const override;

 private:
  /// A regression stump/tree over residuals: reuses CART's split search by
  /// quantizing residual signs into pseudo-classes is too lossy, so a tiny
  /// dedicated regression tree is implemented here.
  struct RegNode {
    int feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;
    [[nodiscard]] bool is_leaf() const noexcept { return feature < 0; }
  };
  struct RegTree {
    std::vector<RegNode> nodes;
    [[nodiscard]] double eval(const std::vector<double>& row) const;
  };

  RegTree fit_tree(const Dataset& d, const std::vector<double>& residual,
                   std::uint32_t depth_limit) const;
  std::int32_t build(RegTree& tree, const Dataset& d,
                     const std::vector<double>& residual,
                     std::vector<std::size_t>& rows,
                     std::uint32_t depth) const;

  GradientBoostParams params_;
  double base_score_ = 0.0;  // initial log-odds
  std::vector<RegTree> trees_;
};

}  // namespace credo::ml
