// k-nearest-neighbors classifier (Euclidean over min-max-scaled features).
// In the paper's comparison it is hampered by the features' interrelation —
// the classes do not form separable clusters (§4.3).
#pragma once

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace credo::ml {

struct KnnParams {
  std::size_t k = 5;
};

class Knn final : public Classifier {
 public:
  explicit Knn(KnnParams params = {});

  [[nodiscard]] std::string name() const override {
    return "k-Nearest Neighbors";
  }
  void fit(const Dataset& d) override;
  [[nodiscard]] int predict(const std::vector<double>& row) const override;

 private:
  KnnParams params_;
  MinMaxScaler scaler_;
  Dataset train_;  // stored scaled
  int n_classes_ = 0;
};

}  // namespace credo::ml
