#include "ml/linear_svm.h"

#include <cmath>

#include "util/error.h"

namespace credo::ml {

LinearSvm::LinearSvm(LinearSvmParams params) : params_(std::move(params)) {}

void LinearSvm::fit(const Dataset& d) {
  CREDO_CHECK_MSG(d.size() > 0, "cannot fit SVM on an empty dataset");
  if (d.num_classes() > 2) {
    throw util::InvalidArgument("LinearSvm supports binary labels only");
  }
  scaler_.fit(d);
  const Dataset s = scaler_.transform(d);
  const std::size_t f = s.features();
  w_.assign(f, 0.0);
  b_ = 0.0;
  util::Prng rng(params_.seed);
  std::size_t t = 0;
  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    for (std::size_t step = 0; step < s.size(); ++step) {
      const std::size_t i = rng.uniform(s.size());
      ++t;
      const double eta = 1.0 / (params_.lambda * static_cast<double>(t));
      const double yi = s.y[i] == 1 ? 1.0 : -1.0;
      double margin = b_;
      for (std::size_t j = 0; j < f; ++j) margin += w_[j] * s.x[i][j];
      margin *= yi;
      // Pegasos update: shrink, then push along the violating sample.
      const double shrink = 1.0 - eta * params_.lambda;
      for (auto& w : w_) w *= shrink;
      if (margin < 1.0) {
        for (std::size_t j = 0; j < f; ++j) {
          w_[j] += eta * yi * s.x[i][j];
        }
        b_ += eta * yi;
      }
    }
  }
}

int LinearSvm::predict(const std::vector<double>& row) const {
  CREDO_CHECK_MSG(!w_.empty(), "predict before fit");
  const auto q = scaler_.transform_row(row);
  double margin = b_;
  for (std::size_t j = 0; j < q.size(); ++j) margin += w_[j] * q[j];
  return margin >= 0.0 ? 1 : 0;
}

}  // namespace credo::ml
