// Linear soft-margin SVM trained by hinge-loss SGD (Pegasos-style).
// Binary only. The paper observes the heavily normalized ratio features
// limit what the SVM's remapping can add (§4.3).
#pragma once

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace credo::ml {

struct LinearSvmParams {
  double lambda = 1e-3;     // L2 regularization
  std::size_t epochs = 200;
  std::uint64_t seed = 11;
};

class LinearSvm final : public Classifier {
 public:
  explicit LinearSvm(LinearSvmParams params = {});

  [[nodiscard]] std::string name() const override { return "SVM (linear)"; }
  void fit(const Dataset& d) override;
  [[nodiscard]] int predict(const std::vector<double>& row) const override;

 private:
  LinearSvmParams params_;
  MinMaxScaler scaler_;
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace credo::ml
