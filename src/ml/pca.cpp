#include "ml/pca.h"

#include <cmath>

#include "util/error.h"

namespace credo::ml {

std::vector<double> Pca::standardize(const std::vector<double>& row) const {
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) / scale_[j];
  }
  return out;
}

void Pca::fit(const Dataset& d, std::size_t components) {
  const std::size_t f = d.features();
  CREDO_CHECK_MSG(components >= 1 && components <= f,
                  "component count out of range");
  CREDO_CHECK_MSG(d.size() >= 2, "PCA needs at least two rows");
  const auto n = static_cast<double>(d.size());

  mean_.assign(f, 0.0);
  for (const auto& row : d.x) {
    for (std::size_t j = 0; j < f; ++j) mean_[j] += row[j];
  }
  for (auto& m : mean_) m /= n;
  scale_.assign(f, 0.0);
  for (const auto& row : d.x) {
    for (std::size_t j = 0; j < f; ++j) {
      const double delta = row[j] - mean_[j];
      scale_[j] += delta * delta;
    }
  }
  for (auto& s : scale_) s = std::max(1e-12, std::sqrt(s / n));

  // Covariance of standardized features.
  std::vector<std::vector<double>> cov(f, std::vector<double>(f, 0.0));
  for (const auto& row : d.x) {
    const auto z = standardize(row);
    for (std::size_t a = 0; a < f; ++a) {
      for (std::size_t b = 0; b < f; ++b) cov[a][b] += z[a] * z[b];
    }
  }
  for (auto& r : cov) {
    for (auto& v : r) v /= n;
  }

  components_.clear();
  eigenvalues_.clear();
  for (std::size_t c = 0; c < components; ++c) {
    // Power iteration on the deflated covariance.
    std::vector<double> v(f, 1.0 / std::sqrt(static_cast<double>(f)));
    double lambda = 0.0;
    for (int it = 0; it < 500; ++it) {
      std::vector<double> w(f, 0.0);
      for (std::size_t a = 0; a < f; ++a) {
        for (std::size_t b = 0; b < f; ++b) w[a] += cov[a][b] * v[b];
      }
      double norm = 0.0;
      for (const auto x : w) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-14) break;
      for (auto& x : w) x /= norm;
      lambda = norm;
      double delta = 0.0;
      for (std::size_t j = 0; j < f; ++j) {
        delta += std::fabs(w[j] - v[j]);
      }
      v = std::move(w);
      if (delta < 1e-12) break;
    }
    // Deflate: cov -= lambda v v^T.
    for (std::size_t a = 0; a < f; ++a) {
      for (std::size_t b = 0; b < f; ++b) {
        cov[a][b] -= lambda * v[a] * v[b];
      }
    }
    components_.push_back(std::move(v));
    eigenvalues_.push_back(lambda);
  }
}

Dataset Pca::transform(const Dataset& d) const {
  CREDO_CHECK_MSG(!components_.empty(), "transform before fit");
  Dataset out;
  out.y = d.y;
  out.x.reserve(d.size());
  for (const auto& row : d.x) {
    const auto z = standardize(row);
    std::vector<double> proj(components_.size(), 0.0);
    for (std::size_t c = 0; c < components_.size(); ++c) {
      for (std::size_t j = 0; j < z.size(); ++j) {
        proj[c] += components_[c][j] * z[j];
      }
    }
    out.x.push_back(std::move(proj));
  }
  return out;
}

}  // namespace credo::ml
