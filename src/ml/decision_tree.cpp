#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/error.h"

namespace credo::ml {
namespace {

/// Gini impurity of a weighted class histogram.
double gini(const std::vector<double>& counts, double total) {
  if (total <= 0) return 0.0;
  double sum_sq = 0.0;
  for (const double c : counts) sum_sq += (c / total) * (c / total);
  return 1.0 - sum_sq;
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeParams params)
    : params_(std::move(params)) {}

void DecisionTree::fit(const Dataset& d) {
  fit_weighted(d, std::vector<std::uint32_t>(d.size(), 1));
}

void DecisionTree::fit_weighted(const Dataset& d,
                                const std::vector<std::uint32_t>& weights) {
  CREDO_CHECK_MSG(d.size() > 0, "cannot fit a tree on an empty dataset");
  CREDO_CHECK_MSG(weights.size() == d.size(), "weight/row count mismatch");
  nodes_.clear();
  n_features_ = d.features();
  n_classes_ = d.num_classes();
  std::vector<std::size_t> rows;
  rows.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (weights[i] > 0) rows.push_back(i);
  }
  CREDO_CHECK_MSG(!rows.empty(), "all rows have zero weight");
  util::Prng rng(params_.seed);
  build(d, weights, rows, 0, rng);
}

std::int32_t DecisionTree::build(const Dataset& d,
                                 const std::vector<std::uint32_t>& weights,
                                 std::vector<std::size_t>& rows,
                                 std::uint32_t depth, util::Prng& rng) {
  // Class histogram at this node.
  std::vector<double> counts(static_cast<std::size_t>(n_classes_), 0.0);
  double total = 0.0;
  for (const auto i : rows) {
    counts[static_cast<std::size_t>(d.y[i])] += weights[i];
    total += weights[i];
  }
  Node node;
  node.samples = total;
  node.impurity = gini(counts, total);
  node.label = static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());

  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node);

  if (depth >= params_.max_depth || rows.size() < params_.min_samples_split ||
      node.impurity <= 0.0) {
    return id;
  }

  // Candidate features (all, or a random subset for forests).
  std::vector<std::size_t> features(n_features_);
  std::iota(features.begin(), features.end(), 0);
  if (params_.max_features > 0 && params_.max_features < n_features_) {
    for (std::size_t i = features.size(); i > 1; --i) {
      std::swap(features[i - 1], features[rng.uniform(i)]);
    }
    features.resize(params_.max_features);
  }

  // Exhaustive threshold search per candidate feature: sort rows by value,
  // sweep split points between distinct values.
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;
  std::vector<std::size_t> sorted = rows;
  for (const auto f : features) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) {
                return d.x[a][f] < d.x[b][f];
              });
    std::vector<double> left(static_cast<std::size_t>(n_classes_), 0.0);
    std::vector<double> right = counts;
    double left_total = 0.0;
    double right_total = total;
    for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
      const std::size_t i = sorted[k];
      const double w = weights[i];
      left[static_cast<std::size_t>(d.y[i])] += w;
      right[static_cast<std::size_t>(d.y[i])] -= w;
      left_total += w;
      right_total -= w;
      const double v = d.x[i][f];
      const double vn = d.x[sorted[k + 1]][f];
      if (vn <= v) continue;  // no split between equal values
      const double gain =
          node.impurity - (left_total / total) * gini(left, left_total) -
          (right_total / total) * gini(right, right_total);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (v + vn);
      }
    }
  }

  if (best_feature < 0) return id;  // no informative split

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (const auto i : rows) {
    (d.x[i][static_cast<std::size_t>(best_feature)] < best_threshold
         ? left_rows
         : right_rows)
        .push_back(i);
  }
  if (left_rows.empty() || right_rows.empty()) return id;

  nodes_[static_cast<std::size_t>(id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(id)].threshold = best_threshold;
  const std::int32_t l = build(d, weights, left_rows, depth + 1, rng);
  const std::int32_t r = build(d, weights, right_rows, depth + 1, rng);
  nodes_[static_cast<std::size_t>(id)].left = l;
  nodes_[static_cast<std::size_t>(id)].right = r;
  return id;
}

int DecisionTree::predict(const std::vector<double>& row) const {
  CREDO_CHECK_MSG(!nodes_.empty(), "predict before fit");
  CREDO_CHECK_MSG(row.size() == n_features_, "feature width mismatch");
  std::int32_t cur = 0;
  for (;;) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    if (n.is_leaf()) return n.label;
    cur = row[static_cast<std::size_t>(n.feature)] < n.threshold ? n.left
                                                                 : n.right;
  }
}

std::vector<double> DecisionTree::feature_importances() const {
  std::vector<double> imp(n_features_, 0.0);
  const double root_samples = nodes_.empty() ? 0.0 : nodes_[0].samples;
  if (root_samples <= 0) return imp;
  for (const auto& n : nodes_) {
    if (n.is_leaf()) continue;
    const auto& l = nodes_[static_cast<std::size_t>(n.left)];
    const auto& r = nodes_[static_cast<std::size_t>(n.right)];
    const double decrease =
        n.samples * n.impurity - l.samples * l.impurity -
        r.samples * r.impurity;
    imp[static_cast<std::size_t>(n.feature)] += decrease / root_samples;
  }
  const double sum = std::accumulate(imp.begin(), imp.end(), 0.0);
  if (sum > 0) {
    for (auto& v : imp) v /= sum;
  }
  return imp;
}

std::string DecisionTree::to_text(
    const std::vector<std::string>& feature_names) const {
  CREDO_CHECK_MSG(feature_names.size() >= n_features_,
                  "not enough feature names");
  std::ostringstream os;
  // Iterative DFS with explicit depth to render indentation.
  struct Frame {
    std::int32_t node;
    std::uint32_t depth;
  };
  std::vector<Frame> stack;
  if (!nodes_.empty()) stack.push_back({0, 0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(f.node)];
    os << std::string(2 * f.depth, ' ');
    if (n.is_leaf()) {
      os << "leaf: class " << n.label << " (gini " << n.impurity
         << ", samples " << n.samples << ")\n";
    } else {
      os << feature_names[static_cast<std::size_t>(n.feature)] << " < "
         << n.threshold << " ? (gini " << n.impurity << ", samples "
         << n.samples << ")\n";
      stack.push_back({n.right, f.depth + 1});
      stack.push_back({n.left, f.depth + 1});
    }
  }
  return os.str();
}

std::string DecisionTree::serialize() const {
  std::ostringstream os;
  os << "tree " << n_features_ << ' ' << n_classes_ << ' ' << nodes_.size()
     << '\n';
  for (const auto& n : nodes_) {
    os << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right
       << ' ' << n.label << ' ' << n.impurity << ' ' << n.samples << '\n';
  }
  return os.str();
}

DecisionTree DecisionTree::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  std::size_t n_features = 0;
  int n_classes = 0;
  std::size_t count = 0;
  if (!(is >> tag >> n_features >> n_classes >> count) || tag != "tree") {
    throw util::InvalidArgument("malformed serialized decision tree");
  }
  DecisionTree tree;
  tree.n_features_ = n_features;
  tree.n_classes_ = n_classes;
  tree.nodes_.resize(count);
  for (auto& n : tree.nodes_) {
    if (!(is >> n.feature >> n.threshold >> n.left >> n.right >> n.label >>
          n.impurity >> n.samples)) {
      throw util::InvalidArgument("truncated serialized decision tree");
    }
    const auto limit = static_cast<std::int32_t>(count);
    if (n.left >= limit || n.right >= limit ||
        (n.feature >= 0 && (n.left < 0 || n.right < 0))) {
      throw util::InvalidArgument("inconsistent serialized decision tree");
    }
  }
  if (tree.nodes_.empty()) {
    throw util::InvalidArgument("serialized decision tree has no nodes");
  }
  return tree;
}

}  // namespace credo::ml
