#include "ml/classifier.h"

#include "ml/decision_tree.h"
#include "ml/gaussian_process.h"
#include "ml/gradient_boost.h"
#include "ml/knn.h"
#include "ml/linear_svm.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "util/error.h"

namespace credo::ml {

std::unique_ptr<Classifier> make_classifier(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kDecisionTree:
      return std::make_unique<DecisionTree>();
    case ClassifierKind::kRandomForest:
      return std::make_unique<RandomForest>();
    case ClassifierKind::kKNearest:
      return std::make_unique<Knn>();
    case ClassifierKind::kNaiveBayes:
      return std::make_unique<GaussianNaiveBayes>();
    case ClassifierKind::kSvmLinear:
      return std::make_unique<LinearSvm>();
    case ClassifierKind::kGaussianProcess:
      return std::make_unique<GaussianProcessClassifier>();
    case ClassifierKind::kGradientBoost:
      return std::make_unique<GradientBoost>();
    case ClassifierKind::kMlp:
      return std::make_unique<Mlp>();
  }
  throw util::InvalidArgument("unknown classifier kind");
}

const std::vector<ClassifierKind>& all_classifier_kinds() {
  static const std::vector<ClassifierKind> kinds = {
      ClassifierKind::kDecisionTree,   ClassifierKind::kRandomForest,
      ClassifierKind::kKNearest,       ClassifierKind::kNaiveBayes,
      ClassifierKind::kSvmLinear,      ClassifierKind::kGaussianProcess,
      ClassifierKind::kGradientBoost,  ClassifierKind::kMlp,
  };
  return kinds;
}

std::string classifier_kind_name(ClassifierKind kind) {
  return make_classifier(kind)->name();
}

}  // namespace credo::ml
