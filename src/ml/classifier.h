// Classifier interface shared by the §4.3 comparison suite.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace credo::ml {

/// A trainable classifier. fit() may be called repeatedly (refits from
/// scratch); predict() requires a prior fit().
class Classifier {
 public:
  virtual ~Classifier() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Trains on `d`. Throws util::InvalidArgument on unusable input (empty,
  /// or multi-class data given to a binary-only model).
  virtual void fit(const Dataset& d) = 0;

  /// Predicts the class of one row.
  [[nodiscard]] virtual int predict(const std::vector<double>& row)
      const = 0;

  /// Predicts a batch (default: row-wise predict()).
  [[nodiscard]] virtual std::vector<int> predict_all(
      const Dataset& d) const {
    std::vector<int> out;
    out.reserve(d.size());
    for (const auto& row : d.x) out.push_back(predict(row));
    return out;
  }
};

/// The classifiers compared in Fig. 10, keyed by the paper's naming.
enum class ClassifierKind {
  kDecisionTree,
  kRandomForest,
  kKNearest,
  kNaiveBayes,
  kSvmLinear,
  kGaussianProcess,
  kGradientBoost,
  kMlp,
};

/// Creates a classifier with the paper's tuned hyperparameters (decision
/// tree max-depth 2; random forest max-depth 6, 14 trees; defaults noted in
/// each implementation header otherwise).
[[nodiscard]] std::unique_ptr<Classifier> make_classifier(
    ClassifierKind kind);

/// All kinds, in Fig. 10's presentation order.
[[nodiscard]] const std::vector<ClassifierKind>& all_classifier_kinds();

/// Display name ("Decision Tree", "Random Forest", ...).
[[nodiscard]] std::string classifier_kind_name(ClassifierKind kind);

}  // namespace credo::ml
