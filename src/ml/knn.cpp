#include "ml/knn.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace credo::ml {

Knn::Knn(KnnParams params) : params_(std::move(params)) {
  CREDO_CHECK_MSG(params_.k >= 1, "k must be >= 1");
}

void Knn::fit(const Dataset& d) {
  CREDO_CHECK_MSG(d.size() > 0, "cannot fit kNN on an empty dataset");
  scaler_.fit(d);
  train_ = scaler_.transform(d);
  n_classes_ = d.num_classes();
}

int Knn::predict(const std::vector<double>& row) const {
  CREDO_CHECK_MSG(train_.size() > 0, "predict before fit");
  const auto q = scaler_.transform_row(row);
  // Partial sort of (distance, label) pairs; the training sets here are
  // tiny (tens to hundreds of graphs) so O(n log n) is fine.
  std::vector<std::pair<double, int>> dist;
  dist.reserve(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < q.size(); ++j) {
      const double delta = q[j] - train_.x[i][j];
      s += delta * delta;
    }
    dist.emplace_back(s, train_.y[i]);
  }
  const std::size_t k = std::min(params_.k, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());
  std::vector<std::size_t> votes(static_cast<std::size_t>(n_classes_), 0);
  for (std::size_t i = 0; i < k; ++i) {
    ++votes[static_cast<std::size_t>(dist[i].second)];
  }
  return static_cast<int>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

}  // namespace credo::ml
