// Classification metrics: accuracy, per-class precision/recall, binary and
// macro F1 — the scoring used throughout §4.3/§4.4.
#pragma once

#include <vector>

namespace credo::ml {

/// Computed over aligned truth/prediction vectors.
struct ClassificationReport {
  double accuracy = 0.0;
  double f1_binary = 0.0;  // F1 of class 1 (the paper's Node-vs-Edge score)
  double f1_macro = 0.0;   // unweighted mean of per-class F1
  std::vector<std::vector<std::size_t>> confusion;  // [truth][predicted]
};

[[nodiscard]] ClassificationReport evaluate(const std::vector<int>& truth,
                                            const std::vector<int>& pred);

}  // namespace credo::ml
