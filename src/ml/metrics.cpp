#include "ml/metrics.h"

#include <algorithm>

#include "util/error.h"

namespace credo::ml {

ClassificationReport evaluate(const std::vector<int>& truth,
                              const std::vector<int>& pred) {
  CREDO_CHECK_MSG(truth.size() == pred.size() && !truth.empty(),
                  "evaluate needs equal-length non-empty vectors");
  int classes = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    classes = std::max({classes, truth[i] + 1, pred[i] + 1});
  }
  ClassificationReport rep;
  rep.confusion.assign(static_cast<std::size_t>(classes),
                       std::vector<std::size_t>(
                           static_cast<std::size_t>(classes), 0));
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ++rep.confusion[static_cast<std::size_t>(truth[i])]
                   [static_cast<std::size_t>(pred[i])];
    if (truth[i] == pred[i]) ++correct;
  }
  rep.accuracy =
      static_cast<double>(correct) / static_cast<double>(truth.size());

  auto f1_of = [&](std::size_t c) {
    std::size_t tp = rep.confusion[c][c];
    std::size_t fp = 0;
    std::size_t fn = 0;
    for (std::size_t o = 0; o < rep.confusion.size(); ++o) {
      if (o == c) continue;
      fp += rep.confusion[o][c];
      fn += rep.confusion[c][o];
    }
    const double denom = static_cast<double>(2 * tp + fp + fn);
    return denom > 0 ? 2.0 * static_cast<double>(tp) / denom : 0.0;
  };
  double macro = 0.0;
  for (std::size_t c = 0; c < rep.confusion.size(); ++c) {
    macro += f1_of(c);
  }
  rep.f1_macro = macro / static_cast<double>(rep.confusion.size());
  rep.f1_binary = rep.confusion.size() > 1 ? f1_of(1) : f1_of(0);
  return rep;
}

}  // namespace credo::ml
