// Gaussian-process classifier: RBF-kernel GP regression on ±1 targets with
// a sign readout (the standard label-regression approximation; exact GP
// classification needs Laplace/EP iterations that add nothing at this
// dataset size). Binary only. Its normality/independence assumptions are
// what the paper blames for its middling score (§4.3).
#pragma once

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace credo::ml {

struct GaussianProcessParams {
  double length_scale = 0.5;  // RBF kernel width on scaled features
  double noise = 1e-2;        // diagonal jitter / observation noise
};

class GaussianProcessClassifier final : public Classifier {
 public:
  explicit GaussianProcessClassifier(GaussianProcessParams params = {});

  [[nodiscard]] std::string name() const override {
    return "Gaussian Process";
  }
  void fit(const Dataset& d) override;
  [[nodiscard]] int predict(const std::vector<double>& row) const override;

 private:
  [[nodiscard]] double kernel(const std::vector<double>& a,
                              const std::vector<double>& b) const;

  GaussianProcessParams params_;
  MinMaxScaler scaler_;
  Dataset train_;               // scaled
  std::vector<double> alpha_;   // (K + noise I)^-1 y
};

}  // namespace credo::ml
