#include "ml/naive_bayes.h"

#include <cmath>

#include "util/error.h"

namespace credo::ml {
namespace {

/// Variance floor keeps degenerate (constant) features from producing
/// infinite log-likelihoods.
constexpr double kVarFloor = 1e-9;

}  // namespace

void GaussianNaiveBayes::fit(const Dataset& d) {
  CREDO_CHECK_MSG(d.size() > 0, "cannot fit NB on an empty dataset");
  const auto classes = static_cast<std::size_t>(d.num_classes());
  const std::size_t f = d.features();
  std::vector<double> count(classes, 0.0);
  mean_.assign(classes, std::vector<double>(f, 0.0));
  var_.assign(classes, std::vector<double>(f, 0.0));
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto c = static_cast<std::size_t>(d.y[i]);
    count[c] += 1.0;
    for (std::size_t j = 0; j < f; ++j) mean_[c][j] += d.x[i][j];
  }
  for (std::size_t c = 0; c < classes; ++c) {
    if (count[c] == 0) continue;
    for (auto& m : mean_[c]) m /= count[c];
  }
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto c = static_cast<std::size_t>(d.y[i]);
    for (std::size_t j = 0; j < f; ++j) {
      const double delta = d.x[i][j] - mean_[c][j];
      var_[c][j] += delta * delta;
    }
  }
  log_prior_.assign(classes, -1e18);
  for (std::size_t c = 0; c < classes; ++c) {
    if (count[c] == 0) continue;
    log_prior_[c] =
        std::log(count[c] / static_cast<double>(d.size()));
    for (auto& v : var_[c]) {
      v = std::max(kVarFloor, v / count[c]);
    }
  }
}

int GaussianNaiveBayes::predict(const std::vector<double>& row) const {
  CREDO_CHECK_MSG(!mean_.empty(), "predict before fit");
  int best = 0;
  double best_ll = -1e300;
  for (std::size_t c = 0; c < mean_.size(); ++c) {
    double ll = log_prior_[c];
    for (std::size_t j = 0; j < row.size(); ++j) {
      const double delta = row[j] - mean_[c][j];
      ll += -0.5 * std::log(2.0 * M_PI * var_[c][j]) -
            delta * delta / (2.0 * var_[c][j]);
    }
    if (ll > best_ll) {
      best_ll = ll;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace credo::ml
