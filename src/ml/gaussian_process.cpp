#include "ml/gaussian_process.h"

#include <cmath>

#include "util/error.h"

namespace credo::ml {

GaussianProcessClassifier::GaussianProcessClassifier(
    GaussianProcessParams params)
    : params_(std::move(params)) {
  CREDO_CHECK_MSG(params_.length_scale > 0 && params_.noise > 0,
                  "GP hyperparameters must be positive");
}

double GaussianProcessClassifier::kernel(const std::vector<double>& a,
                                         const std::vector<double>& b) const {
  double s = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double d = a[j] - b[j];
    s += d * d;
  }
  return std::exp(-s / (2.0 * params_.length_scale * params_.length_scale));
}

void GaussianProcessClassifier::fit(const Dataset& d) {
  CREDO_CHECK_MSG(d.size() > 0, "cannot fit GP on an empty dataset");
  if (d.num_classes() > 2) {
    throw util::InvalidArgument(
        "GaussianProcessClassifier supports binary labels only");
  }
  scaler_.fit(d);
  train_ = scaler_.transform(d);
  const std::size_t n = train_.size();

  // K + noise*I, solved by unpivoted Cholesky (the kernel matrix is SPD by
  // construction once jitter is added).
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double k = kernel(train_.x[i], train_.x[j]);
      a[i][j] = k;
      a[j][i] = k;
    }
    a[i][i] += params_.noise;
  }
  // Cholesky: a = L L^T (in-place lower triangle).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a[i][j];
      for (std::size_t k = 0; k < j; ++k) s -= a[i][k] * a[j][k];
      if (i == j) {
        CREDO_CHECK_MSG(s > 0, "kernel matrix lost positive definiteness");
        a[i][i] = std::sqrt(s);
      } else {
        a[i][j] = s / a[j][j];
      }
    }
  }
  // Solve L L^T alpha = y with y in {-1,+1}.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = train_.y[i] == 1 ? 1.0 : -1.0;
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = y[i];
    for (std::size_t k = 0; k < i; ++k) s -= a[i][k] * z[k];
    z[i] = s / a[i][i];
  }
  alpha_.assign(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = z[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= a[k][ii] * alpha_[k];
    alpha_[ii] = s / a[ii][ii];
  }
}

int GaussianProcessClassifier::predict(
    const std::vector<double>& row) const {
  CREDO_CHECK_MSG(!alpha_.empty(), "predict before fit");
  const auto q = scaler_.transform_row(row);
  double mean = 0.0;
  for (std::size_t i = 0; i < train_.size(); ++i) {
    mean += alpha_[i] * kernel(q, train_.x[i]);
  }
  return mean >= 0.0 ? 1 : 0;
}

}  // namespace credo::ml
