// Multi-layer perceptron: one tanh hidden layer, logistic output, SGD.
// Binary only. Like gradient boosting, the paper finds it data-hungry for
// this task (§4.3).
#pragma once

#include <cstdint>

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace credo::ml {

struct MlpParams {
  std::size_t hidden = 16;
  std::size_t epochs = 300;
  double learning_rate = 0.05;
  std::uint64_t seed = 23;
};

class Mlp final : public Classifier {
 public:
  explicit Mlp(MlpParams params = {});

  [[nodiscard]] std::string name() const override {
    return "Multi-Layer Perceptron";
  }
  void fit(const Dataset& d) override;
  [[nodiscard]] int predict(const std::vector<double>& row) const override;

 private:
  [[nodiscard]] double forward(const std::vector<double>& x,
                               std::vector<double>* hidden_out) const;

  MlpParams params_;
  MinMaxScaler scaler_;
  std::vector<std::vector<double>> w1_;  // hidden x features
  std::vector<double> b1_;
  std::vector<double> w2_;  // hidden
  double b2_ = 0.0;
};

}  // namespace credo::ml
