#include "ml/mlp.h"

#include <cmath>

#include "util/error.h"

namespace credo::ml {
namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

Mlp::Mlp(MlpParams params) : params_(std::move(params)) {
  CREDO_CHECK_MSG(params_.hidden >= 1 && params_.epochs >= 1,
                  "bad MLP parameters");
}

double Mlp::forward(const std::vector<double>& x,
                    std::vector<double>* hidden_out) const {
  double z2 = b2_;
  for (std::size_t h = 0; h < params_.hidden; ++h) {
    double z1 = b1_[h];
    for (std::size_t j = 0; j < x.size(); ++j) z1 += w1_[h][j] * x[j];
    const double a = std::tanh(z1);
    if (hidden_out != nullptr) (*hidden_out)[h] = a;
    z2 += w2_[h] * a;
  }
  return z2;
}

void Mlp::fit(const Dataset& d) {
  CREDO_CHECK_MSG(d.size() > 0, "cannot fit MLP on an empty dataset");
  if (d.num_classes() > 2) {
    throw util::InvalidArgument("Mlp supports binary labels only");
  }
  scaler_.fit(d);
  const Dataset s = scaler_.transform(d);
  const std::size_t f = s.features();
  util::Prng rng(params_.seed);
  auto init = [&] {
    return (rng.uniform01() - 0.5) *
           std::sqrt(2.0 / static_cast<double>(f + 1));
  };
  w1_.assign(params_.hidden, std::vector<double>(f));
  b1_.assign(params_.hidden, 0.0);
  w2_.assign(params_.hidden, 0.0);
  b2_ = 0.0;
  for (auto& row : w1_) {
    for (auto& w : row) w = init();
  }
  for (auto& w : w2_) w = init();

  std::vector<double> hidden(params_.hidden);
  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    for (std::size_t step = 0; step < s.size(); ++step) {
      const std::size_t i = rng.uniform(s.size());
      const double z = forward(s.x[i], &hidden);
      const double err = sigmoid(z) - static_cast<double>(s.y[i]);
      const double lr = params_.learning_rate;
      // Backprop through the logistic output and tanh hidden layer.
      for (std::size_t h = 0; h < params_.hidden; ++h) {
        const double g2 = err * hidden[h];
        const double gh = err * w2_[h] * (1.0 - hidden[h] * hidden[h]);
        w2_[h] -= lr * g2;
        b1_[h] -= lr * gh;
        for (std::size_t j = 0; j < s.x[i].size(); ++j) {
          w1_[h][j] -= lr * gh * s.x[i][j];
        }
      }
      b2_ -= lr * err;
    }
  }
}

int Mlp::predict(const std::vector<double>& row) const {
  CREDO_CHECK_MSG(!w2_.empty(), "predict before fit");
  return forward(scaler_.transform_row(row), nullptr) >= 0.0 ? 1 : 0;
}

}  // namespace credo::ml
