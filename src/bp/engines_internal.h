// Internal factory hooks and helpers shared by the engine translation
// units. Not part of the public API — include bp/engine.h instead.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "bp/engine.h"
#include "graph/belief.h"
#include "graph/belief_kernels.h"
#include "graph/csr.h"
#include "graph/factor_graph.h"

namespace credo::bp::internal {

std::unique_ptr<Engine> make_cpu_node(const perf::HardwareProfile& p);
std::unique_ptr<Engine> make_cpu_edge(const perf::HardwareProfile& p);
std::unique_ptr<Engine> make_omp_node(const perf::HardwareProfile& p);
std::unique_ptr<Engine> make_omp_edge(const perf::HardwareProfile& p);
std::unique_ptr<Engine> make_cuda_node(const perf::HardwareProfile& p);
std::unique_ptr<Engine> make_cuda_edge(const perf::HardwareProfile& p);
std::unique_ptr<Engine> make_acc_edge(const perf::HardwareProfile& p);
std::unique_ptr<Engine> make_tree(const perf::HardwareProfile& p);
std::unique_ptr<Engine> make_residual(const perf::HardwareProfile& p);
std::unique_ptr<Engine> make_residual_locked(const perf::HardwareProfile& p);
std::unique_ptr<Engine> make_residual_mq(const perf::HardwareProfile& p);
std::unique_ptr<Engine> make_splash(const perf::HardwareProfile& p);
std::unique_ptr<Engine> make_sharded(const perf::HardwareProfile& p);

// ---------------------------------------------------------------------------
// LDPC family runners (ldpc_engines.cpp, DESIGN.md §5g). The supporting
// engines branch on graph::is_ldpc(g.family()) once at do_run entry and
// delegate to these free functions — per-graph dispatch, so the tabular hot
// paths compile unchanged and pay nothing. Each runner keeps its paradigm's
// schedule/driver composition; only the kernel body is the closed-form
// tanh-domain update instead of the joint-matrix product.
// ---------------------------------------------------------------------------

BpResult run_ldpc_node_sweep(const graph::FactorGraph& g,
                             const BpOptions& opts,
                             const perf::HardwareProfile& profile);
BpResult run_ldpc_edge_sweep(const graph::FactorGraph& g,
                             const BpOptions& opts,
                             const perf::HardwareProfile& profile);
BpResult run_ldpc_node_parallel(const graph::FactorGraph& g,
                                const BpOptions& opts,
                                const perf::HardwareProfile& profile);
BpResult run_ldpc_edge_parallel(const graph::FactorGraph& g,
                                const BpOptions& opts,
                                const perf::HardwareProfile& profile);
BpResult run_ldpc_residual(const graph::FactorGraph& g, const BpOptions& opts,
                           const perf::HardwareProfile& profile);
BpResult run_ldpc_relaxed(const graph::FactorGraph& g, const BpOptions& opts,
                          EngineKind kind,
                          const perf::HardwareProfile& profile);

/// Messages are clamped away from zero before entering log space so a
/// contradicting observation cannot produce -inf accumulators.
inline constexpr float kMsgFloor = 1e-30f;

/// log of a clamped message entry.
inline float log_msg(float v) noexcept {
  return std::log(v < kMsgFloor ? kMsgFloor : v);
}

/// Numerically stable exp-normalization of a log-space accumulator into a
/// belief vector. Returns flops performed.
inline std::uint32_t softmax(const float* log_acc, std::uint32_t n,
                             graph::BeliefVec& out) noexcept {
  out.size = n;
  float maxv = log_acc[0];
  for (std::uint32_t i = 1; i < n; ++i) {
    if (log_acc[i] > maxv) maxv = log_acc[i];
  }
  float sum = 0.0f;
  for (std::uint32_t i = 0; i < n; ++i) {
    out.v[i] = std::exp(log_acc[i] - maxv);
    sum += out.v[i];
  }
  const float inv = 1.0f / sum;
  for (std::uint32_t i = 0; i < n; ++i) out.v[i] *= inv;
  return 4 * n;
}

/// Flop cost of one message computation (matvec + normalize), matching
/// graph::compute_message.
inline std::uint64_t message_flops(std::uint32_t rows,
                                   std::uint32_t cols) noexcept {
  return 2ull * rows * cols + 2ull * cols;
}

/// Charges the cost of loading the joint matrix for edge `e`. The shared
/// matrix (§2.2) lives in constant memory / stays cache-resident and is
/// charged per-element constant-cache reads; per-edge matrices are
/// scattered global loads — the §2.2 bottleneck.
inline void charge_joint_load(perf::Meter& meter,
                              const graph::JointStore& joints,
                              graph::EdgeId e) {
  const auto& m = joints.at(e);
  if (joints.is_shared()) {
    meter.const_op(static_cast<std::uint64_t>(m.rows) * m.cols);
  } else {
    meter.rand_read(m.payload_bytes());
  }
}

/// Bytes actually touched when loading/storing a belief vector (live floats
/// plus the dimension field).
inline std::uint64_t belief_bytes(std::uint32_t arity) noexcept {
  return 4ull * arity + 4ull;
}

/// Scratch for one kEdgeBlock-wide pass through the batched message kernel:
/// gathered source-belief and joint-matrix pointers plus the message
/// outputs. ~2.5 KiB, L1-resident; hoist one instance per worker.
struct EdgeBlockScratch {
  std::array<const graph::BeliefVec*, graph::kEdgeBlock> srcs;
  std::array<const graph::JointMatrix*, graph::kEdgeBlock> mats;
  std::array<graph::BeliefVec, graph::kEdgeBlock> msgs;
};

/// Runs the batched message kernel over the first `count` gathered edges,
/// picking the shared-matrix form (§2.2 amortization) when the store is
/// shared. Returns flops performed.
inline std::uint64_t compute_block(const graph::JointStore& joints,
                                   EdgeBlockScratch& s,
                                   std::size_t count) noexcept {
  return joints.is_shared()
             ? graph::compute_messages_batched(joints.shared_matrix(),
                                               s.srcs.data(), s.msgs.data(),
                                               count)
             : graph::compute_messages_batched(s.mats.data(), s.srcs.data(),
                                               s.msgs.data(), count);
}

/// Node-paradigm pull: walks v's in-edges in kEdgeBlock blocks through the
/// batched message kernel and combines in CSR order — bit-identical to the
/// per-edge path, with the joint-matrix loads amortized per block. Metering
/// matches the per-edge form event for event, except that parents for which
/// `near_pred(node)` holds are charged as near (cache-resident) reads — the
/// splash engine passes the just-pulled subtree so its sweeps pay DRAM once
/// per node, not once per visit.
template <typename NearPred>
inline void pull_parents_blocked(std::span<const graph::Csr::Entry> nbrs,
                                 const std::vector<graph::BeliefVec>& beliefs,
                                 const graph::JointStore& joints,
                                 perf::Meter& meter, EdgeBlockScratch& s,
                                 graph::BeliefVec& acc, NearPred near_pred) {
  const bool shared = joints.is_shared();
  for (std::size_t base = 0; base < nbrs.size();
       base += graph::kEdgeBlock) {
    const std::size_t count =
        std::min(graph::kEdgeBlock, nbrs.size() - base);
    for (std::size_t k = 0; k < count; ++k) {
      const auto& entry = nbrs[base + k];
      meter.seq_read(sizeof(entry));  // adjacency index walk
      const graph::BeliefVec& parent = beliefs[entry.node];
      if (near_pred(entry.node)) {
        meter.near_read(belief_bytes(parent.size));
      } else {
        meter.rand_read(belief_bytes(parent.size));
      }
      charge_joint_load(meter, joints, entry.edge);
      s.srcs[k] = &parent;
      if (!shared) s.mats[k] = &joints.at(entry.edge);
    }
    meter.flop(compute_block(joints, s, count));
    for (std::size_t k = 0; k < count; ++k) {
      meter.flop(graph::combine(acc, s.msgs[k]));
    }
  }
}

inline void pull_parents_blocked(std::span<const graph::Csr::Entry> nbrs,
                                 const std::vector<graph::BeliefVec>& beliefs,
                                 const graph::JointStore& joints,
                                 perf::Meter& meter, EdgeBlockScratch& s,
                                 graph::BeliefVec& acc) {
  pull_parents_blocked(nbrs, beliefs, joints, meter, s, acc,
                       [](graph::NodeId) noexcept { return false; });
}

}  // namespace credo::bp::internal
