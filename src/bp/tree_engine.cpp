// Non-loopy (two-pass, by-level) belief propagation — the traditional
// algorithm the paper uses as its §2.1.1 baseline.
//
// Pearl's collect/distribute schedule: BFS levels are computed from each
// component's root, an upward (ψ) sweep sends messages from the deepest
// level toward the roots, then a downward (φ) sweep distributes beliefs
// back out with message exclusion (the child's own upward message is
// divided back out). Exact on trees; on graphs with cycles only the BFS
// tree edges carry messages (the two-sweep approximation — the reason the
// paper moves to loopy BP for general graphs).
//
// The by-level ordering — including the baseline's "enormous overhead" of
// finding each level's members without an adjacency index
// (BpOptions::tree_naive) versus the CSR-indexed walk — lives in
// runtime::TreeLevels (DESIGN.md §5b); this file keeps only Pearl's
// message mathematics. There is no convergence loop: the two sweeps are
// the whole schedule, so the stats report two fixed "iterations" (and two
// trace records when tracing).
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bp/engines_internal.h"
#include "bp/runtime/schedule.h"
#include "perf/cost_model.h"
#include "util/error.h"
#include "util/timer.h"

namespace credo::bp::internal {
namespace {

using graph::BeliefVec;
using graph::DirectedEdge;
using graph::EdgeId;
using graph::FactorGraph;
using graph::NodeId;

class TreeEngine final : public Engine {
 public:
  explicit TreeEngine(perf::HardwareProfile profile)
      : profile_(std::move(profile)) {
    CREDO_CHECK_MSG(profile_.kind == perf::PlatformKind::kCpuSerial,
                    "tree engine requires a serial CPU profile");
  }

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kTree;
  }

  [[nodiscard]] const perf::HardwareProfile& hardware()
      const noexcept override {
    return profile_;
  }

 protected:
  [[nodiscard]] BpResult do_run(const FactorGraph& g,
                                const BpOptions& opts) const override {
    const util::Timer timer;
    BpResult r;
    perf::Meter meter(r.stats.counters);
    const NodeId n = g.num_nodes();
    const auto& edges = g.edges();

    // By-level schedule: BFS levels rooted at each component's smallest
    // node id, computed in the mode's cost regime (naive relaxation vs
    // indexed BFS).
    const runtime::TreeLevels levels(g, opts.tree_naive, meter);
    const std::uint32_t max_level = levels.max_level();

    // Reverse-edge lookup for message exclusion (u,v) -> edge id.
    std::unordered_map<std::uint64_t, EdgeId> reverse;
    reverse.reserve(edges.size());
    for (EdgeId e = 0; e < edges.size(); ++e) {
      reverse[(static_cast<std::uint64_t>(edges[e].src) << 32) |
              edges[e].dst] = e;
    }

    // ---- Pass 1 (ψ / collect): deepest level -> roots ----
    // up[v] = prior(v) * Π_{children c} upmsg(c -> v).
    std::vector<BeliefVec> up(n);
    for (NodeId v = 0; v < n; ++v) up[v] = g.prior(v);
    std::vector<BeliefVec> upmsg(edges.size());  // keyed by edge (c -> p)
    BeliefVec msg;
    auto process_up_edge = [&](EdgeId e) {
      const auto& ed = edges[e];
      ++r.stats.elements_processed;
      meter.rand_read(belief_bytes(up[ed.src].size));
      charge_joint_load(meter, g.joints(), e);
      meter.flop(graph::compute_message(up[ed.src], g.joints().at(e), msg));
      upmsg[e] = msg;
      meter.rand_write(belief_bytes(msg.size));
      meter.flop(graph::combine(up[ed.dst], msg));
      meter.rand_read(belief_bytes(msg.size));
      meter.rand_write(belief_bytes(msg.size));
    };
    for (std::uint32_t l = max_level; l >= 1; --l) {
      levels.for_edges(g, l, l - 1, meter, process_up_edge);
      if (l == 1) break;
    }
    const std::uint64_t pass1_edges = r.stats.elements_processed;
    if (opts.collect_trace) {
      // The sweeps carry no convergence delta (the result is exact on
      // trees), so the records report structure only.
      r.stats.trace.push_back(runtime::IterationRecord{
          1, 0.0, false, pass1_edges, pass1_edges,
          perf::model_time(r.stats.counters, profile_)});
    }

    // ---- Pass 2 (φ / distribute): roots -> deepest level ----
    // down[v]: the parent's message into v; ones at the roots.
    std::vector<BeliefVec> down(n);
    for (NodeId v = 0; v < n; ++v) {
      down[v] = BeliefVec::ones(g.arity(v));
    }
    auto process_down_edge = [&](EdgeId e) {
      const auto& ed = edges[e];  // p -> c
      ++r.stats.elements_processed;
      // Exclusion: belief-so-far at p with c's own upward message divided
      // back out.
      BeliefVec excl = up[ed.src];
      meter.rand_read(belief_bytes(excl.size));
      meter.flop(graph::combine(excl, down[ed.src]));
      meter.rand_read(belief_bytes(excl.size));
      const auto rev = reverse.find(
          (static_cast<std::uint64_t>(ed.dst) << 32) | ed.src);
      if (rev != reverse.end() && upmsg[rev->second].size == excl.size) {
        const BeliefVec& um = upmsg[rev->second];
        meter.rand_read(belief_bytes(um.size));
        for (std::uint32_t s = 0; s < excl.size; ++s) {
          const float d = um.v[s] < kMsgFloor ? kMsgFloor : um.v[s];
          excl.v[s] /= d;
        }
        meter.flop(excl.size);
      }
      graph::normalize(excl);
      meter.flop(2ull * excl.size);
      charge_joint_load(meter, g.joints(), e);
      meter.flop(graph::compute_message(excl, g.joints().at(e), msg));
      meter.flop(graph::combine(down[ed.dst], msg));
      meter.rand_write(belief_bytes(msg.size));
    };
    for (std::uint32_t l = 0; l < max_level; ++l) {
      levels.for_edges(g, l, l + 1, meter, process_down_edge);
    }
    if (opts.collect_trace) {
      const std::uint64_t pass2_edges =
          r.stats.elements_processed - pass1_edges;
      r.stats.trace.push_back(runtime::IterationRecord{
          2, 0.0, false, pass2_edges, pass2_edges,
          perf::model_time(r.stats.counters, profile_)});
    }

    // ---- Marginalize ----
    r.beliefs.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      if (g.observed(v)) {
        r.beliefs[v] = g.prior(v);
        continue;
      }
      BeliefVec belief = up[v];
      meter.flop(graph::combine(belief, down[v]));
      graph::normalize(belief);
      meter.flop(2ull * belief.size);
      r.beliefs[v] = belief;
      meter.seq_write(belief_bytes(belief.size));
    }

    r.stats.iterations = 2;  // the two sweeps
    r.stats.converged = true;
    r.stats.time = perf::model_time(r.stats.counters, profile_);
    r.stats.host_seconds = timer.seconds();
    return r;
  }

 private:
  perf::HardwareProfile profile_;
};

}  // namespace

std::unique_ptr<Engine> make_tree(const perf::HardwareProfile& p) {
  return std::make_unique<TreeEngine>(p);
}

}  // namespace credo::bp::internal
