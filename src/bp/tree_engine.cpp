// Non-loopy (two-pass, by-level) belief propagation — the traditional
// algorithm the paper uses as its §2.1.1 baseline.
//
// Pearl's collect/distribute schedule: BFS levels are computed from each
// component's root, an upward (ψ) sweep sends messages from the deepest
// level toward the roots, then a downward (φ) sweep distributes beliefs
// back out with message exclusion (the child's own upward message is
// divided back out). Exact on trees; on graphs with cycles only the BFS
// tree edges carry messages (the two-sweep approximation — the reason the
// paper moves to loopy BP for general graphs).
//
// Two implementations are provided, selected by BpOptions::tree_naive:
//  * naive  — the paper's baseline: no adjacency index; every level's
//    members are found by scanning the level array, and each member's
//    edges by scanning the entire edge list. The O(n·m) work this causes is
//    the "enormous overhead ... processing the graph by-level" of §2.1.1.
//  * indexed — same mathematics driven by the CSR index, O(n + m).
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bp/engines_internal.h"
#include "perf/cost_model.h"
#include "util/error.h"
#include "util/timer.h"

namespace credo::bp::internal {
namespace {

using graph::BeliefVec;
using graph::DirectedEdge;
using graph::EdgeId;
using graph::FactorGraph;
using graph::NodeId;

constexpr std::uint32_t kNoLevel = ~0u;

class TreeEngine final : public Engine {
 public:
  explicit TreeEngine(perf::HardwareProfile profile)
      : profile_(std::move(profile)) {
    CREDO_CHECK_MSG(profile_.kind == perf::PlatformKind::kCpuSerial,
                    "tree engine requires a serial CPU profile");
  }

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kTree;
  }

  [[nodiscard]] const perf::HardwareProfile& hardware()
      const noexcept override {
    return profile_;
  }

  [[nodiscard]] BpResult run(const FactorGraph& g,
                             const BpOptions& opts) const override {
    const util::Timer timer;
    BpResult r;
    perf::Meter meter(r.stats.counters);
    const NodeId n = g.num_nodes();
    const auto& edges = g.edges();

    // ---- Level determination ----
    // Naive mode models the baseline's repeated full-edge relaxation; the
    // indexed mode runs a BFS over the CSR. Both produce BFS levels rooted
    // at the smallest node id of each component.
    std::vector<std::uint32_t> level(n, kNoLevel);
    std::uint32_t max_level = 0;
    if (opts.tree_naive) {
      for (NodeId v = 0; v < n; ++v) {
        meter.seq_read(sizeof(std::uint32_t));
        if (level[v] != kNoLevel) continue;
        level[v] = 0;
        // Relax over the whole edge list until the component stabilizes.
        bool changed = true;
        while (changed) {
          changed = false;
          meter.seq_read(edges.size() * sizeof(DirectedEdge));
          meter.near_read(sizeof(std::uint32_t), 2 * edges.size());
          for (const auto& e : edges) {
            if (level[e.src] != kNoLevel &&
                level[e.dst] > level[e.src] + 1) {
              level[e.dst] = level[e.src] + 1;
              changed = true;
            }
          }
        }
      }
    } else {
      std::vector<NodeId> frontier;
      for (NodeId root = 0; root < n; ++root) {
        if (level[root] != kNoLevel) continue;
        level[root] = 0;
        frontier.assign(1, root);
        std::uint32_t l = 0;
        while (!frontier.empty()) {
          std::vector<NodeId> next;
          for (const NodeId v : frontier) {
            meter.seq_read(sizeof(std::uint64_t));
            for (const auto& entry : g.out_csr().neighbors(v)) {
              meter.seq_read(sizeof(entry));
              meter.rand_read(sizeof(std::uint32_t));
              if (level[entry.node] == kNoLevel) {
                level[entry.node] = l + 1;
                next.push_back(entry.node);
              }
            }
          }
          frontier.swap(next);
          ++l;
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (level[v] > max_level && level[v] != kNoLevel) {
        max_level = level[v];
      }
    }

    // Reverse-edge lookup for message exclusion (u,v) -> edge id.
    std::unordered_map<std::uint64_t, EdgeId> reverse;
    reverse.reserve(edges.size());
    for (EdgeId e = 0; e < edges.size(); ++e) {
      reverse[(static_cast<std::uint64_t>(edges[e].src) << 32) |
              edges[e].dst] = e;
    }

    // ---- Pass 1 (ψ / collect): deepest level -> roots ----
    // up[v] = prior(v) * Π_{children c} upmsg(c -> v).
    std::vector<BeliefVec> up(n);
    for (NodeId v = 0; v < n; ++v) up[v] = g.prior(v);
    std::vector<BeliefVec> upmsg(edges.size());  // keyed by edge (c -> p)
    BeliefVec msg;
    auto process_up_edge = [&](EdgeId e) {
      const auto& ed = edges[e];
      ++r.stats.elements_processed;
      meter.rand_read(belief_bytes(up[ed.src].size));
      charge_joint_load(meter, g.joints(), e);
      meter.flop(graph::compute_message(up[ed.src], g.joints().at(e), msg));
      upmsg[e] = msg;
      meter.rand_write(belief_bytes(msg.size));
      meter.flop(graph::combine(up[ed.dst], msg));
      meter.rand_read(belief_bytes(msg.size));
      meter.rand_write(belief_bytes(msg.size));
    };
    for (std::uint32_t l = max_level; l >= 1; --l) {
      for_level_edges(g, level, l, l - 1, opts.tree_naive, meter,
                      process_up_edge);
      if (l == 1) break;
    }

    // ---- Pass 2 (φ / distribute): roots -> deepest level ----
    // down[v]: the parent's message into v; ones at the roots.
    std::vector<BeliefVec> down(n);
    for (NodeId v = 0; v < n; ++v) {
      down[v] = BeliefVec::ones(g.arity(v));
    }
    auto process_down_edge = [&](EdgeId e) {
      const auto& ed = edges[e];  // p -> c
      ++r.stats.elements_processed;
      // Exclusion: belief-so-far at p with c's own upward message divided
      // back out.
      BeliefVec excl = up[ed.src];
      meter.rand_read(belief_bytes(excl.size));
      meter.flop(graph::combine(excl, down[ed.src]));
      meter.rand_read(belief_bytes(excl.size));
      const auto rev = reverse.find(
          (static_cast<std::uint64_t>(ed.dst) << 32) | ed.src);
      if (rev != reverse.end() && upmsg[rev->second].size == excl.size) {
        const BeliefVec& um = upmsg[rev->second];
        meter.rand_read(belief_bytes(um.size));
        for (std::uint32_t s = 0; s < excl.size; ++s) {
          const float d = um.v[s] < kMsgFloor ? kMsgFloor : um.v[s];
          excl.v[s] /= d;
        }
        meter.flop(excl.size);
      }
      graph::normalize(excl);
      meter.flop(2ull * excl.size);
      charge_joint_load(meter, g.joints(), e);
      meter.flop(graph::compute_message(excl, g.joints().at(e), msg));
      meter.flop(graph::combine(down[ed.dst], msg));
      meter.rand_write(belief_bytes(msg.size));
    };
    for (std::uint32_t l = 0; l < max_level; ++l) {
      for_level_edges(g, level, l, l + 1, opts.tree_naive, meter,
                      process_down_edge);
    }

    // ---- Marginalize ----
    r.beliefs.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      if (g.observed(v)) {
        r.beliefs[v] = g.prior(v);
        continue;
      }
      BeliefVec belief = up[v];
      meter.flop(graph::combine(belief, down[v]));
      graph::normalize(belief);
      meter.flop(2ull * belief.size);
      r.beliefs[v] = belief;
      meter.seq_write(belief_bytes(belief.size));
    }

    r.stats.iterations = 2;  // the two sweeps
    r.stats.converged = true;
    r.stats.time = perf::model_time(r.stats.counters, profile_);
    r.stats.host_seconds = timer.seconds();
    return r;
  }

 private:
  /// Applies `fn` to every edge from `from_level` to `to_level`.
  ///
  /// Naive mode reproduces the baseline's data-structure-free walk: the
  /// level array is scanned for members, and each member's edges are found
  /// by scanning the entire edge list (§2.1.1's overhead). Indexed mode
  /// walks the member's CSR entries.
  template <typename Fn>
  static void for_level_edges(const FactorGraph& g,
                              const std::vector<std::uint32_t>& level,
                              std::uint32_t from_level,
                              std::uint32_t to_level, bool naive,
                              perf::Meter& meter, Fn&& fn) {
    const auto& edges = g.edges();
    const NodeId n = g.num_nodes();
    if (naive) {
      for (NodeId v = 0; v < n; ++v) {
        meter.seq_read(sizeof(std::uint32_t));  // level-array scan
        if (level[v] != from_level) continue;
        // Full edge-list scan to find v's outgoing edges; each candidate
        // costs the struct read plus the level lookups of both endpoints.
        meter.seq_read(edges.size() * sizeof(DirectedEdge));
        meter.near_read(sizeof(std::uint32_t), 2 * edges.size());
        for (EdgeId e = 0; e < edges.size(); ++e) {
          if (edges[e].src == v && level[edges[e].dst] == to_level) {
            fn(e);
          }
        }
      }
    } else {
      for (NodeId v = 0; v < n; ++v) {
        meter.seq_read(sizeof(std::uint32_t));
        if (level[v] != from_level) continue;
        meter.seq_read(sizeof(std::uint64_t));
        for (const auto& entry : g.out_csr().neighbors(v)) {
          meter.seq_read(sizeof(entry));
          meter.rand_read(sizeof(std::uint32_t));  // level[dst]
          if (level[entry.node] == to_level) fn(entry.edge);
        }
      }
    }
  }

  perf::HardwareProfile profile_;
};

}  // namespace

std::unique_ptr<Engine> make_tree(const perf::HardwareProfile& p) {
  return std::make_unique<TreeEngine>(p);
}

}  // namespace credo::bp::internal
