// Closed-form LDPC decode runners (DESIGN.md §5g).
//
// The tabular engines push beliefs through joint-matrix products; the LDPC
// families replace that kernel with the closed-form tanh-domain update
// driven by the Tanner graph's bipartite structure. Nothing else changes:
// each runner below composes the same schedule / convergence-controller /
// driver stack as its tabular sibling, so work queues, residual
// prioritization, relaxed multi-queues, splashes, cancellation and
// deadlines all apply to decoding unchanged.
//
// Message layout: one float per directed edge. An edge v→c carries the
// variable-to-check message Q (initialized to the channel LLR of v); an
// edge c→v carries the check-to-variable message R (initialized to 0). The
// builder guarantees every edge has its reverse, and the pairing is indexed
// once at setup.
//
// Paradigm mapping:
//  * c-node / omp-node / residual / residual-* / splash — Gauss-Seidel in
//    place: a node update reads current messages and rewrites its outgoing
//    ones. Workers write disjoint edges (each directed edge has exactly one
//    source), so the parallel forms need no atomics; torn reads of a
//    neighbor's in-flight message are the same chaotic relaxation the
//    tabular §2.4 engines already make.
//  * c-edge / omp-edge — Jacobi double-buffer: every message of sweep i+1
//    is computed from sweep i's snapshot (the edge paradigm's "push from
//    the previous iteration" semantics), which also makes the parallel
//    form race-free.
//
// Convergence: variable updates contribute belief L1 deltas exactly like
// tabular nodes; check updates contribute tanh-domain message deltas
// (bounded by 2 per edge, so the shared thresholds stay meaningful). Check
// nodes are never observed, so every schedule — including the residual and
// relaxed priority ones — prioritizes check residuals with no special
// casing. When BpOptions::syndrome_stop is set, the runners additionally
// test hard-decision parity at the convergence-check cadence (sweeps) or
// at epoch boundaries (priority loops) and end the run as converged on
// satisfaction; the final state is always tested once so
// BpStats::syndrome_satisfied reports decode success either way.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bp/engines_internal.h"
#include "bp/runtime/backend.h"
#include "bp/runtime/convergence.h"
#include "bp/runtime/driver.h"
#include "bp/runtime/mq_schedule.h"
#include "bp/runtime/observe.h"
#include "bp/runtime/schedule.h"
#include "parallel/thread_pool.h"
#include "perf/cost_model.h"
#include "util/error.h"
#include "util/timer.h"

namespace credo::bp::internal {
namespace {

using graph::BeliefVec;
using graph::EdgeId;
using graph::FactorGraph;
using graph::NodeId;
using parallel::ThreadPool;

/// LLR clamp: messages and totals live in [-20, 20], wide enough that the
/// implied probability saturates (sigmoid(20) ≈ 1 - 2e-9) and narrow
/// enough that exp/tanh never overflow.
constexpr float kLlrClamp = 20.0f;

/// |tanh| below this is treated as an erasure in the check product so one
/// uninformative input cannot zero the exclusion products of the others.
constexpr float kTanhEps = 1e-7f;

/// The exclusion product is clamped inside (-1, 1) before atanh: in float,
/// tanh(x) rounds to exactly ±1.0f from |x| ≈ 9.011, and atanh(±1) is inf.
constexpr float kTanhClamp = 0.999999f;

/// Same fixed scheduler seed as the tabular relaxed engines ("credosch"):
/// runs are reproducible per (graph, options, team size).
constexpr std::uint64_t kSchedSeed = 0x637265646f736368ULL;

inline float clamp_llr(float x) noexcept {
  return x < -kLlrClamp ? -kLlrClamp : (x > kLlrClamp ? kLlrClamp : x);
}

/// Decode-time view of an LDPC graph: channel LLRs, syndrome bits, the
/// directed-edge message array and the reverse-edge pairing. Built once per
/// run; the arrays are what the closed-form kernels touch, so the hot loop
/// never sees a JointMatrix.
struct LdpcState {
  const FactorGraph& g;
  NodeId vars;     // variables are [0, vars), checks [vars, num_nodes)
  bool min_sum;    // kLdpcMinSum: two-min approximation of the check update
  std::vector<float> llr;         // per variable: log(P(0) / P(1))
  std::vector<std::uint8_t> syn;  // per check, indexed by (c - vars)
  std::vector<EdgeId> reverse;    // reverse[e] pairs v→c with c→v
  std::vector<float> msg;         // one message per directed edge

  LdpcState(const FactorGraph& graph, perf::Meter& meter)
      : g(graph),
        vars(graph.ldpc_variables()),
        min_sum(graph.family() == graph::FactorFamily::kLdpcMinSum) {
    const NodeId n = g.num_nodes();
    llr.resize(vars);
    for (NodeId v = 0; v < vars; ++v) {
      const BeliefVec& p = g.prior(v);
      llr[v] = clamp_llr(std::log(p.v[0] < kMsgFloor ? kMsgFloor : p.v[0]) -
                         std::log(p.v[1] < kMsgFloor ? kMsgFloor : p.v[1]));
    }
    syn.resize(n - vars);
    for (NodeId c = vars; c < n; ++c) {
      syn[c - vars] = g.prior(c).v[1] > 0.5f ? 1 : 0;
    }
    const auto& edges = g.edges();
    std::unordered_map<std::uint64_t, EdgeId> index;
    index.reserve(edges.size());
    for (EdgeId e = 0; e < edges.size(); ++e) {
      index.emplace((static_cast<std::uint64_t>(edges[e].src) << 32) |
                        edges[e].dst,
                    e);
    }
    reverse.resize(edges.size());
    msg.resize(edges.size());
    for (EdgeId e = 0; e < edges.size(); ++e) {
      reverse[e] = index.at((static_cast<std::uint64_t>(edges[e].dst) << 32) |
                            edges[e].src);
      msg[e] = edges[e].src < vars ? llr[edges[e].src] : 0.0f;
    }
    // Setup cost: priors and the edge list streamed once, the message and
    // reverse arrays written once.
    meter.seq_read(belief_bytes(2) * n);
    meter.seq_read(sizeof(graph::DirectedEdge) * edges.size());
    meter.seq_write((4ull + sizeof(EdgeId)) * edges.size());
    meter.flop(2ull * vars);
  }
};

/// Variable update: total = llr + Σ R, each outgoing Q = total − R of the
/// paired reverse edge, belief = the sigmoid pair of the total. Returns the
/// belief L1 delta — the same convergence currency as a tabular node.
/// Reads from `in_msg`, writes to `out_msg`: aliased for Gauss-Seidel,
/// distinct buffers for the Jacobi (edge-paradigm) sweeps.
float update_variable(const LdpcState& st, const float* in_msg,
                      float* out_msg, std::vector<BeliefVec>& beliefs,
                      NodeId v, perf::Meter& meter) {
  const auto in = st.g.in_csr().neighbors(v);
  const auto out = st.g.out_csr().neighbors(v);
  meter.seq_read(2 * sizeof(std::uint64_t));  // CSR offsets
  float total = st.llr[v];
  meter.seq_read(4);
  for (const auto& entry : in) {
    meter.seq_read(sizeof(entry));
    total += in_msg[entry.edge];
    meter.rand_read(4);
  }
  meter.flop(in.size());
  for (const auto& entry : out) {
    meter.seq_read(sizeof(entry));
    out_msg[entry.edge] = clamp_llr(total - in_msg[st.reverse[entry.edge]]);
    meter.rand_read(4 + sizeof(EdgeId));  // paired message + reverse id
    meter.rand_write(4);
    meter.flop(2);
  }
  // Posterior bit marginal, stable for either sign of the total.
  BeliefVec nb;
  nb.size = 2;
  const float e = std::exp(-std::fabs(total));
  const float big = 1.0f / (1.0f + e);
  nb.v[0] = total >= 0.0f ? big : 1.0f - big;
  nb.v[1] = 1.0f - nb.v[0];
  meter.flop(5);
  const float d = graph::l1_diff(beliefs[v], nb);
  meter.flop(4);
  meter.rand_read(belief_bytes(2));
  graph::copy_belief(beliefs[v], nb);
  meter.rand_write(belief_bytes(2));
  return d;
}

/// Check update. Sum-product: tanh-domain exclusion product with the
/// zero-count trick (one pass collects the full product and counts
/// near-zero inputs; each output divides the product by its own input, or
/// degenerates when erasures are present). Min-sum: sign product plus the
/// two smallest magnitudes. Returns the summed tanh-domain message delta —
/// bounded by 2 per edge, so it shares the belief-delta thresholds.
float update_check(const LdpcState& st, const float* in_msg, float* out_msg,
                   NodeId c, perf::Meter& meter) {
  const auto in = st.g.in_csr().neighbors(c);
  const auto out = st.g.out_csr().neighbors(c);
  meter.seq_read(2 * sizeof(std::uint64_t));
  const float sign = st.syn[c - st.vars] ? -1.0f : 1.0f;
  meter.seq_read(1);
  float delta = 0.0f;
  if (!st.min_sum) {
    float prod = sign;
    std::uint32_t zeros = 0;
    EdgeId zero_edge = 0;
    for (const auto& entry : in) {
      meter.seq_read(sizeof(entry));
      const float t = std::tanh(0.5f * in_msg[entry.edge]);
      meter.rand_read(4);
      if (std::fabs(t) < kTanhEps) {
        ++zeros;
        zero_edge = entry.edge;
      } else {
        prod *= t;
      }
    }
    meter.flop(3ull * in.size());
    for (const auto& entry : out) {
      meter.seq_read(sizeof(entry));
      const EdgeId rev = st.reverse[entry.edge];
      float t_excl;
      if (zeros == 0) {
        t_excl = prod / std::tanh(0.5f * in_msg[rev]);
      } else if (zeros == 1 && rev == zero_edge) {
        t_excl = prod;  // the lone erasure is exactly the excluded input
      } else {
        t_excl = 0.0f;  // an erasure among the others voids this output
      }
      if (t_excl > kTanhClamp) t_excl = kTanhClamp;
      if (t_excl < -kTanhClamp) t_excl = -kTanhClamp;
      const float r_new = 2.0f * std::atanh(t_excl);
      delta += std::fabs(t_excl - std::tanh(0.5f * out_msg[entry.edge]));
      out_msg[entry.edge] = r_new;
      meter.rand_read(4 + sizeof(EdgeId));
      meter.rand_write(4);
      meter.flop(8);
    }
  } else {
    float m1 = kLlrClamp;  // the clamp doubles as "no input yet": a
    float m2 = kLlrClamp;  // degree-1 check emits a full-confidence R
    EdgeId arg = 0;
    float sgn = sign;
    for (const auto& entry : in) {
      meter.seq_read(sizeof(entry));
      const float q = in_msg[entry.edge];
      meter.rand_read(4);
      if (q < 0.0f) sgn = -sgn;
      const float a = std::fabs(q);
      if (a < m1) {
        m2 = m1;
        m1 = a;
        arg = entry.edge;
      } else if (a < m2) {
        m2 = a;
      }
    }
    meter.flop(3ull * in.size());
    for (const auto& entry : out) {
      meter.seq_read(sizeof(entry));
      const EdgeId rev = st.reverse[entry.edge];
      float s = sgn;
      if (in_msg[rev] < 0.0f) s = -s;  // remove the excluded input's sign
      const float r_new = s * (rev == arg ? m2 : m1);
      delta += std::fabs(std::tanh(0.5f * r_new) -
                         std::tanh(0.5f * out_msg[entry.edge]));
      out_msg[entry.edge] = r_new;
      meter.rand_read(4 + sizeof(EdgeId));
      meter.rand_write(4);
      meter.flop(6);
    }
  }
  return delta;
}

/// The per-node kernel every runner shares: variables and checks are both
/// first-class schedulable elements, so residual/relaxed priorities cover
/// check residuals with no special casing.
inline float update_ldpc_node(const LdpcState& st, const float* in_msg,
                              float* out_msg, std::vector<BeliefVec>& beliefs,
                              NodeId v, perf::Meter& meter) {
  return v < st.vars
             ? update_variable(st, in_msg, out_msg, beliefs, v, meter)
             : update_check(st, in_msg, out_msg, v, meter);
}

/// Hard-decides every variable from its current total LLR and tests every
/// parity check against the syndrome. O(E); run at the convergence-check
/// cadence, and once at the end of every run for BpStats reporting.
bool syndrome_satisfied(const LdpcState& st, const float* msg,
                        std::vector<std::uint8_t>& bits, perf::Meter& meter) {
  const NodeId n = st.g.num_nodes();
  bits.assign(st.vars, 0);
  for (NodeId v = 0; v < st.vars; ++v) {
    float total = st.llr[v];
    for (const auto& entry : st.g.in_csr().neighbors(v)) {
      total += msg[entry.edge];
    }
    bits[v] = total < 0.0f ? 1 : 0;
  }
  bool ok = true;
  for (NodeId c = st.vars; c < n && ok; ++c) {
    std::uint8_t acc = 0;
    for (const auto& entry : st.g.in_csr().neighbors(c)) {
      acc ^= bits[entry.node];
    }
    ok = acc == st.syn[c - st.vars];
  }
  // Each directed edge contributes one message or bit touch.
  meter.seq_read(4ull * st.g.num_edges());
  meter.flop(st.g.num_edges() + st.vars);
  return ok;
}

/// Recomputes every variable posterior from the final messages. Run once
/// at the end of every decode: schedules update variables and checks in
/// arbitrary order, so a variable's stored belief can lag the messages
/// that arrived after its last update — most visibly when the syndrome
/// rule stops the run the moment the checks flip a bit. The refresh makes
/// the returned beliefs (and ldpc::hard_decision) agree with the terminal
/// message state on every engine.
void finalize_beliefs(const LdpcState& st, const float* msg,
                      std::vector<BeliefVec>& beliefs, perf::Meter& meter) {
  for (NodeId v = 0; v < st.vars; ++v) {
    float total = st.llr[v];
    for (const auto& entry : st.g.in_csr().neighbors(v)) {
      total += msg[entry.edge];
    }
    BeliefVec nb;
    nb.size = 2;
    const float e = std::exp(-std::fabs(total));
    const float big = 1.0f / (1.0f + e);
    nb.v[0] = total >= 0.0f ? big : 1.0f - big;
    nb.v[1] = 1.0f - nb.v[0];
    graph::copy_belief(beliefs[v], nb);
  }
  meter.seq_read(4ull * st.g.num_edges() / 2 + 4ull * st.vars);
  meter.seq_write(belief_bytes(2) * st.vars);
  meter.flop(8ull * st.vars);
}

/// opts.threads override, same policy as the tabular parallel engines.
perf::HardwareProfile ldpc_effective_profile(
    const BpOptions& opts, const perf::HardwareProfile& profile) {
  if (opts.threads == 0 ||
      static_cast<int>(opts.threads) == profile.parallel_units) {
    return profile;
  }
  return perf::cpu_i7_7700hq_parallel(static_cast<int>(opts.threads));
}

/// Shared-pool selection, same policy as the tabular parallel engines.
ThreadPool& ldpc_select_pool(const BpOptions& opts,
                             const perf::HardwareProfile& prof,
                             std::optional<ThreadPool>& local) {
  if (opts.shared_pool &&
      opts.shared_pool->size() ==
          static_cast<unsigned>(prof.parallel_units)) {
    return *opts.shared_pool;
  }
  local.emplace(static_cast<unsigned>(prof.parallel_units));
  return *local;
}

/// Per-worker metering sinks, cache-line padded like the tabular engines'.
struct alignas(64) WorkerSink {
  perf::Counters counters;
};

}  // namespace

// ---------------------------------------------------------------------------
// c-node: sequential Gauss-Seidel sweeps over the NodeFrontier (§3.5 work
// queue included).
// ---------------------------------------------------------------------------

BpResult run_ldpc_node_sweep(const FactorGraph& g, const BpOptions& opts,
                             const perf::HardwareProfile& profile) {
  const util::Timer timer;
  BpResult r;
  r.beliefs = g.initial_beliefs();
  perf::Meter meter(r.stats.counters);
  LdpcState st(g, meter);

  runtime::NodeFrontier sched(g, opts.work_queue);
  const runtime::ConvergenceController ctl(
      opts, runtime::ConvergenceController::Cadence::kEveryIteration);
  const runtime::SequentialBackend backend;

  // §3.5 work-queue semantics adapted to message passing: a variable's
  // belief cannot move before any check has run, so keeping only
  // self-active nodes would freeze the whole variable side on the first
  // sweep. An active node re-enqueues itself AND its out-neighbors — the
  // nodes its updated messages feed — deduped by an iteration stamp.
  std::vector<std::uint32_t> stamp(g.num_nodes(), 0);
  const auto keep_active = [&](std::uint32_t iter, NodeId v) {
    const std::uint32_t token = iter + 1;
    if (stamp[v] != token) {
      stamp[v] = token;
      sched.keep(meter, v);
    }
    meter.seq_read(sizeof(std::uint64_t));
    for (const auto& entry : g.out_csr().neighbors(v)) {
      meter.seq_read(sizeof(entry));
      if (stamp[entry.node] != token) {
        stamp[entry.node] = token;
        sched.keep(meter, entry.node);
      }
    }
  };

  std::vector<std::uint8_t> bits;
  bool satisfied = false;
  runtime::run_loop(
      opts, r.stats, ctl, sched,
      [&](std::uint32_t iter, runtime::IterationOutcome& out) {
        out.delta = backend.reduce_range(
            0, sched.size(),
            [&](std::uint64_t lo, std::uint64_t hi, unsigned,
                double& partial) {
              for (std::uint64_t qi = lo; qi < hi; ++qi) {
                const NodeId v = sched.at(meter, qi);
                if (g.in_csr().degree(v) == 0) continue;
                ++out.processed;
                const float d = update_ldpc_node(st, st.msg.data(),
                                                 st.msg.data(), r.beliefs, v,
                                                 meter);
                partial += d;
                if (sched.queued() && ctl.element_active(d)) {
                  keep_active(iter, v);
                }
              }
            });
        if (ctl.syndrome_stop() && ctl.should_check(iter) &&
            syndrome_satisfied(st, st.msg.data(), bits, meter)) {
          satisfied = true;
          out.delta = 0.0;  // decode succeeded: trip the global rule
        }
      },
      [] { return 0.0; },
      [&] { return perf::model_time(r.stats.counters, profile); });
  finalize_beliefs(st, st.msg.data(), r.beliefs, meter);
  r.stats.syndrome_satisfied =
      satisfied || syndrome_satisfied(st, st.msg.data(), bits, meter);
  r.stats.time = perf::model_time(r.stats.counters, profile);
  r.stats.host_seconds = timer.seconds();
  return r;
}

// ---------------------------------------------------------------------------
// c-edge: sequential Jacobi sweeps — every message of sweep i+1 computed
// from sweep i's snapshot. The work queue has no incremental form here
// (messages, not log-accumulators), so queued runs sweep densely too.
// ---------------------------------------------------------------------------

BpResult run_ldpc_edge_sweep(const FactorGraph& g, const BpOptions& opts,
                             const perf::HardwareProfile& profile) {
  const util::Timer timer;
  BpResult r;
  r.beliefs = g.initial_beliefs();
  perf::Meter meter(r.stats.counters);
  LdpcState st(g, meter);
  std::vector<float> next(st.msg);
  const NodeId n = g.num_nodes();

  runtime::DenseSweep sched(g.edges().size());
  const runtime::ConvergenceController ctl(
      opts, runtime::ConvergenceController::Cadence::kEveryIteration);

  std::vector<std::uint8_t> bits;
  bool satisfied = false;
  runtime::run_loop(
      opts, r.stats, ctl, sched,
      [&](std::uint32_t iter, runtime::IterationOutcome& out) {
        double sum = 0.0;
        for (NodeId v = 0; v < n; ++v) {
          if (g.in_csr().degree(v) == 0) continue;
          sum += update_ldpc_node(st, st.msg.data(), next.data(), r.beliefs,
                                  v, meter);
        }
        std::swap(st.msg, next);
        out.processed = g.num_edges();
        out.delta = sum;
        if (ctl.syndrome_stop() && ctl.should_check(iter) &&
            syndrome_satisfied(st, st.msg.data(), bits, meter)) {
          satisfied = true;
          out.delta = 0.0;
        }
      },
      [] { return 0.0; },
      [&] { return perf::model_time(r.stats.counters, profile); });
  finalize_beliefs(st, st.msg.data(), r.beliefs, meter);
  r.stats.syndrome_satisfied =
      satisfied || syndrome_satisfied(st, st.msg.data(), bits, meter);
  r.stats.time = perf::model_time(r.stats.counters, profile);
  r.stats.host_seconds = timer.seconds();
  return r;
}

// ---------------------------------------------------------------------------
// omp-node: one fork/join region per sweep over the FragmentedNodeFrontier,
// chaotic Gauss-Seidel (workers write disjoint out-edges; torn neighbor
// reads are the standard §2.4 relaxation).
// ---------------------------------------------------------------------------

BpResult run_ldpc_node_parallel(const FactorGraph& g, const BpOptions& opts,
                                const perf::HardwareProfile& profile) {
  const util::Timer timer;
  const perf::HardwareProfile prof = ldpc_effective_profile(opts, profile);
  std::optional<ThreadPool> local_pool;
  ThreadPool& pool = ldpc_select_pool(opts, prof, local_pool);
  std::vector<WorkerSink> sinks(pool.size());

  BpResult r;
  r.beliefs = g.initial_beliefs();
  perf::Meter main_meter(r.stats.counters);
  LdpcState st(g, main_meter);

  runtime::FragmentedNodeFrontier sched(g, opts.work_queue, pool.size());
  const runtime::ConvergenceController ctl(
      opts, runtime::ConvergenceController::Cadence::kEveryIteration);
  runtime::PoolBackend backend(pool, opts, r.stats.counters);

  // Same neighbor re-enqueue as the sequential frontier (a variable side
  // frozen on sweep 1 otherwise); the stamp is an atomic exchange so
  // concurrent workers dedup without a lock.
  std::vector<std::atomic<std::uint32_t>> stamp(g.num_nodes());
  const auto keep_active = [&](perf::Meter& meter, unsigned w,
                               std::uint32_t iter, NodeId v) {
    const std::uint32_t token = iter + 1;
    if (stamp[v].exchange(token, std::memory_order_relaxed) != token) {
      sched.keep(meter, w, v);
    }
    meter.seq_read(sizeof(std::uint64_t));
    for (const auto& entry : g.out_csr().neighbors(v)) {
      meter.seq_read(sizeof(entry));
      if (stamp[entry.node].exchange(token, std::memory_order_relaxed) !=
          token) {
        sched.keep(meter, w, entry.node);
      }
    }
  };

  std::vector<std::uint8_t> bits;
  bool satisfied = false;
  runtime::run_loop(
      opts, r.stats, ctl, sched,
      [&](std::uint32_t iter, runtime::IterationOutcome& out) {
        const std::uint64_t count = sched.size();
        out.delta = backend.reduce_range(
            0, count,
            [&](std::uint64_t lo, std::uint64_t hi, unsigned w,
                double& partial) {
              perf::Meter meter(sinks[w].counters);
              for (std::uint64_t qi = lo; qi < hi; ++qi) {
                const NodeId v = sched.at(meter, qi);
                if (g.in_csr().degree(v) == 0) continue;
                const float d = update_ldpc_node(st, st.msg.data(),
                                                 st.msg.data(), r.beliefs, v,
                                                 meter);
                partial += d;
                if (sched.queued() && ctl.element_active(d)) {
                  keep_active(meter, w, iter, v);
                }
              }
            });
        out.processed = count;
        if (ctl.syndrome_stop() && ctl.should_check(iter) &&
            syndrome_satisfied(st, st.msg.data(), bits, main_meter)) {
          satisfied = true;
          out.delta = 0.0;
        }
      },
      [] { return 0.0; },
      [&] {
        perf::Counters total = r.stats.counters;
        for (const auto& s : sinks) total.add(s.counters);
        return perf::model_time(total, prof);
      });
  finalize_beliefs(st, st.msg.data(), r.beliefs, main_meter);
  r.stats.syndrome_satisfied =
      satisfied || syndrome_satisfied(st, st.msg.data(), bits, main_meter);
  for (const auto& s : sinks) r.stats.counters.add(s.counters);
  r.stats.time = perf::model_time(r.stats.counters, prof);
  r.stats.host_seconds = timer.seconds();
  return r;
}

// ---------------------------------------------------------------------------
// omp-edge: one fork/join region per Jacobi sweep. Reads come from the
// previous snapshot and writes are node-disjoint, so the region is
// race-free — the LDPC edge paradigm needs none of the tabular version's
// atomic combines.
// ---------------------------------------------------------------------------

BpResult run_ldpc_edge_parallel(const FactorGraph& g, const BpOptions& opts,
                                const perf::HardwareProfile& profile) {
  const util::Timer timer;
  const perf::HardwareProfile prof = ldpc_effective_profile(opts, profile);
  std::optional<ThreadPool> local_pool;
  ThreadPool& pool = ldpc_select_pool(opts, prof, local_pool);
  std::vector<WorkerSink> sinks(pool.size());

  BpResult r;
  r.beliefs = g.initial_beliefs();
  perf::Meter main_meter(r.stats.counters);
  LdpcState st(g, main_meter);
  std::vector<float> next(st.msg);
  const NodeId n = g.num_nodes();

  runtime::DenseSweep sched(g.edges().size());
  const runtime::ConvergenceController ctl(
      opts, runtime::ConvergenceController::Cadence::kEveryIteration);
  runtime::PoolBackend backend(pool, opts, r.stats.counters);

  std::vector<std::uint8_t> bits;
  bool satisfied = false;
  runtime::run_loop(
      opts, r.stats, ctl, sched,
      [&](std::uint32_t iter, runtime::IterationOutcome& out) {
        out.delta = backend.reduce_range(
            0, n,
            [&](std::uint64_t lo, std::uint64_t hi, unsigned w,
                double& partial) {
              perf::Meter meter(sinks[w].counters);
              for (std::uint64_t vi = lo; vi < hi; ++vi) {
                const auto v = static_cast<NodeId>(vi);
                if (g.in_csr().degree(v) == 0) continue;
                partial += update_ldpc_node(st, st.msg.data(), next.data(),
                                            r.beliefs, v, meter);
              }
            });
        std::swap(st.msg, next);
        out.processed = g.num_edges();
        if (ctl.syndrome_stop() && ctl.should_check(iter) &&
            syndrome_satisfied(st, st.msg.data(), bits, main_meter)) {
          satisfied = true;
          out.delta = 0.0;
        }
      },
      [] { return 0.0; },
      [&] {
        perf::Counters total = r.stats.counters;
        for (const auto& s : sinks) total.add(s.counters);
        return perf::model_time(total, prof);
      });
  finalize_beliefs(st, st.msg.data(), r.beliefs, main_meter);
  r.stats.syndrome_satisfied =
      satisfied || syndrome_satisfied(st, st.msg.data(), bits, main_meter);
  for (const auto& s : sinks) r.stats.counters.add(s.counters);
  r.stats.time = perf::model_time(r.stats.counters, prof);
  r.stats.host_seconds = timer.seconds();
  return r;
}

// ---------------------------------------------------------------------------
// residual: exact max-residual scheduling. Check updates feed residuals
// like any node's, so decoding inherits residual BP's update efficiency.
// ---------------------------------------------------------------------------

BpResult run_ldpc_residual(const FactorGraph& g, const BpOptions& opts,
                           const perf::HardwareProfile& profile) {
  const util::Timer timer;
  BpResult r;
  r.beliefs = g.initial_beliefs();
  perf::Meter meter(r.stats.counters);
  LdpcState st(g, meter);
  const NodeId n = g.num_nodes();

  const runtime::ConvergenceController ctl(
      opts, runtime::ConvergenceController::Cadence::kEveryIteration);
  runtime::ResidualSchedule sched(g, ctl, meter);

  std::vector<std::uint8_t> bits;
  bool satisfied = false;
  runtime::run_priority_loop(
      opts, n, r.stats, sched,
      [&](NodeId v) -> float {
        return update_ldpc_node(st, st.msg.data(), st.msg.data(), r.beliefs,
                                v, meter);
      },
      [&]() -> bool {
        if (!ctl.syndrome_stop()) return false;
        if (!syndrome_satisfied(st, st.msg.data(), bits, meter)) return false;
        satisfied = true;
        return true;
      },
      [&] { return perf::model_time(r.stats.counters, profile); });

  finalize_beliefs(st, st.msg.data(), r.beliefs, meter);
  r.stats.syndrome_satisfied =
      satisfied || syndrome_satisfied(st, st.msg.data(), bits, meter);
  r.stats.time = perf::model_time(r.stats.counters, profile);
  r.stats.host_seconds = timer.seconds();
  return r;
}

// ---------------------------------------------------------------------------
// residual-locked / residual-mq / splash: the relaxed concurrent policies.
// One fork/join region drains the whole decode; the syndrome hook runs at
// epoch boundaries under the driver mutex while workers keep updating (the
// same chaotic tolerance every relaxed read already has).
// ---------------------------------------------------------------------------

BpResult run_ldpc_relaxed(const FactorGraph& g, const BpOptions& opts,
                          EngineKind kind,
                          const perf::HardwareProfile& profile) {
  const util::Timer timer;
  const perf::HardwareProfile prof = ldpc_effective_profile(opts, profile);
  std::optional<ThreadPool> local_pool;
  ThreadPool& pool = ldpc_select_pool(opts, prof, local_pool);
  std::vector<WorkerSink> sinks(pool.size());

  BpResult r;
  r.beliefs = g.initial_beliefs();
  perf::Meter main_meter(r.stats.counters);
  LdpcState st(g, main_meter);
  const NodeId n = g.num_nodes();

  const runtime::ConvergenceController ctl(
      opts, runtime::ConvergenceController::Cadence::kEveryIteration);
  main_meter.parallel_region();

  std::vector<std::uint8_t> bits;
  bool satisfied = false;
  std::atomic<float> last_delta{0.0f};
  // Runs under the driver's epoch mutex: one evaluation at a time, charged
  // to the main counters (workers only ever touch their sinks).
  const auto hook = [&]() -> bool {
    if (!ctl.syndrome_stop()) return false;
    perf::Meter hook_meter(r.stats.counters);
    if (!syndrome_satisfied(st, st.msg.data(), bits, hook_meter)) {
      return false;
    }
    satisfied = true;
    return true;
  };
  const auto snapshot = [&] {
    perf::Counters total = r.stats.counters;
    for (const auto& s : sinks) total.add(s.counters);
    return perf::model_time(total, prof);
  };

  if (kind == EngineKind::kSplash) {
    runtime::SplashSchedule sched(g, ctl, pool.size(),
                                  opts.sched_queues_per_thread,
                                  opts.splash_max_size, kSchedSeed);
    // Per-worker splash scratch: the subtree plus its per-node deltas.
    // Unlike the tabular engine there are no belief copies to diff — check
    // deltas live in message space — so the splash total is the sum of the
    // two passes' kernel deltas.
    struct SplashScratch {
      std::vector<NodeId> sub;
      std::vector<float> deltas;
      std::vector<float> last_deltas;
    };
    std::vector<SplashScratch> scratches(pool.size());
    runtime::run_relaxed_priority_loop(
        opts, n, r.stats, sched, pool,
        [&](unsigned w) -> std::uint64_t {
          perf::Meter meter(sinks[w].counters);
          SplashScratch& sc = scratches[w];
          if (!sched.try_pop_subtree(w, meter, sc.sub)) return 0;
          const std::size_t m = sc.sub.size();
          sc.deltas.assign(m, 0.0f);
          sc.last_deltas.resize(m);
          // Leaf→root half-sweep (skipped for a lone root), then
          // root→leaf, exactly like the tabular splash.
          if (m > 1) {
            for (std::size_t i = m; i-- > 0;) {
              sc.deltas[i] += update_ldpc_node(st, st.msg.data(),
                                               st.msg.data(), r.beliefs,
                                               sc.sub[i], meter);
            }
          }
          float last = 0.0f;
          for (std::size_t i = 0; i < m; ++i) {
            sc.last_deltas[i] = update_ldpc_node(st, st.msg.data(),
                                                 st.msg.data(), r.beliefs,
                                                 sc.sub[i], meter);
            sc.deltas[i] += sc.last_deltas[i];
            last = sc.deltas[i];
          }
          sched.record_subtree(w, meter, sc.sub, sc.deltas, sc.last_deltas);
          last_delta.store(last, std::memory_order_relaxed);
          return m > 1 ? 2 * m : 1;
        },
        hook, snapshot);
    const runtime::SchedStats ss = sched.stats();
    runtime::observe_sched_run(ss.pops, ss.stale_pops, ss.inversions,
                               sched.heap_peaks());
  } else {
    runtime::MultiQueueSchedule sched(
        g, ctl, pool.size(), opts.sched_queues_per_thread, kSchedSeed,
        kind == EngineKind::kResidualLocked ? 1u : 0u);
    runtime::run_relaxed_priority_loop(
        opts, n, r.stats, sched, pool,
        [&](unsigned w) -> std::uint64_t {
          perf::Meter meter(sinks[w].counters);
          NodeId v = 0;
          if (!sched.try_pop(w, meter, v)) return 0;
          const float d = update_ldpc_node(st, st.msg.data(), st.msg.data(),
                                           r.beliefs, v, meter);
          sched.record(w, meter, v, d);
          last_delta.store(d, std::memory_order_relaxed);
          return 1;
        },
        hook, snapshot);
    const runtime::SchedStats ss = sched.stats();
    runtime::observe_sched_run(ss.pops, ss.stale_pops, ss.inversions,
                               sched.heap_peaks());
  }

  r.stats.final_delta = last_delta.load(std::memory_order_relaxed);
  finalize_beliefs(st, st.msg.data(), r.beliefs, main_meter);
  r.stats.syndrome_satisfied =
      satisfied || syndrome_satisfied(st, st.msg.data(), bits, main_meter);
  for (const auto& s : sinks) r.stats.counters.add(s.counters);
  r.stats.time = perf::model_time(r.stats.counters, prof);
  r.stats.host_seconds = timer.seconds();
  return r;
}

}  // namespace credo::bp::internal
