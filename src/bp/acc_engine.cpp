// OpenACC-style naive GPU offload (§2.4's second negative result).
//
// Models what the paper got from pragma-annotated offload after its tuning:
//  * edge paradigm only (work queues need "finer grained control than what
//    OpenACC offers") — hence a DenseSweep schedule;
//  * data stays device-resident after the initial load, with the
//    convergence scalar transferred only every `convergence_batch`
//    iterations (the paper had to override the runtime's default of full
//    per-iteration transfers to get even this) — the runtime layer's
//    batched controller cadence;
//  * the runtime's generated reduction "fail[s] to precisely compute the
//    convergence check": modelled as a per-element contribution floor
//    (denormal diffs are not accumulated exactly), which keeps the sum
//    pinned above the threshold on large graphs so runs terminate near the
//    iteration cap — the paper's observed behaviour;
//  * the hardware profile (profiles.h: gpu_gtx1070_openacc) charges the
//    runtime's higher launch overhead and lower achieved occupancy.
#include <vector>

#include "bp/engines_internal.h"
#include "bp/runtime/backend.h"
#include "bp/runtime/convergence.h"
#include "bp/runtime/driver.h"
#include "bp/runtime/schedule.h"
#include "gpusim/atomics.h"
#include "gpusim/device.h"
#include "graph/metadata.h"
#include "util/error.h"
#include "util/timer.h"

namespace credo::bp::internal {
namespace {

using graph::BeliefVec;
using graph::DirectedEdge;
using graph::EdgeId;
using graph::FactorGraph;
using graph::JointMatrix;
using graph::NodeId;
using gpusim::Device;
using gpusim::DeviceBuffer;
using gpusim::LaunchDims;
using gpusim::ThreadCtx;

/// Contribution floor of the imprecise runtime reduction.
constexpr float kReductionFloor = 1e-6f;

class AccEdgeEngine final : public Engine {
 public:
  explicit AccEdgeEngine(perf::HardwareProfile profile)
      : profile_(std::move(profile)) {
    CREDO_CHECK_MSG(profile_.kind == perf::PlatformKind::kGpu,
                    "OpenACC engine requires a GPU profile");
  }

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kAccEdge;
  }

  [[nodiscard]] const perf::HardwareProfile& hardware()
      const noexcept override {
    return profile_;
  }

 protected:
  [[nodiscard]] BpResult do_run(const FactorGraph& g,
                                const BpOptions& opts) const override {
    const util::Timer timer;
    Device dev(profile_);
    const NodeId n = g.num_nodes();
    const std::uint64_t m = g.num_edges();
    const auto md = graph::compute_metadata(g);
    const std::uint32_t b = md.beliefs;

    // Initial load: pragma data copy(...) — everything moves once. Belief
    // payloads are packed for transfer.
    std::uint64_t packed = 0;
    for (NodeId v = 0; v < n; ++v) packed += belief_bytes(g.arity(v));
    auto beliefs_buf = dev.alloc<BeliefVec>(n);
    dev.h2d<BeliefVec>(beliefs_buf, g.initial_beliefs(), packed);
    auto priors_buf = dev.alloc<BeliefVec>(n);
    {
      std::vector<BeliefVec> priors(n);
      for (NodeId v = 0; v < n; ++v) priors[v] = g.prior(v);
      dev.h2d<BeliefVec>(priors_buf, priors, packed);
    }
    auto observed_buf = dev.alloc<std::uint8_t>(n);
    {
      std::vector<std::uint8_t> obs(n);
      for (NodeId v = 0; v < n; ++v) obs[v] = g.observed(v) ? 1 : 0;
      dev.h2d<std::uint8_t>(observed_buf, obs);
    }
    auto edges_buf = dev.alloc<DirectedEdge>(m);
    dev.h2d<DirectedEdge>(edges_buf, g.edges());
    // OpenACC has no constant-memory placement: the shared matrix sits in
    // global memory and is charged as a scattered read per message.
    std::vector<JointMatrix> ms;
    if (g.joints().is_shared()) {
      ms.push_back(g.joints().shared_matrix());
    } else {
      ms.resize(m);
      for (EdgeId e = 0; e < m; ++e) ms[e] = g.joints().at(e);
    }
    auto joints_buf = dev.alloc<JointMatrix>(ms.size());
    dev.h2d<JointMatrix>(joints_buf, ms);
    auto acc_buf = dev.alloc<float>(static_cast<std::size_t>(n) * b);
    auto diff_buf = dev.alloc<float>(n);

    const auto beliefs = beliefs_buf.span();
    const auto observed = observed_buf.cspan();
    const auto edges = edges_buf.cspan();
    const auto joints = joints_buf.cspan();
    const auto acc = acc_buf.span();
    const auto diff = diff_buf.span();
    const bool shared = g.joints().is_shared();

    BpResult r;
    runtime::DenseSweep sched(m);
    const runtime::ConvergenceController ctl(
        opts, runtime::ConvergenceController::Cadence::kBatched);
    runtime::DeviceBackend backend(dev, opts.block_threads);

    runtime::run_loop(
        opts, r.stats, ctl, sched,
        [&](std::uint32_t, runtime::IterationOutcome& out) {
          out.delta_valid = false;

          backend.launch(n, [&](ThreadCtx& ctx) {
            const auto v = static_cast<NodeId>(ctx.global_id());
            const std::uint32_t arity = g.arity(v);
            for (std::uint32_t s = 0; s < arity; ++s) {
              acc.store(ctx, static_cast<std::size_t>(v) * b + s, 0.0f);
            }
          });

          backend.launch(m, [&](ThreadCtx& ctx) {
            thread_local BeliefVec msg;
            const auto e = static_cast<EdgeId>(ctx.global_id());
            const DirectedEdge ed = edges.load(ctx, e);
            const BeliefVec src = beliefs.load_bytes(
                ctx, ed.src, belief_bytes(g.arity(ed.src)));
            const JointMatrix& jm = *(joints.host_data() +
                                      (shared ? 0 : e));
            ctx.meter().rand_read(jm.payload_bytes());
            ctx.flop(graph::compute_message(src, jm, msg));
            for (std::uint32_t s = 0; s < msg.size; ++s) {
              gpusim::atomic_add(
                  ctx, acc, static_cast<std::size_t>(ed.dst) * b + s,
                  log_msg(msg.v[s]));
            }
            ctx.flop(2ull * msg.size);
          });
          out.processed = m;
          perf::Meter(dev.mutable_counters()).atomic(0, md.max_in_degree);

          backend.launch(n, [&](ThreadCtx& ctx) {
            const auto v = static_cast<NodeId>(ctx.global_id());
            if (observed.load(ctx, v) != 0 || g.in_csr().degree(v) == 0) {
              diff.store(ctx, v, 0.0f);
              return;
            }
            const std::uint32_t arity = g.arity(v);
            float local[graph::kMaxStates];
            for (std::uint32_t s = 0; s < arity; ++s) {
              local[s] =
                  acc.load(ctx, static_cast<std::size_t>(v) * b + s);
            }
            BeliefVec nb;
            ctx.flop(softmax(local, arity, nb));
            const BeliefVec prev =
                beliefs.load_bytes(ctx, v, belief_bytes(arity));
            ctx.flop(ctl.damp(nb, prev));
            float dlt = graph::l1_diff(prev, nb);
            ctx.flop(2ull * arity);
            // The imprecise runtime reduction: contributions are floored
            // rather than accumulated exactly.
            if (dlt < kReductionFloor) dlt = kReductionFloor;
            beliefs.store_bytes(ctx, v, nb, belief_bytes(arity));
            diff.store(ctx, v, dlt);
          });
        },
        [&] { return backend.reduce_to_host(diff_buf, n); },
        [&] { return dev.modelled_time(); });

    r.beliefs.resize(n);
    dev.d2h<BeliefVec>(r.beliefs, beliefs_buf);
    r.stats.counters = dev.counters();
    r.stats.time = dev.modelled_time();
    r.stats.host_seconds = timer.seconds();
    return r;
  }

 private:
  perf::HardwareProfile profile_;
};

}  // namespace

std::unique_ptr<Engine> make_acc_edge(const perf::HardwareProfile& p) {
  return std::make_unique<AccEdgeEngine>(p);
}

}  // namespace credo::bp::internal
