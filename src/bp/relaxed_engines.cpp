// Relaxed concurrent residual engines (DESIGN.md §5f).
//
// Same update body as the sequential residual engine — pull parents
// through the batched message kernel, normalize, damp, L1 delta — but the
// schedule is one of the relaxed concurrent policies of mq_schedule.h and
// the drain runs as ONE fork/join region over the team:
//
//  * Residual MQ ("residual-mq") — MultiQueueSchedule: each worker loops
//    pop/update/record against k sharded heaps. Pops are approximately
//    max-residual, which preserves residual scheduling's update efficiency
//    while removing the exact engine's single serial heap.
//
//  * Splash ("splash") — SplashSchedule: each pop claims a root, grows a
//    bounded disjoint BFS subtree (graph::bfs_subtree) and sweeps it
//    leaf→root→leaf as one batch, amortizing the priority pop over
//    splash_max_size cache-friendly updates.
//
// Like the OpenMP engines, belief reads are in-place (chaotic): a worker
// may read a parent mid-write by another worker. The claim flags guarantee
// no two workers ever *update* the same node concurrently, which is the
// invariant residual splash needs; torn parent reads are the standard
// async-BP relaxation the §2.4 engines already make.
#include <atomic>
#include <optional>
#include <vector>

#include "bp/engines_internal.h"
#include "bp/runtime/convergence.h"
#include "bp/runtime/driver.h"
#include "bp/runtime/init.h"
#include "bp/runtime/mq_schedule.h"
#include "bp/runtime/observe.h"
#include "parallel/thread_pool.h"
#include "perf/cost_model.h"
#include "util/error.h"
#include "util/timer.h"

namespace credo::bp::internal {
namespace {

using graph::BeliefVec;
using graph::FactorGraph;
using graph::NodeId;
using parallel::ThreadPool;

/// Fixed scheduler seed: runs are reproducible per (graph, options,
/// team size) with no extra knob; a one-worker run replays exactly.
constexpr std::uint64_t kSchedSeed = 0x637265646f736368ULL;  // "credosch"

/// Per-worker metering sinks, cache-line padded (same shape as the §2.4
/// engines').
struct alignas(64) WorkerSink {
  perf::Counters counters;
};

class RelaxedEngineBase : public Engine {
 public:
  explicit RelaxedEngineBase(perf::HardwareProfile profile)
      : profile_(std::move(profile)) {
    CREDO_CHECK_MSG(profile_.kind == perf::PlatformKind::kCpuParallel,
                    "relaxed priority engine requires a CPU-parallel "
                    "profile");
  }

  [[nodiscard]] const perf::HardwareProfile& hardware()
      const noexcept override {
    return profile_;
  }

 protected:
  [[nodiscard]] static parallel::ThreadPool& select_pool(
      const BpOptions& opts, const perf::HardwareProfile& prof,
      std::optional<parallel::ThreadPool>& local) {
    if (opts.shared_pool &&
        opts.shared_pool->size() ==
            static_cast<unsigned>(prof.parallel_units)) {
      return *opts.shared_pool;
    }
    local.emplace(static_cast<unsigned>(prof.parallel_units));
    return *local;
  }

  [[nodiscard]] perf::HardwareProfile effective_profile(
      const BpOptions& opts) const {
    if (opts.threads == 0 ||
        static_cast<int>(opts.threads) == profile_.parallel_units) {
      return profile_;
    }
    return perf::cpu_i7_7700hq_parallel(static_cast<int>(opts.threads));
  }

  void finish(BpResult& r, const util::Timer& timer,
              const perf::HardwareProfile& p,
              std::vector<WorkerSink>& sinks) const {
    for (const auto& s : sinks) r.stats.counters.add(s.counters);
    r.stats.time = perf::model_time(r.stats.counters, p);
    r.stats.host_seconds = timer.seconds();
  }

  [[nodiscard]] perf::TimeBreakdown snapshot_time(
      const BpResult& r, const std::vector<WorkerSink>& sinks,
      const perf::HardwareProfile& p) const {
    perf::Counters total = r.stats.counters;
    for (const auto& s : sinks) total.add(s.counters);
    return perf::model_time(total, p);
  }

  /// Beliefs never charged as cache-resident: the MQ engine's pops land on
  /// unrelated nodes, so every touch is a scattered DRAM access.
  struct NeverNear {
    constexpr bool operator()(NodeId) const noexcept { return false; }
  };

  /// The shared node-update body: recompute v's belief from its parents.
  /// Metering matches the sequential residual engine event for event,
  /// except that belief touches for which `near(node)` holds are charged
  /// as cache-resident — the splash engine passes its just-pulled subtree.
  template <typename NearPred = NeverNear>
  static float update_node(const FactorGraph& g,
                           const runtime::ConvergenceController& ctl,
                           std::vector<BeliefVec>& beliefs, NodeId v,
                           perf::Meter& meter, EdgeBlockScratch& scratch,
                           BeliefVec& prev, NearPred near = NearPred{}) {
    graph::copy_belief(prev, beliefs[v]);
    if (near(v)) {
      meter.near_read(belief_bytes(prev.size));
    } else {
      meter.rand_read(belief_bytes(prev.size));
    }
    BeliefVec acc = BeliefVec::ones(g.arity(v));
    meter.seq_read(sizeof(std::uint64_t));
    pull_parents_blocked(g.in_csr().neighbors(v), beliefs, g.joints(),
                         meter, scratch, acc, near);
    graph::normalize(acc);
    meter.flop(2ull * acc.size);
    meter.flop(ctl.damp(acc, prev));
    graph::copy_belief(beliefs[v], acc);
    if (near(v)) {
      meter.near_write(belief_bytes(acc.size));
    } else {
      meter.rand_write(belief_bytes(acc.size));
    }
    const float d = graph::l1_diff(prev, acc);
    meter.flop(2ull * acc.size);
    return d;
  }

  perf::HardwareProfile profile_;
};

// ---------------------------------------------------------------------------
// Residual MQ
// ---------------------------------------------------------------------------

class ResidualMqEngine final : public RelaxedEngineBase {
 public:
  /// `locked` selects the concurrency baseline: one exact heap behind one
  /// lock (MultiQueueSchedule with a single shard) instead of the relaxed
  /// sharded configuration — the "residual-locked" engine the §5f bench
  /// measures the relaxation against.
  ResidualMqEngine(perf::HardwareProfile profile, bool locked)
      : RelaxedEngineBase(std::move(profile)), locked_(locked) {}

  [[nodiscard]] EngineKind kind() const noexcept override {
    return locked_ ? EngineKind::kResidualLocked : EngineKind::kResidualMq;
  }

 protected:
  [[nodiscard]] BpResult do_run(const FactorGraph& g,
                                const BpOptions& opts) const override {
    if (graph::is_ldpc(g.family())) {
      return run_ldpc_relaxed(g, opts, kind(), profile_);
    }
    const util::Timer timer;
    const perf::HardwareProfile prof = effective_profile(opts);
    std::optional<ThreadPool> local_pool;
    ThreadPool& pool = select_pool(opts, prof, local_pool);
    std::vector<WorkerSink> sinks(pool.size());

    BpResult r;
    r.beliefs = runtime::initial_state(g, opts);
    const NodeId n = g.num_nodes();

    const runtime::ConvergenceController ctl(
        opts, runtime::ConvergenceController::Cadence::kEveryIteration);
    runtime::MultiQueueSchedule sched(g, ctl, pool.size(),
                                      opts.sched_queues_per_thread,
                                      kSchedSeed,
                                      locked_ ? 1u : 0u,
                                      opts.frontier_seed.get());

    // The whole drain is one fork/join region (vs. one per sweep for the
    // §2.4 engines): team wake/join is paid once per run.
    perf::Meter main_meter(r.stats.counters);
    main_meter.parallel_region();

    std::atomic<float> last_delta{0.0f};
    runtime::run_relaxed_priority_loop(
        opts, n, r.stats, sched, pool,
        [&](unsigned w) -> std::uint64_t {
          perf::Meter meter(sinks[w].counters);
          NodeId v = 0;
          if (!sched.try_pop(w, meter, v)) return 0;
          thread_local EdgeBlockScratch scratch;
          thread_local BeliefVec prev;
          const float d =
              update_node(g, ctl, r.beliefs, v, meter, scratch, prev);
          sched.record(w, meter, v, d);
          last_delta.store(d, std::memory_order_relaxed);
          return 1;
        },
        [&] { return snapshot_time(r, sinks, prof); });
    r.stats.final_delta = last_delta.load(std::memory_order_relaxed);

    const runtime::SchedStats ss = sched.stats();
    runtime::observe_sched_run(ss.pops, ss.stale_pops, ss.inversions,
                               sched.heap_peaks());
    finish(r, timer, prof, sinks);
    return r;
  }

 private:
  bool locked_;
};

// ---------------------------------------------------------------------------
// Splash
// ---------------------------------------------------------------------------

class SplashEngine final : public RelaxedEngineBase {
 public:
  using RelaxedEngineBase::RelaxedEngineBase;

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kSplash;
  }

 protected:
  [[nodiscard]] BpResult do_run(const FactorGraph& g,
                                const BpOptions& opts) const override {
    if (graph::is_ldpc(g.family())) {
      return run_ldpc_relaxed(g, opts, kind(), profile_);
    }
    const util::Timer timer;
    const perf::HardwareProfile prof = effective_profile(opts);
    std::optional<ThreadPool> local_pool;
    ThreadPool& pool = select_pool(opts, prof, local_pool);
    std::vector<WorkerSink> sinks(pool.size());

    BpResult r;
    r.beliefs = runtime::initial_state(g, opts);
    const NodeId n = g.num_nodes();

    const runtime::ConvergenceController ctl(
        opts, runtime::ConvergenceController::Cadence::kEveryIteration);
    runtime::SplashSchedule sched(g, ctl, pool.size(),
                                  opts.sched_queues_per_thread,
                                  opts.splash_max_size, kSchedSeed,
                                  opts.frontier_seed.get());

    // Per-worker splash scratch: the subtree, pre-splash belief copies
    // (total per-node deltas are measured against them), the deltas, and
    // an epoch-stamped membership map (splash_max_size nodes fit in L2, so
    // in-subtree belief touches after the first pull are near accesses).
    struct SplashScratch {
      std::vector<NodeId> sub;
      std::vector<BeliefVec> before;
      std::vector<float> deltas;       // total change across the splash
      std::vector<float> last_deltas;  // change of the final-pass update
      std::vector<std::uint32_t> stamp;
      std::uint32_t epoch = 0;
    };
    std::vector<SplashScratch> scratches(pool.size());

    perf::Meter main_meter(r.stats.counters);
    main_meter.parallel_region();

    std::atomic<float> last_delta{0.0f};
    runtime::run_relaxed_priority_loop(
        opts, n, r.stats, sched, pool,
        [&](unsigned w) -> std::uint64_t {
          perf::Meter meter(sinks[w].counters);
          SplashScratch& sc = scratches[w];
          if (!sched.try_pop_subtree(w, meter, sc.sub)) return 0;
          thread_local EdgeBlockScratch scratch;
          thread_local BeliefVec prev;
          const std::size_t m = sc.sub.size();
          sc.before.resize(m);
          sc.deltas.resize(m);
          sc.last_deltas.resize(m);
          if (sc.stamp.size() < n) sc.stamp.assign(n, 0);
          if (++sc.epoch == 0) {  // uint32 wrap: restart the stamp space
            std::fill(sc.stamp.begin(), sc.stamp.end(), 0u);
            sc.epoch = 1;
          }
          // First touch pulls each subtree belief from DRAM; the sweeps
          // below then hit the cache-resident copy (in_subtree below).
          for (std::size_t i = 0; i < m; ++i) {
            graph::copy_belief(sc.before[i], r.beliefs[sc.sub[i]]);
            meter.rand_read(belief_bytes(sc.before[i].size));
            sc.stamp[sc.sub[i]] = sc.epoch;
          }
          const auto in_subtree = [&sc](NodeId u) noexcept {
            return sc.stamp[u] == sc.epoch;
          };
          // Leaf→root half-sweep (skipped for a lone root), then
          // root→leaf: information flows up the subtree and back down in
          // one batch — two updates per node instead of two pops.
          if (m > 1) {
            for (std::size_t i = m; i-- > 0;) {
              update_node(g, ctl, r.beliefs, sc.sub[i], meter, scratch,
                          prev, in_subtree);
            }
          }
          float last = 0.0f;
          for (std::size_t i = 0; i < m; ++i) {
            sc.last_deltas[i] = update_node(g, ctl, r.beliefs, sc.sub[i],
                                            meter, scratch, prev, in_subtree);
            sc.deltas[i] = graph::l1_diff(sc.before[i], r.beliefs[sc.sub[i]]);
            meter.flop(2ull * sc.before[i].size);
            last = sc.deltas[i];
          }
          sched.record_subtree(w, meter, sc.sub, sc.deltas, sc.last_deltas);
          last_delta.store(last, std::memory_order_relaxed);
          return m > 1 ? 2 * m : 1;
        },
        [&] { return snapshot_time(r, sinks, prof); });
    r.stats.final_delta = last_delta.load(std::memory_order_relaxed);

    const runtime::SchedStats ss = sched.stats();
    runtime::observe_sched_run(ss.pops, ss.stale_pops, ss.inversions,
                               sched.heap_peaks());
    finish(r, timer, prof, sinks);
    return r;
  }
};

}  // namespace

std::unique_ptr<Engine> make_residual_locked(const perf::HardwareProfile& p) {
  return std::make_unique<ResidualMqEngine>(p, /*locked=*/true);
}

std::unique_ptr<Engine> make_residual_mq(const perf::HardwareProfile& p) {
  return std::make_unique<ResidualMqEngine>(p, /*locked=*/false);
}

std::unique_ptr<Engine> make_splash(const perf::HardwareProfile& p) {
  return std::make_unique<SplashEngine>(p);
}

}  // namespace credo::bp::internal
