// The engine interface and registry — Credo's suite of implementations.
//
// The paper's core four are the sequential C Node/Edge and CUDA Node/Edge
// engines (§3.6); the OpenMP- and OpenACC-style engines reproduce the §2.4
// negative results; the tree engine is the §2.1.1 non-loopy baseline.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "bp/options.h"
#include "graph/factor_graph.h"
#include "perf/profiles.h"

namespace credo::bp {

/// Engine identifiers, named as the paper names them.
enum class EngineKind {
  kCpuNode,   // "C Node"  — sequential, per-node processing
  kCpuEdge,   // "C Edge"  — sequential, per-edge processing
  kOmpNode,   // OpenMP-style CPU-parallel, per-node
  kOmpEdge,   // OpenMP-style CPU-parallel, per-edge
  kCudaNode,  // "CUDA Node" on the simulated device
  kCudaEdge,  // "CUDA Edge" on the simulated device
  kAccEdge,   // OpenACC-style naive offload (edge paradigm)
  kTree,      // non-loopy two-pass tree BP (§2.1.1 baseline)
  kResidual,  // residual-prioritized scheduling (extension; cf. §5.1)
  kResidualLocked,  // concurrent residual baseline: one exact heap, one
                    // lock (the scheduler §5f relaxes away)
  kResidualMq,      // residual over a relaxed MultiQueue (DESIGN.md §5f)
  kSplash,          // residual roots + bounded BFS subtree sweeps (§5f)
  kSharded,         // partitioned shards + ghost-buffer exchange (§5i)
};

/// Human-readable engine name ("C Node", "CUDA Edge", ...).
[[nodiscard]] std::string_view engine_name(EngineKind kind) noexcept;

/// CLI slug for an engine ("c-node", "cuda-edge", ...): lowercase,
/// hyphen-separated, stable across releases.
[[nodiscard]] std::string_view engine_slug(EngineKind kind) noexcept;

/// True when `kind` can run graphs of `family` (DESIGN.md §5g). The
/// tabular family runs everywhere; the closed-form LDPC families run on
/// the CPU engines only — the tree recursion and the simulated-device
/// engines have no closed-form kernel. Engine::run enforces this (throws
/// util::InvalidArgument); front ends use it to pick a capable default.
[[nodiscard]] bool engine_supports_family(EngineKind kind,
                                          graph::FactorFamily family) noexcept;

/// True when `kind` honors BpOptions::init_beliefs on graphs of `family`
/// (DESIGN.md §5h). Warm starts are a CPU-engine, tabular-family feature:
/// the tree baseline's exact two-pass answer is start-independent, the
/// simulated-device engines re-upload uniform state by design, and the
/// LDPC runners keep message state in log-likelihood ratios that a belief
/// overlay cannot express. Engine::run enforces this.
[[nodiscard]] bool engine_supports_warm_start(
    EngineKind kind, graph::FactorFamily family) noexcept;

/// True when `kind` honors BpOptions::frontier_seed on graphs of `family`
/// (DESIGN.md §5h). A strict subset of warm-start support: the node-frontier
/// and residual schedules can start from a perturbed region, but the edge
/// engines' incremental accumulators are only filled by a full first sweep,
/// so they take warm starts without seeding. Engine::run enforces this.
[[nodiscard]] bool engine_supports_frontier_seed(
    EngineKind kind, graph::FactorFamily family) noexcept;

/// The single engine-name parser (every front end routes through this: the
/// CLI, the serve layer, tools). Accepts the paper names produced by
/// engine_name ("CUDA Edge"), the CLI slugs ("cuda-edge") and common
/// aliases ("openmp-node" for "omp-node", "openacc-edge" for "acc-edge",
/// "tree-bp" for "tree"); matching is case-insensitive and treats spaces,
/// underscores and hyphens alike. Returns nullopt for anything else.
[[nodiscard]] std::optional<EngineKind> engine_from_name(
    std::string_view name) noexcept;

/// Result of a propagation: final beliefs plus run statistics.
struct BpResult {
  std::vector<graph::BeliefVec> beliefs;
  BpStats stats;
};

/// A belief-propagation engine bound to a hardware profile.
class Engine {
 public:
  virtual ~Engine() = default;

  [[nodiscard]] virtual EngineKind kind() const noexcept = 0;
  [[nodiscard]] virtual const perf::HardwareProfile& hardware()
      const noexcept = 0;

  /// Runs BP on `g` to convergence (or the iteration cap) and returns the
  /// marginal beliefs. Validates `opts` first (BpOptions::validate, which
  /// throws util::InvalidArgument on out-of-domain settings). The graph is
  /// not modified; engines copy the mutable state they need. When `g` was
  /// built through the locality pass (graph/reorder.h), the returned
  /// beliefs are un-permuted back to the caller's original node ids.
  [[nodiscard]] BpResult run(const graph::FactorGraph& g,
                             const BpOptions& opts) const;

  [[nodiscard]] std::string_view name() const noexcept {
    return engine_name(kind());
  }

 protected:
  /// Engine implementation hook; `opts` arrives validated.
  [[nodiscard]] virtual BpResult do_run(const graph::FactorGraph& g,
                                        const BpOptions& opts) const = 0;
};

/// Creates an engine of the given kind on the given hardware profile. CPU
/// kinds require a CPU profile and GPU kinds a GPU profile (checked).
[[nodiscard]] std::unique_ptr<Engine> make_engine(
    EngineKind kind, const perf::HardwareProfile& profile);

/// Convenience: engines on the paper's default hardware (i7-7700HQ +
/// GTX 1070). OpenMP engines get the 8-thread profile.
[[nodiscard]] std::unique_ptr<Engine> make_default_engine(EngineKind kind);

}  // namespace credo::bp
