// Sequential "C" engines — the paper's control implementations (§3.6).
//
// Both follow Algorithm 1 with in-place (chaotic/Gauss-Seidel) updates:
// each node keeps a local previous copy for the convergence diff and reads
// whatever its neighbors' current beliefs are, exactly as lines 5-12
// describe. The Node engine pulls from parents per node; the Edge engine
// pushes one message per directed edge into log-space accumulators (the
// combine that must be atomic in the parallel engines, §3.3).
//
// Composition over the runtime layer (DESIGN.md §5b): NodeFrontier /
// DenseSweep / EdgeFrontier schedules, the every-iteration convergence
// cadence, and the sequential backend. The bodies below are the paradigm
// kernels with their original metering, untouched.
#include <vector>

#include "bp/engines_internal.h"
#include "bp/runtime/backend.h"
#include "bp/runtime/convergence.h"
#include "bp/runtime/driver.h"
#include "bp/runtime/init.h"
#include "bp/runtime/schedule.h"
#include "graph/metadata.h"
#include "perf/cost_model.h"
#include "util/error.h"
#include "util/timer.h"

namespace credo::bp::internal {
namespace {

using graph::BeliefVec;
using graph::EdgeId;
using graph::FactorGraph;
using graph::NodeId;

/// Common base handling profile storage and result finalization.
class CpuEngineBase : public Engine {
 public:
  explicit CpuEngineBase(perf::HardwareProfile profile)
      : profile_(std::move(profile)) {
    CREDO_CHECK_MSG(profile_.kind == perf::PlatformKind::kCpuSerial,
                    "sequential engine requires a serial CPU profile");
  }

  [[nodiscard]] const perf::HardwareProfile& hardware()
      const noexcept override {
    return profile_;
  }

 protected:
  void finish(BpResult& r, const util::Timer& timer) const {
    r.stats.time = perf::model_time(r.stats.counters, profile_);
    r.stats.host_seconds = timer.seconds();
  }

  perf::HardwareProfile profile_;
};

// ---------------------------------------------------------------------------
// C Node
// ---------------------------------------------------------------------------

class CpuNodeEngine final : public CpuEngineBase {
 public:
  using CpuEngineBase::CpuEngineBase;

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kCpuNode;
  }

 protected:
  [[nodiscard]] BpResult do_run(const FactorGraph& g,
                                const BpOptions& opts) const override {
    // Per-graph family dispatch (§5g): decided once, before any loop.
    if (graph::is_ldpc(g.family())) {
      return run_ldpc_node_sweep(g, opts, profile_);
    }
    const util::Timer timer;
    BpResult r;
    r.beliefs = runtime::initial_state(g, opts);
    perf::Meter meter(r.stats.counters);

    const auto& in = g.in_csr();
    const auto& joints = g.joints();

    // Work queue (§3.5): indices of unconverged nodes; starts full — or
    // from the perturbed region on a seeded warm re-query (§5h).
    runtime::NodeFrontier sched(g, opts.work_queue, opts.frontier_seed.get());
    const runtime::ConvergenceController ctl(
        opts, runtime::ConvergenceController::Cadence::kEveryIteration);
    const runtime::SequentialBackend backend;

    // Hoisted hot-loop scratch: prev-copy and message block are
    // arity-aware (only padded live lanes move), not full 32-float
    // payloads.
    EdgeBlockScratch scratch;
    BeliefVec prev;
    runtime::run_loop(
        opts, r.stats, ctl, sched,
        [&](std::uint32_t, runtime::IterationOutcome& out) {
          out.delta = backend.reduce_range(
              0, sched.size(),
              [&](std::uint64_t lo, std::uint64_t hi, unsigned,
                  double& partial) {
                for (std::uint64_t qi = lo; qi < hi; ++qi) {
                  const NodeId v = sched.at(meter, qi);
                  if (!sched.queued() && g.observed(v)) continue;
                  // A node with no incoming edges receives no updates: its
                  // belief keeps its current (initial) value.
                  if (in.degree(v) == 0) continue;
                  ++out.processed;
                  const std::uint32_t b = g.arity(v);

                  // Local previous copy (Algorithm 1 line 5).
                  graph::copy_belief(prev, r.beliefs[v]);
                  meter.rand_read(belief_bytes(b));

                  // Pull from every parent (lines 6-9): scattered lookups,
                  // the Node paradigm's cost (§3.3). Per Algorithm 1, the
                  // new belief combines the incoming updates only — priors
                  // enter as the initial state. Parents run through the
                  // batched message kernel block by block.
                  BeliefVec acc = BeliefVec::ones(b);
                  meter.seq_read(sizeof(std::uint64_t));  // CSR offset
                  pull_parents_blocked(in.neighbors(v), r.beliefs, joints,
                                       meter, scratch, acc);
                  graph::normalize(acc);
                  meter.flop(2ull * b);
                  meter.flop(ctl.damp(acc, prev));
                  graph::copy_belief(r.beliefs[v], acc);
                  meter.rand_write(belief_bytes(b));

                  const float d = graph::l1_diff(prev, acc);
                  meter.flop(2ull * b);
                  partial += d;
                  if (sched.queued() && ctl.element_active(d)) {
                    sched.keep(meter, v);
                  }
                }
              });
        },
        [] { return 0.0; },  // delta is never deferred on the CPU
        [&] { return perf::model_time(r.stats.counters, profile_); });
    finish(r, timer);
    return r;
  }
};

// ---------------------------------------------------------------------------
// C Edge
// ---------------------------------------------------------------------------

class CpuEdgeEngine final : public CpuEngineBase {
 public:
  using CpuEngineBase::CpuEngineBase;

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kCpuEdge;
  }

 protected:
  [[nodiscard]] BpResult do_run(const FactorGraph& g,
                                const BpOptions& opts) const override {
    if (graph::is_ldpc(g.family())) {
      return run_ldpc_edge_sweep(g, opts, profile_);
    }
    return opts.work_queue ? run_queued(g, opts) : run_full(g, opts);
  }

 private:
  /// Jacobi-per-iteration form: reset accumulators, push every edge,
  /// derive beliefs. DenseSweep schedule — every edge, every iteration.
  [[nodiscard]] BpResult run_full(const FactorGraph& g,
                                  const BpOptions& opts) const {
    const util::Timer timer;
    BpResult r;
    r.beliefs = runtime::initial_state(g, opts);
    perf::Meter meter(r.stats.counters);

    const NodeId n = g.num_nodes();
    const auto& edges = g.edges();
    const auto& joints = g.joints();
    const std::uint32_t b = graph::compute_metadata(g).beliefs;

    std::vector<float> acc(static_cast<std::size_t>(n) * b, 0.0f);
    EdgeBlockScratch scratch;

    runtime::DenseSweep sched(edges.size());
    const runtime::ConvergenceController ctl(
        opts, runtime::ConvergenceController::Cadence::kEveryIteration);

    runtime::run_loop(
        opts, r.stats, ctl, sched,
        [&](std::uint32_t, runtime::IterationOutcome& out) {
          // Phase 1: reset accumulators to the multiplicative identity
          // (streaming); Algorithm 1 combines incoming updates only.
          for (NodeId v = 0; v < n; ++v) {
            const std::uint32_t arity = g.arity(v);
            float* a = acc.data() + static_cast<std::size_t>(v) * b;
            for (std::uint32_t s = 0; s < arity; ++s) a[s] = 0.0f;
            meter.seq_write(4ull * arity);
          }

          // Phase 2: one message per directed edge (edges sorted by source,
          // so the source belief is streamed; the destination combine is
          // the scattered write, §3.3). Edge-blocked traversal: gather a
          // block of sources, run the batched message kernel once, then
          // scatter the log-space combines in edge order.
          for (std::size_t base = 0; base < edges.size();
               base += graph::kEdgeBlock) {
            const std::size_t count =
                std::min(graph::kEdgeBlock, edges.size() - base);
            for (std::size_t k = 0; k < count; ++k) {
              const auto e = static_cast<EdgeId>(base + k);
              ++out.processed;
              const auto& ed = edges[e];
              meter.seq_read(sizeof(ed));
              const BeliefVec& src = r.beliefs[ed.src];
              meter.seq_read(belief_bytes(src.size));
              charge_joint_load(meter, joints, e);
              scratch.srcs[k] = &src;
              if (!joints.is_shared()) scratch.mats[k] = &joints.at(e);
            }
            meter.flop(compute_block(joints, scratch, count));
            for (std::size_t k = 0; k < count; ++k) {
              const auto& ed = edges[base + k];
              const BeliefVec& msg = scratch.msgs[k];
              float* a = acc.data() + static_cast<std::size_t>(ed.dst) * b;
              for (std::uint32_t s = 0; s < msg.size; ++s) {
                a[s] += log_msg(msg.v[s]);
              }
              meter.flop(2ull * msg.size);
              // Packed accumulator array stays cache-resident (near
              // scatter).
              meter.near_read(4ull * msg.size);
              meter.near_write(4ull * msg.size);
            }
          }

          // Phase 3: marginalize + convergence (streaming). Nodes with no
          // incoming edges received no updates and keep their beliefs.
          double sum = 0.0;
          for (NodeId v = 0; v < n; ++v) {
            if (g.observed(v) || g.in_csr().degree(v) == 0) continue;
            const std::uint32_t arity = g.arity(v);
            BeliefVec nb;
            meter.flop(softmax(acc.data() + static_cast<std::size_t>(v) * b,
                               arity, nb));
            meter.seq_read(4ull * arity);
            meter.flop(ctl.damp(nb, r.beliefs[v]));
            const float d = graph::l1_diff(r.beliefs[v], nb);
            meter.flop(2ull * arity);
            meter.seq_read(belief_bytes(arity));
            r.beliefs[v] = nb;
            meter.seq_write(belief_bytes(arity));
            sum += d;
          }
          out.delta = sum;
        },
        [] { return 0.0; },
        [&] { return perf::model_time(r.stats.counters, profile_); });
    finish(r, timer);
    return r;
  }

  /// §3.5 queued form: per-edge message caches are updated incrementally
  /// (acc += log(new) - log(old)); only edges whose source changed last
  /// iteration are reprocessed. EdgeFrontier schedule.
  [[nodiscard]] BpResult run_queued(const FactorGraph& g,
                                    const BpOptions& opts) const {
    const util::Timer timer;
    BpResult r;
    r.beliefs = runtime::initial_state(g, opts);
    perf::Meter meter(r.stats.counters);

    const NodeId n = g.num_nodes();
    const auto& edges = g.edges();
    const auto& joints = g.joints();
    const auto& out_csr = g.out_csr();
    const std::uint32_t b = graph::compute_metadata(g).beliefs;

    // Accumulators start at log(1) = 0: Algorithm 1 combines incoming
    // updates only (priors seed the initial beliefs the first messages are
    // computed from). Cached log-messages also start at 0.
    std::vector<float> acc(static_cast<std::size_t>(n) * b, 0.0f);
    std::vector<float> cache(edges.size() * static_cast<std::size_t>(b),
                             0.0f);
    std::vector<std::uint8_t> dirty(n, 0);

    runtime::EdgeFrontier sched(g);
    const runtime::ConvergenceController ctl(
        opts, runtime::ConvergenceController::Cadence::kEveryIteration);

    EdgeBlockScratch scratch;
    runtime::run_loop(
        opts, r.stats, ctl, sched,
        [&](std::uint32_t, runtime::IterationOutcome& out) {
          // Phase 1: replay queued edges with incremental combines. The
          // queue is rebuilt in ascending edge-id order (nodes scanned in
          // order, out-edges contiguous because edges are source-sorted),
          // so the edge structs, source beliefs and message caches are all
          // streamed. Edge-blocked traversal through the batched message
          // kernel.
          for (std::size_t qbase = 0; qbase < sched.size();
               qbase += graph::kEdgeBlock) {
            const std::size_t count =
                std::min<std::uint64_t>(graph::kEdgeBlock,
                                        sched.size() - qbase);
            for (std::size_t k = 0; k < count; ++k) {
              const EdgeId e = sched.at(meter, qbase + k);
              ++out.processed;
              const auto& ed = edges[e];
              meter.seq_read(sizeof(ed));
              const BeliefVec& src = r.beliefs[ed.src];
              meter.seq_read(belief_bytes(src.size));
              charge_joint_load(meter, joints, e);
              scratch.srcs[k] = &src;
              if (!joints.is_shared()) scratch.mats[k] = &joints.at(e);
            }
            meter.flop(compute_block(joints, scratch, count));
            for (std::size_t k = 0; k < count; ++k) {
              const EdgeId e = sched.peek(qbase + k);
              const auto& ed = edges[e];
              const BeliefVec& msg = scratch.msgs[k];
              float* a = acc.data() + static_cast<std::size_t>(ed.dst) * b;
              float* c = cache.data() + static_cast<std::size_t>(e) * b;
              for (std::uint32_t s = 0; s < msg.size; ++s) {
                const float lm = log_msg(msg.v[s]);
                a[s] += lm - c[s];
                c[s] = lm;
              }
              meter.flop(4ull * msg.size);
              meter.near_read(4ull * msg.size);   // packed accumulators
              meter.near_write(4ull * msg.size);
              meter.seq_read(4ull * msg.size);    // message cache, streamed
              meter.seq_write(4ull * msg.size);
              dirty[ed.dst] = 1;
              meter.near_write(1);
            }
          }

          // Phase 2: marginalize dirty nodes, rebuild the queue from the
          // out-edges of nodes that moved beyond the element threshold.
          double sum = 0.0;
          for (NodeId v = 0; v < n; ++v) {
            meter.seq_read(1);  // dirty flag scan
            if (!dirty[v]) continue;
            dirty[v] = 0;
            if (g.observed(v)) continue;
            const std::uint32_t arity = g.arity(v);
            BeliefVec nb;
            meter.flop(softmax(acc.data() + static_cast<std::size_t>(v) * b,
                               arity, nb));
            meter.near_read(4ull * arity);
            meter.flop(ctl.damp(nb, r.beliefs[v]));
            const float d = graph::l1_diff(r.beliefs[v], nb);
            meter.flop(2ull * arity);
            meter.rand_read(belief_bytes(arity));
            r.beliefs[v] = nb;
            meter.rand_write(belief_bytes(arity));
            sum += d;
            if (ctl.element_active(d)) {
              meter.seq_read(sizeof(std::uint64_t));  // CSR offset
              for (const auto& entry : out_csr.neighbors(v)) {
                meter.seq_read(sizeof(entry));
                if (!g.observed(entry.node)) {
                  sched.keep(meter, entry.edge);
                }
              }
            }
          }
          out.delta = sum;
        },
        [] { return 0.0; },
        [&] { return perf::model_time(r.stats.counters, profile_); });
    finish(r, timer);
    return r;
  }
};

}  // namespace

std::unique_ptr<Engine> make_cpu_node(const perf::HardwareProfile& p) {
  return std::make_unique<CpuNodeEngine>(p);
}

std::unique_ptr<Engine> make_cpu_edge(const perf::HardwareProfile& p) {
  return std::make_unique<CpuEdgeEngine>(p);
}

}  // namespace credo::bp::internal
