// Options and results shared by every BP engine.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "bp/runtime/stop.h"
#include "bp/runtime/telemetry.h"
#include "graph/belief.h"
#include "graph/csr.h"
#include "parallel/parallel_for.h"
#include "perf/cost_model.h"
#include "perf/counters.h"
#include "util/error.h"

namespace credo::bp {

/// Default heaps-per-worker for the relaxed priority engines. Named so
/// Engine::run can tell "left at default" from "explicitly configured"
/// when rejecting the knob on engines it does not apply to.
inline constexpr unsigned kDefaultSchedQueuesPerThread = 2;

/// Default splash subtree bound, same convention.
inline constexpr std::uint32_t kDefaultSplashMaxSize = 32;

/// Default shard count for the sharded engine (DESIGN.md §5i), matching
/// the paper machine's 8 hardware threads. Same named-default convention:
/// Engine::run rejects an explicitly configured value on engines that
/// cannot honor it.
inline constexpr unsigned kDefaultShardCount = 8;

/// Default boundary-exchange cadence for the sharded engine: publish and
/// import ghost beliefs after every local sweep.
inline constexpr std::uint32_t kDefaultShardExchangeEvery = 1;

/// Knobs for a propagation run. Defaults follow the paper's evaluation
/// setup: convergence within 0.001, cut off at 200 iterations, 1024-thread
/// blocks on the GPU.
struct BpOptions {
  /// Stop when the sum of per-node L1 belief changes drops below this.
  float convergence_threshold = 1e-3f;

  /// Hard iteration cap (the paper's 200).
  std::uint32_t max_iterations = 200;

  /// §3.5 work queues: only unconverged nodes/edges are processed after
  /// the first iteration.
  bool work_queue = false;

  /// Per-element convergence threshold used to drop elements from the work
  /// queue. The global threshold is an absolute sum over all nodes
  /// (Algorithm 1), so the per-element bar must sit well below
  /// threshold / num_nodes for the two stopping rules to agree.
  float queue_threshold = 1e-7f;

  /// GPU engines: iterations executed between convergence-check transfers
  /// (the batching of §2.4/§3.6). 1 = check every iteration.
  std::uint32_t convergence_batch = 4;

  /// CPU-parallel engines: team size and loop schedule (§2.4).
  unsigned threads = 8;
  parallel::Schedule schedule = parallel::Schedule::kStatic;
  std::uint64_t chunk = 256;

  /// GPU engines: threads per block (the paper uses 1024 everywhere).
  std::uint32_t block_threads = 1024;

  /// Damping factor in [0, 1): the stored belief becomes
  /// (1-damping)*update + damping*previous. 0 reproduces the paper's
  /// undamped Algorithm 1; positive values stabilize loopy dynamics on
  /// multi-stable systems (strong couplings, dense hubs) at the cost of
  /// extra flops per node.
  float damping = 0.0f;

  /// Tree (non-loopy) engine: true reproduces the paper's §2.1.1 baseline,
  /// which finds each level's members by rescanning the whole edge list
  /// (no adjacency index); false uses the CSR-indexed implementation.
  bool tree_naive = true;

  /// Record one runtime::IterationRecord per iteration into
  /// BpStats::trace (`credo_cli run --trace out.csv`). Off by default:
  /// cheap but not free — one cost-model evaluation per iteration.
  bool collect_trace = false;

  /// Cooperative cancellation (DESIGN.md §5c): the iteration drivers poll
  /// this token once per iteration and end the run with
  /// BpStats::stop_reason == kCancelled when it fires. Default-constructed
  /// tokens never fire.
  runtime::StopToken stop;

  /// Wall-clock budget for the run loop in seconds; 0 = unlimited. Checked
  /// at the convergence-check cadence; an over-budget run ends with
  /// stop_reason == kDeadline.
  double host_deadline_seconds = 0.0;

  /// Modelled-time budget in seconds; 0 = unlimited. Each check evaluates
  /// the cost model over the counters so far, so prefer the host budget
  /// when either would do.
  double modelled_deadline_seconds = 0.0;

  /// When set and sized to the effective team, the CPU-parallel engines
  /// dispatch fork/join regions on this pool instead of spawning their own
  /// (the serve layer shares one pool across requests). The pool supports
  /// one dispatcher at a time — callers serialize access. Not owned.
  parallel::ThreadPool* shared_pool = nullptr;

  /// Relaxed priority engines (residual-mq, splash): shard heaps per
  /// worker. k = sched_queues_per_thread * threads total heaps; 2–4 is the
  /// MultiQueue literature's sweet spot (DESIGN.md §5f). Rejected by
  /// Engine::run when set on any other engine.
  unsigned sched_queues_per_thread = kDefaultSchedQueuesPerThread;

  /// Splash engine: max nodes per BFS subtree swept as one batch. 1
  /// degenerates to plain relaxed residual scheduling. Rejected by
  /// Engine::run when set on a non-priority engine.
  std::uint32_t splash_max_size = kDefaultSplashMaxSize;

  /// Sharded engine (DESIGN.md §5i): number of contiguous-range shards the
  /// graph is cut into; each runs its own schedule and exchanges boundary
  /// beliefs through ghost buffers. Clamped to the node count at run time.
  /// Rejected by Engine::run when set on any other engine.
  unsigned shard_count = kDefaultShardCount;

  /// Sharded engine: local sweeps between boundary exchanges. 1 bounds
  /// ghost staleness at one sweep (tightest coupling); larger values
  /// amortize the exchange at the cost of staler ghosts and more
  /// iterations to convergence. Rejected on non-sharded engines.
  std::uint32_t shard_exchange_every = kDefaultShardExchangeEvery;

  /// LDPC families (DESIGN.md §5g): also stop when the decode's hard
  /// decisions satisfy every parity check — the natural decode-success
  /// criterion — evaluated at the convergence-check cadence alongside the
  /// belief-delta rule. A run stopped this way reports
  /// BpStats::syndrome_satisfied (and converged). Ignored by tabular
  /// graphs, which have no syndrome.
  bool syndrome_stop = false;

  /// Warm start (DESIGN.md §5h): initial belief state in the caller's
  /// ORIGINAL node ids, one entry per node. Null = every node starts at
  /// its prior (the cold default). Observed nodes always keep their fixed
  /// point-mass — the overlay never overrides evidence. Engine::run maps
  /// the vector through the graph's recorded permutation, size-checks it,
  /// and rejects it on engines without warm-start support
  /// (bp::engine_supports_warm_start). Shared, never mutated.
  std::shared_ptr<const std::vector<graph::BeliefVec>> init_beliefs;

  /// Incremental re-convergence (DESIGN.md §5h): the nodes an evidence
  /// delta touched, in the caller's ORIGINAL node ids. Null = full run.
  /// When set, the engine's schedule starts from this seed (expanded to
  /// the touched nodes' out-neighbors, since evidence on roots and
  /// observed nodes propagates only through their children) instead of
  /// the full node set, and grows it as changes ripple — the §3.5
  /// frontier machinery pointed at a perturbation instead of a cold
  /// start. Meaningful with init_beliefs holding a converged state;
  /// rejected on engines without seed support
  /// (bp::engine_supports_frontier_seed). Shared, never mutated.
  std::shared_ptr<const std::vector<graph::NodeId>> frontier_seed;

  /// Minimum damping applied while a frontier seed is set (DESIGN.md §5j).
  /// Topology churn creates fresh tight loops mid-run, exactly the regime
  /// where vanilla loopy BP oscillates (Bouttier et al.'s circular-BP
  /// analysis, PAPERS.md); this floor — effective damping is
  /// max(damping, frontier_damping) — stabilizes the perturbed region
  /// without slowing cold full runs, which ignore it. 0 (the default)
  /// leaves `damping` alone. Must be in [0, 1).
  float frontier_damping = 0.0f;

  // -------------------------------------------------------------------------
  // Fluent setters: `BpOptions{}.with_threads(4).with_damping(0.1f)` reads
  // as a request instead of a positional mutation. Each returns *this so
  // chains compose; plain aggregate initialization keeps working.
  // -------------------------------------------------------------------------
  BpOptions& with_convergence_threshold(float v) noexcept {
    convergence_threshold = v;
    return *this;
  }
  BpOptions& with_max_iterations(std::uint32_t v) noexcept {
    max_iterations = v;
    return *this;
  }
  BpOptions& with_work_queue(bool v = true) noexcept {
    work_queue = v;
    return *this;
  }
  BpOptions& with_queue_threshold(float v) noexcept {
    queue_threshold = v;
    return *this;
  }
  BpOptions& with_convergence_batch(std::uint32_t v) noexcept {
    convergence_batch = v;
    return *this;
  }
  BpOptions& with_threads(unsigned v) noexcept {
    threads = v;
    return *this;
  }
  BpOptions& with_schedule(parallel::Schedule v) noexcept {
    schedule = v;
    return *this;
  }
  BpOptions& with_chunk(std::uint64_t v) noexcept {
    chunk = v;
    return *this;
  }
  BpOptions& with_block_threads(std::uint32_t v) noexcept {
    block_threads = v;
    return *this;
  }
  BpOptions& with_damping(float v) noexcept {
    damping = v;
    return *this;
  }
  BpOptions& with_tree_naive(bool v = true) noexcept {
    tree_naive = v;
    return *this;
  }
  BpOptions& with_collect_trace(bool v = true) noexcept {
    collect_trace = v;
    return *this;
  }
  BpOptions& with_stop(runtime::StopToken t) noexcept {
    stop = std::move(t);
    return *this;
  }
  BpOptions& with_host_deadline(double seconds) noexcept {
    host_deadline_seconds = seconds;
    return *this;
  }
  BpOptions& with_modelled_deadline(double seconds) noexcept {
    modelled_deadline_seconds = seconds;
    return *this;
  }
  BpOptions& with_shared_pool(parallel::ThreadPool* pool) noexcept {
    shared_pool = pool;
    return *this;
  }
  BpOptions& with_sched_queues_per_thread(unsigned v) noexcept {
    sched_queues_per_thread = v;
    return *this;
  }
  BpOptions& with_splash_max_size(std::uint32_t v) noexcept {
    splash_max_size = v;
    return *this;
  }
  BpOptions& with_shards(
      unsigned count,
      std::uint32_t exchange_every = kDefaultShardExchangeEvery) noexcept {
    shard_count = count;
    shard_exchange_every = exchange_every;
    return *this;
  }
  BpOptions& with_syndrome_stop(bool v = true) noexcept {
    syndrome_stop = v;
    return *this;
  }
  BpOptions& with_init_beliefs(
      std::shared_ptr<const std::vector<graph::BeliefVec>> v) noexcept {
    init_beliefs = std::move(v);
    return *this;
  }
  BpOptions& with_frontier_seed(
      std::shared_ptr<const std::vector<graph::NodeId>> v) noexcept {
    frontier_seed = std::move(v);
    return *this;
  }
  BpOptions& with_frontier_damping(float v) noexcept {
    frontier_damping = v;
    return *this;
  }

  /// Rejects settings that would loop forever, divide by zero or never
  /// converge, reported through the shared status vocabulary (DESIGN.md
  /// §5e). The comparisons are written so NaN fails too.
  [[nodiscard]] util::Status validate_status() const noexcept {
    const auto invalid = [](const char* msg) {
      return util::Status(util::StatusCode::kInvalidArgument, msg);
    };
    if (!(convergence_threshold > 0.0f)) {
      return invalid("BpOptions: convergence_threshold must be positive");
    }
    if (!(queue_threshold > 0.0f)) {
      return invalid("BpOptions: queue_threshold must be positive");
    }
    if (!(queue_threshold < convergence_threshold)) {
      // The global threshold is an absolute sum over all nodes while the
      // queue bar is per element: a bar at or above the global threshold
      // lets the §3.5 work queue drop elements whose combined residual the
      // global stopping rule still counts, so the run can neither drain
      // nor converge.
      return invalid(
          "BpOptions: queue_threshold must be below "
          "convergence_threshold (the per-element bar must sit under the "
          "global stopping rule)");
    }
    if (max_iterations == 0) {
      return invalid("BpOptions: max_iterations must be nonzero");
    }
    if (!(damping >= 0.0f && damping < 1.0f)) {
      return invalid("BpOptions: damping must be in [0, 1)");
    }
    if (!(frontier_damping >= 0.0f && frontier_damping < 1.0f)) {
      return invalid("BpOptions: frontier_damping must be in [0, 1)");
    }
    if (threads == 0) {
      return invalid("BpOptions: threads must be nonzero");
    }
    if (block_threads == 0) {
      return invalid("BpOptions: block_threads must be nonzero");
    }
    if (convergence_batch == 0) {
      return invalid("BpOptions: convergence_batch must be nonzero");
    }
    if (!(host_deadline_seconds >= 0.0)) {
      return invalid("BpOptions: host_deadline_seconds must be >= 0");
    }
    if (sched_queues_per_thread == 0) {
      return invalid("BpOptions: sched_queues_per_thread must be >= 1");
    }
    if (splash_max_size == 0) {
      return invalid("BpOptions: splash_max_size must be >= 1");
    }
    if (shard_count == 0) {
      return invalid("BpOptions: shard_count must be >= 1");
    }
    if (shard_exchange_every == 0) {
      return invalid("BpOptions: shard_exchange_every must be >= 1");
    }
    if (!(modelled_deadline_seconds >= 0.0)) {
      return invalid("BpOptions: modelled_deadline_seconds must be >= 0");
    }
    return util::Status::ok();
  }

};

/// Outcome of a run. `time` is the modelled execution time on the engine's
/// hardware profile (see DESIGN.md §2); `host_seconds` is the real time the
/// simulation itself took (reported for transparency, never used in the
/// paper-reproduction tables).
struct BpStats {
  std::uint32_t iterations = 0;
  bool converged = false;
  double final_delta = 0.0;
  std::uint64_t elements_processed = 0;  // node- or edge-visits summed
  perf::Counters counters;
  perf::TimeBreakdown time;
  double host_seconds = 0.0;

  /// Host time Engine::run spent un-permuting beliefs back to the caller's
  /// original node ids (0 when the graph carried no permutation). Reported
  /// so request spans can attribute the phase (DESIGN.md §5e).
  double unpermute_seconds = 0.0;

  /// Why the run ended early, if it did (cancellation or a deadline,
  /// DESIGN.md §5c). kNone for runs that converged or hit the cap.
  runtime::StopReason stop_reason = runtime::StopReason::kNone;

  /// LDPC families: true when the run's hard decisions satisfied every
  /// parity check (decode success). Set whenever the final state
  /// satisfies the syndrome — whether the run stopped for that reason
  /// (BpOptions::syndrome_stop) or converged by deltas first.
  bool syndrome_satisfied = false;

  /// Number of nodes the run's schedule was seeded with (after expanding
  /// BpOptions::frontier_seed to the touched nodes' out-neighbors). 0 for
  /// cold full runs. Response::frontier_fraction derives from this.
  std::uint64_t frontier_seeded = 0;

  /// Per-iteration telemetry; filled only when BpOptions::collect_trace.
  std::vector<runtime::IterationRecord> trace;

  [[nodiscard]] double modelled_seconds() const noexcept {
    return time.total();
  }
};

}  // namespace credo::bp
