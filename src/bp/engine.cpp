#include "bp/engine.h"

#include <cctype>
#include <string>

#include "bp/engines_internal.h"
#include "graph/reorder.h"
#include "util/error.h"
#include "util/timer.h"

namespace credo::bp {

BpResult Engine::run(const graph::FactorGraph& g,
                     const BpOptions& opts) const {
  if (const auto s = opts.validate_status(); !s.is_ok()) {
    throw util::InvalidArgument(s.message());
  }
  // One capability gate for every engine: the tree recursion and the
  // device engines have no closed-form kernel, so they accept only the
  // tabular family. The CPU engines dispatch per graph inside do_run.
  if (!engine_supports_family(kind(), g.family())) {
    throw util::InvalidArgument(
        std::string("engine '") + std::string(engine_slug(kind())) +
        "' supports only the tabular family; the LDPC families run on "
        "the CPU engines (c-node, c-edge, omp-node, omp-edge, residual, "
        "residual-locked, residual-mq, splash)");
  }
  // The relaxed-scheduler knobs have no effect anywhere else; accepting
  // them silently on other engines would let a typoed engine name absorb a
  // carefully tuned configuration.
  const bool relaxed_priority = kind() == EngineKind::kResidualMq ||
                                kind() == EngineKind::kSplash;
  if (!relaxed_priority) {
    if (opts.sched_queues_per_thread != kDefaultSchedQueuesPerThread) {
      throw util::InvalidArgument(
          "BpOptions: sched_queues_per_thread applies only to the relaxed "
          "priority engines (residual-mq, splash)");
    }
    if (opts.splash_max_size != kDefaultSplashMaxSize) {
      throw util::InvalidArgument(
          "BpOptions: splash_max_size applies only to the relaxed "
          "priority engines (residual-mq, splash)");
    }
  }
  BpResult result = do_run(g, opts);
  // The locality pass renumbers nodes at build time; results leave the
  // engine layer in the caller's original ids so the pass stays invisible
  // above the graph layer. Timed so request spans can report the phase.
  if (const graph::Permutation* perm = g.permutation()) {
    const util::Timer unpermute_timer;
    result.beliefs = perm->unapply(result.beliefs);
    result.stats.unpermute_seconds = unpermute_timer.seconds();
  }
  return result;
}

std::string_view engine_name(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kCpuNode: return "C Node";
    case EngineKind::kCpuEdge: return "C Edge";
    case EngineKind::kOmpNode: return "OpenMP Node";
    case EngineKind::kOmpEdge: return "OpenMP Edge";
    case EngineKind::kCudaNode: return "CUDA Node";
    case EngineKind::kCudaEdge: return "CUDA Edge";
    case EngineKind::kAccEdge: return "OpenACC Edge";
    case EngineKind::kTree: return "Tree BP";
    case EngineKind::kResidual: return "Residual";
    case EngineKind::kResidualLocked: return "Residual Locked";
    case EngineKind::kResidualMq: return "Residual MQ";
    case EngineKind::kSplash: return "Splash";
  }
  return "unknown";
}

std::string_view engine_slug(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kCpuNode: return "c-node";
    case EngineKind::kCpuEdge: return "c-edge";
    case EngineKind::kOmpNode: return "omp-node";
    case EngineKind::kOmpEdge: return "omp-edge";
    case EngineKind::kCudaNode: return "cuda-node";
    case EngineKind::kCudaEdge: return "cuda-edge";
    case EngineKind::kAccEdge: return "acc-edge";
    case EngineKind::kTree: return "tree";
    case EngineKind::kResidual: return "residual";
    case EngineKind::kResidualLocked: return "residual-locked";
    case EngineKind::kResidualMq: return "residual-mq";
    case EngineKind::kSplash: return "splash";
  }
  return "unknown";
}

bool engine_supports_family(EngineKind kind,
                            graph::FactorFamily family) noexcept {
  if (!graph::is_ldpc(family)) return true;
  switch (kind) {
    case EngineKind::kTree:
    case EngineKind::kCudaNode:
    case EngineKind::kCudaEdge:
    case EngineKind::kAccEdge:
      return false;
    default:
      return true;
  }
}

std::optional<EngineKind> engine_from_name(std::string_view name) noexcept {
  // Canonical form: lowercase, every run of spaces/underscores/hyphens
  // collapsed to one hyphen, outer separators trimmed. "CUDA Edge",
  // "cuda_edge" and "cuda-edge" all canonicalize to "cuda-edge".
  std::string key;
  key.reserve(name.size());
  for (const char c : name) {
    const bool sep = c == ' ' || c == '_' || c == '-' || c == '\t';
    if (sep) {
      if (!key.empty() && key.back() != '-') key.push_back('-');
    } else {
      key.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!key.empty() && key.back() == '-') key.pop_back();

  if (key == "c-node") return EngineKind::kCpuNode;
  if (key == "c-edge") return EngineKind::kCpuEdge;
  if (key == "omp-node" || key == "openmp-node") return EngineKind::kOmpNode;
  if (key == "omp-edge" || key == "openmp-edge") return EngineKind::kOmpEdge;
  if (key == "cuda-node") return EngineKind::kCudaNode;
  if (key == "cuda-edge") return EngineKind::kCudaEdge;
  if (key == "acc-edge" || key == "openacc-edge") {
    return EngineKind::kAccEdge;
  }
  if (key == "tree" || key == "tree-bp") return EngineKind::kTree;
  if (key == "residual") return EngineKind::kResidual;
  if (key == "residual-locked" || key == "locked") {
    return EngineKind::kResidualLocked;
  }
  if (key == "residual-mq" || key == "residual-multiqueue" ||
      key == "multiqueue" || key == "mq") {
    return EngineKind::kResidualMq;
  }
  if (key == "splash" || key == "residual-splash") {
    return EngineKind::kSplash;
  }
  return std::nullopt;
}

std::unique_ptr<Engine> make_engine(EngineKind kind,
                                    const perf::HardwareProfile& profile) {
  switch (kind) {
    case EngineKind::kCpuNode: return internal::make_cpu_node(profile);
    case EngineKind::kCpuEdge: return internal::make_cpu_edge(profile);
    case EngineKind::kOmpNode: return internal::make_omp_node(profile);
    case EngineKind::kOmpEdge: return internal::make_omp_edge(profile);
    case EngineKind::kCudaNode: return internal::make_cuda_node(profile);
    case EngineKind::kCudaEdge: return internal::make_cuda_edge(profile);
    case EngineKind::kAccEdge: return internal::make_acc_edge(profile);
    case EngineKind::kTree: return internal::make_tree(profile);
    case EngineKind::kResidual: return internal::make_residual(profile);
    case EngineKind::kResidualLocked:
      return internal::make_residual_locked(profile);
    case EngineKind::kResidualMq:
      return internal::make_residual_mq(profile);
    case EngineKind::kSplash: return internal::make_splash(profile);
  }
  throw util::InvalidArgument("unknown engine kind");
}

std::unique_ptr<Engine> make_default_engine(EngineKind kind) {
  switch (kind) {
    case EngineKind::kCpuNode:
    case EngineKind::kCpuEdge:
    case EngineKind::kTree:
    case EngineKind::kResidual:
      return make_engine(kind, perf::cpu_i7_7700hq_serial());
    case EngineKind::kOmpNode:
    case EngineKind::kOmpEdge:
    case EngineKind::kResidualLocked:
    case EngineKind::kResidualMq:
    case EngineKind::kSplash:
      return make_engine(kind, perf::cpu_i7_7700hq_parallel(8));
    case EngineKind::kCudaNode:
    case EngineKind::kCudaEdge:
      return make_engine(kind, perf::gpu_gtx1070());
    case EngineKind::kAccEdge:
      return make_engine(kind, perf::gpu_gtx1070_openacc());
  }
  throw util::InvalidArgument("unknown engine kind");
}

}  // namespace credo::bp
