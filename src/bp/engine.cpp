#include "bp/engine.h"

#include <cctype>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bp/engines_internal.h"
#include "bp/runtime/init.h"
#include "graph/reorder.h"
#include "util/error.h"
#include "util/timer.h"

namespace credo::bp {

BpResult Engine::run(const graph::FactorGraph& g,
                     const BpOptions& opts) const {
  if (const auto s = opts.validate_status(); !s.is_ok()) {
    throw util::InvalidArgument(s.message());
  }
  // One capability gate for every engine: the tree recursion and the
  // device engines have no closed-form kernel, so they accept only the
  // tabular family. The CPU engines dispatch per graph inside do_run.
  if (!engine_supports_family(kind(), g.family())) {
    throw util::InvalidArgument(
        std::string("engine '") + std::string(engine_slug(kind())) +
        "' supports only the tabular family; the LDPC families run on "
        "the CPU engines (c-node, c-edge, omp-node, omp-edge, residual, "
        "residual-locked, residual-mq, splash)");
  }
  // The relaxed-scheduler knobs have no effect anywhere else; accepting
  // them silently on other engines would let a typoed engine name absorb a
  // carefully tuned configuration.
  const bool relaxed_priority = kind() == EngineKind::kResidualMq ||
                                kind() == EngineKind::kSplash;
  if (!relaxed_priority) {
    if (opts.sched_queues_per_thread != kDefaultSchedQueuesPerThread) {
      throw util::InvalidArgument(
          "BpOptions: sched_queues_per_thread applies only to the relaxed "
          "priority engines (residual-mq, splash)");
    }
    if (opts.splash_max_size != kDefaultSplashMaxSize) {
      throw util::InvalidArgument(
          "BpOptions: splash_max_size applies only to the relaxed "
          "priority engines (residual-mq, splash)");
    }
  }
  // Same convention for the sharding knobs (DESIGN.md §5i).
  if (kind() != EngineKind::kSharded) {
    if (opts.shard_count != kDefaultShardCount) {
      throw util::InvalidArgument(
          "BpOptions: shard_count applies only to the sharded engine");
    }
    if (opts.shard_exchange_every != kDefaultShardExchangeEvery) {
      throw util::InvalidArgument(
          "BpOptions: shard_exchange_every applies only to the sharded "
          "engine");
    }
  }
  // Warm starts and frontier seeds (DESIGN.md §5h) are capability-gated the
  // same way: silently ignoring either would return beliefs the caller
  // believes were incrementally re-converged when they were not.
  if (opts.init_beliefs &&
      !engine_supports_warm_start(kind(), g.family())) {
    throw util::InvalidArgument(
        std::string("engine '") + std::string(engine_slug(kind())) +
        "' does not support warm starts (init_beliefs); see "
        "bp::engine_supports_warm_start");
  }
  if (opts.frontier_seed) {
    if (!opts.init_beliefs) {
      throw util::InvalidArgument(
          "BpOptions: frontier_seed without init_beliefs would re-converge "
          "only the perturbed region from cold priors — the untouched "
          "region's beliefs would be wrong. Seed only with a warm state.");
    }
    if (!engine_supports_frontier_seed(kind(), g.family())) {
      throw util::InvalidArgument(
          std::string("engine '") + std::string(engine_slug(kind())) +
          "' does not support frontier seeding (frontier_seed); see "
          "bp::engine_supports_frontier_seed");
    }
  }
  if (opts.init_beliefs && opts.init_beliefs->size() != g.num_nodes()) {
    throw util::InvalidArgument(
        "BpOptions: init_beliefs must hold exactly one belief per node");
  }
  // Callers speak original node ids; do_run speaks the graph's internal
  // (possibly reordered) ids. Translate both warm inputs here, in the same
  // place the outputs are translated back, so engine bodies never see a
  // permutation.
  const graph::Permutation* perm = g.permutation();
  BpOptions eff = opts;
  if (opts.init_beliefs && perm != nullptr) {
    eff.init_beliefs = std::make_shared<std::vector<graph::BeliefVec>>(
        perm->apply(*opts.init_beliefs));
  }
  if (opts.frontier_seed) {
    std::vector<graph::NodeId> touched;
    touched.reserve(opts.frontier_seed->size());
    for (const graph::NodeId v : *opts.frontier_seed) {
      if (v >= g.num_nodes()) {
        throw util::InvalidArgument(
            "BpOptions: frontier_seed contains an out-of-range node id");
      }
      touched.push_back(perm != nullptr ? perm->to_new(v) : v);
    }
    eff.frontier_seed = std::make_shared<std::vector<graph::NodeId>>(
        runtime::expand_frontier_seed(g, touched));
    // Circular-BP-style robustness floor (§5j): seeded runs re-converge a
    // perturbed region whose churn may have created fresh tight loops, so
    // the frontier damping floor kicks in only here — cold full runs keep
    // the caller's damping untouched.
    eff.damping = std::max(eff.damping, opts.frontier_damping);
  }
  BpResult result = do_run(g, eff);
  if (eff.frontier_seed) {
    result.stats.frontier_seeded = eff.frontier_seed->size();
  }
  // The locality pass renumbers nodes at build time; results leave the
  // engine layer in the caller's original ids so the pass stays invisible
  // above the graph layer. Timed so request spans can report the phase.
  if (perm != nullptr) {
    const util::Timer unpermute_timer;
    result.beliefs = perm->unapply(result.beliefs);
    result.stats.unpermute_seconds = unpermute_timer.seconds();
  }
  return result;
}

std::string_view engine_name(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kCpuNode: return "C Node";
    case EngineKind::kCpuEdge: return "C Edge";
    case EngineKind::kOmpNode: return "OpenMP Node";
    case EngineKind::kOmpEdge: return "OpenMP Edge";
    case EngineKind::kCudaNode: return "CUDA Node";
    case EngineKind::kCudaEdge: return "CUDA Edge";
    case EngineKind::kAccEdge: return "OpenACC Edge";
    case EngineKind::kTree: return "Tree BP";
    case EngineKind::kResidual: return "Residual";
    case EngineKind::kResidualLocked: return "Residual Locked";
    case EngineKind::kResidualMq: return "Residual MQ";
    case EngineKind::kSplash: return "Splash";
    case EngineKind::kSharded: return "Sharded";
  }
  return "unknown";
}

std::string_view engine_slug(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kCpuNode: return "c-node";
    case EngineKind::kCpuEdge: return "c-edge";
    case EngineKind::kOmpNode: return "omp-node";
    case EngineKind::kOmpEdge: return "omp-edge";
    case EngineKind::kCudaNode: return "cuda-node";
    case EngineKind::kCudaEdge: return "cuda-edge";
    case EngineKind::kAccEdge: return "acc-edge";
    case EngineKind::kTree: return "tree";
    case EngineKind::kResidual: return "residual";
    case EngineKind::kResidualLocked: return "residual-locked";
    case EngineKind::kResidualMq: return "residual-mq";
    case EngineKind::kSplash: return "splash";
    case EngineKind::kSharded: return "sharded";
  }
  return "unknown";
}

bool engine_supports_family(EngineKind kind,
                            graph::FactorFamily family) noexcept {
  if (!graph::is_ldpc(family)) return true;
  switch (kind) {
    case EngineKind::kTree:
    case EngineKind::kCudaNode:
    case EngineKind::kCudaEdge:
    case EngineKind::kAccEdge:
    // Sharded execution keeps per-shard belief state only; the LDPC
    // runners' per-edge LLR messages have no ghost representation yet.
    case EngineKind::kSharded:
      return false;
    default:
      return true;
  }
}

bool engine_supports_warm_start(EngineKind kind,
                                graph::FactorFamily family) noexcept {
  // The LDPC runners hold their state in per-edge log-likelihood-ratio
  // messages, not beliefs, so a belief overlay cannot seed them; the tree
  // baseline is exact and start-independent; the simulated-device engines
  // model a fresh upload of uniform state per run.
  if (graph::is_ldpc(family)) return false;
  switch (kind) {
    case EngineKind::kTree:
    case EngineKind::kCudaNode:
    case EngineKind::kCudaEdge:
    case EngineKind::kAccEdge:
      return false;
    default:
      return true;
  }
}

bool engine_supports_frontier_seed(EngineKind kind,
                                   graph::FactorFamily family) noexcept {
  if (!engine_supports_warm_start(kind, family)) return false;
  // The edge engines' queued mode fills its incremental message
  // accumulators on the first full sweep; a partial first frontier would
  // leave the unseeded region's accumulators missing contributions. They
  // accept warm starts (a dense first sweep recomputes every message from
  // the warm beliefs) but not seeds.
  return kind != EngineKind::kCpuEdge && kind != EngineKind::kOmpEdge;
}

std::optional<EngineKind> engine_from_name(std::string_view name) noexcept {
  // Canonical form: lowercase, every run of spaces/underscores/hyphens
  // collapsed to one hyphen, outer separators trimmed. "CUDA Edge",
  // "cuda_edge" and "cuda-edge" all canonicalize to "cuda-edge".
  std::string key;
  key.reserve(name.size());
  for (const char c : name) {
    const bool sep = c == ' ' || c == '_' || c == '-' || c == '\t';
    if (sep) {
      if (!key.empty() && key.back() != '-') key.push_back('-');
    } else {
      key.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!key.empty() && key.back() == '-') key.pop_back();

  if (key == "c-node") return EngineKind::kCpuNode;
  if (key == "c-edge") return EngineKind::kCpuEdge;
  if (key == "omp-node" || key == "openmp-node") return EngineKind::kOmpNode;
  if (key == "omp-edge" || key == "openmp-edge") return EngineKind::kOmpEdge;
  if (key == "cuda-node") return EngineKind::kCudaNode;
  if (key == "cuda-edge") return EngineKind::kCudaEdge;
  if (key == "acc-edge" || key == "openacc-edge") {
    return EngineKind::kAccEdge;
  }
  if (key == "tree" || key == "tree-bp") return EngineKind::kTree;
  if (key == "residual") return EngineKind::kResidual;
  if (key == "residual-locked" || key == "locked") {
    return EngineKind::kResidualLocked;
  }
  if (key == "residual-mq" || key == "residual-multiqueue" ||
      key == "multiqueue" || key == "mq") {
    return EngineKind::kResidualMq;
  }
  if (key == "splash" || key == "residual-splash") {
    return EngineKind::kSplash;
  }
  if (key == "sharded" || key == "shard" || key == "sharded-bp") {
    return EngineKind::kSharded;
  }
  return std::nullopt;
}

std::unique_ptr<Engine> make_engine(EngineKind kind,
                                    const perf::HardwareProfile& profile) {
  switch (kind) {
    case EngineKind::kCpuNode: return internal::make_cpu_node(profile);
    case EngineKind::kCpuEdge: return internal::make_cpu_edge(profile);
    case EngineKind::kOmpNode: return internal::make_omp_node(profile);
    case EngineKind::kOmpEdge: return internal::make_omp_edge(profile);
    case EngineKind::kCudaNode: return internal::make_cuda_node(profile);
    case EngineKind::kCudaEdge: return internal::make_cuda_edge(profile);
    case EngineKind::kAccEdge: return internal::make_acc_edge(profile);
    case EngineKind::kTree: return internal::make_tree(profile);
    case EngineKind::kResidual: return internal::make_residual(profile);
    case EngineKind::kResidualLocked:
      return internal::make_residual_locked(profile);
    case EngineKind::kResidualMq:
      return internal::make_residual_mq(profile);
    case EngineKind::kSplash: return internal::make_splash(profile);
    case EngineKind::kSharded: return internal::make_sharded(profile);
  }
  throw util::InvalidArgument("unknown engine kind");
}

std::unique_ptr<Engine> make_default_engine(EngineKind kind) {
  switch (kind) {
    case EngineKind::kCpuNode:
    case EngineKind::kCpuEdge:
    case EngineKind::kTree:
    case EngineKind::kResidual:
      return make_engine(kind, perf::cpu_i7_7700hq_serial());
    case EngineKind::kOmpNode:
    case EngineKind::kOmpEdge:
    case EngineKind::kResidualLocked:
    case EngineKind::kResidualMq:
    case EngineKind::kSplash:
    case EngineKind::kSharded:
      return make_engine(kind, perf::cpu_i7_7700hq_parallel(8));
    case EngineKind::kCudaNode:
    case EngineKind::kCudaEdge:
      return make_engine(kind, perf::gpu_gtx1070());
    case EngineKind::kAccEdge:
      return make_engine(kind, perf::gpu_gtx1070_openacc());
  }
  throw util::InvalidArgument("unknown engine kind");
}

}  // namespace credo::bp
