// Residual-prioritized BP — the extension the paper positions itself
// against (§5.1: Gonzalez et al.'s residual splash). Instead of sweeping
// all nodes per iteration (or a converged-filtered queue, §3.5), updates
// are scheduled by residual: the node whose belief moved most is updated
// next, and its change propagates to its children's priorities.
//
// Sequential CPU implementation; one "iteration" in the returned stats is
// one node update, so iteration counts are not comparable with the sweep
// engines — compare elements_processed instead (the residual scheduler's
// selling point is doing far fewer updates to reach the same fixed point).
#include <queue>
#include <vector>

#include "bp/engines_internal.h"
#include "graph/metadata.h"
#include "perf/cost_model.h"
#include "util/error.h"
#include "util/timer.h"

namespace credo::bp::internal {
namespace {

using graph::BeliefVec;
using graph::FactorGraph;
using graph::NodeId;

class ResidualEngine final : public Engine {
 public:
  explicit ResidualEngine(perf::HardwareProfile profile)
      : profile_(std::move(profile)) {
    CREDO_CHECK_MSG(profile_.kind == perf::PlatformKind::kCpuSerial,
                    "residual engine requires a serial CPU profile");
  }

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kResidual;
  }

  [[nodiscard]] const perf::HardwareProfile& hardware()
      const noexcept override {
    return profile_;
  }

  [[nodiscard]] BpResult run(const FactorGraph& g,
                             const BpOptions& opts) const override {
    const util::Timer timer;
    BpResult r;
    r.beliefs = g.initial_beliefs();
    perf::Meter meter(r.stats.counters);

    const auto& in = g.in_csr();
    const auto& out = g.out_csr();
    const auto& joints = g.joints();
    const NodeId n = g.num_nodes();

    // Priority queue of (residual, node). Stale entries are skipped by
    // comparing against the residual table (lazy deletion).
    std::vector<float> residual(n, 0.0f);
    using Entry = std::pair<float, NodeId>;
    std::priority_queue<Entry> pq;
    for (NodeId v = 0; v < n; ++v) {
      if (!g.observed(v) && in.degree(v) > 0) {
        residual[v] = std::numeric_limits<float>::max();
        pq.push({residual[v], v});
      }
    }

    // Update budget equivalent to the sweep engines' iteration cap.
    const std::uint64_t max_updates =
        static_cast<std::uint64_t>(opts.max_iterations) * n;
    std::uint64_t updates = 0;
    EdgeBlockScratch scratch;
    BeliefVec prev;
    while (!pq.empty() && updates < max_updates) {
      const auto [prio, v] = pq.top();
      pq.pop();
      meter.near_read(sizeof(Entry));
      if (prio != residual[v] || residual[v] <= opts.queue_threshold) {
        continue;  // stale or converged entry
      }
      ++updates;
      ++r.stats.elements_processed;

      graph::copy_belief(prev, r.beliefs[v]);
      meter.rand_read(belief_bytes(prev.size));
      BeliefVec acc = BeliefVec::ones(g.arity(v));
      meter.seq_read(sizeof(std::uint64_t));
      pull_parents_blocked(in.neighbors(v), r.beliefs, joints, meter,
                           scratch, acc);
      graph::normalize(acc);
      meter.flop(2ull * acc.size);
      meter.flop(apply_damping(acc, prev, opts.damping));
      graph::copy_belief(r.beliefs[v], acc);
      meter.rand_write(belief_bytes(acc.size));
      const float d = graph::l1_diff(prev, acc);
      meter.flop(2ull * acc.size);

      residual[v] = 0.0f;
      if (d > opts.queue_threshold) {
        // The change flows to this node's children: raise their priority.
        for (const auto& entry : out.neighbors(v)) {
          meter.seq_read(sizeof(entry));
          const NodeId c = entry.node;
          if (g.observed(c) || in.degree(c) == 0) continue;
          if (d > residual[c]) {
            residual[c] = d;
            pq.push({d, c});
            meter.near_write(sizeof(Entry));
          }
        }
      }
      r.stats.final_delta = d;
    }

    r.stats.iterations =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(
            updates / std::max<NodeId>(1, n) + 1, opts.max_iterations));
    r.stats.converged = pq.empty() || updates < max_updates;
    r.stats.time = perf::model_time(r.stats.counters, profile_);
    r.stats.host_seconds = timer.seconds();
    return r;
  }

 private:
  perf::HardwareProfile profile_;
};

}  // namespace

std::unique_ptr<Engine> make_residual(const perf::HardwareProfile& p) {
  return std::make_unique<ResidualEngine>(p);
}

}  // namespace credo::bp::internal
