// Residual-prioritized BP — the extension the paper positions itself
// against (§5.1: Gonzalez et al.'s residual splash). Instead of sweeping
// all nodes per iteration (or a converged-filtered queue, §3.5), updates
// are scheduled by residual: the node whose belief moved most is updated
// next, and its change propagates to its children's priorities.
//
// Sequential CPU implementation; one "iteration" in the returned stats is
// one node update, so iteration counts are not comparable with the sweep
// engines — compare elements_processed instead (the residual scheduler's
// selling point is doing far fewer updates to reach the same fixed point).
//
// Composition over the runtime layer (DESIGN.md §5b): the ResidualSchedule
// owns the lazy-deletion max-heap and reprioritization walk, the controller
// owns the per-element threshold and damping, and run_priority_loop owns
// the update budget and telemetry epochs.
#include <vector>

#include "bp/engines_internal.h"
#include "bp/runtime/convergence.h"
#include "bp/runtime/driver.h"
#include "bp/runtime/init.h"
#include "bp/runtime/schedule.h"
#include "graph/metadata.h"
#include "perf/cost_model.h"
#include "util/error.h"
#include "util/timer.h"

namespace credo::bp::internal {
namespace {

using graph::BeliefVec;
using graph::FactorGraph;
using graph::NodeId;

class ResidualEngine final : public Engine {
 public:
  explicit ResidualEngine(perf::HardwareProfile profile)
      : profile_(std::move(profile)) {
    CREDO_CHECK_MSG(profile_.kind == perf::PlatformKind::kCpuSerial,
                    "residual engine requires a serial CPU profile");
  }

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kResidual;
  }

  [[nodiscard]] const perf::HardwareProfile& hardware()
      const noexcept override {
    return profile_;
  }

 protected:
  [[nodiscard]] BpResult do_run(const FactorGraph& g,
                                const BpOptions& opts) const override {
    if (graph::is_ldpc(g.family())) {
      return run_ldpc_residual(g, opts, profile_);
    }
    const util::Timer timer;
    BpResult r;
    r.beliefs = runtime::initial_state(g, opts);
    perf::Meter meter(r.stats.counters);

    const auto& in = g.in_csr();
    const auto& joints = g.joints();
    const NodeId n = g.num_nodes();

    const runtime::ConvergenceController ctl(
        opts, runtime::ConvergenceController::Cadence::kEveryIteration);
    runtime::ResidualSchedule sched(g, ctl, meter, opts.frontier_seed.get());

    EdgeBlockScratch scratch;
    BeliefVec prev;
    runtime::run_priority_loop(
        opts, n, r.stats, sched,
        [&](NodeId v) -> float {
          graph::copy_belief(prev, r.beliefs[v]);
          meter.rand_read(belief_bytes(prev.size));
          BeliefVec acc = BeliefVec::ones(g.arity(v));
          meter.seq_read(sizeof(std::uint64_t));
          pull_parents_blocked(in.neighbors(v), r.beliefs, joints, meter,
                               scratch, acc);
          graph::normalize(acc);
          meter.flop(2ull * acc.size);
          meter.flop(ctl.damp(acc, prev));
          graph::copy_belief(r.beliefs[v], acc);
          meter.rand_write(belief_bytes(acc.size));
          const float d = graph::l1_diff(prev, acc);
          meter.flop(2ull * acc.size);
          return d;
        },
        [&] { return perf::model_time(r.stats.counters, profile_); });

    r.stats.time = perf::model_time(r.stats.counters, profile_);
    r.stats.host_seconds = timer.seconds();
    return r;
  }

 private:
  perf::HardwareProfile profile_;
};

}  // namespace

std::unique_ptr<Engine> make_residual(const perf::HardwareProfile& p) {
  return std::make_unique<ResidualEngine>(p);
}

}  // namespace credo::bp::internal
