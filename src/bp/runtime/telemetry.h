// Per-iteration telemetry for the BP runtime (DESIGN.md §5b).
//
// Every engine's driver loop can append one IterationRecord per round, so
// schedule behaviour — frontier shrink, batched-check cadence, where the
// modelled time goes — becomes observable instead of inferred from final
// stats. Collection is off by default (BpOptions::collect_trace) and the
// records live in BpStats::trace; `credo_cli run --trace out.csv` dumps
// them for any engine/graph.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "perf/cost_model.h"

namespace credo::bp::runtime {

/// One row of the per-iteration trace.
struct IterationRecord {
  /// 1-based iteration number (matches BpStats::iterations).
  std::uint32_t iteration = 0;

  /// Global L1 belief-change sum for this iteration. Only meaningful when
  /// `checked` is set: engines with deferred (batched, §3.6) convergence
  /// checks do not know the delta on intermediate iterations.
  double delta = 0.0;

  /// Whether the convergence sum was actually evaluated this iteration.
  bool checked = false;

  /// Elements the schedule offered this round (queue length, or the full
  /// node/edge count for dense sweeps).
  std::uint64_t frontier = 0;

  /// Elements actually processed (frontier minus skips such as observed or
  /// parentless nodes).
  std::uint64_t processed = 0;

  /// Cumulative modelled time at the end of this iteration.
  perf::TimeBreakdown time;
};

/// Writes the trace as CSV (header + one row per record).
void write_trace_csv(std::ostream& os,
                     const std::vector<IterationRecord>& trace);

}  // namespace credo::bp::runtime
