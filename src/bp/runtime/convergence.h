// The one convergence policy shared by every engine (DESIGN.md §5b).
//
// Owns the three stopping/demotion rules the paper describes plus damping:
//  * the global L1-sum threshold (Algorithm 1's convergence check);
//  * the per-element `queue_threshold` demotion that shrinks §3.5 work
//    queues;
//  * the §3.6 batched-check cadence (GPU engines only evaluate the global
//    sum every `convergence_batch` iterations to amortize the transfer);
//  * belief damping, applied between the raw update and the store.
//
// Engines used to re-implement each of these by hand; now they ask the
// controller, so the rules cannot diverge between paradigms.
#pragma once

#include <cstdint>

#include "bp/options.h"
#include "graph/belief.h"

namespace credo::bp::runtime {

class ConvergenceController {
 public:
  /// Whether the global sum is evaluated every iteration (CPU engines —
  /// the reduction is free once the deltas are in hand) or deferred on a
  /// `convergence_batch` cadence (GPU engines — the sum costs a reduction
  /// kernel plus a scalar transfer, §3.6).
  enum class Cadence { kEveryIteration, kBatched };

  ConvergenceController(const BpOptions& opts, Cadence cadence) noexcept
      : threshold_(opts.convergence_threshold),
        element_threshold_(opts.queue_threshold),
        damping_(opts.damping),
        batch_(cadence == Cadence::kBatched ? opts.convergence_batch : 1),
        max_iterations_(opts.max_iterations),
        syndrome_stop_(opts.syndrome_stop) {}

  /// True when the global sum should be evaluated after iteration `iter`
  /// (0-based). The final iteration is always checked so `final_delta` is
  /// meaningful even at the cap.
  [[nodiscard]] bool should_check(std::uint32_t iter) const noexcept {
    return (iter + 1) % batch_ == 0 || iter + 1 == max_iterations_;
  }

  /// Algorithm 1's global stopping rule.
  [[nodiscard]] bool global_converged(double sum) const noexcept {
    return sum < threshold_;
  }

  /// Per-element rule: does this delta keep the element on the work queue
  /// (§3.5) / worth reprioritizing (residual scheduling)?
  [[nodiscard]] bool element_active(float delta) const noexcept {
    return delta > element_threshold_;
  }

  /// LDPC families (DESIGN.md §5g): whether syndrome satisfaction is an
  /// additional stopping rule. The family runners evaluate it at the
  /// should_check cadence (sweeps) or at epoch boundaries (priority
  /// loops), alongside — never instead of — the belief-delta rule.
  [[nodiscard]] bool syndrome_stop() const noexcept {
    return syndrome_stop_;
  }

  /// Applies damping: b = (1-d)*b + d*prev, renormalized. No-op at d == 0.
  /// Returns flops performed (for the caller's meter).
  std::uint32_t damp(graph::BeliefVec& b,
                     const graph::BeliefVec& prev) const noexcept {
    if (damping_ <= 0.0f) return 0;
    for (std::uint32_t i = 0; i < b.size; ++i) {
      b.v[i] = (1.0f - damping_) * b.v[i] + damping_ * prev.v[i];
    }
    graph::normalize(b);
    return 5 * b.size;
  }

 private:
  float threshold_;
  float element_threshold_;
  float damping_;
  std::uint32_t batch_;
  std::uint32_t max_iterations_;
  bool syndrome_stop_;
};

}  // namespace credo::bp::runtime
