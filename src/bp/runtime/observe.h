// Always-on runtime metrics (DESIGN.md §5e).
//
// The per-iteration trace (telemetry.h) is opt-in because it allocates one
// record per iteration; production observability instead wants cheap
// aggregates that are always there. These hooks feed the process-wide
// obs::MetricsRegistry from the same spots the IterationRecord path
// samples — one sharded-atomic histogram observation per iteration and a
// couple of counters per run — so frontier occupancy, iteration counts and
// the convergence-check cadence are visible on any scrape without
// BpOptions::collect_trace. Cost: two relaxed RMWs per iteration against
// O(V+E) kernel work, measured <2% on the bench_reorder smoke suite.
#pragma once

#include <cstdint>
#include <span>

namespace credo::bp::runtime {

/// Records one driver iteration: the frontier the schedule offered and
/// whether the global convergence sum was evaluated this round.
void observe_iteration(std::uint64_t frontier, bool checked) noexcept;

/// Records a finished run: total iterations and whether it converged.
void observe_run(std::uint32_t iterations, bool converged) noexcept;

/// Records a finished relaxed-scheduler run (§5f): claim totals (pops),
/// superseded duplicates discarded (stale pops), sampled pop inversions,
/// and each shard heap's peak occupancy. Flushed once per run — the hot
/// path accumulates into per-worker lanes, never the registry.
void observe_sched_run(std::uint64_t pops, std::uint64_t stale_pops,
                       std::uint64_t inversions,
                       std::span<const std::uint64_t> heap_peaks) noexcept;

/// Records one splash subtree's size (nodes swept as one batch).
void observe_splash_subtree(std::uint64_t nodes) noexcept;

/// Records a finished sharded-engine run (§5i): per-shard local sweep
/// counts, total ghost-exchange payload moved, and the park/wake totals of
/// the quiescence coordinator. Flushed once per run.
void observe_shard_run(std::span<const std::uint32_t> sweeps,
                       std::uint64_t exchange_bytes, std::uint64_t parks,
                       std::uint64_t wakes) noexcept;

}  // namespace credo::bp::runtime
