// Execution backends (DESIGN.md §5b): where a schedule's elements run.
//
// The runtime's third axis. A backend binds the engine's loop body to an
// execution substrate without owning any BP semantics:
//  * SequentialBackend — the body runs inline on the calling thread;
//  * PoolBackend       — one fork/join dispatch over a ThreadPool per call
//                        (§2.4's "#pragma omp parallel for", with the
//                        parallel_region event the cost model charges for
//                        team wake/join);
//  * DeviceBackend     — kernel launches on the simulated GPU, plus the
//                        §3.6 shared-memory tree reduction for deferred
//                        convergence sums.
#pragma once

#include <cstdint>
#include <utility>

#include "bp/options.h"
#include "gpusim/device.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "perf/counters.h"

namespace credo::bp::runtime {

/// Inline execution: the body sees the whole range as one chunk, worker 0.
struct SequentialBackend {
  template <typename Body>
  void for_range(std::uint64_t begin, std::uint64_t end, Body&& body) const {
    if (begin < end) body(begin, end, 0u);
  }

  /// body(lo, hi, worker, partial); returns the accumulated sum.
  template <typename Body>
  [[nodiscard]] double reduce_range(std::uint64_t begin, std::uint64_t end,
                                    Body&& body) const {
    double partial = 0.0;
    if (begin < end) body(begin, end, 0u, partial);
    return partial;
  }
};

/// Fork/join dispatch over a ThreadPool with the run's schedule and chunk
/// size. Each dispatch meters one parallel_region on the main counters —
/// the team wake/join overhead that §2.4 found dominating BP's
/// sub-millisecond regions.
class PoolBackend {
 public:
  PoolBackend(parallel::ThreadPool& pool, const BpOptions& opts,
              perf::Counters& main_counters) noexcept
      : pool_(pool),
        schedule_(opts.schedule),
        chunk_(opts.chunk),
        meter_(main_counters) {}

  [[nodiscard]] unsigned workers() const noexcept { return pool_.size(); }

  template <typename Body>
  void for_range(std::uint64_t begin, std::uint64_t end, Body&& body) {
    meter_.parallel_region();
    parallel::parallel_for_chunked(pool_, begin, end, schedule_, chunk_,
                                   std::forward<Body>(body));
  }

  template <typename Body>
  [[nodiscard]] double reduce_range(std::uint64_t begin, std::uint64_t end,
                                    Body&& body) {
    meter_.parallel_region();
    return parallel::parallel_reduce_chunked(pool_, begin, end, schedule_,
                                             chunk_,
                                             std::forward<Body>(body));
  }

 private:
  parallel::ThreadPool& pool_;
  parallel::Schedule schedule_;
  std::uint64_t chunk_;
  perf::Meter meter_;
};

/// Kernel launches on the simulated device with the run's block size.
class DeviceBackend {
 public:
  DeviceBackend(gpusim::Device& dev, std::uint32_t block_threads) noexcept
      : dev_(dev), block_(block_threads) {}

  [[nodiscard]] gpusim::Device& device() const noexcept { return dev_; }

  template <typename Kernel>
  void launch(std::uint64_t work_items, Kernel&& kernel) {
    dev_.launch(gpusim::LaunchDims::cover(work_items, block_), work_items,
                std::forward<Kernel>(kernel));
  }

  /// The §3.6 deferred convergence sum: shared-memory tree reduction plus
  /// the scalar transfer of the batched check.
  [[nodiscard]] double reduce_to_host(const gpusim::DeviceBuffer<float>& buf,
                                      std::uint64_t n) {
    return dev_.read_scalar(dev_.reduce_sum(buf, n));
  }

 private:
  gpusim::Device& dev_;
  std::uint32_t block_;
};

}  // namespace credo::bp::runtime
