#include "bp/runtime/init.h"

#include <algorithm>

#include "graph/csr.h"
#include "util/error.h"

namespace credo::bp::runtime {

std::vector<graph::BeliefVec> initial_state(const graph::FactorGraph& g,
                                            const BpOptions& opts) {
  std::vector<graph::BeliefVec> state = g.initial_beliefs();
  if (!opts.init_beliefs) return state;
  const auto& warm = *opts.init_beliefs;
  CREDO_CHECK_MSG(warm.size() == state.size(),
                  "init_beliefs size mismatch (Engine::run checks this)");
  for (graph::NodeId v = 0; v < state.size(); ++v) {
    if (g.observed(v)) continue;  // evidence stays pinned
    if (warm[v].size != state[v].size) {
      throw util::InvalidArgument(
          "BpOptions: init_beliefs arity mismatch — warm state does not "
          "match this graph's node arities");
    }
    state[v] = warm[v];
  }
  return state;
}

std::vector<graph::NodeId> expand_frontier_seed(
    const graph::FactorGraph& g, std::span<const graph::NodeId> touched) {
  const graph::Csr& in = g.in_csr();
  const graph::Csr& out = g.out_csr();
  const auto runnable = [&](graph::NodeId v) {
    return !g.observed(v) && in.degree(v) > 0;
  };
  std::vector<graph::NodeId> seed;
  seed.reserve(touched.size() * 2);
  for (const graph::NodeId v : touched) {
    if (runnable(v)) seed.push_back(v);
    // A touched node's new state reaches the graph through the messages it
    // sends; its children must recompute even when the node itself is
    // observed or a root (the engines skip both).
    for (const auto& e : out.neighbors(v)) {
      if (runnable(e.node)) seed.push_back(e.node);
    }
  }
  std::sort(seed.begin(), seed.end());
  seed.erase(std::unique(seed.begin(), seed.end()), seed.end());
  return seed;
}

}  // namespace credo::bp::runtime
