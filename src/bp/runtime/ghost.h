// Double-buffered ghost-belief exchange between shards (DESIGN.md §5i).
//
// Each shard of a sharded BP run owns the beliefs of its contiguous node
// range and mirrors its off-shard parents as read-only *ghost slots*.
// This class is the one channel those slots are refreshed through: every
// shard has an outbox holding two buffers of its border beliefs — the
// publisher fills the back buffer with no lock held (it is the only
// writer), then flips it to the front under a writer lock; importers copy
// from the front buffer under a reader lock, so no copy ever overlaps a
// flip and no buffer is written while read. Epoch counters let importers
// skip sources that have not published since their last visit, and let
// publishers report whether the flip actually changed anything — the
// signal that wakes parked neighbor shards.
//
// The API is deliberately narrow — publish / import / readers — because
// this is the seam where multi-process or RPC sharding later attaches:
// a remote transport only has to speak "here are shard s's border
// beliefs, epoch e" to slot in behind the same calls.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <span>
#include <vector>

#include "graph/belief.h"
#include "graph/partition.h"
#include "perf/counters.h"

namespace credo::bp::runtime {

/// The exchange fabric for one sharded run. Thread-compatible per shard:
/// at most one thread may act *as* a given shard at a time (the engine's
/// shard claim guarantees this); any number of shards may publish and
/// import concurrently.
class GhostExchange {
 public:
  /// Builds the outboxes and import routes from a partition. Local belief
  /// arrays are expected in owned-first layout: local id v in [0, owned)
  /// is global id shard.begin + v, and ghost slot k holds the belief of
  /// shard.ghosts[k] at local id owned + k.
  explicit GhostExchange(const graph::Partition& part);

  /// Publishes `shard`'s border beliefs from its local array into the
  /// back buffer and flips. Returns true when any published entry moved
  /// by more than `change_threshold` (L1) since the last publish that
  /// reported a change — diffing against that reference (not merely the
  /// previous flip) lets many sub-threshold steps accumulate until they
  /// cross the bar and wake readers, so parked neighbors' ghost staleness
  /// stays bounded by the threshold instead of drifting without limit.
  /// The first publish always counts as changed. Meters one exchange op
  /// covering the published belief payload.
  bool publish(std::uint32_t shard,
               const std::vector<graph::BeliefVec>& local,
               float change_threshold, perf::Meter& meter);

  /// Copies fresh neighbor publishes into `local`'s ghost slots. Only
  /// sources that published since this shard's last import are touched.
  /// Ghost slots whose value moved by more than `change_threshold` are
  /// appended to `changed` (as local ids, owned + k) so the caller can
  /// seed its frontier. Returns the number of source shards with fresh
  /// data; meters one exchange op per fresh source.
  std::uint32_t import(std::uint32_t shard,
                       std::vector<graph::BeliefVec>& local,
                       float change_threshold,
                       std::vector<graph::NodeId>& changed,
                       perf::Meter& meter);

  /// Shards that import from `shard` — the wake set after a changed
  /// publish.
  [[nodiscard]] std::span<const std::uint32_t> readers(
      std::uint32_t shard) const noexcept {
    return readers_[shard];
  }

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(outboxes_.size());
  }

 private:
  /// One shard's published border beliefs, double-buffered. `ref` holds
  /// the values as of the last changed publish — the baseline change
  /// detection diffs against. Only the owning publisher touches it, so it
  /// needs no lock.
  struct Outbox {
    std::vector<graph::NodeId> border_local;  // local ids of border nodes
    std::vector<graph::BeliefVec> buf[2];
    std::vector<graph::BeliefVec> ref;
    std::uint32_t front = 0;
    std::uint64_t epoch = 0;  // bumped per flip; 0 = never published
    mutable std::shared_mutex mu;
  };

  /// One import route: entries of a source shard's border buffer this
  /// shard mirrors, and where they land locally.
  struct Route {
    std::uint32_t src_shard = 0;
    std::vector<std::uint32_t> src_index;       // index into source border
    std::vector<graph::NodeId> dst_local;       // ghost slot local ids
    std::uint64_t last_epoch = 0;               // source epoch last copied
  };

  std::vector<Outbox> outboxes_;
  std::vector<std::vector<Route>> routes_;  // per importing shard
  std::vector<std::vector<std::uint32_t>> readers_;
};

}  // namespace credo::bp::runtime
