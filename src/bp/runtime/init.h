// Initial-state construction for warm-started runs (DESIGN.md §5h).
//
// Every engine body starts from `initial_state(g, opts)` instead of
// `g.initial_beliefs()`: cold runs get the priors exactly as before, and
// runs carrying BpOptions::init_beliefs get that state overlaid for the
// unobserved nodes (evidence stays pinned — a warm overlay must never
// un-observe a node). Frontier seeds are expanded once here, in
// Engine::run, so the schedules receive the final internal-id node list.
#pragma once

#include <span>
#include <vector>

#include "bp/options.h"
#include "graph/belief.h"
#include "graph/factor_graph.h"

namespace credo::bp::runtime {

/// The belief state a run starts from, in the graph's internal node ids.
/// opts.init_beliefs (already permuted by Engine::run when the graph was
/// reordered) overrides the priors for unobserved nodes; per-node arity is
/// checked (util::InvalidArgument on mismatch) because a wrong-arity warm
/// vector would feed the kernels out-of-range state indices.
[[nodiscard]] std::vector<graph::BeliefVec> initial_state(
    const graph::FactorGraph& g, const BpOptions& opts);

/// Expands the touched-node list of an evidence delta into the node set a
/// schedule should start from: the touched nodes plus their out-neighbors
/// (evidence on observed nodes and roots is only visible through their
/// children — the engines `continue` past both), filtered to nodes an
/// engine would actually process (unobserved, in-degree > 0), sorted and
/// deduplicated. Ids are the graph's internal ids.
[[nodiscard]] std::vector<graph::NodeId> expand_frontier_seed(
    const graph::FactorGraph& g, std::span<const graph::NodeId> touched);

}  // namespace credo::bp::runtime
