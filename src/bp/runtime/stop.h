// Cooperative cancellation and deadline budgets for the BP runtime
// (DESIGN.md §5c).
//
// A StopSource owns a shared stop flag; StopTokens are cheap copyable views
// of it that the serve layer threads through BpOptions into the iteration
// drivers. The drivers poll the token once per iteration and evaluate the
// two deadline budgets (host wall-clock and modelled seconds) at the
// convergence-check cadence, so a request over budget is stopped at the next
// convergence check rather than mid-sweep — stats and beliefs stay
// consistent, the run just ends early with BpStats::stop_reason set.
//
// The tree engine is the one exception: its two fixed sweeps have no
// convergence checks, so a tree run always completes (it is finite by
// construction) and deadlines apply only before and after it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/timer.h"

namespace credo::bp::runtime {

/// Why a run ended before convergence or the iteration cap.
enum class StopReason : std::uint8_t {
  kNone = 0,      // ran to convergence / cap
  kCancelled = 1, // StopSource::request_stop (client cancellation)
  kDeadline = 2,  // a host or modelled time budget expired
};

[[nodiscard]] const char* stop_reason_name(StopReason r) noexcept;

/// A view of a StopSource's flag. Default-constructed tokens are empty and
/// never fire, so every existing call site keeps its behaviour for free.
class StopToken {
 public:
  StopToken() = default;

  /// True once the owning source requested a stop.
  [[nodiscard]] bool stop_requested() const noexcept {
    return state_ && state_->load(std::memory_order_relaxed) != 0;
  }

  /// The reason recorded by the source (kNone while not stopped / empty).
  [[nodiscard]] StopReason reason() const noexcept {
    return state_ ? static_cast<StopReason>(
                        state_->load(std::memory_order_relaxed))
                  : StopReason::kNone;
  }

  /// False for a default-constructed (never-firing) token.
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class StopSource;
  explicit StopToken(
      std::shared_ptr<const std::atomic<std::uint8_t>> s) noexcept
      : state_(std::move(s)) {}

  std::shared_ptr<const std::atomic<std::uint8_t>> state_;
};

/// The writable end of a cancellation channel. Copyable handles share one
/// flag; the first request_stop wins and records its reason.
class StopSource {
 public:
  StopSource()
      : state_(std::make_shared<std::atomic<std::uint8_t>>(0)) {}

  [[nodiscard]] StopToken token() const noexcept {
    return StopToken(state_);
  }

  /// Requests a stop; returns true if this call was the first (its reason
  /// sticks), false if the source had already fired.
  bool request_stop(StopReason r = StopReason::kCancelled) noexcept {
    std::uint8_t expected = 0;
    return state_->compare_exchange_strong(expected,
                                           static_cast<std::uint8_t>(r),
                                           std::memory_order_relaxed);
  }

  [[nodiscard]] bool stop_requested() const noexcept {
    return state_->load(std::memory_order_relaxed) != 0;
  }

 private:
  std::shared_ptr<std::atomic<std::uint8_t>> state_;
};

/// The drivers' per-run stop policy: an optional token plus the two budgets
/// from BpOptions. Constructed once per run_loop; the no-token/no-budget
/// case short-circuits to a couple of branch-predicted compares.
class DeadlineGuard {
 public:
  DeadlineGuard(StopToken token, double host_budget_seconds,
                double modelled_budget_seconds) noexcept
      : token_(std::move(token)),
        host_budget_(host_budget_seconds),
        modelled_budget_(modelled_budget_seconds) {}

  /// True when any stop condition can ever fire.
  [[nodiscard]] bool active() const noexcept {
    return token_.valid() || host_budget_ > 0.0 || modelled_budget_ > 0.0;
  }

  /// Polls the stop conditions. Cancellation is checked on every call;
  /// the budgets only when `at_check` (the convergence-check cadence).
  /// `modelled_seconds_fn()` is invoked only when a modelled budget is set
  /// and this is a check point — it is a full cost-model evaluation.
  template <typename ModelledFn>
  [[nodiscard]] StopReason poll(bool at_check,
                                ModelledFn&& modelled_seconds_fn) const {
    if (token_.stop_requested()) return StopReason::kCancelled;
    if (at_check) {
      if (host_budget_ > 0.0 && timer_.seconds() > host_budget_) {
        return StopReason::kDeadline;
      }
      if (modelled_budget_ > 0.0 &&
          modelled_seconds_fn() > modelled_budget_) {
        return StopReason::kDeadline;
      }
    }
    return StopReason::kNone;
  }

 private:
  StopToken token_;
  double host_budget_;
  double modelled_budget_;
  util::Timer timer_;  // starts with the run loop
};

inline const char* stop_reason_name(StopReason r) noexcept {
  switch (r) {
    case StopReason::kNone: return "none";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadline: return "deadline";
  }
  return "unknown";
}

}  // namespace credo::bp::runtime
