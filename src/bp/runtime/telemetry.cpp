#include "bp/runtime/telemetry.h"

#include <ostream>

namespace credo::bp::runtime {

void write_trace_csv(std::ostream& os,
                     const std::vector<IterationRecord>& trace) {
  os << "iteration,delta,checked,frontier,processed,compute_s,memory_s,"
        "atomic_s,critical_s,overhead_s,transfer_s,alloc_s,total_s\n";
  for (const auto& rec : trace) {
    os << rec.iteration << ',' << rec.delta << ',' << (rec.checked ? 1 : 0)
       << ',' << rec.frontier << ',' << rec.processed << ','
       << rec.time.compute_s << ',' << rec.time.memory_s << ','
       << rec.time.atomic_s << ',' << rec.time.critical_s << ','
       << rec.time.overhead_s << ',' << rec.time.transfer_s << ','
       << rec.time.alloc_s << ',' << rec.time.total() << '\n';
  }
}

}  // namespace credo::bp::runtime
