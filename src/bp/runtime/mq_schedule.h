// Relaxed concurrent priority schedules (DESIGN.md §5f).
//
// The exact ResidualSchedule (schedule.h) serializes every pop through one
// comparison-heavy priority queue — BENCH_reorder shows that queue, not the
// kernel math, dominating residual BP's runtime. Two relaxations recover
// the residual policy's update efficiency without the serial heap:
//
//  * MultiQueueSchedule — the MultiQueue of Aksenov/Alistarh/Korhonen
//    (PAPERS.md "Relaxed Scheduling for Scalable Belief Propagation"):
//    k ≈ 2–4× workers small binary heaps, each push lands on a uniformly
//    random heap, each pop takes the better top of two random heaps. Pops
//    are therefore only *approximately* max-residual; per-node versioned
//    claim states make superseded duplicates one cheap compare to discard
//    and guarantee each node has at most one claimable entry.
//
//  * SplashSchedule — the Splash batching of Gonzalez et al. as revisited
//    by Van der Merwe et al. (PAPERS.md "Message Scheduling for
//    Performant, Many-Core Belief Propagation"): pop an (approximate)
//    max-residual root from an inner MultiQueue, grow a bounded BFS
//    subtree around it (graph::bfs_subtree), sweep it leaf→root→leaf as
//    one cache-friendly batch, and reprioritize only the subtree's
//    boundary. Subtrees are kept disjoint by per-node claim flags.
//
// Relaxation contract: what is given up is the exact pop order — a popped
// node may rank behind up to O(k) better-priority tops (sampled as the
// `inversions` stat). What is preserved is liveness: a node's residual is
// consumed when a worker CLAIMS it (not after the update), so any raise
// landing during the update starts from zero, wins its fetch-max, and
// enqueues a fresh entry — no active residual is ever dropped and drained()
// fires only at a fixed point of the same update rule the exact scheduler
// runs. One relaxation remains beyond pop order: a raise that finds the
// target's residual already at or above its delta treats the pending entry
// (or in-progress update) as covering it, so a node being updated
// concurrently with a parent's write may fold that write into the current
// update instead of a later one — the standard chaotic-read semantics the
// §2.4 parallel engines already have (test_sched bounds the belief
// difference against the exact engine).
//
// Thread safety: every method is safe to call from any worker of the team
// the schedule was built for. Randomness comes from per-worker
// parallel::WorkerRngs streams, so a one-worker run replays exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "bp/runtime/convergence.h"
#include "graph/factor_graph.h"
#include "parallel/worker_rng.h"
#include "perf/counters.h"

namespace credo::bp::runtime {

/// Aggregate scheduler counters, folded over the per-worker lanes at the
/// end of a run (obs flush + tests; never read while the team runs).
struct SchedStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;            // successful claims handed to the body
  std::uint64_t stale_pops = 0;      // superseded duplicates discarded
  std::uint64_t converged_pops = 0;  // claimed but below the queue bar
  std::uint64_t inversions = 0;      // popped below a sampled better top
  std::uint64_t empty_polls = 0;     // try_pop found nothing claimable
  std::uint64_t compactions = 0;     // shard heap rebuilds
  std::uint64_t splashes = 0;
  std::uint64_t splash_nodes = 0;
  std::uint64_t splash_max = 0;
  std::uint64_t splash_root_collisions = 0;

  void add(const SchedStats& o) noexcept {
    pushes += o.pushes;
    pops += o.pops;
    stale_pops += o.stale_pops;
    converged_pops += o.converged_pops;
    inversions += o.inversions;
    empty_polls += o.empty_polls;
    compactions += o.compactions;
    splashes += o.splashes;
    splash_nodes += o.splash_nodes;
    if (o.splash_max > splash_max) splash_max = o.splash_max;
    splash_root_collisions += o.splash_root_collisions;
  }
};

/// The relaxed MultiQueue. See the file comment for the contract.
class MultiQueueSchedule {
 public:
  /// Same (priority, node) order as ResidualSchedule::Entry; the version
  /// is the claim-state payload that makes stale entries one compare.
  struct Entry {
    float prio;
    graph::NodeId node;
    std::uint32_t ver;
    bool operator<(const Entry& o) const noexcept {
      if (prio != o.prio) return prio < o.prio;
      return node < o.node;
    }
  };

  /// Builds `workers * queues_per_worker` shard heaps (min 1 each), seeds
  /// every unobserved node with parents at FLT_MAX round-robin across the
  /// shards, and derives one RNG stream per worker from `seed`.
  /// `total_shards` overrides the shard count when nonzero — 1 yields the
  /// classic concurrency baseline: a single exact heap behind one lock,
  /// every pop the true global max (the "residual-locked" engine).
  /// `seed_nodes` non-null starts only those nodes at FLT_MAX (DESIGN.md
  /// §5h); raise() already installs entries for nodes it reaches, so the
  /// perturbation spreads on its own.
  MultiQueueSchedule(const graph::FactorGraph& g,
                     const ConvergenceController& ctl, unsigned workers,
                     unsigned queues_per_worker, std::uint64_t seed,
                     unsigned total_shards = 0,
                     const std::vector<graph::NodeId>* seed_nodes = nullptr);

  /// Claims an approximately-max-residual node for worker `w`, consuming
  /// its residual (raises landing while the node is processed start from
  /// zero, so they always enqueue a fresh wake-up). `res_out`, when given,
  /// receives the consumed residual — requeue() needs it to undo a claim.
  /// False when nothing was claimable this attempt — the caller should
  /// re-check drained() before retrying. A claimed node MUST be followed by
  /// exactly one record()/requeue()/finish_update() so in-flight drains.
  bool try_pop(unsigned w, perf::Meter& meter, graph::NodeId& v,
               float* res_out = nullptr);

  /// Records an update of claimed node `v` with belief change `delta`:
  /// raises its children's priorities and retires the in-flight claim
  /// (v's own residual was already consumed by the claim).
  void record(unsigned w, perf::Meter& meter, graph::NodeId v, float delta);

  /// True when no claimable entry exists and no claimed update is still
  /// in flight — the queue cannot refill, the run is done.
  [[nodiscard]] bool drained() const noexcept {
    return live_count_.load(std::memory_order_seq_cst) == 0 &&
           inflight_.load(std::memory_order_seq_cst) == 0;
  }

  /// Approximate count of claimable entries (frontier telemetry).
  [[nodiscard]] std::uint64_t pending() const noexcept {
    const std::int64_t n = live_count_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<std::uint64_t>(n) : 0;
  }

  [[nodiscard]] unsigned num_heaps() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  // --- building blocks the SplashSchedule composes -----------------------

  /// Fetch-max raise of `c`'s residual to `delta`; pushes a fresh entry
  /// when the residual rose or `c` holds no claimable entry (so a raise
  /// can never be lost to a concurrent claim).
  void raise(unsigned w, perf::Meter& meter, graph::NodeId c, float delta);

  /// Invalidates `c`'s claimable entry if it has one and consumes its
  /// residual, exactly like a claim (subtree absorption).
  void deactivate(graph::NodeId v) noexcept;

  /// Returns a claimed-but-unprocessed node to the queue at the residual
  /// the claim consumed and retires the claim (splash root collision).
  void requeue(unsigned w, perf::Meter& meter, graph::NodeId v, float prio);

  /// Retires one in-flight claim without touching priorities.
  void finish_update() noexcept {
    inflight_.fetch_sub(1, std::memory_order_seq_cst);
  }

  [[nodiscard]] float residual(graph::NodeId v) const noexcept {
    return residual_[v].load(std::memory_order_relaxed);
  }

  /// Folded per-worker counters (end of run only).
  [[nodiscard]] SchedStats stats() const;

  /// Peak heap size per shard over the run (end of run only).
  [[nodiscard]] std::vector<std::uint64_t> heap_peaks() const;

  SchedStats& worker_stats(unsigned w) noexcept { return lanes_[w].stats; }
  [[nodiscard]] util::Prng& worker_rng(unsigned w) noexcept {
    return rngs_.at(w);
  }

 private:
  struct alignas(64) Shard {
    std::mutex mu;
    std::vector<Entry> heap;     // std::*_heap max-heap, guarded by mu
    std::atomic<float> top;      // lock-free peek cache; -inf when empty
    std::uint64_t peak = 0;      // high-water mark, guarded by mu
  };
  struct alignas(64) Lane {
    SchedStats stats;
    double chain_frac = 0.0;  // fractional expected-conflict accumulator
  };

  void push_entry(unsigned w, perf::Meter& meter, graph::NodeId v,
                  float prio);
  void compact_locked(Shard& sh, SchedStats& st);
  /// Charges one lock-protected heap operation to the cost model: one
  /// atomic issue plus the expected same-address conflict chain. With the
  /// team spread uniformly over the shard locks, an acquisition queues
  /// behind (workers-1)/shards holders on average, and every handoff
  /// serializes two line transfers between cores — the lock word and the
  /// guarded heap root it protects. The single-shard "locked" baseline
  /// therefore serializes every heap op across the whole team; a
  /// well-sharded MultiQueue almost never conflicts. Expected chains, not
  /// measured ones: actual collision counts are unobservable on a
  /// time-sliced host.
  void meter_lock_op(unsigned w, perf::Meter& meter) noexcept {
    Lane& lane = lanes_[w];
    lane.chain_frac += contention_per_lock_;
    const auto whole = static_cast<std::uint64_t>(lane.chain_frac);
    lane.chain_frac -= static_cast<double>(whole);
    meter.atomic(1, whole);
  }

  const graph::FactorGraph& g_;
  const ConvergenceController& ctl_;
  /// Per-node claim state, packed (version << 1) | claimable. A heap entry
  /// is claimable iff its version matches and the bit is set; every
  /// transition bumps the version so stale entries can never be claimed.
  std::vector<std::atomic<std::uint64_t>> state_;
  std::vector<std::atomic<float>> residual_;
  std::vector<Shard> shards_;
  std::uint64_t compact_limit_ = 0;
  double contention_per_lock_ = 0.0;
  std::atomic<std::int64_t> live_count_{0};
  std::atomic<std::int64_t> inflight_{0};
  parallel::WorkerRngs rngs_;
  std::vector<Lane> lanes_;
};

/// Splash batching over an inner MultiQueue. See the file comment.
class SplashSchedule {
 public:
  /// `seed_nodes` as in MultiQueueSchedule: a §5h seeded start.
  SplashSchedule(const graph::FactorGraph& g,
                 const ConvergenceController& ctl, unsigned workers,
                 unsigned queues_per_worker, std::uint32_t max_size,
                 std::uint64_t seed,
                 const std::vector<graph::NodeId>* seed_nodes = nullptr);

  /// Claims an approximately-max-residual root and grows a bounded BFS
  /// subtree around it, disjoint from every concurrent splash. `out` holds
  /// the subtree in BFS order, root first. False when nothing was
  /// claimable (including a root lost to a concurrent splash — it is
  /// requeued, never dropped).
  bool try_pop_subtree(unsigned w, perf::Meter& meter,
                       std::vector<graph::NodeId>& out);

  /// Records a finished leaf→root→leaf sweep. `total_deltas[i]` is the
  /// belief change of `sub[i]` across the whole splash; `last_deltas[i]`
  /// is the change of its final (root→leaf pass) update. Boundary
  /// neighbors are raised with the total delta — they last saw the
  /// pre-splash belief. Interior members swept *before* `sub[i]` in the
  /// final pass are raised with the last-pass delta: their final update
  /// could not see it, and dropping that staleness makes splash converge
  /// to the wrong fixed point (visible on trees). Releases the claims.
  void record_subtree(unsigned w, perf::Meter& meter,
                      std::span<const graph::NodeId> sub,
                      std::span<const float> total_deltas,
                      std::span<const float> last_deltas);

  [[nodiscard]] bool drained() const noexcept { return mq_.drained(); }
  [[nodiscard]] std::uint64_t pending() const noexcept {
    return mq_.pending();
  }
  [[nodiscard]] std::uint32_t max_size() const noexcept { return max_size_; }
  [[nodiscard]] SchedStats stats() const;
  [[nodiscard]] std::vector<std::uint64_t> heap_peaks() const {
    return mq_.heap_peaks();
  }

 private:
  struct alignas(64) Lane {
    SchedStats stats;
    std::vector<std::uint32_t> stamp;  // splash membership, by epoch
    std::vector<std::uint32_t> pos;    // sweep position within the splash
    std::uint32_t epoch = 0;
  };

  const graph::FactorGraph& g_;
  const ConvergenceController& ctl_;
  std::uint32_t max_size_;
  MultiQueueSchedule mq_;
  /// Per-node splash claim: a node belongs to at most one growing/sweeping
  /// subtree at a time, so sweeps never race on the same belief.
  std::vector<std::atomic<std::uint8_t>> busy_;
  std::vector<Lane> lanes_;
};

}  // namespace credo::bp::runtime
