#include "bp/runtime/mq_schedule.h"

#include <algorithm>
#include <limits>

#include "bp/runtime/observe.h"
#include "graph/reorder.h"

namespace credo::bp::runtime {
namespace {

constexpr float kEmptyTop = -std::numeric_limits<float>::infinity();

constexpr bool entry_claimable(std::uint64_t state,
                               std::uint32_t ver) noexcept {
  return (state & 1) != 0 && static_cast<std::uint32_t>(state >> 1) == ver;
}

}  // namespace

MultiQueueSchedule::MultiQueueSchedule(const graph::FactorGraph& g,
                                       const ConvergenceController& ctl,
                                       unsigned workers,
                                       unsigned queues_per_worker,
                                       std::uint64_t seed,
                                       unsigned total_shards,
                                       const std::vector<graph::NodeId>* seed_nodes)
    : g_(g),
      ctl_(ctl),
      state_(g.num_nodes()),
      residual_(g.num_nodes()),
      shards_(total_shards != 0
                  ? total_shards
                  : std::max(1u, workers) * std::max(1u, queues_per_worker)),
      rngs_(seed, std::max(1u, workers)),
      lanes_(std::max(1u, workers)) {
  const graph::NodeId n = g.num_nodes();
  // Total entries stay O(nodes): a shard compacts once it exceeds its
  // equal share of 4x the node count (4x: live entry + superseded slack,
  // doubled for random shard imbalance).
  compact_limit_ = 64 + 4ull * n / shards_.size();
  const unsigned team = std::max(1u, workers);
  // Expected conflict chain per lock acquisition: (team-1)/shards queued
  // holders, two serialized line transfers (lock word + guarded heap root)
  // per handoff. See meter_lock_op.
  contention_per_lock_ =
      2.0 * static_cast<double>(team - 1) / static_cast<double>(shards_.size());
  for (auto& s : state_) s.store(0, std::memory_order_relaxed);
  for (auto& r : residual_) r.store(0.0f, std::memory_order_relaxed);
  std::int64_t seeded = 0;
  const auto start = [&](graph::NodeId v) {
    residual_[v].store(std::numeric_limits<float>::max(),
                       std::memory_order_relaxed);
    state_[v].store((1ull << 1) | 1, std::memory_order_relaxed);
    shards_[v % shards_.size()].heap.push_back(
        {std::numeric_limits<float>::max(), v, 1u});
    ++seeded;
  };
  if (seed_nodes != nullptr) {
    // §5h seeded start: only the perturbed region enters the heaps; raise()
    // installs fresh entries for any node a recorded update reaches, so
    // the wave spreads exactly as it does from a full start. The list
    // arrives pre-filtered (unobserved, in-degree > 0).
    for (const graph::NodeId v : *seed_nodes) start(v);
  } else {
    for (graph::NodeId v = 0; v < n; ++v) {
      if (g.observed(v) || g.in_csr().degree(v) == 0) continue;
      start(v);
    }
  }
  for (auto& sh : shards_) {
    std::make_heap(sh.heap.begin(), sh.heap.end());
    sh.top.store(sh.heap.empty() ? kEmptyTop : sh.heap.front().prio,
                 std::memory_order_relaxed);
    sh.peak = sh.heap.size();
  }
  live_count_.store(seeded, std::memory_order_relaxed);
}

void MultiQueueSchedule::push_entry(unsigned w, perf::Meter& meter,
                                    graph::NodeId v, float prio) {
  std::uint64_t s = state_[v].load(std::memory_order_relaxed);
  std::uint64_t ns;
  do {
    ns = (((s >> 1) + 1) << 1) | 1;
  } while (!state_[v].compare_exchange_weak(s, ns, std::memory_order_acq_rel,
                                            std::memory_order_relaxed));
  if ((s & 1) == 0) live_count_.fetch_add(1, std::memory_order_seq_cst);
  meter.atomic(1, 0);
  Shard& sh = shards_[rngs_.at(w).uniform(shards_.size())];
  meter_lock_op(w, meter);
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.heap.push_back({prio, v, static_cast<std::uint32_t>(ns >> 1)});
    std::push_heap(sh.heap.begin(), sh.heap.end());
    sh.top.store(sh.heap.front().prio, std::memory_order_relaxed);
    if (sh.heap.size() > sh.peak) sh.peak = sh.heap.size();
    if (sh.heap.size() > compact_limit_) {
      compact_locked(sh, lanes_[w].stats);
    }
  }
  meter.near_write(sizeof(Entry));
  ++lanes_[w].stats.pushes;
}

void MultiQueueSchedule::compact_locked(Shard& sh, SchedStats& st) {
  auto keep = sh.heap.begin();
  for (const Entry& e : sh.heap) {
    if (entry_claimable(state_[e.node].load(std::memory_order_relaxed),
                        e.ver)) {
      *keep++ = e;
    }
  }
  sh.heap.erase(keep, sh.heap.end());
  std::make_heap(sh.heap.begin(), sh.heap.end());
  sh.top.store(sh.heap.empty() ? kEmptyTop : sh.heap.front().prio,
               std::memory_order_relaxed);
  ++st.compactions;
}

bool MultiQueueSchedule::try_pop(unsigned w, perf::Meter& meter,
                                 graph::NodeId& v, float* res_out) {
  util::Prng& rng = rngs_.at(w);
  SchedStats& st = lanes_[w].stats;
  const auto num_shards = static_cast<unsigned>(shards_.size());
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (live_count_.load(std::memory_order_seq_cst) <= 0) return false;
    // Pop from the better top of two uniformly random shards — the
    // classic MultiQueue rule; rank error stays O(num_shards) w.h.p.
    unsigned pick = static_cast<unsigned>(rng.uniform(num_shards));
    const unsigned other = static_cast<unsigned>(rng.uniform(num_shards));
    if (shards_[other].top.load(std::memory_order_relaxed) >
        shards_[pick].top.load(std::memory_order_relaxed)) {
      pick = other;
    }
    if (shards_[pick].top.load(std::memory_order_relaxed) == kEmptyTop) {
      // Both sampled shards empty; sweep for any non-empty one.
      bool found = false;
      for (unsigned k = 1; k <= num_shards; ++k) {
        const unsigned cand = (pick + k) % num_shards;
        if (shards_[cand].top.load(std::memory_order_relaxed) != kEmptyTop) {
          pick = cand;
          found = true;
          break;
        }
      }
      if (!found) {
        ++st.empty_polls;
        return false;
      }
    }
    Entry e;
    meter_lock_op(w, meter);
    {
      Shard& sh = shards_[pick];
      std::lock_guard<std::mutex> lk(sh.mu);
      if (sh.heap.empty()) continue;  // raced with another popper
      std::pop_heap(sh.heap.begin(), sh.heap.end());
      e = sh.heap.back();
      sh.heap.pop_back();
      sh.top.store(sh.heap.empty() ? kEmptyTop : sh.heap.front().prio,
                   std::memory_order_relaxed);
    }
    meter.near_read(sizeof(Entry));
    // Claim: bump the version and drop the claimable bit in one CAS. Loses
    // only to a concurrent transition of the same node, which makes this
    // entry stale by definition.
    std::uint64_t s = state_[e.node].load(std::memory_order_relaxed);
    bool claimed = false;
    while (entry_claimable(s, e.ver)) {
      const std::uint64_t ns = ((s >> 1) + 1) << 1;
      if (state_[e.node].compare_exchange_weak(s, ns,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
        claimed = true;
        break;
      }
    }
    meter.atomic(1, 0);
    if (!claimed) {
      ++st.stale_pops;
      continue;
    }
    // Consume the residual HERE, at claim time — not after the update.
    // Raises landing while the node is being processed then start from
    // zero, so they always push a fresh entry and the wake-up survives
    // (zeroing after the update would erase them: the lost-wakeup bug).
    const float res = residual_[e.node].exchange(0.0f,
                                                 std::memory_order_acq_rel);
    // In-flight rises before the live count falls so drained() can never
    // flicker true while this update's pushes are still coming.
    if (ctl_.element_active(res)) {
      inflight_.fetch_add(1, std::memory_order_seq_cst);
      live_count_.fetch_sub(1, std::memory_order_seq_cst);
    } else {
      live_count_.fetch_sub(1, std::memory_order_seq_cst);
      ++st.converged_pops;
      continue;
    }
    if (res_out != nullptr) *res_out = res;
    // Relaxation probe: a strictly better top on a third random shard
    // means an exact scheduler would have run that node first.
    if (shards_[rng.uniform(num_shards)].top.load(
            std::memory_order_relaxed) > e.prio) {
      ++st.inversions;
    }
    ++st.pops;
    v = e.node;
    return true;
  }
  ++st.empty_polls;
  return false;
}

void MultiQueueSchedule::raise(unsigned w, perf::Meter& meter,
                               graph::NodeId c, float delta) {
  float cur = residual_[c].load(std::memory_order_relaxed);
  bool raised = false;
  while (delta > cur) {
    if (residual_[c].compare_exchange_weak(cur, delta,
                                           std::memory_order_relaxed)) {
      raised = true;
      break;
    }
  }
  meter.atomic(1, 0);
  // Every successful fetch-max pushes an entry AFTER installing the value
  // (the exact scheduler's push-iff-raised rule). That ordering is the
  // whole liveness argument: an active residual's current maximum always
  // has an entry pushed behind it, so the claim that eventually consumes
  // the residual processes the node at >= that priority. A raise that
  // loses the max (delta <= cur) is covered the same way — either the
  // winner's entry is still claimable, or the claim that consumed `cur`
  // is processing the node at >= delta right now. Inspecting the claim
  // state here instead (the obvious "push only if no entry is pending"
  // shortcut) reintroduces the lost-wakeup race: the pending entry can be
  // consumed between the inspection and the return.
  if (raised) push_entry(w, meter, c, delta);
}

void MultiQueueSchedule::deactivate(graph::NodeId v) noexcept {
  std::uint64_t s = state_[v].load(std::memory_order_relaxed);
  while ((s & 1) != 0) {
    const std::uint64_t ns = ((s >> 1) + 1) << 1;
    if (state_[v].compare_exchange_weak(s, ns, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      live_count_.fetch_sub(1, std::memory_order_seq_cst);
      break;
    }
  }
  // Absorbed into a sweep: its pending residual is consumed now, exactly
  // like a claim, so raises during the sweep start fresh.
  residual_[v].store(0.0f, std::memory_order_relaxed);
}

void MultiQueueSchedule::record(unsigned w, perf::Meter& meter,
                                graph::NodeId v, float delta) {
  // v's residual was already consumed at claim time (try_pop/deactivate).
  if (ctl_.element_active(delta)) {
    for (const auto& entry : g_.out_csr().neighbors(v)) {
      meter.seq_read(sizeof(entry));
      const graph::NodeId c = entry.node;
      if (g_.observed(c) || g_.in_csr().degree(c) == 0) continue;
      raise(w, meter, c, delta);
    }
  }
  inflight_.fetch_sub(1, std::memory_order_seq_cst);
}

void MultiQueueSchedule::requeue(unsigned w, perf::Meter& meter,
                                 graph::NodeId v, float prio) {
  // Restore the consumed residual before retiring the claim (push first:
  // live_count rises before inflight falls, so drained() cannot flicker).
  if (ctl_.element_active(prio)) raise(w, meter, v, prio);
  inflight_.fetch_sub(1, std::memory_order_seq_cst);
}

SchedStats MultiQueueSchedule::stats() const {
  SchedStats total;
  for (const Lane& lane : lanes_) total.add(lane.stats);
  return total;
}

std::vector<std::uint64_t> MultiQueueSchedule::heap_peaks() const {
  std::vector<std::uint64_t> peaks;
  peaks.reserve(shards_.size());
  for (const Shard& sh : shards_) peaks.push_back(sh.peak);
  return peaks;
}

// ---------------------------------------------------------------------------
// SplashSchedule
// ---------------------------------------------------------------------------

SplashSchedule::SplashSchedule(const graph::FactorGraph& g,
                               const ConvergenceController& ctl,
                               unsigned workers, unsigned queues_per_worker,
                               std::uint32_t max_size, std::uint64_t seed,
                               const std::vector<graph::NodeId>* seed_nodes)
    : g_(g),
      ctl_(ctl),
      max_size_(std::max(1u, max_size)),
      mq_(g, ctl, workers, queues_per_worker, seed, 0, seed_nodes),
      busy_(g.num_nodes()),
      lanes_(std::max(1u, workers)) {
  for (auto& b : busy_) b.store(0, std::memory_order_relaxed);
  for (Lane& lane : lanes_) {
    lane.stamp.assign(g.num_nodes(), 0);
    lane.pos.assign(g.num_nodes(), 0);
  }
}

bool SplashSchedule::try_pop_subtree(unsigned w, perf::Meter& meter,
                                     std::vector<graph::NodeId>& out) {
  graph::NodeId root = 0;
  float root_res = 0.0f;
  if (!mq_.try_pop(w, meter, root, &root_res)) return false;
  if (busy_[root].exchange(1, std::memory_order_acquire) != 0) {
    // The root sits inside a concurrent splash; hand it back (restoring
    // the consumed residual) rather than dropping it on the floor.
    ++lanes_[w].stats.splash_root_collisions;
    mq_.requeue(w, meter, root, root_res);
    return false;
  }
  Lane& lane = lanes_[w];
  const std::uint32_t epoch = ++lane.epoch;
  lane.stamp[root] = epoch;
  lane.pos[root] = 0;
  std::uint32_t next_pos = 1;  // admission order == sweep order
  out = graph::bfs_subtree(g_, root, max_size_, [&](graph::NodeId c) {
    meter.seq_read(sizeof(graph::Csr::Entry));  // adjacency walk
    if (g_.observed(c) || g_.in_csr().degree(c) == 0) return false;
    if (busy_[c].exchange(1, std::memory_order_acquire) != 0) return false;
    mq_.deactivate(c);  // its pending entry is absorbed into this splash
    lane.stamp[c] = epoch;
    lane.pos[c] = next_pos++;
    return true;
  });
  return true;
}

void SplashSchedule::record_subtree(unsigned w, perf::Meter& meter,
                                    std::span<const graph::NodeId> sub,
                                    std::span<const float> total_deltas,
                                    std::span<const float> last_deltas) {
  Lane& lane = lanes_[w];
  // Subtree residuals were consumed at claim/absorption time; raises that
  // landed during the sweep keep their entries and get reprocessed.
  for (std::size_t i = 0; i < sub.size(); ++i) {
    const bool total_active = ctl_.element_active(total_deltas[i]);
    const bool last_active = ctl_.element_active(last_deltas[i]);
    if (!total_active && !last_active) continue;
    for (const auto& entry : g_.out_csr().neighbors(sub[i])) {
      meter.seq_read(sizeof(entry));
      const graph::NodeId c = entry.node;
      if (g_.observed(c) || g_.in_csr().degree(c) == 0) continue;
      if (lane.stamp[c] == lane.epoch) {
        // Interior neighbor. Swept after sub[i] in the final pass: its
        // last update already saw sub[i]'s final belief — nothing stale.
        // Swept before: it missed sub[i]'s final-pass change.
        if (last_active && lane.pos[c] < lane.pos[sub[i]]) {
          mq_.raise(w, meter, c, last_deltas[i]);
        }
        continue;
      }
      // Boundary neighbor: last saw the pre-splash belief.
      if (total_active) mq_.raise(w, meter, c, total_deltas[i]);
    }
  }
  for (const graph::NodeId v : sub) {
    busy_[v].store(0, std::memory_order_release);
  }
  mq_.finish_update();
  ++lane.stats.splashes;
  lane.stats.splash_nodes += sub.size();
  if (sub.size() > lane.stats.splash_max) {
    lane.stats.splash_max = sub.size();
  }
  observe_splash_subtree(sub.size());
}

SchedStats SplashSchedule::stats() const {
  SchedStats total = mq_.stats();
  for (const Lane& lane : lanes_) total.add(lane.stats);
  return total;
}

}  // namespace credo::bp::runtime
