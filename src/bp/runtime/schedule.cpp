#include "bp/runtime/schedule.h"

#include <limits>

namespace credo::bp::runtime {

namespace {
constexpr std::uint32_t kNoLevel = ~0u;
}  // namespace

NodeFrontier::NodeFrontier(const graph::FactorGraph& g, bool use_queue)
    : use_queue_(use_queue), n_(g.num_nodes()) {
  if (!use_queue_) return;
  queue_.reserve(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.observed(v)) queue_.push_back(v);
  }
}

FragmentedNodeFrontier::FragmentedNodeFrontier(const graph::FactorGraph& g,
                                               bool use_queue,
                                               unsigned workers)
    : use_queue_(use_queue), n_(g.num_nodes()), frags_(workers) {
  if (!use_queue_) return;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.observed(v)) queue_.push_back(v);
  }
}

EdgeFrontier::EdgeFrontier(const graph::FactorGraph& g) {
  const auto& edges = g.edges();
  queue_.reserve(edges.size());
  for (graph::EdgeId e = 0; e < edges.size(); ++e) {
    if (!g.observed(edges[e].dst)) queue_.push_back(e);
  }
}

ResidualSchedule::ResidualSchedule(const graph::FactorGraph& g,
                                   const ConvergenceController& ctl,
                                   perf::Meter& meter)
    : g_(g), ctl_(ctl), meter_(meter), residual_(g.num_nodes(), 0.0f) {
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.observed(v) && g.in_csr().degree(v) > 0) {
      residual_[v] = std::numeric_limits<float>::max();
      pq_.push({residual_[v], v});
    }
  }
}

bool ResidualSchedule::pop(graph::NodeId& v) {
  while (!pq_.empty()) {
    const auto [prio, u] = pq_.top();
    pq_.pop();
    meter_.near_read(sizeof(Entry));
    if (prio != residual_[u] || !ctl_.element_active(residual_[u])) {
      continue;  // stale or converged entry
    }
    v = u;
    return true;
  }
  return false;
}

void ResidualSchedule::record(graph::NodeId v, float delta) {
  residual_[v] = 0.0f;
  if (!ctl_.element_active(delta)) return;
  // The change flows to this node's children: raise their priority.
  for (const auto& entry : g_.out_csr().neighbors(v)) {
    meter_.seq_read(sizeof(entry));
    const graph::NodeId c = entry.node;
    if (g_.observed(c) || g_.in_csr().degree(c) == 0) continue;
    if (delta > residual_[c]) {
      residual_[c] = delta;
      pq_.push({delta, c});
      meter_.near_write(sizeof(Entry));
    }
  }
}

TreeLevels::TreeLevels(const graph::FactorGraph& g, bool naive,
                       perf::Meter& meter)
    : naive_(naive), level_(g.num_nodes(), kNoLevel) {
  const graph::NodeId n = g.num_nodes();
  const auto& edges = g.edges();
  if (naive_) {
    for (graph::NodeId v = 0; v < n; ++v) {
      meter.seq_read(sizeof(std::uint32_t));
      if (level_[v] != kNoLevel) continue;
      level_[v] = 0;
      // Relax over the whole edge list until the component stabilizes.
      bool changed = true;
      while (changed) {
        changed = false;
        meter.seq_read(edges.size() * sizeof(graph::DirectedEdge));
        meter.near_read(sizeof(std::uint32_t), 2 * edges.size());
        for (const auto& e : edges) {
          if (level_[e.src] != kNoLevel && level_[e.dst] > level_[e.src] + 1) {
            level_[e.dst] = level_[e.src] + 1;
            changed = true;
          }
        }
      }
    }
  } else {
    std::vector<graph::NodeId> frontier;
    for (graph::NodeId root = 0; root < n; ++root) {
      if (level_[root] != kNoLevel) continue;
      level_[root] = 0;
      frontier.assign(1, root);
      std::uint32_t l = 0;
      while (!frontier.empty()) {
        std::vector<graph::NodeId> next;
        for (const graph::NodeId v : frontier) {
          meter.seq_read(sizeof(std::uint64_t));
          for (const auto& entry : g.out_csr().neighbors(v)) {
            meter.seq_read(sizeof(entry));
            meter.rand_read(sizeof(std::uint32_t));
            if (level_[entry.node] == kNoLevel) {
              level_[entry.node] = l + 1;
              next.push_back(entry.node);
            }
          }
        }
        frontier.swap(next);
        ++l;
      }
    }
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    if (level_[v] > max_level_ && level_[v] != kNoLevel) {
      max_level_ = level_[v];
    }
  }
}

}  // namespace credo::bp::runtime
