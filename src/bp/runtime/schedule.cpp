#include "bp/runtime/schedule.h"

#include <limits>

namespace credo::bp::runtime {

namespace {
constexpr std::uint32_t kNoLevel = ~0u;
}  // namespace

NodeFrontier::NodeFrontier(const graph::FactorGraph& g, bool use_queue,
                           const std::vector<graph::NodeId>* seed)
    : use_queue_(use_queue || seed != nullptr), n_(g.num_nodes()) {
  if (!use_queue_) return;
  if (seed != nullptr) {
    g_ = &g;
    stamp_.assign(g.num_nodes(), 0);
    queue_ = *seed;
    return;
  }
  queue_.reserve(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.observed(v)) queue_.push_back(v);
  }
}

void NodeFrontier::push_next(perf::Meter& meter, graph::NodeId v) {
  if (stamp_[v] == round_) return;
  stamp_[v] = round_;
  next_.push_back(v);
  meter.seq_write(sizeof(graph::NodeId));
}

void NodeFrontier::keep(perf::Meter& meter, graph::NodeId v) {
  if (g_ == nullptr) {
    next_.push_back(v);
    meter.seq_write(sizeof(graph::NodeId));
    return;
  }
  // Seeded mode: wake v's children too — they may never have been queued.
  push_next(meter, v);
  meter.seq_read(sizeof(std::uint64_t));  // CSR offset
  for (const auto& entry : g_->out_csr().neighbors(v)) {
    meter.seq_read(sizeof(entry));
    const graph::NodeId c = entry.node;
    if (g_->observed(c) || g_->in_csr().degree(c) == 0) continue;
    push_next(meter, c);
  }
}

FragmentedNodeFrontier::FragmentedNodeFrontier(
    const graph::FactorGraph& g, bool use_queue, unsigned workers,
    const std::vector<graph::NodeId>* seed)
    : use_queue_(use_queue || seed != nullptr),
      n_(g.num_nodes()),
      frags_(workers) {
  if (!use_queue_) return;
  if (seed != nullptr) {
    g_ = &g;
    stamp_ = std::vector<std::atomic<std::uint32_t>>(g.num_nodes());
    for (auto& s : stamp_) s.store(0, std::memory_order_relaxed);
    queue_ = *seed;
    return;
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.observed(v)) queue_.push_back(v);
  }
}

void FragmentedNodeFrontier::push_next(perf::Meter& meter, unsigned worker,
                                       graph::NodeId v) {
  std::uint32_t cur = stamp_[v].load(std::memory_order_relaxed);
  if (cur == round_) return;
  if (!stamp_[v].compare_exchange_strong(cur, round_,
                                         std::memory_order_relaxed)) {
    return;  // another worker woke v this round
  }
  frags_[worker].push_back(v);
  meter.atomic(1, 1);
  meter.seq_write(sizeof(graph::NodeId));
}

void FragmentedNodeFrontier::keep(perf::Meter& meter, unsigned worker,
                                  graph::NodeId v) {
  if (g_ == nullptr) {
    frags_[worker].push_back(v);
    meter.atomic(1, 1);
    meter.seq_write(sizeof(graph::NodeId));
    return;
  }
  push_next(meter, worker, v);
  meter.seq_read(sizeof(std::uint64_t));  // CSR offset
  for (const auto& entry : g_->out_csr().neighbors(v)) {
    meter.seq_read(sizeof(entry));
    const graph::NodeId c = entry.node;
    if (g_->observed(c) || g_->in_csr().degree(c) == 0) continue;
    push_next(meter, worker, c);
  }
}

EdgeFrontier::EdgeFrontier(const graph::FactorGraph& g) {
  const auto& edges = g.edges();
  queue_.reserve(edges.size());
  for (graph::EdgeId e = 0; e < edges.size(); ++e) {
    if (!g.observed(edges[e].dst)) queue_.push_back(e);
  }
}

ResidualSchedule::ResidualSchedule(const graph::FactorGraph& g,
                                   const ConvergenceController& ctl,
                                   perf::Meter& meter,
                                   const std::vector<graph::NodeId>* seed)
    : g_(g),
      ctl_(ctl),
      meter_(meter),
      residual_(g.num_nodes(), 0.0f),
      version_(g.num_nodes(), 0),
      live_(g.num_nodes(), 0) {
  const auto start = [&](graph::NodeId v) {
    residual_[v] = std::numeric_limits<float>::max();
    live_[v] = 1;
    pq_.push({residual_[v], v, version_[v]});
  };
  if (seed != nullptr) {
    // §5h seeded start: only the perturbed region enters the heap;
    // record() raises children, so the wave spreads by itself. The seed
    // arrives pre-filtered (unobserved, in-degree > 0) from
    // expand_frontier_seed.
    for (const graph::NodeId v : *seed) start(v);
    return;
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.observed(v) && g.in_csr().degree(v) > 0) start(v);
  }
}

bool ResidualSchedule::pop(graph::NodeId& v) {
  while (!pq_.empty()) {
    const Entry e = pq_.top();
    pq_.pop();
    meter_.near_read(sizeof(Entry));
    if (e.ver != version_[e.node]) continue;  // superseded duplicate
    if (!ctl_.element_active(residual_[e.node])) {
      live_[e.node] = 0;  // converged entry
      continue;
    }
    live_[e.node] = 0;
    v = e.node;
    return true;
  }
  return false;
}

void ResidualSchedule::push_entry(graph::NodeId v, float prio) {
  ++version_[v];
  live_[v] = 1;
  pq_.push({prio, v, version_[v]});
  meter_.near_write(sizeof(Entry));
  // Compaction keeps the lazy-deletion heap O(nodes): once superseded
  // duplicates outnumber live entries, drop them and re-heapify. Amortized
  // O(1) per push — each discarded entry was paid for by the push that
  // superseded it.
  if (pq_.size() > 64 + 2 * residual_.size()) compact();
}

void ResidualSchedule::compact() {
  std::vector<Entry> keep;
  keep.reserve(residual_.size());
  const std::uint64_t scanned = pq_.size();
  for (graph::NodeId v = 0; v < residual_.size(); ++v) {
    if (live_[v]) keep.push_back({residual_[v], v, version_[v]});
  }
  // One sweep over the old entries plus a rebuild of the survivors.
  meter_.near_read(sizeof(Entry), scanned);
  meter_.near_write(sizeof(Entry), keep.size());
  pq_ = std::priority_queue<Entry>(std::less<Entry>(), std::move(keep));
}

void ResidualSchedule::record(graph::NodeId v, float delta) {
  residual_[v] = 0.0f;
  ++version_[v];  // invalidate any queued entry for v
  live_[v] = 0;
  if (!ctl_.element_active(delta)) return;
  // The change flows to this node's children: raise their priority.
  for (const auto& entry : g_.out_csr().neighbors(v)) {
    meter_.seq_read(sizeof(entry));
    const graph::NodeId c = entry.node;
    if (g_.observed(c) || g_.in_csr().degree(c) == 0) continue;
    if (delta > residual_[c]) {
      residual_[c] = delta;
      push_entry(c, delta);
    }
  }
}

TreeLevels::TreeLevels(const graph::FactorGraph& g, bool naive,
                       perf::Meter& meter)
    : naive_(naive), level_(g.num_nodes(), kNoLevel) {
  const graph::NodeId n = g.num_nodes();
  const auto& edges = g.edges();
  if (naive_) {
    for (graph::NodeId v = 0; v < n; ++v) {
      meter.seq_read(sizeof(std::uint32_t));
      if (level_[v] != kNoLevel) continue;
      level_[v] = 0;
      // Relax over the whole edge list until the component stabilizes.
      bool changed = true;
      while (changed) {
        changed = false;
        meter.seq_read(edges.size() * sizeof(graph::DirectedEdge));
        meter.near_read(sizeof(std::uint32_t), 2 * edges.size());
        for (const auto& e : edges) {
          if (level_[e.src] != kNoLevel && level_[e.dst] > level_[e.src] + 1) {
            level_[e.dst] = level_[e.src] + 1;
            changed = true;
          }
        }
      }
    }
  } else {
    std::vector<graph::NodeId> frontier;
    for (graph::NodeId root = 0; root < n; ++root) {
      if (level_[root] != kNoLevel) continue;
      level_[root] = 0;
      frontier.assign(1, root);
      std::uint32_t l = 0;
      while (!frontier.empty()) {
        std::vector<graph::NodeId> next;
        for (const graph::NodeId v : frontier) {
          meter.seq_read(sizeof(std::uint64_t));
          for (const auto& entry : g.out_csr().neighbors(v)) {
            meter.seq_read(sizeof(entry));
            meter.rand_read(sizeof(std::uint32_t));
            if (level_[entry.node] == kNoLevel) {
              level_[entry.node] = l + 1;
              next.push_back(entry.node);
            }
          }
        }
        frontier.swap(next);
        ++l;
      }
    }
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    if (level_[v] > max_level_ && level_[v] != kNoLevel) {
      max_level_ = level_[v];
    }
  }
}

}  // namespace credo::bp::runtime
