#include "bp/runtime/ghost.h"

#include <algorithm>
#include <mutex>

#include "util/error.h"

namespace credo::bp::runtime {

GhostExchange::GhostExchange(const graph::Partition& part) {
  const std::uint32_t s_count = part.shard_count();
  outboxes_ = std::vector<Outbox>(s_count);
  routes_.resize(s_count);
  readers_.resize(s_count);

  for (std::uint32_t s = 0; s < s_count; ++s) {
    const graph::Shard& sh = part.shard(s);
    Outbox& box = outboxes_[s];
    box.border_local.reserve(sh.border.size());
    for (graph::NodeId v : sh.border) box.border_local.push_back(v - sh.begin);
    box.buf[0].resize(sh.border.size());
    box.buf[1].resize(sh.border.size());
    box.ref.resize(sh.border.size());
    readers_[s] = std::vector<std::uint32_t>(part.readers(s).begin(),
                                             part.readers(s).end());
  }

  // Routes: for each shard, group its ghosts by owning shard and resolve
  // each ghost to the owner's border-buffer index. Ghost and border lists
  // are both sorted, so the lookup is a binary search.
  for (std::uint32_t s = 0; s < s_count; ++s) {
    const graph::Shard& sh = part.shard(s);
    const graph::NodeId owned = sh.num_nodes();
    Route* cur = nullptr;
    for (std::size_t k = 0; k < sh.ghosts.size(); ++k) {
      const graph::NodeId gv = sh.ghosts[k];
      const std::uint32_t src = part.owner(gv);
      if (cur == nullptr || cur->src_shard != src) {
        routes_[s].push_back(Route{});
        cur = &routes_[s].back();
        cur->src_shard = src;
      }
      const std::vector<graph::NodeId>& border = part.shard(src).border;
      auto it = std::lower_bound(border.begin(), border.end(), gv);
      CREDO_CHECK_MSG(it != border.end() && *it == gv,
                      "ghost node missing from owner's border set");
      cur->src_index.push_back(
          static_cast<std::uint32_t>(it - border.begin()));
      cur->dst_local.push_back(owned + static_cast<graph::NodeId>(k));
    }
  }
}

bool GhostExchange::publish(std::uint32_t shard,
                            const std::vector<graph::BeliefVec>& local,
                            float change_threshold, perf::Meter& meter) {
  Outbox& box = outboxes_[shard];
  if (box.border_local.empty()) return false;

  // Fill the back buffer and diff against the last CHANGED publish with
  // no lock held: this thread is the only writer of the back buffer and
  // of `ref`, and the front buffer only changes under the flip below
  // (also this thread). Diffing against the changed-publish baseline
  // rather than the previous flip keeps sub-threshold drift from
  // accumulating unnoticed: each step may stay under the bar, but the
  // running distance from the baseline eventually crosses it and wakes
  // parked readers.
  const std::uint32_t back = 1 - box.front;
  std::vector<graph::BeliefVec>& out = box.buf[back];
  bool changed = box.epoch == 0;  // first publish always wakes readers
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < box.border_local.size(); ++i) {
    out[i] = local[box.border_local[i]];
    bytes += out[i].payload_bytes();
    if (!changed && graph::l1_diff(out[i], box.ref[i]) > change_threshold)
      changed = true;
  }
  meter.shard_exchange(bytes);
  if (changed) {
    for (std::size_t i = 0; i < box.border_local.size(); ++i)
      box.ref[i] = out[i];
  }

  {
    std::unique_lock lock(box.mu);
    box.front = back;
    ++box.epoch;
  }
  return changed;
}

std::uint32_t GhostExchange::import(std::uint32_t shard,
                                    std::vector<graph::BeliefVec>& local,
                                    float change_threshold,
                                    std::vector<graph::NodeId>& changed,
                                    perf::Meter& meter) {
  std::uint32_t fresh = 0;
  for (Route& r : routes_[shard]) {
    Outbox& box = outboxes_[r.src_shard];
    std::shared_lock lock(box.mu);
    if (box.epoch == r.last_epoch) continue;  // nothing new from this source
    r.last_epoch = box.epoch;
    const std::vector<graph::BeliefVec>& src = box.buf[box.front];
    std::uint64_t bytes = 0;
    for (std::size_t i = 0; i < r.src_index.size(); ++i) {
      const graph::BeliefVec& b = src[r.src_index[i]];
      graph::BeliefVec& dst = local[r.dst_local[i]];
      bytes += b.payload_bytes();
      if (graph::l1_diff(dst, b) > change_threshold)
        changed.push_back(r.dst_local[i]);
      dst = b;
    }
    meter.shard_exchange(bytes);
    ++fresh;
  }
  return fresh;
}

}  // namespace credo::bp::runtime
