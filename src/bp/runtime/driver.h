// The shared iteration drivers (DESIGN.md §5b).
//
// Every sweep engine — sequential, thread-pool or device — runs the same
// outer loop: ask the schedule what to process, run the paradigm's body,
// advance the schedule (queue swap / cursor readback), then consult the
// convergence controller. `run_loop` is that loop, written once; the
// engines contribute only the body (the kernel math and its metering,
// which stay engine-specific so modelled costs are untouched by this
// layer). `run_priority_loop` is the analogous driver for the residual
// engine, whose unit of progress is one node update rather than a sweep.
//
// Ordering note: the schedule advances *before* the global check. For CPU
// engines the advance is unmetered, and for device frontiers the cursor
// readback precedes the batched check in the original formulation too, so
// both stats and metered totals are preserved exactly.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>

#include "bp/options.h"
#include "bp/runtime/convergence.h"
#include "bp/runtime/observe.h"
#include "bp/runtime/stop.h"
#include "bp/runtime/telemetry.h"
#include "graph/factor_graph.h"
#include "parallel/thread_pool.h"

namespace credo::bp::runtime {

/// What one sweep produced, filled in by the engine body.
struct IterationOutcome {
  /// Global L1 sum for this sweep. Engines with deferred checks (device
  /// reductions) leave it unset and clear `delta_valid`; the driver then
  /// obtains the sum from `deferred_delta` only on check iterations.
  double delta = 0.0;
  bool delta_valid = true;

  /// Elements actually processed (feeds BpStats::elements_processed).
  std::uint64_t processed = 0;
};

/// Runs the sweep loop: `body(iter, out)` once per iteration, schedule
/// advance, convergence check, optional telemetry.
///
/// Schedule must provide `begin_iteration(iter) -> frontier size` and
/// `advance(iter) -> bool` (false = work drained, i.e. every element
/// individually converged). `deferred_delta()` is called only when the body
/// left `delta_valid` false and the cadence demands a check; `time_fn()`
/// only when tracing.
template <typename Schedule, typename Body, typename DeferredDelta,
          typename TimeFn>
void run_loop(const BpOptions& opts, BpStats& stats,
              const ConvergenceController& ctl, Schedule& sched, Body&& body,
              DeferredDelta&& deferred_delta, TimeFn&& time_fn) {
  const DeadlineGuard guard(opts.stop, opts.host_deadline_seconds,
                            opts.modelled_deadline_seconds);
  for (std::uint32_t iter = 0; iter < opts.max_iterations; ++iter) {
    stats.iterations = iter + 1;
    const std::uint64_t frontier = sched.begin_iteration(iter);

    IterationOutcome out;
    body(iter, out);
    stats.elements_processed += out.processed;

    bool checked = out.delta_valid;
    double delta = out.delta;
    if (out.delta_valid) stats.final_delta = delta;

    bool stop = false;
    if (!sched.advance(iter)) {
      // Queue drained: every remaining element individually converged.
      stats.converged = true;
      stop = true;
    }
    if (!stop && ctl.should_check(iter)) {
      if (!out.delta_valid) {
        delta = deferred_delta();
        stats.final_delta = delta;
        checked = true;
      }
      if (ctl.global_converged(delta)) {
        stats.converged = true;
        stop = true;
      }
    }
    // §5c cooperative stop: cancellation polls every iteration, the
    // deadline budgets at the check cadence. A run that converged this very
    // iteration keeps its convergence; the guard only ends unfinished runs.
    if (!stop && guard.active()) {
      const StopReason why = guard.poll(
          ctl.should_check(iter), [&] { return time_fn().total(); });
      if (why != StopReason::kNone) {
        stats.stop_reason = why;
        stop = true;
      }
    }
    // Always-on aggregates (§5e): the same sampling points as the trace,
    // but into sharded registry cells — no allocation, no opt-in.
    observe_iteration(frontier, checked);
    if (opts.collect_trace) {
      stats.trace.push_back(IterationRecord{stats.iterations,
                                            checked ? delta : 0.0, checked,
                                            frontier, out.processed,
                                            time_fn()});
    }
    if (stop) break;
  }
  observe_run(stats.iterations, stats.converged);
}

/// No-op epoch hook: the default "no alternative stopping rule" for the
/// priority loops. LDPC runners pass a real hook that evaluates syndrome
/// satisfaction (DESIGN.md §5g).
struct NoEpochHook {
  constexpr bool operator()() const noexcept { return false; }
};

/// Runs the residual-priority loop: one `body(v) -> delta` call per popped
/// node, budgeted at `max_iterations * num_nodes` updates so the cap is
/// comparable with the sweep engines'. The schedule must provide
/// `pop(v) -> bool`, `record(v, delta)`, `empty()` and `pending()`.
///
/// `epoch_hook() -> bool` runs once per sweep-equivalent epoch; returning
/// true ends the run as converged (the alternative stopping rule —
/// syndrome satisfaction for the LDPC families).
///
/// When tracing, one IterationRecord is emitted per `num_nodes` updates (a
/// sweep-equivalent epoch) so residual traces line up with sweep traces.
template <typename Schedule, typename Body, typename EpochHook,
          typename TimeFn>
void run_priority_loop(const BpOptions& opts, std::uint64_t num_nodes,
                       BpStats& stats, Schedule& sched, Body&& body,
                       EpochHook&& epoch_hook, TimeFn&& time_fn) {
  const DeadlineGuard guard(opts.stop, opts.host_deadline_seconds,
                            opts.modelled_deadline_seconds);
  const std::uint64_t max_updates =
      static_cast<std::uint64_t>(opts.max_iterations) * num_nodes;
  const std::uint64_t epoch = std::max<std::uint64_t>(1, num_nodes);
  std::uint64_t updates = 0;
  bool stopped = false;
  bool hook_converged = false;
  graph::NodeId v = 0;
  while (updates < max_updates && sched.pop(v)) {
    ++updates;
    ++stats.elements_processed;
    const float d = body(v);
    sched.record(v, d);
    stats.final_delta = d;
    if (updates % epoch == 0) {
      // One sweep-equivalent epoch: sample the queue as the frontier (§5e).
      observe_iteration(sched.pending(), /*checked=*/true);
    }
    if (opts.collect_trace && num_nodes > 0 && updates % num_nodes == 0) {
      stats.trace.push_back(IterationRecord{
          static_cast<std::uint32_t>(updates / num_nodes), d, true,
          sched.pending(), num_nodes, time_fn()});
    }
    if (updates % epoch == 0 && epoch_hook()) {
      hook_converged = true;
      break;
    }
    // §5c stop policy: cancellation every update, budgets once per
    // sweep-equivalent epoch (the residual loop's convergence cadence).
    if (guard.active()) {
      const StopReason why = guard.poll(updates % epoch == 0,
                                        [&] { return time_fn().total(); });
      if (why != StopReason::kNone) {
        stats.stop_reason = why;
        stopped = true;
        break;
      }
    }
  }
  stats.iterations = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      updates / std::max<std::uint64_t>(1, num_nodes) + 1,
      opts.max_iterations));
  stats.converged =
      hook_converged || (!stopped && (sched.empty() || updates < max_updates));
  observe_run(stats.iterations, stats.converged);
}

template <typename Schedule, typename Body, typename TimeFn>
void run_priority_loop(const BpOptions& opts, std::uint64_t num_nodes,
                       BpStats& stats, Schedule& sched, Body&& body,
                       TimeFn&& time_fn) {
  run_priority_loop(opts, num_nodes, stats, sched,
                    std::forward<Body>(body), NoEpochHook{},
                    std::forward<TimeFn>(time_fn));
}

/// Concurrent analogue of run_priority_loop for the relaxed schedulers
/// (DESIGN.md §5f): the whole drain runs as ONE fork/join region on
/// `pool`, every worker looping `step(worker) -> updates performed` until
/// the schedule drains, the shared `max_iterations * num_nodes` update
/// budget runs out, or a stop fires. `step` owns popping, the kernel body
/// and recording (so metering stays per-worker); 0 means nothing was
/// claimable this attempt — the worker yields and retries unless the
/// schedule reports drained(). The schedule needs only `drained()` and
/// `pending()` here.
///
/// Epoch bookkeeping (the §5e observation, optional trace record, deadline
/// budget) runs under a driver mutex on whichever worker crosses a
/// num_nodes boundary. Trace records carry checked=false and no delta —
/// the relaxed engines have no global sum — and their time breakdown folds
/// other workers' in-flight sinks, so traced times are approximate while
/// the team runs (the final stats are exact). Cancellation is polled by
/// every worker on every step.
/// `epoch_hook() -> bool` runs under the driver mutex on whichever worker
/// crosses an epoch boundary; returning true aborts the drain with the run
/// marked converged (the alternative stopping rule — syndrome satisfaction
/// for the LDPC families). The hook may read shared belief/message state;
/// other workers keep updating while it runs, which is the same chaotic
/// tolerance every relaxed read already has.
template <typename Schedule, typename Step, typename EpochHook,
          typename TimeFn>
void run_relaxed_priority_loop(const BpOptions& opts, std::uint64_t num_nodes,
                               BpStats& stats, Schedule& sched,
                               parallel::ThreadPool& pool, Step&& step,
                               EpochHook&& epoch_hook, TimeFn&& time_fn) {
  const DeadlineGuard guard(opts.stop, opts.host_deadline_seconds,
                            opts.modelled_deadline_seconds);
  const std::uint64_t max_updates =
      static_cast<std::uint64_t>(opts.max_iterations) * num_nodes;
  const std::uint64_t epoch = std::max<std::uint64_t>(1, num_nodes);
  std::atomic<std::uint64_t> updates{0};
  std::atomic<bool> abort{false};
  std::atomic<bool> hook_converged{false};
  std::atomic<std::uint8_t> stop_reason{
      static_cast<std::uint8_t>(StopReason::kNone)};
  std::mutex epoch_mu;
  pool.run_team([&](unsigned w) {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      if (updates.load(std::memory_order_relaxed) >= max_updates) return;
      const std::uint64_t done = step(w);
      if (done == 0) {
        if (sched.drained()) return;
        std::this_thread::yield();
        continue;
      }
      const std::uint64_t total =
          updates.fetch_add(done, std::memory_order_relaxed) + done;
      const bool crossed = (total / epoch) != ((total - done) / epoch);
      if (crossed) {
        const std::lock_guard<std::mutex> lk(epoch_mu);
        observe_iteration(sched.pending(), /*checked=*/true);
        if (opts.collect_trace) {
          stats.trace.push_back(IterationRecord{
              static_cast<std::uint32_t>(total / epoch), 0.0,
              /*checked=*/false, sched.pending(), epoch, time_fn()});
        }
        if (epoch_hook()) {
          hook_converged.store(true, std::memory_order_relaxed);
          abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
      if (guard.active()) {
        const StopReason why =
            guard.poll(crossed, [&] { return time_fn().total(); });
        if (why != StopReason::kNone) {
          stop_reason.store(static_cast<std::uint8_t>(why),
                            std::memory_order_relaxed);
          abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  });
  const std::uint64_t total = updates.load(std::memory_order_relaxed);
  stats.elements_processed += total;
  const auto why = static_cast<StopReason>(
      stop_reason.load(std::memory_order_relaxed));
  const bool stopped = why != StopReason::kNone;
  if (stopped) stats.stop_reason = why;
  stats.iterations = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(total / epoch + 1, opts.max_iterations));
  stats.converged =
      hook_converged.load(std::memory_order_relaxed) ||
      (!stopped && (sched.drained() || total < max_updates));
  observe_run(stats.iterations, stats.converged);
}

template <typename Schedule, typename Step, typename TimeFn>
void run_relaxed_priority_loop(const BpOptions& opts, std::uint64_t num_nodes,
                               BpStats& stats, Schedule& sched,
                               parallel::ThreadPool& pool, Step&& step,
                               TimeFn&& time_fn) {
  run_relaxed_priority_loop(opts, num_nodes, stats, sched, pool,
                            std::forward<Step>(step), NoEpochHook{},
                            std::forward<TimeFn>(time_fn));
}

}  // namespace credo::bp::runtime
