// Host-side schedule policies (DESIGN.md §5b).
//
// A schedule owns *which* node/edge indices run each round; the engines own
// what happens to each index. Three families reproduce the paper's
// schedules plus the residual extension:
//  * DenseSweep           — every element, every iteration (Algorithm 1);
//  * NodeFrontier /       — §3.5 work queues: elements whose delta stayed
//    FragmentedNodeFrontier / EdgeFrontier
//                           above the per-element threshold re-enqueue for
//                           the next round, everything else freezes;
//  * ResidualSchedule     — residual-prioritized selection (cf. §5.1,
//                           Gonzalez et al.): the node that moved most
//                           runs next.
//
// Queue traffic is metered here (entry reads on fetch, entry writes on
// re-enqueue, the shared-cursor atomic for the fragmented form) exactly as
// the engines metered it before the refactor, so modelled costs are
// unchanged. TreeLevels is the schedule of the non-loopy §2.1.1 baseline:
// a by-level edge ordering for the two Pearl sweeps.
#pragma once

#include <atomic>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "bp/runtime/convergence.h"
#include "graph/csr.h"
#include "graph/factor_graph.h"
#include "perf/counters.h"

namespace credo::bp::runtime {

/// Dense sweep over a fixed element count — Algorithm 1 with no queue.
class DenseSweep {
 public:
  explicit DenseSweep(std::uint64_t count) noexcept : count_(count) {}

  std::uint64_t begin_iteration(std::uint32_t /*iter*/) const noexcept {
    return count_;
  }
  [[nodiscard]] std::uint64_t size() const noexcept { return count_; }
  bool advance(std::uint32_t /*iter*/) const noexcept { return true; }

 private:
  std::uint64_t count_;
};

/// §3.5 node work queue (sequential form): a double-buffered index list.
/// With `use_queue` false it degrades to a dense [0, n) sweep so one engine
/// body serves both modes.
///
/// Seeded form (DESIGN.md §5h): when `seed` is non-null the first frontier
/// is that node list instead of every unobserved node, queue mode is
/// forced, and `keep` becomes propagating — a still-active node re-enqueues
/// itself AND its out-neighbors (per-round stamp-deduplicated), because a
/// node outside the seed was never in the queue and must be woken when a
/// perturbation reaches it. Unseeded behavior and metering are unchanged.
class NodeFrontier {
 public:
  NodeFrontier(const graph::FactorGraph& g, bool use_queue,
               const std::vector<graph::NodeId>* seed = nullptr);

  [[nodiscard]] bool queued() const noexcept { return use_queue_; }

  std::uint64_t begin_iteration(std::uint32_t /*iter*/) {
    if (use_queue_) {
      next_.clear();
      ++round_;
    }
    return size();
  }
  [[nodiscard]] std::uint64_t size() const noexcept {
    return use_queue_ ? queue_.size() : n_;
  }

  /// Fetches the qi-th scheduled node. Queue mode meters the entry read;
  /// dense mode is the loop index itself.
  graph::NodeId at(perf::Meter& meter, std::uint64_t qi) const {
    if (!use_queue_) return static_cast<graph::NodeId>(qi);
    meter.seq_read(sizeof(graph::NodeId));
    return queue_[qi];
  }

  /// Re-enqueues a still-active node for the next round (plus its
  /// out-neighbors in seeded mode — the change flows to its children).
  void keep(perf::Meter& meter, graph::NodeId v);

  /// Swaps in the next frontier; false when it is empty (all remaining
  /// elements individually converged).
  bool advance(std::uint32_t /*iter*/) {
    if (!use_queue_) return true;
    queue_.swap(next_);
    return !queue_.empty();
  }

 private:
  void push_next(perf::Meter& meter, graph::NodeId v);

  bool use_queue_;
  std::uint64_t n_;
  const graph::FactorGraph* g_ = nullptr;  // set iff seeded
  std::uint32_t round_ = 0;
  std::vector<std::uint32_t> stamp_;  // round v was last enqueued for
  std::vector<graph::NodeId> queue_;
  std::vector<graph::NodeId> next_;
};

/// §3.5 node work queue, thread-team form: appends go to per-worker
/// fragments (the real implementation appends through one shared cursor,
/// hence the atomic charge per keep), merged into one frontier at advance.
///
/// Seeded form mirrors NodeFrontier's: propagating keep with an atomic
/// per-round stamp CAS so exactly one worker enqueues a woken node per
/// round (duplicates across fragments would otherwise grow unboundedly).
class FragmentedNodeFrontier {
 public:
  FragmentedNodeFrontier(const graph::FactorGraph& g, bool use_queue,
                         unsigned workers,
                         const std::vector<graph::NodeId>* seed = nullptr);

  [[nodiscard]] bool queued() const noexcept { return use_queue_; }

  std::uint64_t begin_iteration(std::uint32_t /*iter*/) noexcept {
    if (use_queue_ && g_ != nullptr) ++round_;
    return size();
  }
  [[nodiscard]] std::uint64_t size() const noexcept {
    return use_queue_ ? queue_.size() : n_;
  }

  graph::NodeId at(perf::Meter& meter, std::uint64_t qi) const {
    if (!use_queue_) return static_cast<graph::NodeId>(qi);
    meter.seq_read(sizeof(graph::NodeId));
    return queue_[qi];
  }

  /// Worker-local re-enqueue; the metered atomic is the shared cursor
  /// bump a real lock-free append would pay. Seeded mode also wakes v's
  /// out-neighbors (stamp-deduplicated across the team).
  void keep(perf::Meter& meter, unsigned worker, graph::NodeId v);

  bool advance(std::uint32_t /*iter*/) {
    if (!use_queue_) return true;
    queue_.clear();
    for (auto& f : frags_) {
      queue_.insert(queue_.end(), f.begin(), f.end());
      f.clear();
    }
    return !queue_.empty();
  }

 private:
  void push_next(perf::Meter& meter, unsigned worker, graph::NodeId v);

  bool use_queue_;
  std::uint64_t n_;
  const graph::FactorGraph* g_ = nullptr;  // set iff seeded
  std::uint32_t round_ = 0;
  std::vector<std::atomic<std::uint32_t>> stamp_;
  std::vector<graph::NodeId> queue_;
  std::vector<std::vector<graph::NodeId>> frags_;
};

/// §3.5 edge work queue: starts with every edge into an unobserved
/// destination; the engine re-enqueues the out-edges of nodes that moved.
class EdgeFrontier {
 public:
  explicit EdgeFrontier(const graph::FactorGraph& g);

  std::uint64_t begin_iteration(std::uint32_t /*iter*/) {
    next_.clear();
    return queue_.size();
  }
  [[nodiscard]] std::uint64_t size() const noexcept { return queue_.size(); }

  graph::EdgeId at(perf::Meter& meter, std::uint64_t qi) const {
    meter.seq_read(sizeof(graph::EdgeId));
    return queue_[qi];
  }

  /// Unmetered re-read of an entry already fetched this iteration (the
  /// second access hits the same cache line the metered `at` paid for).
  [[nodiscard]] graph::EdgeId peek(std::uint64_t qi) const noexcept {
    return queue_[qi];
  }

  void keep(perf::Meter& meter, graph::EdgeId e) {
    next_.push_back(e);
    meter.seq_write(sizeof(graph::EdgeId));
  }

  bool advance(std::uint32_t /*iter*/) {
    queue_.swap(next_);
    return !queue_.empty();
  }

 private:
  std::vector<graph::EdgeId> queue_;
  std::vector<graph::EdgeId> next_;
};

/// Residual-prioritized schedule: a max-heap of (residual, node, version)
/// with lazy deletion — every reprioritization bumps the node's version, so
/// a popped entry is live iff its version matches the table (the same guard
/// MultiQueueSchedule uses; see mq_schedule.h). Superseded duplicates are
/// discarded on pop, and when they outnumber live entries the heap is
/// compacted in place, so its size stays O(nodes) no matter how often nodes
/// are reprioritized. Heap traffic (near reads per pop, near writes per
/// push, the CSR walk of reprioritization) is metered through the meter
/// bound at construction.
class ResidualSchedule {
 public:
  /// Ordered by (priority, node id) exactly as the former
  /// std::pair<float, NodeId> entries were; the version is payload.
  struct Entry {
    float prio;
    graph::NodeId node;
    std::uint32_t ver;
    bool operator<(const Entry& o) const noexcept {
      if (prio != o.prio) return prio < o.prio;
      return node < o.node;
    }
  };

  /// `seed` non-null starts only those nodes at max priority (DESIGN.md
  /// §5h) instead of every unobserved node; record() already propagates
  /// priority to children, so the perturbation spreads on its own.
  ResidualSchedule(const graph::FactorGraph& g,
                   const ConvergenceController& ctl, perf::Meter& meter,
                   const std::vector<graph::NodeId>* seed = nullptr);

  /// Pops the highest-residual unconverged node. False when drained.
  bool pop(graph::NodeId& v);

  /// Records an update of `v` with belief change `delta`: clears v's
  /// residual and raises its children's priorities.
  void record(graph::NodeId v, float delta);

  [[nodiscard]] bool empty() const noexcept { return pq_.empty(); }
  [[nodiscard]] std::uint64_t pending() const noexcept { return pq_.size(); }

 private:
  void push_entry(graph::NodeId v, float prio);
  void compact();

  const graph::FactorGraph& g_;
  const ConvergenceController& ctl_;
  perf::Meter& meter_;
  std::vector<float> residual_;
  std::vector<std::uint32_t> version_;
  std::vector<std::uint8_t> live_;  // node has a current-version heap entry
  std::priority_queue<Entry> pq_;
};

/// By-level schedule of the non-loopy §2.1.1 baseline: BFS levels rooted at
/// each component's smallest node id, computed either by the paper's
/// data-structure-free edge-list relaxation (`naive`, the "enormous
/// overhead" mode) or by an indexed BFS over the CSR.
class TreeLevels {
 public:
  TreeLevels(const graph::FactorGraph& g, bool naive, perf::Meter& meter);

  [[nodiscard]] std::uint32_t max_level() const noexcept {
    return max_level_;
  }

  /// Applies `fn` to every edge from `from_level` to `to_level`, in the
  /// cost regime the mode implies (full edge-list scans per member when
  /// naive, CSR walks when indexed).
  template <typename Fn>
  void for_edges(const graph::FactorGraph& g, std::uint32_t from_level,
                 std::uint32_t to_level, perf::Meter& meter, Fn&& fn) const {
    const auto& edges = g.edges();
    const graph::NodeId n = g.num_nodes();
    if (naive_) {
      for (graph::NodeId v = 0; v < n; ++v) {
        meter.seq_read(sizeof(std::uint32_t));  // level-array scan
        if (level_[v] != from_level) continue;
        // Full edge-list scan to find v's outgoing edges; each candidate
        // costs the struct read plus the level lookups of both endpoints.
        meter.seq_read(edges.size() * sizeof(graph::DirectedEdge));
        meter.near_read(sizeof(std::uint32_t), 2 * edges.size());
        for (graph::EdgeId e = 0; e < edges.size(); ++e) {
          if (edges[e].src == v && level_[edges[e].dst] == to_level) {
            fn(e);
          }
        }
      }
    } else {
      for (graph::NodeId v = 0; v < n; ++v) {
        meter.seq_read(sizeof(std::uint32_t));
        if (level_[v] != from_level) continue;
        meter.seq_read(sizeof(std::uint64_t));
        for (const auto& entry : g.out_csr().neighbors(v)) {
          meter.seq_read(sizeof(entry));
          meter.rand_read(sizeof(std::uint32_t));  // level[dst]
          if (level_[entry.node] == to_level) fn(entry.edge);
        }
      }
    }
  }

 private:
  bool naive_;
  std::vector<std::uint32_t> level_;
  std::uint32_t max_level_ = 0;
};

}  // namespace credo::bp::runtime
