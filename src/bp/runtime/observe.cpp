#include "bp/runtime/observe.h"

#include "obs/metrics.h"

namespace credo::bp::runtime {
namespace {

/// Handles resolved once against the global registry (magic statics); the
/// per-iteration path then costs only the sharded increments themselves.
struct Handles {
  obs::Histogram& frontier;
  obs::Counter& iterations;
  obs::Counter& checks;
  obs::Histogram& run_iterations;
  obs::Counter& runs;
  obs::Counter& runs_converged;

  static Handles& get() {
    static Handles h{
        obs::MetricsRegistry::global().histogram(
            "credo_bp_frontier_size",
            "Elements the schedule offered per driver iteration",
            obs::decade_buckets(9)),
        obs::MetricsRegistry::global().counter(
            "credo_bp_iterations_total", "Driver iterations executed"),
        obs::MetricsRegistry::global().counter(
            "credo_bp_convergence_checks_total",
            "Global convergence sums evaluated (cadence = iterations_total"
            " / checks_total)"),
        obs::MetricsRegistry::global().histogram(
            "credo_bp_run_iterations",
            "Iterations per finished BP run", obs::pow2_buckets(10)),
        obs::MetricsRegistry::global().counter("credo_bp_runs_total",
                                               "BP runs finished"),
        obs::MetricsRegistry::global().counter(
            "credo_bp_runs_converged_total", "BP runs that converged"),
    };
    return h;
  }
};

}  // namespace

void observe_iteration(std::uint64_t frontier, bool checked) noexcept {
  Handles& h = Handles::get();
  h.frontier.observe(static_cast<double>(frontier));
  h.iterations.inc();
  if (checked) h.checks.inc();
}

void observe_run(std::uint32_t iterations, bool converged) noexcept {
  Handles& h = Handles::get();
  h.run_iterations.observe(static_cast<double>(iterations));
  h.runs.inc();
  if (converged) h.runs_converged.inc();
}

}  // namespace credo::bp::runtime
