#include "bp/runtime/observe.h"

#include "obs/metrics.h"

namespace credo::bp::runtime {
namespace {

/// Handles resolved once against the global registry (magic statics); the
/// per-iteration path then costs only the sharded increments themselves.
struct Handles {
  obs::Histogram& frontier;
  obs::Counter& iterations;
  obs::Counter& checks;
  obs::Histogram& run_iterations;
  obs::Counter& runs;
  obs::Counter& runs_converged;
  obs::Counter& sched_pops;
  obs::Counter& sched_stale_pops;
  obs::Counter& sched_inversions;
  obs::Histogram& sched_heap_peak;
  obs::Histogram& sched_splash_size;
  obs::Counter& shard_runs;
  obs::Counter& shard_exchange_bytes;
  obs::Counter& shard_parks;
  obs::Counter& shard_wakes;
  obs::Histogram& shard_sweeps;

  static Handles& get() {
    static Handles h{
        obs::MetricsRegistry::global().histogram(
            "credo_bp_frontier_size",
            "Elements the schedule offered per driver iteration",
            obs::decade_buckets(9)),
        obs::MetricsRegistry::global().counter(
            "credo_bp_iterations_total", "Driver iterations executed"),
        obs::MetricsRegistry::global().counter(
            "credo_bp_convergence_checks_total",
            "Global convergence sums evaluated (cadence = iterations_total"
            " / checks_total)"),
        obs::MetricsRegistry::global().histogram(
            "credo_bp_run_iterations",
            "Iterations per finished BP run", obs::pow2_buckets(10)),
        obs::MetricsRegistry::global().counter("credo_bp_runs_total",
                                               "BP runs finished"),
        obs::MetricsRegistry::global().counter(
            "credo_bp_runs_converged_total", "BP runs that converged"),
        obs::MetricsRegistry::global().counter(
            "credo_sched_pops_total",
            "Relaxed-scheduler claims handed to engine bodies"),
        obs::MetricsRegistry::global().counter(
            "credo_sched_stale_pops_total",
            "Superseded duplicate entries discarded on pop (stale rate = "
            "stale / (stale + pops))"),
        obs::MetricsRegistry::global().counter(
            "credo_sched_inversions_total",
            "Sampled pops that ranked below another shard's top (the "
            "relaxation actually paid)"),
        obs::MetricsRegistry::global().histogram(
            "credo_sched_heap_peak",
            "Peak entries per shard heap over a relaxed-scheduler run",
            obs::pow2_buckets(24)),
        obs::MetricsRegistry::global().histogram(
            "credo_sched_splash_size",
            "Nodes per splash subtree swept as one batch",
            obs::pow2_buckets(12)),
        obs::MetricsRegistry::global().counter(
            "credo_shard_runs_total", "Sharded-engine runs finished"),
        obs::MetricsRegistry::global().counter(
            "credo_shard_exchange_bytes_total",
            "Ghost-buffer belief payload published and imported across "
            "shard boundaries"),
        obs::MetricsRegistry::global().counter(
            "credo_shard_parks_total",
            "Shards parked as locally quiescent (woken parks count again)"),
        obs::MetricsRegistry::global().counter(
            "credo_shard_wakes_total",
            "Parked shards woken by a changed neighbor publish"),
        obs::MetricsRegistry::global().histogram(
            "credo_shard_sweeps",
            "Local sweeps per shard over a sharded run",
            obs::pow2_buckets(10)),
    };
    return h;
  }
};

}  // namespace

void observe_iteration(std::uint64_t frontier, bool checked) noexcept {
  Handles& h = Handles::get();
  h.frontier.observe(static_cast<double>(frontier));
  h.iterations.inc();
  if (checked) h.checks.inc();
}

void observe_run(std::uint32_t iterations, bool converged) noexcept {
  Handles& h = Handles::get();
  h.run_iterations.observe(static_cast<double>(iterations));
  h.runs.inc();
  if (converged) h.runs_converged.inc();
}

void observe_sched_run(std::uint64_t pops, std::uint64_t stale_pops,
                       std::uint64_t inversions,
                       std::span<const std::uint64_t> heap_peaks) noexcept {
  Handles& h = Handles::get();
  if (pops > 0) h.sched_pops.inc(pops);
  if (stale_pops > 0) h.sched_stale_pops.inc(stale_pops);
  if (inversions > 0) h.sched_inversions.inc(inversions);
  for (const std::uint64_t peak : heap_peaks) {
    h.sched_heap_peak.observe(static_cast<double>(peak));
  }
}

void observe_splash_subtree(std::uint64_t nodes) noexcept {
  Handles::get().sched_splash_size.observe(static_cast<double>(nodes));
}

void observe_shard_run(std::span<const std::uint32_t> sweeps,
                       std::uint64_t exchange_bytes, std::uint64_t parks,
                       std::uint64_t wakes) noexcept {
  Handles& h = Handles::get();
  h.shard_runs.inc();
  if (exchange_bytes > 0) h.shard_exchange_bytes.inc(exchange_bytes);
  if (parks > 0) h.shard_parks.inc(parks);
  if (wakes > 0) h.shard_wakes.inc(wakes);
  for (const std::uint32_t s : sweeps) {
    h.shard_sweeps.observe(static_cast<double>(s));
  }
}

}  // namespace credo::bp::runtime
