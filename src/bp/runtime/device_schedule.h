// Device-resident §3.5 work-queue frontiers (DESIGN.md §5b).
//
// The GPU form of the work queue is a double-buffered index buffer plus an
// atomic cursor: the kernel appends still-active indices through the
// cursor, and a 4-byte cursor readback (metered d2h plus the append
// serialization) sizes the next launch. These classes own that machinery —
// buffers, parity, the per-iteration diff/cursor reset and the readback —
// for the two element kinds; the engines keep the kernels.
#pragma once

#include <cstdint>

#include "gpusim/device.h"
#include "graph/factor_graph.h"

namespace credo::bp::runtime {

/// Node-index frontier for the CUDA Node engine. With `use_queue` false it
/// is a dense [0, n) sweep and allocates nothing.
class DeviceNodeFrontier {
 public:
  DeviceNodeFrontier(gpusim::Device& dev, const graph::FactorGraph& g,
                     bool use_queue, std::uint32_t block_threads,
                     gpusim::DeviceSpan<float> diff);

  [[nodiscard]] bool queued() const noexcept { return use_queue_; }
  [[nodiscard]] std::uint64_t size() const noexcept {
    return use_queue_ ? queued_ : n_;
  }

  /// Queue mode: clears the diff buffer (stale entries of frozen nodes
  /// must not feed the reduction) and resets the append cursor. Returns
  /// the frontier size for this launch.
  std::uint64_t begin_iteration(std::uint32_t iter);

  /// Current/next queue by iteration parity, and the append cursor, for
  /// the engine's kernel captures.
  [[nodiscard]] gpusim::DeviceSpan<const std::uint32_t> current(
      std::uint32_t iter) const noexcept {
    return (iter % 2 == 0) ? queue_a_.cspan() : queue_b_.cspan();
  }
  [[nodiscard]] gpusim::DeviceSpan<std::uint32_t> next(
      std::uint32_t iter) noexcept {
    return (iter % 2 == 0) ? queue_b_.span() : queue_a_.span();
  }
  [[nodiscard]] gpusim::DeviceSpan<std::uint32_t> cursor() noexcept {
    return cursor_.span();
  }

  /// Host-side read of the i-th scheduled node (the warp-divergence
  /// accounting walks the frontier on the host).
  [[nodiscard]] graph::NodeId host_at(std::uint32_t iter,
                                      std::uint64_t i) const noexcept {
    return (iter % 2 == 0) ? queue_a_.host()[i] : queue_b_.host()[i];
  }

  /// Queue mode: cursor readback (4-byte d2h every iteration — part of
  /// the §3.5 queue-management overhead) sizing the next launch; false
  /// when the queue drained.
  bool advance(std::uint32_t iter);

 private:
  gpusim::Device& dev_;
  bool use_queue_;
  std::uint64_t n_;
  std::uint32_t block_;
  gpusim::DeviceSpan<float> diff_;
  gpusim::DeviceBuffer<std::uint32_t> queue_a_;
  gpusim::DeviceBuffer<std::uint32_t> queue_b_;
  gpusim::DeviceBuffer<std::uint32_t> cursor_;
  std::uint32_t queued_ = 0;
};

/// Edge-index frontier for the CUDA Edge engine's queued mode. Starts with
/// every edge into an unobserved destination; the engine's marginalize
/// kernel re-enqueues the out-edges of nodes that moved.
class DeviceEdgeFrontier {
 public:
  DeviceEdgeFrontier(gpusim::Device& dev, const graph::FactorGraph& g);

  [[nodiscard]] std::uint64_t size() const noexcept { return queued_; }

  /// Resets the append cursor. Returns the frontier size for this launch.
  std::uint64_t begin_iteration(std::uint32_t iter);

  [[nodiscard]] gpusim::DeviceSpan<const std::uint32_t> current(
      std::uint32_t iter) const noexcept {
    return (iter % 2 == 0) ? queue_a_.cspan() : queue_b_.cspan();
  }
  [[nodiscard]] gpusim::DeviceSpan<std::uint32_t> next(
      std::uint32_t iter) noexcept {
    return (iter % 2 == 0) ? queue_b_.span() : queue_a_.span();
  }
  [[nodiscard]] gpusim::DeviceSpan<std::uint32_t> cursor() noexcept {
    return cursor_.span();
  }

  /// Cursor readback + append-serialization charge; false when drained.
  bool advance(std::uint32_t iter);

 private:
  gpusim::Device& dev_;
  gpusim::DeviceBuffer<std::uint32_t> queue_a_;
  gpusim::DeviceBuffer<std::uint32_t> queue_b_;
  gpusim::DeviceBuffer<std::uint32_t> cursor_;
  std::uint32_t queued_ = 0;
};

}  // namespace credo::bp::runtime
