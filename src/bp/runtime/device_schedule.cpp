#include "bp/runtime/device_schedule.h"

#include <vector>

namespace credo::bp::runtime {

using gpusim::LaunchDims;
using gpusim::ThreadCtx;

DeviceNodeFrontier::DeviceNodeFrontier(gpusim::Device& dev,
                                       const graph::FactorGraph& g,
                                       bool use_queue,
                                       std::uint32_t block_threads,
                                       gpusim::DeviceSpan<float> diff)
    : dev_(dev),
      use_queue_(use_queue),
      n_(g.num_nodes()),
      block_(block_threads),
      diff_(diff) {
  if (!use_queue_) return;
  const graph::NodeId n = g.num_nodes();
  queue_a_ = dev_.alloc<std::uint32_t>(n);
  queue_b_ = dev_.alloc<std::uint32_t>(n);
  cursor_ = dev_.alloc<std::uint32_t>(1);
  std::vector<std::uint32_t> init;
  init.reserve(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!g.observed(v)) init.push_back(v);
  }
  queued_ = static_cast<std::uint32_t>(init.size());
  dev_.h2d<std::uint32_t>(queue_a_, init);
}

std::uint64_t DeviceNodeFrontier::begin_iteration(std::uint32_t /*iter*/) {
  if (use_queue_) {
    const auto diff = diff_;
    dev_.launch(LaunchDims::cover(n_, block_), n_, [&](ThreadCtx& ctx) {
      diff.store(ctx, ctx.global_id(), 0.0f);
    });
    cursor_.host()[0] = 0;
  }
  return size();
}

bool DeviceNodeFrontier::advance(std::uint32_t /*iter*/) {
  if (!use_queue_) return true;
  const std::uint32_t appended = cursor_.host()[0];
  perf::Meter m(dev_.mutable_counters());
  m.d2h(sizeof(std::uint32_t));
  // Every append serialized on the single cursor.
  m.atomic(0, appended);
  queued_ = appended;
  return queued_ != 0;
}

DeviceEdgeFrontier::DeviceEdgeFrontier(gpusim::Device& dev,
                                       const graph::FactorGraph& g)
    : dev_(dev) {
  const std::uint64_t m = g.num_edges();
  queue_a_ = dev_.alloc<std::uint32_t>(m);
  queue_b_ = dev_.alloc<std::uint32_t>(m);
  cursor_ = dev_.alloc<std::uint32_t>(1);
  std::vector<std::uint32_t> init;
  init.reserve(m);
  for (graph::EdgeId e = 0; e < m; ++e) {
    if (!g.observed(g.edge(e).dst)) init.push_back(e);
  }
  dev_.h2d<std::uint32_t>(queue_a_, init);
  cursor_.host()[0] = static_cast<std::uint32_t>(init.size());
  queued_ = static_cast<std::uint32_t>(init.size());
}

std::uint64_t DeviceEdgeFrontier::begin_iteration(std::uint32_t /*iter*/) {
  cursor_.host()[0] = 0;
  return queued_;
}

bool DeviceEdgeFrontier::advance(std::uint32_t /*iter*/) {
  const std::uint32_t appended = cursor_.host()[0];
  perf::Meter meter(dev_.mutable_counters());
  meter.d2h(sizeof(std::uint32_t));
  meter.atomic(0, appended > 0 ? appended : 0);
  queued_ = appended;
  return queued_ != 0;
}

}  // namespace credo::bp::runtime
