// OpenMP-style CPU-parallel engines — the §2.4 study.
//
// Same algorithms as the sequential engines, with each main loop dispatched
// as one fork/join region over a thread team, the convergence sum done as a
// reduction, and the Edge engine's combines made atomic. One
// parallel_region event is metered per dispatch; the cost model's fork/join
// and SMT terms are what reproduce the paper's finding that 2/4/8-thread
// OpenMP *slows BP down* (regions finish in well under a millisecond, so
// team wake/join overhead dominates).
//
// Composition over the runtime layer (DESIGN.md §5b): the PoolBackend owns
// the fork/join dispatch (and its parallel_region charge), the
// FragmentedNodeFrontier owns the §3.5 per-worker queue fragments, and the
// every-iteration controller owns thresholds and damping.
#include <optional>
#include <vector>

#include "bp/engines_internal.h"
#include "bp/runtime/backend.h"
#include "bp/runtime/convergence.h"
#include "bp/runtime/driver.h"
#include "bp/runtime/init.h"
#include "bp/runtime/schedule.h"
#include "graph/metadata.h"
#include "parallel/thread_pool.h"
#include "perf/cost_model.h"
#include "util/error.h"
#include "util/timer.h"

namespace credo::bp::internal {
namespace {

using graph::BeliefVec;
using graph::EdgeId;
using graph::FactorGraph;
using graph::NodeId;
using parallel::ThreadPool;

/// Per-worker metering sinks, cache-line padded so the bookkeeping itself
/// does not contend.
struct alignas(64) WorkerSink {
  perf::Counters counters;
};

class OmpEngineBase : public Engine {
 public:
  explicit OmpEngineBase(perf::HardwareProfile profile)
      : profile_(std::move(profile)) {
    CREDO_CHECK_MSG(profile_.kind == perf::PlatformKind::kCpuParallel,
                    "parallel engine requires a CPU-parallel profile");
  }

  [[nodiscard]] const perf::HardwareProfile& hardware()
      const noexcept override {
    return profile_;
  }

 protected:
  /// Picks the team: the caller-provided shared pool (serve layer,
  /// DESIGN.md §5c) when its size matches the effective team, else a
  /// run-local pool. The shared pool supports one dispatcher at a time —
  /// callers serialize access around run().
  [[nodiscard]] static parallel::ThreadPool& select_pool(
      const BpOptions& opts, const perf::HardwareProfile& prof,
      std::optional<parallel::ThreadPool>& local) {
    if (opts.shared_pool &&
        opts.shared_pool->size() ==
            static_cast<unsigned>(prof.parallel_units)) {
      return *opts.shared_pool;
    }
    local.emplace(static_cast<unsigned>(prof.parallel_units));
    return *local;
  }

  /// Honors opts.threads when it differs from the profile's team size
  /// (the §2.4 sweep runs 2/4/8 threads).
  [[nodiscard]] perf::HardwareProfile effective_profile(
      const BpOptions& opts) const {
    if (opts.threads == 0 ||
        static_cast<int>(opts.threads) == profile_.parallel_units) {
      return profile_;
    }
    return perf::cpu_i7_7700hq_parallel(static_cast<int>(opts.threads));
  }

  void finish(BpResult& r, const util::Timer& timer,
              const perf::HardwareProfile& p,
              std::vector<WorkerSink>& sinks) const {
    for (const auto& s : sinks) r.stats.counters.add(s.counters);
    r.stats.time = perf::model_time(r.stats.counters, p);
    r.stats.host_seconds = timer.seconds();
  }

  /// Telemetry view of "counters so far": main counters plus every
  /// worker sink, folded the same way finish() folds them at the end.
  [[nodiscard]] perf::TimeBreakdown snapshot_time(
      const BpResult& r, const std::vector<WorkerSink>& sinks,
      const perf::HardwareProfile& p) const {
    perf::Counters total = r.stats.counters;
    for (const auto& s : sinks) total.add(s.counters);
    return perf::model_time(total, p);
  }

  perf::HardwareProfile profile_;
};

// ---------------------------------------------------------------------------
// OpenMP Node
// ---------------------------------------------------------------------------

class OmpNodeEngine final : public OmpEngineBase {
 public:
  using OmpEngineBase::OmpEngineBase;

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kOmpNode;
  }

 protected:
  [[nodiscard]] BpResult do_run(const FactorGraph& g,
                                const BpOptions& opts) const override {
    if (graph::is_ldpc(g.family())) {
      return run_ldpc_node_parallel(g, opts, profile_);
    }
    const util::Timer timer;
    const perf::HardwareProfile prof = effective_profile(opts);
    std::optional<ThreadPool> local_pool;
    ThreadPool& pool = select_pool(opts, prof, local_pool);
    std::vector<WorkerSink> sinks(pool.size());

    BpResult r;
    r.beliefs = runtime::initial_state(g, opts);
    const auto& in = g.in_csr();
    const auto& joints = g.joints();

    runtime::FragmentedNodeFrontier sched(g, opts.work_queue, pool.size(),
                                          opts.frontier_seed.get());
    const runtime::ConvergenceController ctl(
        opts, runtime::ConvergenceController::Cadence::kEveryIteration);
    runtime::PoolBackend backend(pool, opts, r.stats.counters);

    runtime::run_loop(
        opts, r.stats, ctl, sched,
        [&](std::uint32_t, runtime::IterationOutcome& out) {
          const std::uint64_t count = sched.size();
          // One parallel region per iteration: node loop + sum reduction
          // ("#pragma omp parallel for reduction(+:sum)"). Chunk-granular
          // dispatch: the node loop lives here and inlines — no type-erased
          // call per element.
          out.delta = backend.reduce_range(
              0, count,
              [&](std::uint64_t lo, std::uint64_t hi, unsigned w,
                  double& partial) {
                thread_local EdgeBlockScratch scratch;
                thread_local BeliefVec prev;
                perf::Meter meter(sinks[w].counters);
                for (std::uint64_t qi = lo; qi < hi; ++qi) {
                  const NodeId v = sched.at(meter, qi);
                  if (!sched.queued() && g.observed(v)) continue;
                  if (in.degree(v) == 0) continue;  // no updates to combine
                  const std::uint32_t b = g.arity(v);
                  graph::copy_belief(prev, r.beliefs[v]);
                  meter.rand_read(belief_bytes(b));
                  BeliefVec acc = BeliefVec::ones(b);
                  meter.seq_read(sizeof(std::uint64_t));
                  // In-place (chaotic) reads: a neighbor may already hold
                  // its new belief this iteration — standard async BP. The
                  // batched kernel reads every parent of v before
                  // combining, which is the same snapshot the per-edge walk
                  // saw (v's own belief only moves after the walk).
                  pull_parents_blocked(in.neighbors(v), r.beliefs, joints,
                                       meter, scratch, acc);
                  graph::normalize(acc);
                  meter.flop(2ull * b);
                  meter.flop(ctl.damp(acc, prev));
                  graph::copy_belief(r.beliefs[v], acc);
                  meter.rand_write(belief_bytes(b));
                  const float d = graph::l1_diff(prev, acc);
                  meter.flop(2ull * b);
                  partial += d;
                  if (sched.queued() && ctl.element_active(d)) {
                    sched.keep(meter, w, v);
                  }
                }
              });
          out.processed = count;
        },
        [] { return 0.0; },
        [&] { return snapshot_time(r, sinks, prof); });
    finish(r, timer, prof, sinks);
    return r;
  }
};

// ---------------------------------------------------------------------------
// OpenMP Edge
// ---------------------------------------------------------------------------

class OmpEdgeEngine final : public OmpEngineBase {
 public:
  using OmpEngineBase::OmpEngineBase;

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kOmpEdge;
  }

 protected:
  [[nodiscard]] BpResult do_run(const FactorGraph& g,
                                const BpOptions& opts) const override {
    if (graph::is_ldpc(g.family())) {
      return run_ldpc_edge_parallel(g, opts, profile_);
    }
    const util::Timer timer;
    const perf::HardwareProfile prof = effective_profile(opts);
    std::optional<ThreadPool> local_pool;
    ThreadPool& pool = select_pool(opts, prof, local_pool);
    std::vector<WorkerSink> sinks(pool.size());

    BpResult r;
    r.beliefs = runtime::initial_state(g, opts);
    const NodeId n = g.num_nodes();
    const auto& edges = g.edges();
    const auto& joints = g.joints();
    const auto md = graph::compute_metadata(g);
    const std::uint32_t b = md.beliefs;

    std::vector<float> acc(static_cast<std::size_t>(n) * b, 0.0f);
    perf::Meter main_meter(r.stats.counters);

    runtime::DenseSweep sched(edges.size());
    const runtime::ConvergenceController ctl(
        opts, runtime::ConvergenceController::Cadence::kEveryIteration);
    runtime::PoolBackend backend(pool, opts, r.stats.counters);

    runtime::run_loop(
        opts, r.stats, ctl, sched,
        [&](std::uint32_t, runtime::IterationOutcome& out) {
          // Region 1: reset accumulators to the multiplicative identity.
          backend.for_range(
              0, n,
              [&](std::uint64_t lo, std::uint64_t hi, unsigned w) {
                perf::Meter meter(sinks[w].counters);
                for (std::uint64_t vi = lo; vi < hi; ++vi) {
                  const auto v = static_cast<NodeId>(vi);
                  const std::uint32_t arity = g.arity(v);
                  float* a = acc.data() + static_cast<std::size_t>(v) * b;
                  for (std::uint32_t s = 0; s < arity; ++s) a[s] = 0.0f;
                  meter.seq_write(4ull * arity);
                }
              });

          // Region 2: edge messages with atomic combines (§3.3's extra
          // atomics). Sequential simulation makes the adds race-free; on
          // real silicon these are atomicAdd, and that cost is what gets
          // metered. Each chunk runs an edge-blocked traversal through the
          // batched message kernel.
          backend.for_range(
              0, edges.size(),
              [&](std::uint64_t lo, std::uint64_t hi, unsigned w) {
                thread_local EdgeBlockScratch scratch;
                perf::Meter meter(sinks[w].counters);
                for (std::uint64_t base = lo; base < hi;
                     base += graph::kEdgeBlock) {
                  const std::size_t count = std::min<std::uint64_t>(
                      graph::kEdgeBlock, hi - base);
                  for (std::size_t k = 0; k < count; ++k) {
                    const auto e = static_cast<EdgeId>(base + k);
                    const auto& ed = edges[e];
                    meter.seq_read(sizeof(ed));
                    const BeliefVec& src = r.beliefs[ed.src];
                    meter.seq_read(belief_bytes(src.size));
                    charge_joint_load(meter, joints, e);
                    scratch.srcs[k] = &src;
                    if (!joints.is_shared()) {
                      scratch.mats[k] = &joints.at(e);
                    }
                  }
                  meter.flop(compute_block(joints, scratch, count));
                  for (std::size_t k = 0; k < count; ++k) {
                    const auto& ed = edges[base + k];
                    const BeliefVec& msg = scratch.msgs[k];
                    float* a =
                        acc.data() + static_cast<std::size_t>(ed.dst) * b;
                    for (std::uint32_t s = 0; s < msg.size; ++s) {
                      a[s] += log_msg(msg.v[s]);
                    }
                    meter.flop(2ull * msg.size);
                    meter.atomic(msg.size, 0);
                    meter.near_write(4ull * msg.size);
                  }
                }
              });
          out.processed = edges.size();
          // Deepest conflict chain: the hottest destination receives
          // max-in-degree combines per belief slot.
          main_meter.atomic(0, md.max_in_degree);

          // Region 3: marginalize + reduction.
          out.delta = backend.reduce_range(
              0, n,
              [&](std::uint64_t lo, std::uint64_t hi, unsigned w,
                  double& partial) {
                perf::Meter meter(sinks[w].counters);
                for (std::uint64_t vi = lo; vi < hi; ++vi) {
                  const auto v = static_cast<NodeId>(vi);
                  if (g.observed(v) || g.in_csr().degree(v) == 0) continue;
                  const std::uint32_t arity = g.arity(v);
                  BeliefVec nb;
                  meter.flop(softmax(
                      acc.data() + static_cast<std::size_t>(v) * b, arity,
                      nb));
                  meter.seq_read(4ull * arity);
                  meter.flop(ctl.damp(nb, r.beliefs[v]));
                  const float d = graph::l1_diff(r.beliefs[v], nb);
                  meter.flop(2ull * arity);
                  meter.seq_read(belief_bytes(arity));
                  graph::copy_belief(r.beliefs[v], nb);
                  meter.seq_write(belief_bytes(arity));
                  partial += d;
                }
              });
        },
        [] { return 0.0; },
        [&] { return snapshot_time(r, sinks, prof); });
    finish(r, timer, prof, sinks);
    return r;
  }
};

}  // namespace

std::unique_ptr<Engine> make_omp_node(const perf::HardwareProfile& p) {
  return std::make_unique<OmpNodeEngine>(p);
}

std::unique_ptr<Engine> make_omp_edge(const perf::HardwareProfile& p) {
  return std::make_unique<OmpEdgeEngine>(p);
}

}  // namespace credo::bp::internal
