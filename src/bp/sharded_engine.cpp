// Sharded BP execution (DESIGN.md §5i).
//
// The graph is cut into contiguous-range shards (graph/partition.h); each
// shard owns a sub-CSR over local node ids plus read-only ghost slots for
// its off-shard parents, and runs its own frontier schedule against purely
// shard-local belief state. Boundary beliefs move through the
// double-buffered GhostExchange at the BpOptions::shard_exchange_every
// cadence, and a park/wake coordinator aggregates per-shard quiescence
// into the global stopping rule: a shard whose frontier drains parks, and
// a changed neighbor publish wakes exactly the shards that read it.
//
// Why this beats the single-team engines on graphs that exceed the LLC:
// the §2.4 engines update nodes in an order that scatters belief reads
// across the whole array, so every parent touch is a DRAM miss
// (rand_latency, which does NOT scale with the team). A shard whose
// working set — owned plus ghost beliefs — fits its slice of the LLC
// keeps every parent touch cache-resident (near_latency, ~10x cheaper in
// the model), at the price of the exchange term: ghost traffic charged at
// shard_bw plus a per-exchange latency. The cost model's exchange_s term
// is what bends the speedup curve back down past the shard-count sweet
// spot the §5i bench sweeps for.
//
// Concurrency: shards are multiplexed over one fork/join team. A claim
// loop hands each worker an idle shard; at most one worker ever acts as a
// given shard, so all shard-local state is single-writer. Cross-shard
// reads happen only inside GhostExchange under its per-outbox rwlock —
// unlike the §2.4/§5f engines there are NO chaotic belief reads. Team
// size still shifts the answer within tolerance (when a shard imports
// relative to a neighbor's publish is schedule-dependent), but every read
// sees a complete epoch, and one-worker runs are bit-reproducible.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "bp/engines_internal.h"
#include "bp/runtime/convergence.h"
#include "bp/runtime/ghost.h"
#include "bp/runtime/init.h"
#include "bp/runtime/observe.h"
#include "bp/runtime/stop.h"
#include "graph/partition.h"
#include "parallel/thread_pool.h"
#include "perf/cost_model.h"
#include "util/error.h"
#include "util/timer.h"

namespace credo::bp::internal {
namespace {

using graph::BeliefVec;
using graph::Csr;
using graph::FactorGraph;
using graph::NodeId;
using parallel::ThreadPool;

/// Per-worker metering sinks, cache-line padded like the other teams'.
struct alignas(64) WorkerSink {
  perf::Counters counters;
};

/// Everything one shard owns. Single-writer: only the worker currently
/// claiming the shard touches it (coordinator fields excepted — those are
/// guarded by the coordinator mutex).
struct ShardState {
  NodeId begin = 0;   // global id of local node 0
  NodeId owned = 0;   // owned nodes; ghosts follow at [owned, owned+ghosts)

  /// Local beliefs, owned-first then ghost slots.
  std::vector<BeliefVec> beliefs;

  /// In-adjacency over local ids. Entry::node is the parent's LOCAL id
  /// (owned or ghost slot); Entry::edge stays the GLOBAL edge id so the
  /// joint store and its metering are untouched.
  std::vector<std::uint64_t> in_off;
  std::vector<Csr::Entry> in_ent;

  /// Owned -> owned children (local ids) for frontier propagation.
  std::vector<std::uint64_t> out_off;
  std::vector<NodeId> out_ent;

  /// Ghost slot -> owned children (local ids): the nodes a changed ghost
  /// re-activates. Indexed by ghost slot (0-based, not offset by `owned`).
  std::vector<std::uint64_t> gout_off;
  std::vector<NodeId> gout_ent;

  /// Owned nodes an update can ever change (unobserved, in-degree > 0),
  /// as local ids — the dense sweep's iteration space.
  std::vector<NodeId> eligible;

  /// Stamp-deduplicated frontier (work-queue mode). stamp[v] == id of the
  /// queue v currently sits in; ids strictly increase so no clearing.
  std::vector<NodeId> queue, next;
  std::vector<std::uint32_t> stamp;
  std::uint32_t queue_id = 0, next_id = 0;

  /// Dense mode: whether the last full sweep still moved the local sum
  /// above this shard's share of the global threshold.
  bool dense_active = true;

  /// Whether this shard's working set fits its slice of the LLC — decides
  /// near vs scattered charging for every local belief touch.
  bool near = false;

  std::uint32_t sweeps = 0;          // local sweeps run (per-shard iterations)
  std::uint64_t updates = 0;         // node updates performed
  double last_delta = 0.0;           // L1 sum of the most recent sweep
  std::vector<NodeId> changed_ghosts;  // import scratch
};

/// Coordinator states. kIdle shards are claimable; kParked shards wait
/// for a ghost wake; kCapped shards hit their sweep budget WITH runnable
/// work remaining and stay down (the run then reports converged=false,
/// like hitting the cap). A shard whose frontier drains on exactly its
/// last budgeted sweep parks instead — quiescent at the cap is still
/// converged, matching the single-team drivers.
enum class ShardPhase : std::uint8_t { kIdle, kRunning, kParked, kCapped };

class ShardedEngine final : public Engine {
 public:
  explicit ShardedEngine(perf::HardwareProfile profile)
      : profile_(std::move(profile)) {
    CREDO_CHECK_MSG(profile_.kind == perf::PlatformKind::kCpuParallel,
                    "sharded engine requires a CPU-parallel profile");
  }

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kSharded;
  }

  [[nodiscard]] const perf::HardwareProfile& hardware()
      const noexcept override {
    return profile_;
  }

 protected:
  [[nodiscard]] BpResult do_run(const FactorGraph& g,
                                const BpOptions& opts) const override;

 private:
  perf::HardwareProfile profile_;
};

/// Builds shard-local structure from the partition: local beliefs (owned
/// slice + ghost slots), local in/out adjacency, and the eligible set.
ShardState build_shard(const FactorGraph& g, const graph::Partition& part,
                       std::uint32_t s,
                       const std::vector<BeliefVec>& init) {
  const graph::Shard& sh = part.shard(s);
  ShardState st;
  st.begin = sh.begin;
  st.owned = sh.num_nodes();

  // Ghost slot of global parent id, via the sorted ghost list.
  const auto ghost_slot = [&sh](NodeId global) {
    const auto it =
        std::lower_bound(sh.ghosts.begin(), sh.ghosts.end(), global);
    return static_cast<NodeId>(it - sh.ghosts.begin());
  };
  const auto to_local = [&](NodeId global) {
    return global >= sh.begin && global < sh.end
               ? global - sh.begin
               : st.owned + ghost_slot(global);
  };

  st.beliefs.resize(st.owned + sh.ghosts.size());
  for (NodeId v = 0; v < st.owned; ++v) st.beliefs[v] = init[sh.begin + v];
  for (std::size_t k = 0; k < sh.ghosts.size(); ++k) {
    st.beliefs[st.owned + k] = init[sh.ghosts[k]];
  }

  // Frontier wake targets: only children an update can change. Observed
  // children must never enter the schedule — updating one would overwrite
  // its fixed point-mass (§3.3; the dense path is safe because it sweeps
  // the eligible set only).
  const auto wakeable = [&](NodeId global_child) {
    return global_child >= sh.begin && global_child < sh.end &&
           !g.observed(global_child);
  };

  st.in_off.resize(st.owned + 1, 0);
  st.out_off.resize(st.owned + 1, 0);
  for (NodeId v = 0; v < st.owned; ++v) {
    const NodeId global = sh.begin + v;
    st.in_off[v + 1] = st.in_off[v] + g.in_csr().degree(global);
    std::uint64_t local_children = 0;
    for (const Csr::Entry& e : g.out_csr().neighbors(global)) {
      if (wakeable(e.node)) ++local_children;
    }
    st.out_off[v + 1] = st.out_off[v] + local_children;
  }
  st.in_ent.resize(st.in_off[st.owned]);
  st.out_ent.resize(st.out_off[st.owned]);
  for (NodeId v = 0; v < st.owned; ++v) {
    const NodeId global = sh.begin + v;
    std::uint64_t i = st.in_off[v];
    for (const Csr::Entry& e : g.in_csr().neighbors(global)) {
      st.in_ent[i++] = Csr::Entry{to_local(e.node), e.edge};
    }
    std::uint64_t o = st.out_off[v];
    for (const Csr::Entry& e : g.out_csr().neighbors(global)) {
      if (wakeable(e.node)) st.out_ent[o++] = e.node - sh.begin;
    }
    if (!g.observed(global) && g.in_csr().degree(global) > 0) {
      st.eligible.push_back(v);
    }
  }

  st.gout_off.resize(sh.ghosts.size() + 1, 0);
  for (std::size_t k = 0; k < sh.ghosts.size(); ++k) {
    std::uint64_t local_children = 0;
    for (const Csr::Entry& e : g.out_csr().neighbors(sh.ghosts[k])) {
      if (wakeable(e.node)) ++local_children;
    }
    st.gout_off[k + 1] = st.gout_off[k] + local_children;
  }
  st.gout_ent.resize(st.gout_off[sh.ghosts.size()]);
  for (std::size_t k = 0; k < sh.ghosts.size(); ++k) {
    std::uint64_t o = st.gout_off[k];
    for (const Csr::Entry& e : g.out_csr().neighbors(sh.ghosts[k])) {
      if (wakeable(e.node)) st.gout_ent[o++] = e.node - sh.begin;
    }
  }

  st.stamp.assign(st.owned, 0);
  return st;
}

/// Pushes `v` into (`vec`, `id`) unless already stamped into it.
inline void frontier_push(ShardState& st, std::vector<NodeId>& vec,
                          std::uint32_t id, NodeId v) {
  if (st.stamp[v] != id) {
    st.stamp[v] = id;
    vec.push_back(v);
  }
}

BpResult ShardedEngine::do_run(const FactorGraph& g,
                               const BpOptions& opts) const {
  const util::Timer timer;
  BpResult r;
  r.beliefs = runtime::initial_state(g, opts);
  const NodeId n = g.num_nodes();
  if (n == 0) {
    r.stats.converged = true;
    r.stats.time = perf::model_time(r.stats.counters, profile_);
    r.stats.host_seconds = timer.seconds();
    return r;
  }

  const graph::Partition part = graph::Partition::contiguous(
      g, static_cast<std::uint32_t>(opts.shard_count));
  const std::uint32_t s_count = part.shard_count();

  // Team: one worker per shard at most; the modelled profile follows the
  // effective team the same way the other CPU-parallel engines do.
  const unsigned requested =
      opts.threads != 0 ? opts.threads
                        : static_cast<unsigned>(profile_.parallel_units);
  const unsigned team = std::max(1u, std::min(requested, s_count));
  const perf::HardwareProfile prof =
      static_cast<int>(team) == profile_.parallel_units
          ? profile_
          : perf::cpu_i7_7700hq_parallel(static_cast<int>(team));
  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = nullptr;
  if (opts.shared_pool && opts.shared_pool->size() == team) {
    pool = opts.shared_pool;
  } else {
    local_pool.emplace(team);
    pool = &*local_pool;
  }
  std::vector<WorkerSink> sinks(pool->size());

  const runtime::ConvergenceController ctl(
      opts, runtime::ConvergenceController::Cadence::kEveryIteration);
  const bool seeded = opts.frontier_seed != nullptr;
  // Seeded runs always use the frontier schedule (a dense sweep would
  // defeat the point of the seed); cold runs honor work_queue.
  const bool queue_mode = opts.work_queue || seeded;

  // Build shard-local state. The build itself is setup (like graph
  // construction), not metered kernel work.
  std::vector<ShardState> shards;
  shards.reserve(s_count);
  for (std::uint32_t s = 0; s < s_count; ++s) {
    shards.push_back(build_shard(g, part, s, r.beliefs));
  }

  // Cache-residency decision (the near-charging lever): a shard whose
  // owned+ghost beliefs fit its slice of the LLC keeps every local parent
  // touch cache-resident across the round's sweeps. The credit only
  // applies when the WHOLE graph exceeds the LLC — on a graph that fits
  // outright a single team is just as cache-resident, so sharding changes
  // nothing and charging near here would manufacture a fake speedup. This
  // is what bends the §5i bench both ways: small graphs see pure exchange
  // overhead (honest negative), large graphs see the miss-to-hit flip
  // once the shard count pushes each slice under the cache.
  if (prof.llc_bytes > 0) {
    std::uint64_t total_ws = 0;
    for (NodeId v = 0; v < n; ++v) total_ws += belief_bytes(g.arity(v));
    if (total_ws > prof.llc_bytes) {
      const double slice = prof.llc_bytes / static_cast<double>(team);
      for (ShardState& st : shards) {
        std::uint64_t ws = 0;
        for (const BeliefVec& b : st.beliefs) ws += belief_bytes(b.size);
        st.near = static_cast<double>(ws) <= slice;
      }
    }
  }

  // Initial frontiers.
  for (ShardState& st : shards) {
    st.queue_id = 1;
    st.next_id = 2;
    if (!queue_mode) continue;
    if (!seeded) {
      for (const NodeId v : st.eligible) {
        frontier_push(st, st.queue, st.queue_id, v);
      }
    }
  }
  if (seeded) {
    for (const NodeId global : *opts.frontier_seed) {
      const std::uint32_t s = part.owner(global);
      ShardState& st = shards[s];
      frontier_push(st, st.queue, st.queue_id, global - st.begin);
    }
  }

  runtime::GhostExchange exchange(part);

  // Park/wake coordinator. `phase`, `pending_wake` and the counters are
  // guarded by `mu`; `done`/`abort` are checked both under and outside it
  // (atomics) so spinning claimers exit promptly.
  std::mutex mu;
  std::vector<ShardPhase> phase(s_count, ShardPhase::kIdle);
  std::vector<std::uint8_t> pending_wake(s_count, 0);
  std::uint32_t cursor = 0;
  std::uint64_t parks = 0, wakes = 0;
  std::atomic<bool> done{false};
  std::atomic<bool> abort{false};
  std::atomic<std::uint8_t> stop_reason{
      static_cast<std::uint8_t>(runtime::StopReason::kNone)};
  const runtime::DeadlineGuard guard(opts.stop, opts.host_deadline_seconds,
                                     opts.modelled_deadline_seconds);

  // Modelled-deadline snapshot, called from worker `w` while the rest of
  // the team is still metering. Reading the other workers' non-atomic
  // sinks here would be a data race, so approximate: the poller's own
  // sink scaled to the team (the claim loop keeps workers balanced) plus
  // the main counters, all of which only this thread touches.
  const auto snapshot_time = [&](unsigned w) {
    perf::Counters total = r.stats.counters;
    for (unsigned i = 0; i < team; ++i) total.add(sinks[w].counters);
    return perf::model_time(total, prof);
  };

  // Dense mode parking bar: shard s parks when its local sweep sum drops
  // below its share of the global absolute threshold, so the sum over all
  // parked shards sits below the single-team stopping rule's bar.
  const auto dense_bar = [&](const ShardState& st) {
    return static_cast<double>(opts.convergence_threshold) *
           static_cast<double>(st.owned) / static_cast<double>(n);
  };

  // One round of shard `s` on worker `w`: import fresh ghosts, run up to
  // shard_exchange_every local sweeps, publish if anything moved. Returns
  // true when the shard still has runnable work after the round; the
  // caller weighs that against the sweep budget.
  const auto run_round = [&](std::uint32_t s, unsigned w) -> bool {
    ShardState& st = shards[s];
    perf::Meter meter(sinks[w].counters);
    thread_local EdgeBlockScratch scratch;
    thread_local BeliefVec prev;
    const bool near = st.near;
    const auto near_pred = [near](NodeId) noexcept { return near; };

    // Import: changed ghost slots re-activate their owned children.
    st.changed_ghosts.clear();
    exchange.import(s, st.beliefs, opts.queue_threshold, st.changed_ghosts,
                    meter);
    if (!st.changed_ghosts.empty()) {
      if (queue_mode) {
        for (const NodeId gl : st.changed_ghosts) {
          const std::uint64_t k = gl - st.owned;  // ghost slot
          for (std::uint64_t i = st.gout_off[k]; i < st.gout_off[k + 1];
               ++i) {
            frontier_push(st, st.queue, st.queue_id, st.gout_ent[i]);
          }
        }
      } else {
        st.dense_active = true;
      }
    }

    std::uint64_t round_updates = 0;
    for (std::uint32_t sweep = 0; sweep < opts.shard_exchange_every;
         ++sweep) {
      if (st.sweeps >= opts.max_iterations) break;
      const bool have_work =
          queue_mode ? !st.queue.empty() : st.dense_active;
      if (!have_work) break;
      ++st.sweeps;
      double delta_sum = 0.0;

      const std::span<const NodeId> work =
          queue_mode ? std::span<const NodeId>(st.queue)
                     : std::span<const NodeId>(st.eligible);
      runtime::observe_iteration(work.size(), /*checked=*/true);
      for (const NodeId v : work) {
        // The shared node-update body, against shard-local state: the
        // metering matches the single-team engines except that a
        // cache-resident shard's belief touches are near accesses.
        graph::copy_belief(prev, st.beliefs[v]);
        if (near) {
          meter.near_read(belief_bytes(prev.size));
        } else {
          meter.rand_read(belief_bytes(prev.size));
        }
        BeliefVec acc = BeliefVec::ones(g.arity(st.begin + v));
        meter.seq_read(sizeof(std::uint64_t));
        pull_parents_blocked(
            std::span<const Csr::Entry>(st.in_ent.data() + st.in_off[v],
                                        st.in_ent.data() + st.in_off[v + 1]),
            st.beliefs, g.joints(), meter, scratch, acc, near_pred);
        graph::normalize(acc);
        meter.flop(2ull * acc.size);
        meter.flop(ctl.damp(acc, prev));
        graph::copy_belief(st.beliefs[v], acc);
        if (near) {
          meter.near_write(belief_bytes(acc.size));
        } else {
          meter.rand_write(belief_bytes(acc.size));
        }
        const float d = graph::l1_diff(prev, acc);
        meter.flop(2ull * acc.size);
        delta_sum += d;
        ++round_updates;
        if (queue_mode && ctl.element_active(d)) {
          frontier_push(st, st.next, st.next_id, v);
          for (std::uint64_t i = st.out_off[v]; i < st.out_off[v + 1];
               ++i) {
            frontier_push(st, st.next, st.next_id, st.out_ent[i]);
          }
        }
      }
      st.last_delta = delta_sum;
      if (queue_mode) {
        st.queue.swap(st.next);
        st.next.clear();
        st.queue_id = st.next_id;
        st.next_id += 1;
        // The global stopping rule, distributed: nodes outside the
        // frontier have stable inputs, so this sweep's delta_sum IS the
        // shard's whole-state movement. Below the shard's share of the
        // absolute threshold the shard is converged even when a
        // noise-floor queue bar keeps individual residuals alive — drain
        // the frontier and park (a ghost wake re-activates as usual).
        // Drained nodes still carry queue_id stamps, so retire that id
        // too: a later ghost wake pushes into (queue, queue_id), and a
        // stale stamp would silently swallow the wake.
        if (delta_sum < dense_bar(st)) {
          st.queue.clear();
          st.queue_id = st.next_id;
          st.next_id += 1;
        }
      } else {
        st.dense_active = delta_sum >= dense_bar(st);
      }
    }
    st.updates += round_updates;

    // Publish only when local state moved this round; a changed publish
    // wakes every parked reader.
    if (round_updates > 0 &&
        exchange.publish(s, st.beliefs, opts.queue_threshold, meter)) {
      const std::lock_guard<std::mutex> lk(mu);
      for (const std::uint32_t reader : exchange.readers(s)) {
        if (phase[reader] == ShardPhase::kParked) {
          phase[reader] = ShardPhase::kIdle;
          ++wakes;
        } else {
          pending_wake[reader] = 1;
        }
      }
    }
    return queue_mode ? !st.queue.empty() : st.dense_active;
  };

  // The claim loop: one fork/join region for the whole run.
  perf::Meter main_meter(r.stats.counters);
  main_meter.parallel_region();

  pool->run_team([&](unsigned w) {
    for (;;) {
      if (done.load(std::memory_order_relaxed) ||
          abort.load(std::memory_order_relaxed)) {
        return;
      }
      std::uint32_t claimed = s_count;  // sentinel: nothing claimable
      bool all_quiescent = true;
      {
        const std::lock_guard<std::mutex> lk(mu);
        for (std::uint32_t probe = 0; probe < s_count; ++probe) {
          const std::uint32_t s = (cursor + probe) % s_count;
          if (phase[s] == ShardPhase::kIdle) {
            claimed = s;
            cursor = s + 1;
            phase[s] = ShardPhase::kRunning;
            break;
          }
          if (phase[s] == ShardPhase::kRunning) all_quiescent = false;
        }
        if (claimed == s_count && all_quiescent) {
          done.store(true, std::memory_order_relaxed);
          return;
        }
      }
      if (claimed == s_count) {
        std::this_thread::yield();
        continue;
      }

      const bool has_work = run_round(claimed, w);

      {
        const std::lock_guard<std::mutex> lk(mu);
        ShardState& st = shards[claimed];
        if (has_work && st.sweeps >= opts.max_iterations) {
          // Budget exhausted with work still queued: capped, unconverged.
          phase[claimed] = ShardPhase::kCapped;
        } else if (has_work || pending_wake[claimed]) {
          pending_wake[claimed] = 0;
          phase[claimed] = ShardPhase::kIdle;
        } else {
          // Locally quiescent and no publish arrived while running: park
          // until a ghost update re-activates the frontier. The pending
          // check above closes the park/publish race.
          phase[claimed] = ShardPhase::kParked;
          ++parks;
        }
      }

      if (guard.active()) {
        const runtime::StopReason why =
            guard.poll(/*at_check=*/true,
                       [&] { return snapshot_time(w).total(); });
        if (why != runtime::StopReason::kNone) {
          stop_reason.store(static_cast<std::uint8_t>(why),
                            std::memory_order_relaxed);
          abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  });

  // Gather results: owned slices back into the global belief array.
  std::vector<std::uint32_t> sweeps(s_count);
  std::uint32_t max_sweeps = 0;
  double final_delta = 0.0;
  std::uint64_t total_updates = 0;
  bool any_capped = false;
  for (std::uint32_t s = 0; s < s_count; ++s) {
    const ShardState& st = shards[s];
    for (NodeId v = 0; v < st.owned; ++v) {
      r.beliefs[st.begin + v] = st.beliefs[v];
    }
    sweeps[s] = st.sweeps;
    max_sweeps = std::max(max_sweeps, st.sweeps);
    final_delta += st.last_delta;
    total_updates += st.updates;
    if (phase[s] == ShardPhase::kCapped) any_capped = true;
  }

  const auto why = static_cast<runtime::StopReason>(
      stop_reason.load(std::memory_order_relaxed));
  const bool stopped = why != runtime::StopReason::kNone;
  if (stopped) r.stats.stop_reason = why;
  r.stats.iterations = std::max(1u, max_sweeps);
  r.stats.elements_processed = total_updates;
  r.stats.final_delta = final_delta;
  r.stats.converged = !stopped && !any_capped;

  for (const WorkerSink& s : sinks) r.stats.counters.add(s.counters);
  r.stats.time = perf::model_time(r.stats.counters, prof);
  r.stats.host_seconds = timer.seconds();

  runtime::observe_shard_run(sweeps, r.stats.counters.shard_exchange_bytes,
                             parks, wakes);
  runtime::observe_run(r.stats.iterations, r.stats.converged);
  return r;
}

}  // namespace

std::unique_ptr<Engine> make_sharded(const perf::HardwareProfile& p) {
  return std::make_unique<ShardedEngine>(p);
}

}  // namespace credo::bp::internal
