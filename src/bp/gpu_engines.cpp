// CUDA-style Node and Edge engines on the simulated device (§3.6).
//
// Faithful to the paper's CUDA design:
//  * 1024-thread blocks, one work item per thread;
//  * the shared joint matrix lives in constant memory, per-edge matrices in
//    global memory (§2.2 / §3.6);
//  * the convergence sum is a shared-memory tree reduction
//    (Device::reduce_sum) and its scalar is transferred only every
//    `convergence_batch` iterations (§2.4's batching, kept for CUDA);
//  * §3.5 work queues are device-resident index buffers repopulated through
//    an atomic cursor each iteration;
//  * all graph data is uploaded once up front — the allocation + transfer
//    cost that dominates small graphs (99.8% for the smallest benchmark,
//    §4.1.1) is metered by those calls.
//
// Composition over the runtime layer (DESIGN.md §5b): device frontiers own
// the double-buffered queues and cursor readbacks, the batched controller
// owns the §3.6 check cadence, and the DeviceBackend owns launches and the
// deferred reduction. Kernel bodies are unchanged.
#include <vector>

#include "bp/engines_internal.h"
#include "bp/runtime/backend.h"
#include "bp/runtime/convergence.h"
#include "bp/runtime/device_schedule.h"
#include "bp/runtime/driver.h"
#include "bp/runtime/schedule.h"
#include "gpusim/atomics.h"
#include "gpusim/device.h"
#include "graph/metadata.h"
#include "util/error.h"
#include "util/timer.h"

namespace credo::bp::internal {
namespace {

using graph::BeliefVec;
using graph::DirectedEdge;
using graph::EdgeId;
using graph::FactorGraph;
using graph::JointMatrix;
using graph::NodeId;
using gpusim::ConstSpan;
using gpusim::Device;
using gpusim::DeviceBuffer;
using gpusim::DeviceSpan;
using gpusim::LaunchDims;
using gpusim::ThreadCtx;

/// Device-resident graph image shared by both engines.
struct DeviceGraph {
  DeviceBuffer<BeliefVec> beliefs;
  DeviceBuffer<BeliefVec> priors;
  DeviceBuffer<std::uint8_t> observed;
  DeviceBuffer<std::uint64_t> in_offsets;
  DeviceBuffer<graph::Csr::Entry> in_entries;
  DeviceBuffer<DirectedEdge> edges;
  DeviceBuffer<JointMatrix> joints_global;  // per-edge mode
  ConstSpan<JointMatrix> joint_const;       // shared mode (§3.6)
  DeviceBuffer<float> diff;
  bool shared_joint = false;

  /// Loads the matrix for edge `e`, metering constant-cache or global
  /// traffic as configured.
  const JointMatrix& joint(ThreadCtx& ctx, EdgeId e) const {
    if (shared_joint) {
      const JointMatrix& m = *joint_const.host_data();
      ctx.meter().const_op(static_cast<std::uint64_t>(m.rows) * m.cols);
      return m;
    }
    const JointMatrix& m = joints_global.cspan().host(e);
    ctx.meter().rand_read(m.payload_bytes());
    return m;
  }
};

/// Uploads the graph (the one-time cudaMalloc/cudaMemcpy cost).
DeviceGraph upload(Device& dev, const FactorGraph& g, bool need_in_csr,
                   bool need_edges) {
  DeviceGraph d;
  const NodeId n = g.num_nodes();

  // Belief payloads are packed for transfer (live states + dimension, not
  // the padded host struct).
  std::uint64_t packed = 0;
  for (NodeId v = 0; v < n; ++v) packed += belief_bytes(g.arity(v));

  d.beliefs = dev.alloc<BeliefVec>(n);
  dev.h2d<BeliefVec>(d.beliefs, g.initial_beliefs(), packed);
  d.priors = dev.alloc<BeliefVec>(n);
  {
    std::vector<BeliefVec> priors(n);
    for (NodeId v = 0; v < n; ++v) priors[v] = g.prior(v);
    dev.h2d<BeliefVec>(d.priors, priors, packed);
  }
  d.observed = dev.alloc<std::uint8_t>(n);
  {
    std::vector<std::uint8_t> obs(n);
    for (NodeId v = 0; v < n; ++v) obs[v] = g.observed(v) ? 1 : 0;
    dev.h2d<std::uint8_t>(d.observed, obs);
  }
  if (need_in_csr) {
    std::vector<std::uint64_t> offsets(n + 1);
    std::vector<graph::Csr::Entry> entries;
    entries.reserve(g.num_edges());
    offsets[0] = 0;
    for (NodeId v = 0; v < n; ++v) {
      for (const auto& e : g.in_csr().neighbors(v)) entries.push_back(e);
      offsets[v + 1] = entries.size();
    }
    d.in_offsets = dev.alloc<std::uint64_t>(offsets.size());
    dev.h2d<std::uint64_t>(d.in_offsets, offsets);
    d.in_entries = dev.alloc<graph::Csr::Entry>(entries.size());
    dev.h2d<graph::Csr::Entry>(d.in_entries, entries);
  }
  if (need_edges) {
    d.edges = dev.alloc<DirectedEdge>(g.num_edges());
    dev.h2d<DirectedEdge>(d.edges, g.edges());
  }
  if (g.joints().is_shared()) {
    d.shared_joint = true;
    const JointMatrix& m = g.joints().shared_matrix();
    d.joint_const = dev.set_constant<JointMatrix>({&m, 1});
  } else {
    std::vector<JointMatrix> ms(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) ms[e] = g.joints().at(e);
    d.joints_global = dev.alloc<JointMatrix>(ms.size());
    dev.h2d<JointMatrix>(d.joints_global, ms);
  }
  d.diff = dev.alloc<float>(n);
  return d;
}

/// SIMT warp divergence for the Node kernel: lanes of a 32-thread warp run
/// in lockstep, so every lane pays for the warp's deepest adjacency walk.
/// Returns the number of idle-lane message slots — the difference between
/// warp-time (32 x max degree per warp) and useful work (sum of degrees).
/// This is the §3.3/§4.1 cost that makes the Edge paradigm competitive on
/// hub-heavy (high-connectivity) graphs despite its atomics.
template <typename DegreeFn>
std::uint64_t warp_divergence_slots(std::uint64_t count, DegreeFn&& degree) {
  constexpr std::uint64_t kWarp = 32;
  std::uint64_t extra = 0;
  for (std::uint64_t base = 0; base < count; base += kWarp) {
    const std::uint64_t end = std::min(count, base + kWarp);
    std::uint64_t max_deg = 0;
    std::uint64_t sum_deg = 0;
    for (std::uint64_t i = base; i < end; ++i) {
      const std::uint64_t deg = degree(i);
      max_deg = std::max(max_deg, deg);
      sum_deg += deg;
    }
    extra += kWarp * max_deg - sum_deg;
  }
  return extra;
}

/// Copies final beliefs back and fills in common result fields.
void download(Device& dev, DeviceGraph& d, BpResult& r,
              const util::Timer& timer) {
  r.beliefs.resize(d.beliefs.size());
  dev.d2h<BeliefVec>(r.beliefs, d.beliefs);
  r.stats.counters = dev.counters();
  r.stats.time = dev.modelled_time();
  r.stats.host_seconds = timer.seconds();
}

class GpuEngineBase : public Engine {
 public:
  explicit GpuEngineBase(perf::HardwareProfile profile)
      : profile_(std::move(profile)) {
    CREDO_CHECK_MSG(profile_.kind == perf::PlatformKind::kGpu,
                    "CUDA-style engine requires a GPU profile");
  }

  [[nodiscard]] const perf::HardwareProfile& hardware()
      const noexcept override {
    return profile_;
  }

 protected:
  perf::HardwareProfile profile_;
};

// ---------------------------------------------------------------------------
// CUDA Node
// ---------------------------------------------------------------------------

class CudaNodeEngine final : public GpuEngineBase {
 public:
  using GpuEngineBase::GpuEngineBase;

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kCudaNode;
  }

 protected:
  [[nodiscard]] BpResult do_run(const FactorGraph& g,
                                const BpOptions& opts) const override {
    const util::Timer timer;
    Device dev(profile_);
    DeviceGraph d = upload(dev, g, /*need_in_csr=*/true,
                           /*need_edges=*/false);
    const NodeId n = g.num_nodes();

    BpResult r;
    const auto beliefs = d.beliefs.span();
    const auto observed = d.observed.cspan();
    const auto offsets = d.in_offsets.cspan();
    const auto entries = d.in_entries.cspan();
    const auto diff = d.diff.span();

    // Device-resident §3.5 frontier (double buffer + atomic cursor) and
    // the §3.6 batched check cadence.
    runtime::DeviceNodeFrontier sched(dev, g, opts.work_queue,
                                      opts.block_threads, diff);
    const runtime::ConvergenceController ctl(
        opts, runtime::ConvergenceController::Cadence::kBatched);
    runtime::DeviceBackend backend(dev, opts.block_threads);

    runtime::run_loop(
        opts, r.stats, ctl, sched,
        [&](std::uint32_t iter, runtime::IterationOutcome& out) {
          out.delta_valid = false;  // sum lives on-device until a check
          const std::uint64_t count = sched.size();
          const auto cur_q = sched.current(iter);
          const auto next_q = sched.next(iter);
          const auto cursor_span = sched.cursor();

          backend.launch(count, [&](ThreadCtx& ctx) {
            thread_local EdgeBlockScratch scratch;
            NodeId v;
            if (sched.queued()) {
              v = cur_q.load(ctx, ctx.global_id());
            } else {
              v = static_cast<NodeId>(ctx.global_id());
              if (observed.load(ctx, v) != 0) {
                diff.store(ctx, v, 0.0f);
                return;
              }
            }
            const bool scattered = sched.queued();
            const BeliefVec prev =
                scattered ? beliefs.load_scattered_bytes(
                                ctx, v, belief_bytes(g.arity(v)))
                          : beliefs.load_bytes(ctx, v,
                                               belief_bytes(g.arity(v)));
            BeliefVec acc = BeliefVec::ones(g.arity(v));
            const std::uint64_t lo = offsets.load(ctx, v);
            const std::uint64_t hi = offsets.load(ctx, v + 1);
            if (lo == hi) {  // no parents: belief keeps its value
              diff.store(ctx, v, 0.0f);
              return;
            }
            // Edge-blocked parent walk: gather a block of parents (the
            // §3.3 uncoalesced scattered loads, metered as before), run
            // the batched message kernel once per block, combine in CSR
            // order — identical math, amortized matrix walks.
            for (std::uint64_t base = lo; base < hi;
                 base += graph::kEdgeBlock) {
              const std::size_t bcount = std::min<std::uint64_t>(
                  graph::kEdgeBlock, hi - base);
              for (std::size_t k = 0; k < bcount; ++k) {
                const auto entry = entries.load(ctx, base + k);
                scratch.srcs[k] = &beliefs.load_scattered_bytes(
                    ctx, entry.node, belief_bytes(prev.size));
                scratch.mats[k] = &d.joint(ctx, entry.edge);
              }
              ctx.flop(d.shared_joint
                           ? graph::compute_messages_batched(
                                 *scratch.mats[0], scratch.srcs.data(),
                                 scratch.msgs.data(), bcount)
                           : graph::compute_messages_batched(
                                 scratch.mats.data(), scratch.srcs.data(),
                                 scratch.msgs.data(), bcount));
              for (std::size_t k = 0; k < bcount; ++k) {
                ctx.flop(graph::combine(acc, scratch.msgs[k]));
              }
            }
            graph::normalize(acc);
            ctx.flop(2ull * acc.size);
            ctx.flop(ctl.damp(acc, prev));
            if (scattered) {
              beliefs.store_scattered_bytes(ctx, v, acc,
                                            belief_bytes(acc.size));
            } else {
              beliefs.store_bytes(ctx, v, acc, belief_bytes(acc.size));
            }
            const float dlt = graph::l1_diff(prev, acc);
            ctx.flop(2ull * acc.size);
            if (scattered) {
              diff.store_scattered(ctx, v, dlt);
            } else {
              diff.store(ctx, v, dlt);
            }
            if (sched.queued() && ctl.element_active(dlt)) {
              const std::uint32_t slot =
                  gpusim::atomic_add_u32(ctx, cursor_span, 0, 1);
              next_q.store(ctx, slot, v);
            }
          });
          out.processed = count;

          // Warp-divergence charge: idle lanes stall on the warp's deepest
          // walk; each idle message slot occupies a memory-latency slot.
          {
            const auto degree_of = [&](std::uint64_t i) -> std::uint64_t {
              NodeId v;
              if (sched.queued()) {
                v = sched.host_at(iter, i);
              } else {
                v = static_cast<NodeId>(i);
                if (g.observed(v)) return 0;
              }
              return g.in_csr().degree(v);
            };
            const std::uint64_t extra =
                warp_divergence_slots(count, degree_of);
            std::uint64_t max_deg = 0;
            for (std::uint64_t i = 0; i < count; ++i) {
              max_deg = std::max(max_deg, degree_of(i));
            }
            perf::Meter m(dev.mutable_counters());
            if (extra > 0) {
              m.rand_read(belief_bytes(g.arity(0)), extra);
            }
            // Hub critical path: the kernel cannot retire before its
            // deepest lane walks every parent (sector count x unhidden
            // latency / the lane's own MLP).
            if (max_deg > 0) {
              const std::uint64_t sectors =
                  (belief_bytes(g.arity(0)) + 31) / 32;
              m.serial_latency(max_deg * sectors);
            }
          }
        },
        // Batched convergence check (§3.6): shared-memory reduction + one
        // scalar transfer.
        [&] { return backend.reduce_to_host(d.diff, n); },
        [&] { return dev.modelled_time(); });
    download(dev, d, r, timer);
    return r;
  }
};

// ---------------------------------------------------------------------------
// CUDA Edge
// ---------------------------------------------------------------------------

class CudaEdgeEngine final : public GpuEngineBase {
 public:
  using GpuEngineBase::GpuEngineBase;

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kCudaEdge;
  }

 protected:
  [[nodiscard]] BpResult do_run(const FactorGraph& g,
                                const BpOptions& opts) const override {
    return opts.work_queue ? run_queued(g, opts) : run_full(g, opts);
  }

 private:
  [[nodiscard]] BpResult run_full(const FactorGraph& g,
                                  const BpOptions& opts) const {
    const util::Timer timer;
    Device dev(profile_);
    DeviceGraph d = upload(dev, g, /*need_in_csr=*/false,
                           /*need_edges=*/true);
    const NodeId n = g.num_nodes();
    const std::uint64_t m = g.num_edges();
    const auto md = graph::compute_metadata(g);
    const std::uint32_t b = md.beliefs;

    auto acc_buf = dev.alloc<float>(static_cast<std::size_t>(n) * b);
    const auto acc = acc_buf.span();
    const auto beliefs = d.beliefs.span();
    const auto observed = d.observed.cspan();
    const auto edges = d.edges.cspan();
    const auto diff = d.diff.span();

    BpResult r;
    runtime::DenseSweep sched(m);
    const runtime::ConvergenceController ctl(
        opts, runtime::ConvergenceController::Cadence::kBatched);
    runtime::DeviceBackend backend(dev, opts.block_threads);

    runtime::run_loop(
        opts, r.stats, ctl, sched,
        [&](std::uint32_t, runtime::IterationOutcome& out) {
          out.delta_valid = false;

          // Kernel 1: reset accumulators to the multiplicative identity
          // (coalesced stores).
          backend.launch(n, [&](ThreadCtx& ctx) {
            const auto v = static_cast<NodeId>(ctx.global_id());
            const std::uint32_t arity = g.arity(v);
            for (std::uint32_t s = 0; s < arity; ++s) {
              acc.store(ctx, static_cast<std::size_t>(v) * b + s, 0.0f);
            }
          });

          // Kernel 2: one thread per directed edge. Sources stream (edges
          // are sorted by source); the combine is the atomic scattered
          // write.
          backend.launch(m, [&](ThreadCtx& ctx) {
            thread_local BeliefVec msg;
            const auto e = static_cast<EdgeId>(ctx.global_id());
            const DirectedEdge ed = edges.load(ctx, e);
            const BeliefVec src = beliefs.load_bytes(
                ctx, ed.src, belief_bytes(g.arity(ed.src)));
            const JointMatrix& jm = d.joint(ctx, e);
            ctx.flop(graph::compute_message(src, jm, msg));
            for (std::uint32_t s = 0; s < msg.size; ++s) {
              gpusim::atomic_add(
                  ctx, acc, static_cast<std::size_t>(ed.dst) * b + s,
                  log_msg(msg.v[s]));
            }
            ctx.flop(2ull * msg.size);
          });
          out.processed = m;
          perf::Meter(dev.mutable_counters()).atomic(0, md.max_in_degree);

          // Kernel 3: marginalize + per-node diff (coalesced).
          backend.launch(n, [&](ThreadCtx& ctx) {
            const auto v = static_cast<NodeId>(ctx.global_id());
            if (observed.load(ctx, v) != 0 || g.in_csr().degree(v) == 0) {
              diff.store(ctx, v, 0.0f);
              return;
            }
            const std::uint32_t arity = g.arity(v);
            float local[graph::kMaxStates];
            for (std::uint32_t s = 0; s < arity; ++s) {
              local[s] =
                  acc.load(ctx, static_cast<std::size_t>(v) * b + s);
            }
            BeliefVec nb;
            ctx.flop(softmax(local, arity, nb));
            const BeliefVec prev =
                beliefs.load_bytes(ctx, v, belief_bytes(arity));
            ctx.flop(ctl.damp(nb, prev));
            const float dlt = graph::l1_diff(prev, nb);
            ctx.flop(2ull * arity);
            beliefs.store_bytes(ctx, v, nb, belief_bytes(arity));
            diff.store(ctx, v, dlt);
          });
        },
        [&] { return backend.reduce_to_host(d.diff, n); },
        [&] { return dev.modelled_time(); });
    download(dev, d, r, timer);
    return r;
  }

  [[nodiscard]] BpResult run_queued(const FactorGraph& g,
                                    const BpOptions& opts) const {
    const util::Timer timer;
    Device dev(profile_);
    DeviceGraph d = upload(dev, g, /*need_in_csr=*/false,
                           /*need_edges=*/true);
    const NodeId n = g.num_nodes();
    const std::uint64_t m = g.num_edges();
    const auto md = graph::compute_metadata(g);
    const std::uint32_t b = md.beliefs;

    auto acc_buf = dev.alloc<float>(static_cast<std::size_t>(n) * b);
    auto cache_buf = dev.alloc<float>(m * b);
    auto dirty_buf = dev.alloc<std::uint8_t>(n);
    // Device-resident §3.5 edge frontier: double buffer + cursor, seeded
    // with every edge into an unobserved node.
    runtime::DeviceEdgeFrontier sched(dev, g);
    // Out-CSR for queue rebuild (changed node -> its out edges).
    std::vector<std::uint64_t> ooff(n + 1);
    std::vector<graph::Csr::Entry> oent;
    oent.reserve(m);
    ooff[0] = 0;
    for (NodeId v = 0; v < n; ++v) {
      for (const auto& e : g.out_csr().neighbors(v)) oent.push_back(e);
      ooff[v + 1] = oent.size();
    }
    auto out_off = dev.alloc<std::uint64_t>(ooff.size());
    dev.h2d<std::uint64_t>(out_off, ooff);
    auto out_ent = dev.alloc<graph::Csr::Entry>(oent.size());
    dev.h2d<graph::Csr::Entry>(out_ent, oent);

    // Initial accumulators: acc = 0 = log(1) (Algorithm 1 combines updates
    // only; priors seed the initial beliefs), cache = 0 (identity
    // messages).
    {
      std::vector<float> acc0(static_cast<std::size_t>(n) * b, 0.0f);
      dev.h2d<float>(acc_buf, acc0);
    }

    const auto acc = acc_buf.span();
    const auto cache = cache_buf.span();
    const auto dirty = dirty_buf.span();
    const auto beliefs = d.beliefs.span();
    const auto observed = d.observed.cspan();
    const auto edges = d.edges.cspan();
    const auto diff = d.diff.span();
    const auto ooffs = out_off.cspan();
    const auto oents = out_ent.cspan();

    BpResult r;
    const runtime::ConvergenceController ctl(
        opts, runtime::ConvergenceController::Cadence::kBatched);
    runtime::DeviceBackend backend(dev, opts.block_threads);

    runtime::run_loop(
        opts, r.stats, ctl, sched,
        [&](std::uint32_t iter, runtime::IterationOutcome& out) {
          out.delta_valid = false;
          const std::uint64_t queued = sched.size();
          const auto cur_q = sched.current(iter);
          const auto next_q = sched.next(iter);
          const auto cursor_span = sched.cursor();

          // Kernel 1: replay queued edges with incremental combines.
          backend.launch(queued, [&](ThreadCtx& ctx) {
            thread_local BeliefVec msg;
            // Queue entries come out in ascending edge-id order (rebuilt
            // node-by-node over source-sorted edges), so edge structs,
            // source beliefs and the message cache coalesce.
            const EdgeId e =
                static_cast<EdgeId>(cur_q.load(ctx, ctx.global_id()));
            const DirectedEdge ed = edges.load(ctx, e);
            const BeliefVec src = beliefs.load_bytes(
                ctx, ed.src, belief_bytes(g.arity(ed.src)));
            const JointMatrix& jm = d.joint(ctx, e);
            ctx.flop(graph::compute_message(src, jm, msg));
            for (std::uint32_t s = 0; s < msg.size; ++s) {
              const float lm = log_msg(msg.v[s]);
              const std::size_t ci = static_cast<std::size_t>(e) * b + s;
              const float old = cache.load_bytes(ctx, ci, 4);
              cache.store_bytes(ctx, ci, lm, 4);
              gpusim::atomic_add(
                  ctx, acc, static_cast<std::size_t>(ed.dst) * b + s,
                  lm - old);
            }
            ctx.flop(4ull * msg.size);
            dirty.store_scattered(ctx, ed.dst, 1);
          });
          out.processed = queued;
          perf::Meter(dev.mutable_counters()).atomic(0, md.max_in_degree);

          // Kernel 2: marginalize dirty nodes, rebuild the edge queue from
          // the out-edges of nodes that moved.
          backend.launch(n, [&](ThreadCtx& ctx) {
            const auto v = static_cast<NodeId>(ctx.global_id());
            if (dirty.load(ctx, v) == 0) {
              diff.store(ctx, v, 0.0f);
              return;
            }
            dirty.store(ctx, v, 0);
            if (observed.load(ctx, v) != 0) {
              diff.store(ctx, v, 0.0f);
              return;
            }
            const std::uint32_t arity = g.arity(v);
            float local[graph::kMaxStates];
            for (std::uint32_t s = 0; s < arity; ++s) {
              local[s] =
                  acc.load_near(ctx, static_cast<std::size_t>(v) * b + s);
            }
            BeliefVec nb;
            ctx.flop(softmax(local, arity, nb));
            const BeliefVec prev =
                beliefs.load_scattered_bytes(ctx, v, belief_bytes(arity));
            ctx.flop(ctl.damp(nb, prev));
            const float dlt = graph::l1_diff(prev, nb);
            ctx.flop(2ull * arity);
            beliefs.store_scattered_bytes(ctx, v, nb,
                                          belief_bytes(arity));
            diff.store(ctx, v, dlt);
            if (ctl.element_active(dlt)) {
              const std::uint64_t lo = ooffs.load(ctx, v);
              const std::uint64_t hi = ooffs.load(ctx, v + 1);
              const auto deg = static_cast<std::uint32_t>(hi - lo);
              if (deg > 0) {
                const std::uint32_t slot =
                    gpusim::atomic_add_u32(ctx, cursor_span, 0, deg);
                std::uint32_t w = 0;
                for (std::uint64_t k = lo; k < hi; ++k) {
                  const auto entry = oents.load(ctx, k);
                  next_q.store(ctx, slot + w, entry.edge);
                  ++w;
                }
              }
            }
          });
        },
        [&] { return backend.reduce_to_host(d.diff, n); },
        [&] { return dev.modelled_time(); });
    download(dev, d, r, timer);
    return r;
  }
};

}  // namespace

std::unique_ptr<Engine> make_cuda_node(const perf::HardwareProfile& p) {
  return std::make_unique<CudaNodeEngine>(p);
}

std::unique_ptr<Engine> make_cuda_edge(const perf::HardwareProfile& p) {
  return std::make_unique<CudaEdgeEngine>(p);
}

}  // namespace credo::bp::internal
