// Request-mix replay against a Server (DESIGN.md §5c) — the workload
// behind `credo serve --stress N` and the CI concurrency smoke.
//
// `sessions` client threads each submit their share of `requests`,
// round-robining over the configured graphs and engine mix; the report
// aggregates throughput, latency percentiles, cache behaviour and the
// admission accounting into one metrics table.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bp/engine.h"
#include "serve/server.h"
#include "util/table.h"

namespace credo::serve {

struct StressConfig {
  /// MTX-belief file pairs the mix cycles through (>= 1 required).
  std::vector<std::pair<std::string, std::string>> graphs;

  /// Total requests across all sessions.
  std::size_t requests = 64;

  /// Client threads submitting concurrently.
  unsigned sessions = 4;

  /// Engines cycled per request. Empty = every request asks for the
  /// server's default selection (the dispatcher when enabled).
  std::vector<bp::EngineKind> mix = {bp::EngineKind::kCpuNode,
                                     bp::EngineKind::kCpuEdge,
                                     bp::EngineKind::kResidual};

  /// Deadline attached to every Nth request (0 = none).
  std::size_t deadline_every = 0;
  Deadline deadline;

  /// Locality ordering requested with every request (Request::reorder).
  graph::ReorderMode reorder = graph::ReorderMode::kNone;

  /// Base BpOptions for every request.
  bp::BpOptions options;
};

struct StressReport {
  ServerStats server;
  std::size_t requests = 0;
  unsigned sessions = 0;
  double wall_seconds = 0.0;

  /// Requests finishing kOk per wall second.
  double throughput_rps = 0.0;

  /// Host-time service latency percentiles over finished requests
  /// (seconds); queue wait reported separately.
  double service_p50 = 0.0, service_p90 = 0.0, service_p99 = 0.0,
         service_max = 0.0;
  double queue_p50 = 0.0, queue_max = 0.0;

  /// Renders the metrics table the CLI prints.
  [[nodiscard]] util::Table table() const;
};

/// Runs the mix and waits for every future. The accounting identity
/// (submitted == finished) holds on return.
[[nodiscard]] StressReport run_stress(Server& server,
                                      const StressConfig& config);

}  // namespace credo::serve
