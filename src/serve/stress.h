// Request-mix replay against a Server (DESIGN.md §5c/§5e) — the workload
// behind `credo serve --stress N` and the CI concurrency smoke.
//
// `sessions` client threads each submit their share of `requests`,
// round-robining over the configured graphs and engine mix. The report is
// registry-backed: run_stress snapshots the server's MetricsRegistry
// before and after the replay, and the table renders that delta — the
// same counters and histograms a Prometheus scrape exposes, so the table
// and the scrape reconcile by construction (one source of truth). Queue
// wait and run time are separate histograms and reported as separate
// percentile rows (run time excludes queue wait).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bp/engine.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "util/table.h"

namespace credo::serve {

struct StressConfig {
  /// MTX-belief file pairs the mix cycles through (>= 1 required).
  std::vector<std::pair<std::string, std::string>> graphs;

  /// Total requests across all sessions.
  std::size_t requests = 64;

  /// Client threads submitting concurrently.
  unsigned sessions = 4;

  /// Engines cycled per request. Empty = every request asks for the
  /// server's default selection (the dispatcher when enabled).
  std::vector<bp::EngineKind> mix = {bp::EngineKind::kCpuNode,
                                     bp::EngineKind::kCpuEdge,
                                     bp::EngineKind::kResidual};

  /// Deadline attached to every Nth request (0 = none).
  std::size_t deadline_every = 0;
  Deadline deadline;

  /// Every Nth request is submitted with an already-fired cancellation
  /// token (0 = none) — it terminates kCancelled without running, so the
  /// cancelled path shows up in spans and counters under load.
  std::size_t cancel_every = 0;

  /// Locality ordering folded into every request's GraphKey. Must stay
  /// kNone when `batch` > 1 (fused parts cannot carry permutations).
  graph::ReorderMode reorder = graph::ReorderMode::kNone;

  /// Every request opts into belief warm-starting — repeat visits to the
  /// same graph start from the previous converged fixed point, so the
  /// warm-hit counter climbs over the replay.
  bool warm = false;

  /// <= 1: each request is submitted individually. > 1: each session
  /// groups its requests into batches of this size and submits them
  /// through Server::submit_batch (fused disjoint-union runs). The engine
  /// mix then cycles per *batch* — members of one fused batch must share
  /// an engine.
  std::size_t batch = 0;

  /// Every Nth request carries a topology mutation batch (0 = none): each
  /// churn batch grows fresh nodes and wires them to random existing
  /// targets through a GraphDelta, so the §5j dynamic-graph path — version
  /// bumps, snapshot publishes, warm migration — runs under concurrent
  /// query load. Fresh nodes make concurrent churn race-free by
  /// construction (two in-flight batches can never name the same new edge).
  /// Requires file-backed graphs (run_stress parses each pair up front to
  /// learn its size, arities, and joint-store form) and `batch` <= 1
  /// (fused members cannot carry deltas).
  std::size_t churn_every = 0;

  /// Fresh nodes (each with one new edge) added per churn batch.
  std::size_t churn_edges = 2;

  /// Seed for the churn stream's edge-target choices.
  std::uint64_t churn_seed = 1;

  /// Base BpOptions for every request.
  bp::BpOptions options;
};

struct StressReport {
  /// In-process convenience view (post-drain); the registry delta below is
  /// the authoritative source the table renders.
  ServerStats server;

  /// Registry delta over the replay window (counters and histograms of
  /// the server's MetricsRegistry, differenced before/after).
  obs::MetricsSnapshot metrics;

  std::size_t requests = 0;
  unsigned sessions = 0;
  double wall_seconds = 0.0;

  /// Requests finishing kOk per wall second.
  double throughput_rps = 0.0;

  /// Run-time (dequeue to completion, queue wait excluded) percentiles in
  /// seconds, interpolated from the credo_request_run_seconds histogram.
  double service_p50 = 0.0, service_p90 = 0.0, service_p99 = 0.0,
         service_max = 0.0;

  /// Queue-wait percentiles from credo_request_queue_seconds.
  double queue_p50 = 0.0, queue_p90 = 0.0, queue_p99 = 0.0,
         queue_max = 0.0;

  /// Renders the metrics table the CLI prints — every count read from the
  /// registry delta.
  [[nodiscard]] util::Table table() const;
};

/// Runs the mix and waits for every future. The accounting identity
/// (submitted == finished) holds on return.
[[nodiscard]] StressReport run_stress(Server& server,
                                      const StressConfig& config);

/// Decode-under-load scenario (DESIGN.md §5g): many tiny LDPC decode
/// requests at a high submission rate, so the admission queue — not the
/// engine — is the contended resource. Generates `codes` distinct random
/// regular (dv, dc) codes with weight-1 error syndromes, writes each as an
/// MTX-belief pair under the system temp directory (removed on return, so
/// the replay exercises the GraphCache and the %%family headers
/// end-to-end), and replays `requests` decode requests with syndrome
/// stopping on across an LDPC-capable engine mix.
struct DecodeLoadConfig {
  graph::FactorFamily family = graph::FactorFamily::kLdpcMinSum;
  std::uint32_t codes = 4;  // distinct codes the mix cycles through
  std::uint32_t bits = 48;
  std::uint32_t dv = 3;
  std::uint32_t dc = 6;
  float crossover = 0.05f;
  std::uint64_t seed = 1;
  std::size_t requests = 256;
  unsigned sessions = 8;
  std::uint32_t max_iterations = 60;

  /// > 1: submit the decode mix in fused batches of this size
  /// (Server::submit_batch), the §5h decode-under-load stress shape.
  std::size_t batch = 0;
};

[[nodiscard]] StressReport run_decode_under_load(
    Server& server, const DecodeLoadConfig& config);

}  // namespace credo::serve
