// Credo as a service (DESIGN.md §5c): a Server owns the shared resources a
// concurrent inference workload needs — a worker team, one graph cache, one
// parallel::ThreadPool for CPU-parallel engines, and the §3.7 dispatcher —
// and exposes a future-based submit API with bounded-queue admission
// control, per-request deadlines and cooperative cancellation.
//
// Lifecycle: construct, submit() from any thread, shutdown() (or destruct)
// to stop admission, drain and join. Every submitted request is accounted
// for exactly once: completed + rejected + cancelled + deadline_expired +
// failed == submitted once the server has drained.
//
// Observability (DESIGN.md §5e): every request increments
// credo_requests_submitted_total and exactly one
// credo_requests_total{status=...} series in the attached
// obs::MetricsRegistry (the process-wide one by default); queue wait and
// run time feed separate histograms, the cache reports hits/misses/
// evictions, and — when a SpanLog is attached — each request leaves one
// Span tracing its queue/parse/run/unpermute phases and terminal status.
//
// Concurrency model: requests run on the server's worker threads; graphs
// are immutable after parse, so any number of requests share one cached
// FactorGraph. The shared ThreadPool supports one dispatcher at a time
// (OpenMP's single-team model), so requests that select a CPU-parallel
// engine serialize on it; everything else runs fully concurrently.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bp/engine.h"
#include "credo/dispatcher.h"
#include "graph/dynamic.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "parallel/thread_pool.h"
#include "serve/graph_cache.h"
#include "serve/request.h"

namespace credo::serve {

class Session;

struct ServerOptions {
  /// Request worker threads. 0 is allowed: nothing drains until shutdown
  /// (which then rejects the queue) — useful for deterministic admission
  /// tests and manual draining.
  unsigned workers = 2;

  /// Admission queue bound; submits beyond it are rejected with a reason
  /// (backpressure, never silent drops).
  std::size_t queue_capacity = 32;

  /// Parsed graphs kept by the LRU cache.
  std::size_t cache_capacity = 4;

  /// Team size of the shared parallel::ThreadPool used by CPU-parallel
  /// engines (matches the paper's 8-thread profile by default).
  unsigned pool_threads = 8;

  /// Engine for requests without an override when the dispatcher is off
  /// (or still unavailable).
  bp::EngineKind default_engine = bp::EngineKind::kCpuNode;

  /// Route override-free requests through the §3.7 random-forest
  /// dispatcher. It is built lazily on the first such request: loaded from
  /// `dispatcher_model` when set, otherwise trained on the bold benchmark
  /// subset (expensive — prefer a pre-trained model in serving setups).
  bool use_dispatcher = true;
  std::string dispatcher_model;

  /// Metrics registry the server (and its GraphCache) report into. Null =
  /// obs::MetricsRegistry::global(). Not owned; must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;

  /// Span log for per-request traces. Null = spans are not recorded
  /// (counters and histograms still are). Not owned; must outlive the
  /// server.
  obs::SpanLog* spans = nullptr;
};

/// Monotonic counters; identity after drain:
/// submitted == completed + rejected + cancelled + deadline_expired + failed.
/// Mirrored series-for-series in the metrics registry
/// (credo_requests_total{status=...}) — the registry is the scrapeable
/// source of truth; this struct remains as the in-process convenience view.
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;         // util::StatusCode::kOk
  std::uint64_t rejected = 0;          // util::StatusCode::kRejected
  std::uint64_t cancelled = 0;         // util::StatusCode::kCancelled
  std::uint64_t deadline_expired = 0;  // util::StatusCode::kDeadlineExceeded
  std::uint64_t failed = 0;            // any error code (io/parse/...)
  std::uint64_t mutations = 0;         // accepted topology mutation batches
  CacheStats cache;

  [[nodiscard]] std::uint64_t finished() const noexcept {
    return completed + rejected + cancelled + deadline_expired + failed;
  }
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submits a request. Never blocks: invalid requests (Request::validate)
  /// resolve immediately with the validation status, over-capacity or
  /// post-shutdown submissions with util::StatusCode::kRejected and a reason.
  [[nodiscard]] std::future<Response> submit(Request req);

  /// Submits many small independent requests as ONE unit of work
  /// (DESIGN.md §5h): the batch takes a single admission-queue slot, the
  /// member graphs are fused into a disjoint-union super-graph, one engine
  /// run converges all of them together, and the fused beliefs are
  /// scattered back into one Response per member (original node ids,
  /// per-member LDPC syndrome status re-checked per part). Every member
  /// still counts individually in the accounting identity. Members must be
  /// fusable with the batch head: same factor family, same options, same
  /// engine override, no reorder, no evidence — a member that is not gets
  /// kInvalidArgument while the rest of the batch proceeds; a member whose
  /// cancel token fired resolves kCancelled (before the run when already
  /// fired, at scatter time when it fired mid-run). Returns one future per
  /// member, index-aligned with `requests`.
  [[nodiscard]] std::vector<std::future<Response>> submit_batch(
      std::vector<Request> requests);

  /// Opens a lightweight client handle with its own submission counter.
  /// Sessions borrow the server; the server must outlive them.
  [[nodiscard]] Session session();

  /// Stops admission, drains the queue (workers finish queued requests;
  /// with zero workers the queue is rejected) and joins. Idempotent;
  /// called by the destructor.
  void shutdown();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const GraphCache& cache() const noexcept { return cache_; }

  /// The registry this server reports into (options().metrics or the
  /// process-wide one).
  [[nodiscard]] obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

 private:
  friend class Session;

  /// One admission-queue slot: a single request or a whole batch. Member
  /// promises are index-aligned with `requests`; `resolved[i]` marks
  /// members already finished at submit time (validation failures), which
  /// the worker must skip.
  struct Pending {
    std::vector<Request> requests;
    std::vector<std::promise<Response>> promises;
    std::vector<char> resolved;
    std::chrono::steady_clock::time_point enqueued;
    bool batch = false;
  };

  /// Persistent mutable state for one file-backed graph that has received
  /// topology mutations (DESIGN.md §5j). `current` is the immutable
  /// snapshot at the latest version — it SUPERSEDES the parsed cache entry
  /// for every later request naming the same files, so queries keep seeing
  /// the mutated topology even after LRU eviction re-parses the original
  /// bytes. Mutations serialize on `mu`; readers take it only long enough
  /// to copy the `current` shared_ptr, so queries overlap with each other
  /// and only wait while a new snapshot is being published.
  struct DynamicEntry {
    explicit DynamicEntry(graph::DynamicGraph d) : dyn(std::move(d)) {}
    std::mutex mu;
    graph::DynamicGraph dyn;
    std::shared_ptr<const CachedGraph> current;
  };

  void worker_loop();
  [[nodiscard]] Response execute(
      Request& req, std::chrono::steady_clock::time_point enqueued);
  /// Applies a topology-carrying delta to the named graph's DynamicEntry
  /// (creating it from `parsed` on first mutation), publishes the new
  /// snapshot, and migrates the engine's base warm state with only the
  /// touched region reset. Returns the new snapshot and the frontier seed
  /// via out-params; a failed validation returns the error status and
  /// mutates nothing.
  [[nodiscard]] util::Status apply_mutation(
      const Request& req, const std::shared_ptr<const CachedGraph>& parsed,
      bp::EngineKind kind, std::shared_ptr<const CachedGraph>& current_out,
      std::vector<graph::NodeId>& touched_out);
  /// The current dynamic snapshot for a parsed entry's key, or null when
  /// the graph was never mutated.
  [[nodiscard]] std::shared_ptr<const CachedGraph> dynamic_current(
      const std::string& base_key);
  void execute_batch(Pending& pending);
  [[nodiscard]] bp::EngineKind choose_engine(
      const graph::FactorGraph& g, const graph::GraphMetadata* md);
  void count(util::StatusCode s);

  /// Builds (and spans/counts) a response for a request that never ran:
  /// rejections and validation failures.
  [[nodiscard]] Response finish_unrun(const Request& req, util::StatusCode status,
                                      std::string reason);

  ServerOptions options_;
  obs::MetricsRegistry& metrics_;
  GraphCache cache_;
  parallel::ThreadPool pool_;
  std::mutex pool_mu_;  // the pool supports one dispatcher at a time

  // Registry handles, resolved once at construction (sharded cells make
  // the per-request increments contention-free).
  obs::Counter& m_submitted_;
  obs::Counter* m_finished_[5];  // indexed by terminal_category value
  obs::Histogram& m_queue_seconds_;
  obs::Histogram& m_run_seconds_;
  obs::Gauge& m_queue_depth_;
  obs::Histogram& m_batch_occupancy_;
  obs::Histogram& m_delta_size_;
  obs::Counter& m_mutations_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  ServerStats stats_;
  std::vector<std::thread> workers_;

  std::once_flag dispatcher_once_;
  std::unique_ptr<dispatch::Dispatcher> dispatcher_;

  // Dynamic graphs, keyed by the parsed entry's cache key (paths + content
  // hash + mode, NO version — the entry spans all versions of that file
  // pair). Entries are created on the first topology mutation and live for
  // the server's lifetime; dyn_mu_ guards only the map, each entry has its
  // own mutex.
  std::mutex dyn_mu_;
  std::unordered_map<std::string, std::shared_ptr<DynamicEntry>> dynamic_;
};

/// A client handle onto a Server: same submit semantics, plus a per-session
/// counter so callers can reason about their own traffic. Copyable; copies
/// share the counter.
class Session {
 public:
  [[nodiscard]] std::future<Response> submit(Request req) {
    count_->fetch_add(1, std::memory_order_relaxed);
    return server_->submit(std::move(req));
  }

  [[nodiscard]] std::vector<std::future<Response>> submit_batch(
      std::vector<Request> requests) {
    count_->fetch_add(requests.size(), std::memory_order_relaxed);
    return server_->submit_batch(std::move(requests));
  }

  [[nodiscard]] std::uint64_t submitted() const noexcept {
    return count_->load(std::memory_order_relaxed);
  }

  [[nodiscard]] unsigned id() const noexcept { return id_; }

 private:
  friend class Server;
  Session(Server& server, unsigned id)
      : server_(&server),
        id_(id),
        count_(std::make_shared<std::atomic<std::uint64_t>>(0)) {}

  Server* server_;
  unsigned id_;
  std::shared_ptr<std::atomic<std::uint64_t>> count_;
};

}  // namespace credo::serve
