#include "serve/graph_cache.h"

#include <fstream>
#include <utility>

#include "graph/reorder.h"
#include "io/mtx_belief.h"
#include "util/error.h"

namespace credo::serve {
namespace {

/// Streaming FNV-1a over a file's raw bytes — one sequential read, no
/// parsing. Orders of magnitude cheaper than the MTX parse it gates.
std::uint64_t hash_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::IoError("cannot open for hashing: " + path);
  std::uint64_t h = 14695981039346656037ull;
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    const std::streamsize n = in.gcount();
    for (std::streamsize i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(buf[i]);
      h *= 1099511628211ull;
    }
    if (!in) break;
  }
  return h;
}

}  // namespace

GraphCache::GraphCache(std::size_t capacity,
                       obs::MetricsRegistry* registry)
    : capacity_(capacity == 0 ? 1 : capacity),
      hits_((registry != nullptr ? *registry
                                 : obs::MetricsRegistry::global())
                .counter("credo_graph_cache_hits_total",
                         "Graph cache fetches served without parsing")),
      misses_((registry != nullptr ? *registry
                                   : obs::MetricsRegistry::global())
                  .counter("credo_graph_cache_misses_total",
                           "Graph cache fetches that parsed the files")),
      evictions_((registry != nullptr ? *registry
                                      : obs::MetricsRegistry::global())
                     .counter("credo_graph_cache_evictions_total",
                              "Graph cache LRU evictions")),
      warm_hits_((registry != nullptr ? *registry
                                      : obs::MetricsRegistry::global())
                     .counter("credo_cache_warm_hits_total",
                              "Warm-state lookups that found retained "
                              "converged beliefs")),
      warm_bytes_((registry != nullptr ? *registry
                                       : obs::MetricsRegistry::global())
                      .gauge("credo_cache_warm_bytes",
                             "Bytes of converged beliefs resident in the "
                             "warm-state table")) {}

GraphCache::Fetched GraphCache::fetch(const std::string& nodes_path,
                                      const std::string& edges_path,
                                      graph::ReorderMode mode) {
  // Content hash outside the lock: file I/O must not serialize the cache.
  const std::uint64_t h = hash_file(nodes_path) ^
                          (hash_file(edges_path) * 1099511628211ull);
  const std::string key = nodes_path + '|' + edges_path + '|' +
                          std::to_string(h) + '|' +
                          std::string(graph::reorder_mode_name(mode));

  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // bump to front
      ++stats_.hits;
      hits_.inc();
      return {it->second->value, true};
    }
  }

  // Miss: parse outside the lock so loads of distinct graphs overlap.
  auto loaded = std::make_shared<CachedGraph>();
  loaded->graph = graph::reordered(io::read_mtx_belief(nodes_path,
                                                       edges_path),
                                   mode);
  loaded->metadata = graph::compute_metadata(loaded->graph);
  loaded->content_hash = h;
  loaded->reorder = mode;
  loaded->key = key;

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  misses_.inc();
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent fetch inserted the same key first; reuse its entry (the
    // two parses of identical bytes are interchangeable).
    lru_.splice(lru_.begin(), lru_, it->second);
    return {it->second->value, false};
  }
  lru_.push_front(Entry{key, std::move(loaded)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();  // shared_ptr keeps in-flight users safe
    ++stats_.evictions;
    evictions_.inc();
  }
  return {lru_.front().value, false};
}

std::shared_ptr<const std::vector<graph::BeliefVec>> GraphCache::warm_lookup(
    const std::string& graph_key, std::uint64_t fingerprint) {
  const std::string key = graph_key + '#' + std::to_string(fingerprint);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = warm_index_.find(key);
  if (it == warm_index_.end()) {
    ++stats_.warm_misses;
    return nullptr;
  }
  warm_lru_.splice(warm_lru_.begin(), warm_lru_, it->second);
  ++stats_.warm_hits;
  warm_hits_.inc();
  return it->second->beliefs;
}

void GraphCache::warm_store(
    const std::string& graph_key, std::uint64_t fingerprint,
    std::shared_ptr<const std::vector<graph::BeliefVec>> beliefs) {
  if (beliefs == nullptr) return;
  const std::string key = graph_key + '#' + std::to_string(fingerprint);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = warm_index_.find(key);
  if (it != warm_index_.end()) {
    it->second->beliefs = std::move(beliefs);
    warm_lru_.splice(warm_lru_.begin(), warm_lru_, it->second);
  } else {
    warm_lru_.push_front(WarmEntry{key, std::move(beliefs)});
    warm_index_[key] = warm_lru_.begin();
    // Twice the graph capacity: warm states are per (graph, engine,
    // evidence), so a graph commonly owns more than one.
    while (warm_lru_.size() > 2 * capacity_) {
      warm_index_.erase(warm_lru_.back().key);
      warm_lru_.pop_back();
    }
  }
  warm_bytes_update_locked();
}

void GraphCache::warm_bytes_update_locked() {
  std::size_t bytes = 0;
  for (const WarmEntry& e : warm_lru_) {
    bytes += e.beliefs->size() * sizeof(graph::BeliefVec);
  }
  warm_bytes_.set(static_cast<double>(bytes));
}

CacheStats GraphCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t GraphCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::size_t GraphCache::warm_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return warm_lru_.size();
}

}  // namespace credo::serve
