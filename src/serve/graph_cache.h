// LRU cache of parsed factor graphs (DESIGN.md §5c).
//
// The §3.2 study made MTX parsing cheap, but it is still the dominant cost
// of a small inference request — and a serving workload hits the same
// handful of graphs over and over. The cache keys each entry by the file
// pair's paths *and* a content hash (FNV-1a over the raw bytes), so a
// changed file re-parses under a new key while repeat requests reuse the
// parsed FactorGraph and its precomputed GraphMetadata. Hashing streams the
// files once without parsing; entries are handed out as shared_ptrs so an
// eviction never invalidates an in-flight run.
//
// Alongside the parsed graphs the cache keeps a *warm-state* side table
// (DESIGN.md §5h): converged belief vectors retained per (graph key,
// fingerprint) so a repeat request can start from the previous fixed
// point instead of the priors. The side table is independent of the
// graph LRU — evicting a parsed graph does NOT drop its warm beliefs, so
// a re-parse after eviction still warm-starts. Warm hits and resident
// bytes are exported as credo_cache_warm_hits_total / credo_cache_warm_bytes.
//
// Thread-safe. Concurrent first fetches of the same key may parse twice
// (both count as misses, one insert wins); correctness is unaffected.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/belief.h"
#include "graph/factor_graph.h"
#include "graph/metadata.h"
#include "obs/metrics.h"

namespace credo::serve {

/// One parsed graph plus everything a request needs alongside it. When
/// `reorder` is not kNone the graph went through the locality pass at load
/// time (graph/reorder.h) and carries its permutation; engines un-permute
/// result beliefs, so responses are in the file's original node ids either
/// way. `key` is the entry's full cache key (paths + content hash +
/// reorder mode) — the stable address warm state is filed under.
struct CachedGraph {
  graph::FactorGraph graph;
  graph::GraphMetadata metadata;
  std::uint64_t content_hash = 0;
  graph::ReorderMode reorder = graph::ReorderMode::kNone;
  std::string key;

  /// Topology version: 0 for entries parsed from disk; N for snapshots
  /// published by a server-side DynamicGraph after N mutation batches.
  /// Mutated snapshots carry "#vN" in `key`, so their warm state never
  /// collides with the as-parsed entry's (the content hash alone cannot
  /// tell them apart — the files on disk did not change).
  std::uint64_t version = 0;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t warm_hits = 0;    // warm_lookup found retained beliefs
  std::uint64_t warm_misses = 0;  // warm_lookup came back empty

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

class GraphCache {
 public:
  /// Holds at most `capacity` parsed graphs (>= 1). Hit/miss/eviction
  /// counters are mirrored into `registry` (the process-wide
  /// obs::MetricsRegistry::global() when null) as
  /// credo_graph_cache_{hits,misses,evictions}_total, so a live scrape
  /// sees cache behaviour without polling CacheStats.
  explicit GraphCache(std::size_t capacity,
                      obs::MetricsRegistry* registry = nullptr);

  struct Fetched {
    std::shared_ptr<const CachedGraph> entry;
    bool hit = false;
  };

  /// Returns the parsed graph for the file pair, loading (and, when `mode`
  /// is not kNone, reordering) it on a miss. The reorder mode is part of
  /// the cache key: the same files fetched under different modes are
  /// distinct entries, since their in-memory layouts differ.
  /// Throws util::IoError / util::ParseError like io::read_mtx_belief.
  [[nodiscard]] Fetched fetch(
      const std::string& nodes_path, const std::string& edges_path,
      graph::ReorderMode mode = graph::ReorderMode::kNone);

  /// Retained converged beliefs for (graph key, fingerprint), or null.
  /// The fingerprint is the caller's business — the server folds the
  /// engine slug and the evidence content hash into it — the cache only
  /// requires that equal fingerprints mean interchangeable warm states.
  /// A hit bumps the entry in the warm LRU and counts in warm_hits /
  /// credo_cache_warm_hits_total; a miss counts in warm_misses.
  [[nodiscard]] std::shared_ptr<const std::vector<graph::BeliefVec>>
  warm_lookup(const std::string& graph_key, std::uint64_t fingerprint);

  /// Retains `beliefs` (original node ids) for (graph key, fingerprint),
  /// replacing any previous state under the same pair. The warm table is
  /// its own LRU with 2x the graph capacity, deliberately NOT tied to
  /// graph entries: a graph eviction must not cost the warm state, or a
  /// re-parse after cache pressure would also pay a cold re-converge.
  void warm_store(const std::string& graph_key, std::uint64_t fingerprint,
                  std::shared_ptr<const std::vector<graph::BeliefVec>> beliefs);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t warm_size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedGraph> value;
  };
  struct WarmEntry {
    std::string key;
    std::shared_ptr<const std::vector<graph::BeliefVec>> beliefs;
  };

  void warm_bytes_update_locked();

  std::size_t capacity_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
  obs::Counter& warm_hits_;
  obs::Gauge& warm_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::list<WarmEntry> warm_lru_;
  std::unordered_map<std::string, std::list<WarmEntry>::iterator> warm_index_;
  CacheStats stats_;
};

}  // namespace credo::serve
