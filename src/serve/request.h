// The serve layer's public request/response vocabulary (DESIGN.md §5c).
//
// A Request names a graph (by file pair, resolved through the server's
// graph cache, or as a pre-loaded in-memory graph), the BpOptions to run
// with, an optional engine override (absent = the server's default
// selection, normally the §3.7 dispatcher), a deadline budget and an
// optional cancellation token. A Response reports what happened: the
// terminal status, the engine that ran, the BP result, and the queue/run
// timings the metrics layer aggregates.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "bp/engine.h"
#include "bp/runtime/stop.h"
#include "graph/factor_graph.h"

namespace credo::serve {

/// Which graph a request runs on. Exactly one of the two forms is used:
///  * `nodes_path`/`edges_path` — an MTX-belief file pair, loaded through
///    the server's GraphCache (repeat requests skip MTX parsing);
///  * `graph` — a pre-loaded in-memory graph, bypassing the cache.
struct GraphRef {
  std::string nodes_path;
  std::string edges_path;
  std::shared_ptr<const graph::FactorGraph> graph;

  [[nodiscard]] bool inline_graph() const noexcept {
    return graph != nullptr;
  }

  static GraphRef files(std::string nodes, std::string edges) {
    GraphRef r;
    r.nodes_path = std::move(nodes);
    r.edges_path = std::move(edges);
    return r;
  }
  static GraphRef preloaded(std::shared_ptr<const graph::FactorGraph> g) {
    GraphRef r;
    r.graph = std::move(g);
    return r;
  }
};

/// Per-request budgets; 0 = unlimited. Both are enforced cooperatively at
/// the runtime's convergence-check cadence (bp/runtime/stop.h).
struct Deadline {
  double host_seconds = 0.0;      // wall-clock budget for the engine run
  double modelled_seconds = 0.0;  // modelled-time budget (deterministic)
};

/// One unit of work submitted to a Server / Session.
struct Request {
  GraphRef graph;
  bp::BpOptions options;

  /// Engine override; nullopt = server default (dispatcher when enabled).
  std::optional<bp::EngineKind> engine;

  /// Locality ordering applied when the graph is loaded (graph/reorder.h);
  /// part of the GraphCache key, so the same files under different modes
  /// are distinct cached entries. Response beliefs are always in the
  /// file's original node ids. For inline graphs the reorder happens
  /// per-request (no cache), so preloaded callers should reorder once
  /// themselves and leave this at kNone.
  graph::ReorderMode reorder = graph::ReorderMode::kNone;

  Deadline deadline;

  /// Client cancellation token (from bp::runtime::StopSource). Composed
  /// with the deadline budgets; default tokens never fire.
  bp::runtime::StopToken cancel;

  /// Opaque client label echoed back in the Response.
  std::string tag;
};

/// Terminal status of a request.
enum class Status : std::uint8_t {
  kOk = 0,                // ran to convergence or the iteration cap
  kRejected = 1,          // admission refused (queue full / server stopped)
  kCancelled = 2,         // client token fired (queued or mid-run)
  kDeadlineExceeded = 3,  // a deadline budget expired mid-run
  kError = 4,             // load/validate/run threw; see `error`
};

[[nodiscard]] constexpr const char* status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kCancelled: return "cancelled";
    case Status::kDeadlineExceeded: return "deadline";
    case Status::kError: return "error";
  }
  return "unknown";
}

/// What came back. `result` is populated for kOk (and holds the partial
/// state reached for kDeadlineExceeded / mid-run kCancelled).
struct Response {
  Status status = Status::kError;
  bp::EngineKind engine = bp::EngineKind::kCpuNode;
  std::string engine_name;  // human-readable form of `engine`
  bp::BpResult result;
  bool cache_hit = false;

  /// Reason text for kRejected / kError.
  std::string error;

  double queue_seconds = 0.0;    // admission to dequeue
  double service_seconds = 0.0;  // dequeue to completion (host time)
  std::string tag;

  [[nodiscard]] bool ok() const noexcept { return status == Status::kOk; }
};

}  // namespace credo::serve
