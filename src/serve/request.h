// The serve layer's public request/response vocabulary (DESIGN.md §5c/§5e).
//
// A Request names a graph (by file pair, resolved through the server's
// graph cache, or as a pre-loaded in-memory graph), the BpOptions to run
// with, an optional engine override (absent = the server's default
// selection, normally the §3.7 dispatcher), a deadline budget and an
// optional cancellation token. A Response reports what happened: the
// terminal status (the shared util::StatusCode vocabulary), the engine
// that ran, the BP result, and the queue/run timings the metrics layer
// aggregates. Requests compose with fluent with_* builders mirroring
// BpOptions; plain aggregate initialization keeps working.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "bp/engine.h"
#include "bp/runtime/stop.h"
#include "graph/factor_graph.h"
#include "graph/reorder.h"
#include "util/error.h"

namespace credo::serve {

/// Which graph a request runs on. Exactly one of the two documented forms
/// is used (validate() enforces the invariant):
///  * `nodes_path`/`edges_path` — an MTX-belief file pair, loaded through
///    the server's GraphCache (repeat requests skip MTX parsing);
///  * `graph` — a pre-loaded in-memory graph, bypassing the cache.
struct GraphRef {
  std::string nodes_path;
  std::string edges_path;
  std::shared_ptr<const graph::FactorGraph> graph;

  [[nodiscard]] bool inline_graph() const noexcept {
    return graph != nullptr;
  }

  static GraphRef files(std::string nodes, std::string edges) {
    GraphRef r;
    r.nodes_path = std::move(nodes);
    r.edges_path = std::move(edges);
    return r;
  }
  static GraphRef preloaded(std::shared_ptr<const graph::FactorGraph> g) {
    GraphRef r;
    r.graph = std::move(g);
    return r;
  }

  GraphRef& with_files(std::string nodes, std::string edges) {
    nodes_path = std::move(nodes);
    edges_path = std::move(edges);
    return *this;
  }
  GraphRef& with_preloaded(
      std::shared_ptr<const graph::FactorGraph> g) noexcept {
    graph = std::move(g);
    return *this;
  }

  /// Enforces the two-form invariant: either both file paths (and no
  /// inline graph), or an inline graph (and no paths). Mixed or empty
  /// forms are invalid-argument, never silently resolved.
  [[nodiscard]] util::Status validate() const {
    const bool has_paths = !nodes_path.empty() || !edges_path.empty();
    if (inline_graph() && has_paths) {
      return util::Status::invalid_argument(
          "GraphRef: an inline graph and file paths are mutually "
          "exclusive — use exactly one form");
    }
    if (!inline_graph()) {
      if (nodes_path.empty() && edges_path.empty()) {
        return util::Status::invalid_argument(
            "GraphRef: names no graph (set nodes/edges paths or an inline "
            "graph)");
      }
      if (nodes_path.empty() || edges_path.empty()) {
        return util::Status::invalid_argument(
            "GraphRef: the file form needs both nodes_path and edges_path");
      }
    }
    return util::Status::ok();
  }

  /// Span/debug label: "nodes|edges" or "inline".
  [[nodiscard]] std::string describe() const {
    return inline_graph() ? std::string("inline")
                          : nodes_path + '|' + edges_path;
  }
};

/// Per-request budgets; 0 = unlimited. Both are enforced cooperatively at
/// the runtime's convergence-check cadence (bp/runtime/stop.h).
struct Deadline {
  double host_seconds = 0.0;      // wall-clock budget for the engine run
  double modelled_seconds = 0.0;  // modelled-time budget (deterministic)

  Deadline& with_host_seconds(double v) noexcept {
    host_seconds = v;
    return *this;
  }
  Deadline& with_modelled_seconds(double v) noexcept {
    modelled_seconds = v;
    return *this;
  }

  [[nodiscard]] bool unlimited() const noexcept {
    return host_seconds == 0.0 && modelled_seconds == 0.0;
  }
};

/// One unit of work submitted to a Server / Session.
struct Request {
  GraphRef graph;
  bp::BpOptions options;

  /// Engine override; nullopt = server default (dispatcher when enabled).
  std::optional<bp::EngineKind> engine;

  /// Locality ordering applied when the graph is loaded (graph/reorder.h);
  /// part of the GraphCache key, so the same files under different modes
  /// are distinct cached entries. Response beliefs are always in the
  /// file's original node ids. For inline graphs the reorder happens
  /// per-request (no cache), so preloaded callers should reorder once
  /// themselves and leave this at kNone.
  graph::ReorderMode reorder = graph::ReorderMode::kNone;

  Deadline deadline;

  /// Client cancellation token (from bp::runtime::StopSource). Composed
  /// with the deadline budgets; default tokens never fire.
  bp::runtime::StopToken cancel;

  /// Opaque client label echoed back in the Response.
  std::string tag;

  // -------------------------------------------------------------------------
  // Fluent builders, mirroring BpOptions::with_* (DESIGN.md §5c):
  //   Request{}.with_files("n.mtx", "e.mtx").with_engine(kCpuNode)
  //            .with_deadline(Deadline{}.with_host_seconds(0.5))
  // -------------------------------------------------------------------------
  Request& with_graph(GraphRef g) {
    graph = std::move(g);
    return *this;
  }
  Request& with_files(std::string nodes, std::string edges) {
    graph = GraphRef::files(std::move(nodes), std::move(edges));
    return *this;
  }
  Request& with_preloaded(std::shared_ptr<const graph::FactorGraph> g) {
    graph = GraphRef::preloaded(std::move(g));
    return *this;
  }
  Request& with_options(bp::BpOptions o) noexcept {
    options = std::move(o);
    return *this;
  }
  Request& with_engine(bp::EngineKind kind) noexcept {
    engine = kind;
    return *this;
  }
  Request& with_reorder(graph::ReorderMode mode) noexcept {
    reorder = mode;
    return *this;
  }
  Request& with_deadline(Deadline d) noexcept {
    deadline = d;
    return *this;
  }
  Request& with_cancel(bp::runtime::StopToken token) noexcept {
    cancel = std::move(token);
    return *this;
  }
  Request& with_tag(std::string t) {
    tag = std::move(t);
    return *this;
  }

  /// Checks everything the server would reject before running: the graph
  /// form invariant, the BP options and the deadline budgets. Called by
  /// Server::submit — an invalid request resolves immediately with this
  /// status instead of failing mid-worker.
  [[nodiscard]] util::Status validate() const {
    if (auto s = graph.validate(); !s.is_ok()) return s;
    if (auto s = options.validate_status(); !s.is_ok()) return s;
    if (!(deadline.host_seconds >= 0.0) ||
        !(deadline.modelled_seconds >= 0.0)) {
      return util::Status::invalid_argument(
          "Request: deadline budgets must be >= 0");
    }
    return util::Status::ok();
  }
};

// Terminal status of a request: the shared vocabulary of util::StatusCode
// (DESIGN.md §5e), spelled directly — the pre-§5e serve::Status /
// serve::status_name aliases are gone. The serve-specific meanings:
//   kOk               ran to convergence or the iteration cap
//   kRejected         admission refused (queue full / server stopped)
//   kCancelled        client token fired (queued or mid-run)
//   kDeadlineExceeded a deadline budget expired mid-run
//   kInvalidArgument  request failed validation (mixed graph forms, ...)
//   kIo / kParse      the graph could not be loaded
//   kError            anything else that threw; see `error`

/// Collapses detailed error codes onto the five terminal accounting
/// categories (kOk/kRejected/kCancelled/kDeadlineExceeded/kError): the
/// identity `submitted == completed + rejected + cancelled +
/// deadline_expired + failed` counts every io/parse/invalid-argument
/// failure under `failed`.
[[nodiscard]] constexpr util::StatusCode terminal_category(
    util::StatusCode s) noexcept {
  switch (s) {
    case util::StatusCode::kOk:
    case util::StatusCode::kRejected:
    case util::StatusCode::kCancelled:
    case util::StatusCode::kDeadlineExceeded:
      return s;
    default:
      return util::StatusCode::kError;
  }
}

/// What came back. `result` is populated for kOk (and holds the partial
/// state reached for kDeadlineExceeded / mid-run kCancelled).
struct Response {
  util::StatusCode status = util::StatusCode::kError;
  bp::EngineKind engine = bp::EngineKind::kCpuNode;
  std::string engine_name;  // human-readable form of `engine`
  bp::BpResult result;
  bool cache_hit = false;

  /// Reason text for kRejected and the error codes.
  std::string error;

  double queue_seconds = 0.0;    // admission to dequeue
  double service_seconds = 0.0;  // dequeue to completion (host time)

  /// Span id of this request's trace record (obs/span.h); 0 when the
  /// server has no span log attached.
  std::uint64_t span_id = 0;

  std::string tag;

  [[nodiscard]] bool ok() const noexcept { return status == util::StatusCode::kOk; }

  /// The status + message as one util::Status value.
  [[nodiscard]] util::Status to_status() const {
    return {status, error};
  }
};

}  // namespace credo::serve
