// The serve layer's public request/response vocabulary (DESIGN.md §5c/§5h).
//
// A Request names a graph through a GraphKey — the single validated value
// that *is* the graph's serving identity: the MTX file pair (resolved
// through the server's graph cache) or a pre-loaded in-memory graph, plus
// the locality reorder mode, which is part of the identity because the
// same files under different orderings are different in-memory graphs.
// Alongside the key a request carries the BpOptions to run with, an
// optional engine override, an optional GraphDelta (incremental re-query:
// evidence applies to the cached graph ephemerally, topology mutations go
// through the server's DynamicGraph entry, and either way only the
// perturbed region re-converges), a warm-start opt-in, a deadline budget
// and a cancellation token. A Response reports what happened: the terminal
// status (shared util::StatusCode vocabulary), the engine that ran, the
// BP result, whether the run warm-started and how much of the graph the
// frontier seed covered, and the queue/run timings the metrics layer
// aggregates. Requests compose with fluent with_* builders mirroring
// BpOptions; plain aggregate initialization keeps working.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "bp/engine.h"
#include "bp/runtime/stop.h"
#include "graph/delta.h"
#include "graph/factor_graph.h"
#include "graph/reorder.h"
#include "util/error.h"

namespace credo::serve {

/// The serving identity of a graph. Exactly one of the two documented
/// forms is set (validate() enforces the invariant):
///  * `nodes_path`/`edges_path` — an MTX-belief file pair, loaded through
///    the server's GraphCache (repeat requests skip MTX parsing);
///  * `graph` — a pre-loaded in-memory graph, bypassing the cache.
/// The reorder mode is part of the key, not of the request: the same
/// files under kNone and a locality mode are two distinct cached entries
/// with different memory layouts, so they must never compare equal.
/// Response beliefs are always in the file's original node ids regardless
/// of mode. For inline graphs the reorder happens per request (nothing
/// caches the pass), so preloaded callers should reorder once themselves
/// and leave the mode at kNone.
struct GraphKey {
  std::string nodes_path;
  std::string edges_path;
  std::shared_ptr<const graph::FactorGraph> graph;
  graph::ReorderMode reorder = graph::ReorderMode::kNone;

  /// Topology version of the named graph: 0 addresses the file contents
  /// as parsed; nonzero addresses the server-side DynamicGraph state after
  /// that many accepted mutation batches. The version is part of the
  /// serving identity — it folds into label() and therefore into every
  /// warm-table fingerprint, so converged beliefs retained against one
  /// topology can never be overlaid onto a mutated one (the content hash
  /// alone only covers the on-disk bytes, which in-place mutation never
  /// changes).
  std::uint64_t version = 0;

  [[nodiscard]] bool inline_graph() const noexcept {
    return graph != nullptr;
  }

  static GraphKey files(std::string nodes, std::string edges) {
    GraphKey k;
    k.nodes_path = std::move(nodes);
    k.edges_path = std::move(edges);
    return k;
  }
  static GraphKey preloaded(std::shared_ptr<const graph::FactorGraph> g) {
    GraphKey k;
    k.graph = std::move(g);
    return k;
  }

  GraphKey& with_files(std::string nodes, std::string edges) {
    nodes_path = std::move(nodes);
    edges_path = std::move(edges);
    return *this;
  }
  GraphKey& with_preloaded(
      std::shared_ptr<const graph::FactorGraph> g) noexcept {
    graph = std::move(g);
    return *this;
  }
  GraphKey& with_reorder(graph::ReorderMode mode) noexcept {
    reorder = mode;
    return *this;
  }
  GraphKey& with_version(std::uint64_t v) noexcept {
    version = v;
    return *this;
  }

  /// Enforces the two-form invariant: either both file paths (and no
  /// inline graph), or an inline graph (and no paths). Mixed or empty
  /// forms are invalid-argument, never silently resolved.
  [[nodiscard]] util::Status validate() const {
    const bool has_paths = !nodes_path.empty() || !edges_path.empty();
    if (inline_graph() && has_paths) {
      return util::Status::invalid_argument(
          "GraphKey: an inline graph and file paths are mutually "
          "exclusive — use exactly one form");
    }
    if (!inline_graph()) {
      if (nodes_path.empty() && edges_path.empty()) {
        return util::Status::invalid_argument(
            "GraphKey: names no graph (set nodes/edges paths or an inline "
            "graph)");
      }
      if (nodes_path.empty() || edges_path.empty()) {
        return util::Status::invalid_argument(
            "GraphKey: the file form needs both nodes_path and edges_path");
      }
    }
    return util::Status::ok();
  }

  /// Span/debug label: "nodes|edges[|mode][#vN]" or "inline". The "#vN"
  /// suffix appears once the graph has been mutated server-side; warm
  /// fingerprints derive from this label, so each topology version gets
  /// its own warm-table namespace.
  [[nodiscard]] std::string label() const {
    if (inline_graph()) return "inline";
    std::string s = nodes_path + '|' + edges_path;
    if (reorder != graph::ReorderMode::kNone) {
      s += '|';
      s += graph::reorder_mode_name(reorder);
    }
    if (version != 0) {
      s += "#v";
      s += std::to_string(version);
    }
    return s;
  }
};

/// Per-request budgets; 0 = unlimited. Both are enforced cooperatively at
/// the runtime's convergence-check cadence (bp/runtime/stop.h).
struct Deadline {
  double host_seconds = 0.0;      // wall-clock budget for the engine run
  double modelled_seconds = 0.0;  // modelled-time budget (deterministic)

  Deadline& with_host_seconds(double v) noexcept {
    host_seconds = v;
    return *this;
  }
  Deadline& with_modelled_seconds(double v) noexcept {
    modelled_seconds = v;
    return *this;
  }

  [[nodiscard]] bool unlimited() const noexcept {
    return host_seconds == 0.0 && modelled_seconds == 0.0;
  }
};

/// One unit of work submitted to a Server / Session.
struct Request {
  GraphKey graph;
  bp::BpOptions options;

  /// Engine override; nullopt = server default (dispatcher when enabled).
  std::optional<bp::EngineKind> engine;

  /// Incremental delta against the named graph (original node ids), in
  /// the unified GraphDelta vocabulary. Evidence-only deltas apply to the
  /// cached graph ephemerally — a cheap copy sharing structure and joint
  /// tables, visible to this request alone. Deltas carrying topology ops
  /// (add/remove edge/node, set_potential) mutate the server's persistent
  /// DynamicGraph entry for the file pair: the version bumps, later
  /// requests see the new topology, and warm beliefs migrate with only
  /// the touched region invalidated. Either way, when converged beliefs
  /// are warm and the engine supports frontier seeding, re-convergence
  /// runs from the delta's touched nodes outward instead of cold.
  std::optional<graph::GraphDelta> delta;

  /// Opt into belief warm-starting: when the server holds converged
  /// beliefs for this (graph, engine) from an earlier request, start from
  /// them instead of the priors, and retain this run's converged beliefs
  /// for the next request. A request with `delta` set implies the same
  /// retention; warm-starting is never load-bearing for correctness — a
  /// cache miss or an unsupported engine falls back to a cold run and the
  /// Response says so (`warm_start` stays false).
  bool warm_start = false;

  Deadline deadline;

  /// Client cancellation token (from bp::runtime::StopSource). Composed
  /// with the deadline budgets; default tokens never fire.
  bp::runtime::StopToken cancel;

  /// Opaque client label echoed back in the Response.
  std::string tag;

  // -------------------------------------------------------------------------
  // Fluent builders, mirroring BpOptions::with_* (DESIGN.md §5c):
  //   Request{}.with_graph(GraphKey::files("n.mtx", "e.mtx")
  //                            .with_reorder(graph::ReorderMode::kBfs))
  //            .with_engine(kCpuNode)
  //            .with_deadline(Deadline{}.with_host_seconds(0.5))
  // -------------------------------------------------------------------------
  Request& with_graph(GraphKey k) {
    graph = std::move(k);
    return *this;
  }
  Request& with_files(std::string nodes, std::string edges) {
    graph = GraphKey::files(std::move(nodes), std::move(edges));
    return *this;
  }
  Request& with_preloaded(std::shared_ptr<const graph::FactorGraph> g) {
    graph = GraphKey::preloaded(std::move(g));
    return *this;
  }
  Request& with_options(bp::BpOptions o) noexcept {
    options = std::move(o);
    return *this;
  }
  Request& with_engine(bp::EngineKind kind) noexcept {
    engine = kind;
    return *this;
  }
  Request& with_delta(graph::GraphDelta d) {
    delta = std::move(d);
    return *this;
  }
  /// Thin alias over with_delta, kept so evidence-only call sites read as
  /// what they are; the unified GraphDelta carries both vocabularies.
  Request& with_evidence(graph::GraphDelta d) {
    return with_delta(std::move(d));
  }
  Request& with_warm_start(bool v = true) noexcept {
    warm_start = v;
    return *this;
  }
  Request& with_deadline(Deadline d) noexcept {
    deadline = d;
    return *this;
  }
  Request& with_cancel(bp::runtime::StopToken token) noexcept {
    cancel = std::move(token);
    return *this;
  }
  Request& with_tag(std::string t) {
    tag = std::move(t);
    return *this;
  }

  /// Checks everything the server would reject before running: the graph
  /// key invariant, the BP options and the deadline budgets. (Evidence
  /// validation needs the parsed graph, so it happens at execute time.)
  /// Called by Server::submit — an invalid request resolves immediately
  /// with this status instead of failing mid-worker.
  [[nodiscard]] util::Status validate() const {
    if (auto s = graph.validate(); !s.is_ok()) return s;
    if (auto s = options.validate_status(); !s.is_ok()) return s;
    if (!(deadline.host_seconds >= 0.0) ||
        !(deadline.modelled_seconds >= 0.0)) {
      return util::Status::invalid_argument(
          "Request: deadline budgets must be >= 0");
    }
    return util::Status::ok();
  }
};

// Terminal status of a request: the shared vocabulary of util::StatusCode
// (DESIGN.md §5e), spelled directly — the pre-§5e serve::Status /
// serve::status_name aliases are gone. The serve-specific meanings:
//   kOk               ran to convergence or the iteration cap
//   kRejected         admission refused (queue full / server stopped)
//   kCancelled        client token fired (queued or mid-run)
//   kDeadlineExceeded a deadline budget expired mid-run
//   kInvalidArgument  request failed validation (mixed graph forms, ...)
//   kIo / kParse      the graph could not be loaded
//   kError            anything else that threw; see `error`

/// Collapses detailed error codes onto the five terminal accounting
/// categories (kOk/kRejected/kCancelled/kDeadlineExceeded/kError): the
/// identity `submitted == completed + rejected + cancelled +
/// deadline_expired + failed` counts every io/parse/invalid-argument
/// failure under `failed`.
[[nodiscard]] constexpr util::StatusCode terminal_category(
    util::StatusCode s) noexcept {
  switch (s) {
    case util::StatusCode::kOk:
    case util::StatusCode::kRejected:
    case util::StatusCode::kCancelled:
    case util::StatusCode::kDeadlineExceeded:
      return s;
    default:
      return util::StatusCode::kError;
  }
}

/// What came back. `result` is populated for kOk (and holds the partial
/// state reached for kDeadlineExceeded / mid-run kCancelled).
struct Response {
  util::StatusCode status = util::StatusCode::kError;
  bp::EngineKind engine = bp::EngineKind::kCpuNode;
  bp::BpResult result;
  bool cache_hit = false;

  /// True when the run started from retained converged beliefs instead of
  /// the graph's priors. Always false on the first request for a graph,
  /// after the warm state was evicted, or when the engine does not
  /// support warm starts — the server falls back to a cold run rather
  /// than failing, and this flag is how that fallback stays honest.
  bool warm_start = false;

  /// Fraction of the graph's nodes on the initial schedule: 1.0 for a
  /// full cold (or plain warm) run, `seeded / num_nodes` when an evidence
  /// delta seeded the frontier from its touched region only.
  double frontier_fraction = 1.0;

  /// Reason text for kRejected and the error codes.
  std::string error;

  double queue_seconds = 0.0;    // admission to dequeue
  double service_seconds = 0.0;  // dequeue to completion (host time)

  /// Span id of this request's trace record (obs/span.h); 0 when the
  /// server has no span log attached.
  std::uint64_t span_id = 0;

  /// Topology version of the graph this request ran against: 0 for the
  /// as-parsed files (or an inline graph), N after N accepted mutation
  /// batches. A request whose delta carried topology ops reports the
  /// version its mutation produced.
  std::uint64_t graph_version = 0;

  std::string tag;

  [[nodiscard]] bool ok() const noexcept { return status == util::StatusCode::kOk; }

  /// The engine that ran, as its stable CLI slug — derived from `engine`
  /// in exactly one place (bp::engine_slug) instead of being hand-copied
  /// into a string member on every response path.
  [[nodiscard]] std::string_view engine_name() const noexcept {
    return bp::engine_slug(engine);
  }

  /// End-to-end latency the client observed: queue wait plus service.
  [[nodiscard]] double total_seconds() const noexcept {
    return queue_seconds + service_seconds;
  }

  /// The status + message as one util::Status value.
  [[nodiscard]] util::Status to_status() const {
    return {status, error};
  }
};

}  // namespace credo::serve
