#include "serve/stress.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <mutex>
#include <thread>

#include "util/error.h"
#include "util/timer.h"

namespace credo::serve {
namespace {

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace

util::Table StressReport::table() const {
  util::Table t({"metric", "value"});
  t.add_row({"sessions", util::Table::num(sessions, 6)});
  t.add_row({"requests", util::Table::num(
                             static_cast<double>(requests), 9)});
  t.add_row({"wall s", util::Table::num(wall_seconds, 4)});
  t.add_row({"throughput req/s", util::Table::num(throughput_rps, 5)});
  t.add_row({"completed", util::Table::num(
                              static_cast<double>(server.completed), 9)});
  t.add_row({"rejected", util::Table::num(
                             static_cast<double>(server.rejected), 9)});
  t.add_row({"cancelled", util::Table::num(
                              static_cast<double>(server.cancelled), 9)});
  t.add_row({"deadline expired",
             util::Table::num(static_cast<double>(server.deadline_expired),
                              9)});
  t.add_row({"failed", util::Table::num(
                           static_cast<double>(server.failed), 9)});
  t.add_row({"cache hits", util::Table::num(
                               static_cast<double>(server.cache.hits), 9)});
  t.add_row({"cache misses",
             util::Table::num(static_cast<double>(server.cache.misses), 9)});
  t.add_row({"cache hit rate", util::Table::num(server.cache.hit_rate(), 4)});
  t.add_row({"service p50 s", util::Table::num(service_p50, 4)});
  t.add_row({"service p90 s", util::Table::num(service_p90, 4)});
  t.add_row({"service p99 s", util::Table::num(service_p99, 4)});
  t.add_row({"service max s", util::Table::num(service_max, 4)});
  t.add_row({"queue p50 s", util::Table::num(queue_p50, 4)});
  t.add_row({"queue max s", util::Table::num(queue_max, 4)});
  return t;
}

StressReport run_stress(Server& server, const StressConfig& config) {
  CREDO_CHECK_MSG(!config.graphs.empty(),
                  "stress config needs at least one graph");
  const unsigned sessions = std::max(1u, config.sessions);

  std::mutex results_mu;
  std::vector<double> service_times;
  std::vector<double> queue_times;
  service_times.reserve(config.requests);
  queue_times.reserve(config.requests);

  const util::Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(sessions);
  for (unsigned s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      Session session = server.session();
      std::vector<std::future<Response>> futures;
      // Session s takes requests s, s+sessions, s+2*sessions, ...
      for (std::size_t i = s; i < config.requests; i += sessions) {
        Request req;
        const auto& gp = config.graphs[i % config.graphs.size()];
        req.graph = GraphRef::files(gp.first, gp.second);
        req.options = config.options;
        req.reorder = config.reorder;
        if (!config.mix.empty()) {
          req.engine = config.mix[i % config.mix.size()];
        }
        if (config.deadline_every > 0 &&
            i % config.deadline_every == config.deadline_every - 1) {
          req.deadline = config.deadline;
        }
        req.tag = "s" + std::to_string(s) + "r" + std::to_string(i);
        futures.push_back(session.submit(std::move(req)));
      }
      std::vector<double> svc, que;
      for (auto& f : futures) {
        const Response resp = f.get();
        svc.push_back(resp.service_seconds);
        que.push_back(resp.queue_seconds);
      }
      std::lock_guard<std::mutex> lock(results_mu);
      service_times.insert(service_times.end(), svc.begin(), svc.end());
      queue_times.insert(queue_times.end(), que.begin(), que.end());
    });
  }
  for (auto& c : clients) c.join();

  StressReport report;
  report.wall_seconds = wall.seconds();
  report.requests = config.requests;
  report.sessions = sessions;
  report.server = server.stats();
  report.throughput_rps =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.server.completed) /
                report.wall_seconds
          : 0.0;

  std::sort(service_times.begin(), service_times.end());
  std::sort(queue_times.begin(), queue_times.end());
  report.service_p50 = percentile(service_times, 0.50);
  report.service_p90 = percentile(service_times, 0.90);
  report.service_p99 = percentile(service_times, 0.99);
  report.service_max = service_times.empty() ? 0.0 : service_times.back();
  report.queue_p50 = percentile(queue_times, 0.50);
  report.queue_max = queue_times.empty() ? 0.0 : queue_times.back();
  return report;
}

}  // namespace credo::serve
