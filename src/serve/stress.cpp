#include "serve/stress.h"

#include <algorithm>
#include <filesystem>
#include <future>
#include <thread>

#include "bp/runtime/stop.h"
#include "graph/ldpc.h"
#include "io/mtx_belief.h"
#include "util/error.h"
#include "util/timer.h"

namespace credo::serve {
namespace {

/// Series key of one credo_requests_total terminal-status counter.
std::string status_series(const char* status) {
  return std::string("credo_requests_total{status=\"") + status + "\"}";
}

/// splitmix64 — deterministic per-request churn targets with no shared
/// RNG state between session threads.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

util::Table StressReport::table() const {
  // Every count below is read from the registry delta — the table and a
  // Prometheus scrape of the same window reconcile by construction.
  const auto counter = [&](const std::string& series) {
    return static_cast<double>(metrics.counter(series));
  };
  const double hits = counter("credo_graph_cache_hits_total");
  const double misses = counter("credo_graph_cache_misses_total");
  const double fetches = hits + misses;

  util::Table t({"metric", "value"});
  t.add_row({"sessions", util::Table::num(sessions, 6)});
  t.add_row({"requests", util::Table::num(
                             static_cast<double>(requests), 9)});
  t.add_row({"wall s", util::Table::num(wall_seconds, 4)});
  t.add_row({"throughput req/s", util::Table::num(throughput_rps, 5)});
  t.add_row({"submitted",
             util::Table::num(counter("credo_requests_submitted_total"), 9)});
  t.add_row({"completed", util::Table::num(counter(status_series("ok")), 9)});
  t.add_row({"rejected",
             util::Table::num(counter(status_series("rejected")), 9)});
  t.add_row({"cancelled",
             util::Table::num(counter(status_series("cancelled")), 9)});
  t.add_row({"deadline expired",
             util::Table::num(counter(status_series("deadline")), 9)});
  t.add_row({"failed", util::Table::num(counter(status_series("error")), 9)});
  t.add_row({"cache hits", util::Table::num(hits, 9)});
  t.add_row({"cache misses", util::Table::num(misses, 9)});
  t.add_row({"cache hit rate",
             util::Table::num(fetches > 0.0 ? hits / fetches : 0.0, 4)});
  t.add_row({"warm hits",
             util::Table::num(counter("credo_cache_warm_hits_total"), 9)});
  t.add_row({"run p50 s", util::Table::num(service_p50, 4)});
  t.add_row({"run p90 s", util::Table::num(service_p90, 4)});
  t.add_row({"run p99 s", util::Table::num(service_p99, 4)});
  t.add_row({"run max s", util::Table::num(service_max, 4)});
  t.add_row({"queue p50 s", util::Table::num(queue_p50, 4)});
  t.add_row({"queue p90 s", util::Table::num(queue_p90, 4)});
  t.add_row({"queue p99 s", util::Table::num(queue_p99, 4)});
  t.add_row({"queue max s", util::Table::num(queue_max, 4)});
  return t;
}

StressReport run_stress(Server& server, const StressConfig& config) {
  CREDO_CHECK_MSG(!config.graphs.empty(),
                  "stress config needs at least one graph");
  const unsigned sessions = std::max(1u, config.sessions);

  // Churn aims its new edges at existing nodes, so it needs each graph's
  // base node count, per-node arities, and joint-store form up front —
  // shared-joint graphs take the matrix-free add_edge, per-edge graphs
  // need an explicit matrix. A preflight parse of each file pair (before
  // the metrics baseline, so the report's delta covers only the replay)
  // learns all three from the same bytes the server's cache will load.
  struct Shape {
    graph::NodeId nodes = 0;
    bool shared = false;
    std::vector<std::uint32_t> arity;
  };
  std::vector<Shape> shapes;
  if (config.churn_every > 0) {
    CREDO_CHECK_MSG(config.batch <= 1,
                    "churn requires batch <= 1 (fused batch members cannot "
                    "carry deltas)");
    for (const auto& gp : config.graphs) {
      const graph::FactorGraph g = io::read_mtx_belief(gp.first, gp.second);
      CREDO_CHECK_MSG(g.num_nodes() > 0, "churn preflight saw an empty graph");
      Shape shape;
      shape.nodes = g.num_nodes();
      shape.shared = g.joints().is_shared();
      shape.arity.reserve(g.num_nodes());
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        shape.arity.push_back(g.arity(v));
      }
      shapes.push_back(std::move(shape));
    }
  }

  // The registry may be process-wide and shared with other servers or
  // earlier runs; differencing two snapshots isolates this replay.
  const obs::MetricsSnapshot before = server.metrics().snapshot();

  // One pre-fired token shared by every cancel_every-th request.
  bp::runtime::StopSource cancelled_source;
  cancelled_source.request_stop();

  const util::Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(sessions);
  for (unsigned s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      Session session = server.session();
      std::vector<std::future<Response>> futures;
      const std::size_t batch = config.batch;
      std::vector<Request> group;  // pending members when batching
      std::size_t batch_index = 0;
      const auto flush = [&] {
        if (group.empty()) return;
        // One fused run needs one engine: the mix cycles per batch.
        if (!config.mix.empty()) {
          const bp::EngineKind kind =
              config.mix[batch_index % config.mix.size()];
          for (Request& r : group) r.with_engine(kind);
        }
        ++batch_index;
        auto fs = session.submit_batch(std::move(group));
        for (auto& f : fs) futures.push_back(std::move(f));
        group.clear();
      };
      // Session s takes requests s, s+sessions, s+2*sessions, ...
      for (std::size_t i = s; i < config.requests; i += sessions) {
        const auto& gp = config.graphs[i % config.graphs.size()];
        Request req = Request{}
                          .with_graph(GraphKey::files(gp.first, gp.second)
                                          .with_reorder(config.reorder))
                          .with_options(config.options)
                          .with_warm_start(config.warm)
                          .with_tag("s" + std::to_string(s) + "r" +
                                    std::to_string(i));
        if (config.deadline_every > 0 &&
            i % config.deadline_every == config.deadline_every - 1) {
          req.with_deadline(config.deadline);
        }
        if (config.cancel_every > 0 &&
            i % config.cancel_every == config.cancel_every - 1) {
          req.with_cancel(cancelled_source.token());
        }
        if (config.churn_every > 0 &&
            i % config.churn_every == config.churn_every - 1) {
          // Grow fresh nodes wired to deterministic pseudo-random existing
          // targets. Fresh endpoints mean two concurrent churn batches can
          // never race on the same edge, whatever order the workers apply
          // them in.
          const Shape& shape = shapes[i % config.graphs.size()];
          graph::GraphDelta delta;
          const std::size_t edges = std::max<std::size_t>(
              std::size_t{1}, config.churn_edges);
          for (std::size_t e = 0; e < edges; ++e) {
            const graph::NodeId target = static_cast<graph::NodeId>(
                mix64(config.churn_seed + i * 131 + e) % shape.nodes);
            const std::uint32_t arity = shape.arity[target];
            delta.add_node(graph::BeliefVec::uniform(arity));
            const graph::NodeId fresh =
                graph::GraphDelta::new_node(static_cast<graph::NodeId>(e));
            if (shape.shared) {
              delta.add_edge(fresh, target);
            } else {
              delta.add_edge(fresh, target,
                             graph::JointMatrix::diffusion(arity, 0.8f));
            }
          }
          req.with_delta(std::move(delta));
        }
        if (batch > 1) {
          group.push_back(std::move(req));
          if (group.size() >= batch) flush();
        } else {
          if (!config.mix.empty()) {
            req.with_engine(config.mix[i % config.mix.size()]);
          }
          futures.push_back(session.submit(std::move(req)));
        }
      }
      flush();
      for (auto& f : futures) f.get();
    });
  }
  for (auto& c : clients) c.join();

  StressReport report;
  report.wall_seconds = wall.seconds();
  report.requests = config.requests;
  report.sessions = sessions;
  report.server = server.stats();
  report.metrics = server.metrics().snapshot().since(before);
  report.throughput_rps =
      report.wall_seconds > 0.0
          ? static_cast<double>(
                report.metrics.counter(status_series("ok"))) /
                report.wall_seconds
          : 0.0;

  // Percentiles from the registry's two latency histograms — run time and
  // queue wait are separate series, so the table reports them separately.
  const obs::HistogramSnapshot run =
      report.metrics.histogram("credo_request_run_seconds");
  const obs::HistogramSnapshot queue =
      report.metrics.histogram("credo_request_queue_seconds");
  report.service_p50 = run.quantile(0.50);
  report.service_p90 = run.quantile(0.90);
  report.service_p99 = run.quantile(0.99);
  report.service_max = run.max;
  report.queue_p50 = queue.quantile(0.50);
  report.queue_p90 = queue.quantile(0.90);
  report.queue_p99 = queue.quantile(0.99);
  report.queue_max = queue.max;
  return report;
}

StressReport run_decode_under_load(Server& server,
                                   const DecodeLoadConfig& config) {
  CREDO_CHECK_MSG(graph::is_ldpc(config.family),
                  "decode-under-load runs an LDPC family");
  CREDO_CHECK_MSG(config.codes >= 1, "decode-under-load needs >= 1 code");
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path();
  std::vector<std::pair<std::string, std::string>> graphs;
  graphs.reserve(config.codes);
  for (std::uint32_t i = 0; i < config.codes; ++i) {
    const auto code = graph::ldpc::random_regular(
        config.bits, config.dv, config.dc, config.seed + i);
    std::vector<std::uint8_t> error(code.bits, 0);
    error[(config.seed + 7 * i) % code.bits] = 1;
    const auto syn = graph::ldpc::syndrome(code, error);
    const auto g =
        graph::ldpc::build_graph(code, syn, config.crossover, config.family);
    const std::string stem = "credo_decode_load_" +
                             std::to_string(config.seed) + "_" +
                             std::to_string(i);
    auto npath = (dir / (stem + "_nodes.mtx")).string();
    auto epath = (dir / (stem + "_edges.mtx")).string();
    io::write_mtx_belief(g, npath, epath);
    graphs.emplace_back(std::move(npath), std::move(epath));
  }

  StressConfig sc;
  sc.graphs = graphs;
  sc.requests = config.requests;
  sc.sessions = config.sessions;
  // LDPC-capable mix spanning the paradigms: sequential sweep, pooled
  // CPU-parallel, relaxed priority.
  sc.mix = {bp::EngineKind::kCpuNode, bp::EngineKind::kOmpNode,
            bp::EngineKind::kResidualMq};
  sc.batch = config.batch;
  sc.options.max_iterations = config.max_iterations;
  sc.options.syndrome_stop = true;
  StressReport report = run_stress(server, sc);
  for (const auto& [npath, epath] : graphs) {
    std::error_code ec;
    fs::remove(npath, ec);
    fs::remove(epath, ec);
  }
  return report;
}

}  // namespace credo::serve
