#include "serve/server.h"

#include <chrono>
#include <utility>

#include "credo/suite.h"
#include "credo/trainer.h"
#include "graph/metadata.h"
#include "graph/reorder.h"
#include "util/timer.h"

namespace credo::serve {
namespace {

obs::MetricsRegistry& resolve_registry(const ServerOptions& options) {
  return options.metrics != nullptr ? *options.metrics
                                    : obs::MetricsRegistry::global();
}

constexpr const char* kRequestsTotal = "credo_requests_total";
constexpr const char* kRequestsTotalHelp =
    "Requests finished, by terminal status (submitted == sum over statuses "
    "after drain)";

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      metrics_(resolve_registry(options_)),
      cache_(options_.cache_capacity, &metrics_),
      pool_(options_.pool_threads == 0 ? 1 : options_.pool_threads),
      m_submitted_(metrics_.counter("credo_requests_submitted_total",
                                    "Requests accepted for accounting "
                                    "(every submit counts exactly once)")),
      m_queue_seconds_(metrics_.histogram(
          "credo_request_queue_seconds",
          "Admission-to-dequeue wait of executed requests (queue wait "
          "only, no run time)",
          obs::default_latency_buckets())),
      m_run_seconds_(metrics_.histogram(
          "credo_request_run_seconds",
          "Dequeue-to-completion time of executed requests (parse + "
          "engine run, no queue wait)",
          obs::default_latency_buckets())),
      m_queue_depth_(metrics_.gauge("credo_queue_depth",
                                    "Requests waiting in the admission "
                                    "queue")) {
  const util::StatusCode categories[5] = {
      util::StatusCode::kOk, util::StatusCode::kRejected,
      util::StatusCode::kCancelled, util::StatusCode::kDeadlineExceeded,
      util::StatusCode::kError};
  for (const util::StatusCode s : categories) {
    m_finished_[static_cast<std::size_t>(s)] = &metrics_.counter(
        kRequestsTotal, kRequestsTotalHelp,
        {{"status", util::status_code_name(s)}});
  }
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

Response Server::finish_unrun(const Request& req, util::StatusCode status,
                              std::string reason) {
  Response r;
  r.status = status;
  r.error = std::move(reason);
  r.tag = req.tag;
  if (options_.spans != nullptr) {
    obs::Span span;
    span.id = obs::next_span_id();
    r.span_id = span.id;
    span.tag = req.tag;
    span.graph = req.graph.describe();
    span.status = util::status_code_name(status);
    span.error = r.error;
    options_.spans->record(std::move(span));
  }
  return r;
}

std::future<Response> Server::submit(Request req) {
  std::promise<Response> promise;
  std::future<Response> fut = promise.get_future();

  // Validation failures resolve immediately with the shared status
  // vocabulary — they never consume queue capacity or a worker.
  if (const util::Status valid = req.validate(); !valid.is_ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.submitted;
    }
    m_submitted_.inc();
    count(valid.code());
    promise.set_value(finish_unrun(req, valid.code(), valid.message()));
    return fut;
  }

  std::string reject_reason;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stopping_) {
      reject_reason = "server stopped";
    } else if (queue_.size() >= options_.queue_capacity) {
      reject_reason = "admission queue full (capacity " +
                      std::to_string(options_.queue_capacity) + ")";
    } else {
      queue_.push_back(Pending{std::move(req), std::move(promise),
                               std::chrono::steady_clock::now()});
      m_queue_depth_.set(static_cast<double>(queue_.size()));
    }
  }
  m_submitted_.inc();
  if (!reject_reason.empty()) {
    count(util::StatusCode::kRejected);
    promise.set_value(finish_unrun(req, util::StatusCode::kRejected,
                                   std::move(reject_reason)));
    return fut;
  }
  cv_.notify_one();
  return fut;
}

Session Server::session() {
  static std::atomic<unsigned> next_id{0};
  return Session(*this, next_id.fetch_add(1, std::memory_order_relaxed));
}

void Server::shutdown() {
  std::deque<Pending> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty() && queue_.empty()) return;
    stopping_ = true;
    if (workers_.empty()) {
      // No one will drain: resolve every queued promise as rejected so the
      // accounting identity holds. Resolved outside the lock.
      orphaned.swap(queue_);
      m_queue_depth_.set(0.0);
    }
  }
  for (auto& pending : orphaned) {
    count(util::StatusCode::kRejected);
    pending.promise.set_value(finish_unrun(
        pending.request, util::StatusCode::kRejected, "server stopped"));
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats s = stats_;
  s.cache = cache_.stats();
  return s;
}

void Server::count(util::StatusCode s) {
  const util::StatusCode category = terminal_category(s);
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (category) {
      case util::StatusCode::kOk: ++stats_.completed; break;
      case util::StatusCode::kRejected: ++stats_.rejected; break;
      case util::StatusCode::kCancelled: ++stats_.cancelled; break;
      case util::StatusCode::kDeadlineExceeded:
        ++stats_.deadline_expired;
        break;
      default: ++stats_.failed; break;
    }
  }
  m_finished_[static_cast<std::size_t>(category)]->inc();
}

void Server::worker_loop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      pending = std::move(queue_.front());
      queue_.pop_front();
      m_queue_depth_.set(static_cast<double>(queue_.size()));
    }
    Response resp = execute(pending);
    count(resp.status);
    pending.promise.set_value(std::move(resp));
  }
}

bp::EngineKind Server::choose_engine(const graph::FactorGraph& g,
                                     const graph::GraphMetadata* md) {
  // The §3.7 dispatcher is trained on tabular workloads and may pick a
  // device engine; closed-form families route straight to an LDPC-capable
  // engine instead (DESIGN.md §5g). Explicit per-request overrides still
  // apply and are capability-checked by Engine::run.
  if (graph::is_ldpc(g.family())) {
    return bp::engine_supports_family(options_.default_engine, g.family())
               ? options_.default_engine
               : bp::EngineKind::kResidualMq;
  }
  if (!options_.use_dispatcher) return options_.default_engine;
  std::call_once(dispatcher_once_, [&] {
    if (!options_.dispatcher_model.empty()) {
      dispatcher_ = std::make_unique<dispatch::Dispatcher>(
          dispatch::Dispatcher::load(options_.dispatcher_model));
      return;
    }
    // No pre-trained model: train on the bold benchmark subset, exactly as
    // `credo run --engine auto` does. Expensive — done once per server.
    dispatch::TrainerConfig tcfg;
    const auto runs =
        dispatch::benchmark_suite(suite::table1_bold(), {2u, 3u}, tcfg);
    dispatcher_ = std::make_unique<dispatch::Dispatcher>(
        dispatch::Dispatcher::train(runs));
  });
  if (md != nullptr) return dispatcher_->choose(*md);
  return dispatcher_->choose(graph::compute_metadata(g));
}

Response Server::execute(Pending& pending) {
  Request& req = pending.request;
  Response resp;
  resp.tag = req.tag;
  resp.queue_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pending.enqueued)
          .count();
  m_queue_seconds_.observe(resp.queue_seconds);
  const util::Timer service_timer;

  obs::Span span;
  if (options_.spans != nullptr) {
    span.id = obs::next_span_id();
    resp.span_id = span.id;
  }
  span.tag = req.tag;
  span.graph = req.graph.describe();
  span.queue_s = resp.queue_seconds;

  // A request cancelled while queued never starts.
  if (req.cancel.stop_requested()) {
    resp.status = util::StatusCode::kCancelled;
    resp.service_seconds = service_timer.seconds();
    m_run_seconds_.observe(resp.service_seconds);
    if (options_.spans != nullptr) {
      span.status = util::status_code_name(resp.status);
      options_.spans->record(std::move(span));
    }
    return resp;
  }

  try {
    // Resolve the graph: cache for file refs, as-is for preloaded graphs
    // (reordered per-request when a mode is set — no cache to amortize the
    // pass, so preloaded callers are better off reordering once upfront).
    const util::Timer parse_timer;
    std::shared_ptr<const CachedGraph> cached;
    graph::FactorGraph reordered_inline;
    const graph::FactorGraph* g = nullptr;
    const graph::GraphMetadata* md = nullptr;
    if (req.graph.inline_graph()) {
      g = req.graph.graph.get();
      if (req.reorder != graph::ReorderMode::kNone) {
        reordered_inline = graph::reordered(*g, req.reorder);
        g = &reordered_inline;
      }
    } else {
      auto fetched = cache_.fetch(req.graph.nodes_path, req.graph.edges_path,
                                  req.reorder);
      cached = std::move(fetched.entry);
      resp.cache_hit = fetched.hit;
      g = &cached->graph;
      md = &cached->metadata;
    }
    span.parse_s = parse_timer.seconds();
    span.cache_hit = resp.cache_hit;

    const bp::EngineKind kind =
        req.engine ? *req.engine : choose_engine(*g, md);
    resp.engine = kind;
    resp.engine_name = std::string(bp::engine_name(kind));
    span.engine = resp.engine_name;

    bp::BpOptions opts = req.options;
    opts.with_stop(req.cancel);
    if (req.deadline.host_seconds > 0.0) {
      opts.with_host_deadline(req.deadline.host_seconds);
    }
    if (req.deadline.modelled_seconds > 0.0) {
      opts.with_modelled_deadline(req.deadline.modelled_seconds);
    }

    const util::Timer run_timer;
    const auto engine = bp::make_default_engine(kind);
    bp::BpResult result;
    if (kind == bp::EngineKind::kOmpNode ||
        kind == bp::EngineKind::kOmpEdge) {
      // CPU-parallel engines share the server's one pool; the pool runs a
      // single team at a time, so these requests serialize here.
      std::lock_guard<std::mutex> pool_lock(pool_mu_);
      opts.with_shared_pool(&pool_);
      result = engine->run(*g, opts);
    } else {
      result = engine->run(*g, opts);
    }
    span.unpermute_s = result.stats.unpermute_seconds;
    span.run_s = run_timer.seconds() - span.unpermute_s;
    span.run_modelled_s = result.stats.modelled_seconds();
    span.iterations = result.stats.iterations;

    switch (result.stats.stop_reason) {
      case bp::runtime::StopReason::kNone:
        resp.status = util::StatusCode::kOk;
        break;
      case bp::runtime::StopReason::kCancelled:
        resp.status = util::StatusCode::kCancelled;
        break;
      case bp::runtime::StopReason::kDeadline:
        resp.status = util::StatusCode::kDeadlineExceeded;
        break;
    }
    resp.result = std::move(result);
  } catch (const std::exception& e) {
    // Map through the shared vocabulary: parse/io/invalid-argument keep
    // their codes (all counted under `failed`), anything else is kError.
    const util::Status st = util::status_from_exception(e);
    resp.status = st.code();
    resp.error = st.message();
    span.error = resp.error;
  }
  resp.service_seconds = service_timer.seconds();
  m_run_seconds_.observe(resp.service_seconds);
  if (options_.spans != nullptr) {
    span.status = util::status_code_name(resp.status);
    options_.spans->record(std::move(span));
  }
  return resp;
}

}  // namespace credo::serve
