#include "serve/server.h"

#include <chrono>
#include <utility>

#include "credo/suite.h"
#include "credo/trainer.h"
#include "graph/disjoint_union.h"
#include "graph/metadata.h"
#include "graph/reorder.h"
#include "util/timer.h"

namespace credo::serve {
namespace {

obs::MetricsRegistry& resolve_registry(const ServerOptions& options) {
  return options.metrics != nullptr ? *options.metrics
                                    : obs::MetricsRegistry::global();
}

constexpr const char* kRequestsTotal = "credo_requests_total";
constexpr const char* kRequestsTotalHelp =
    "Requests finished, by terminal status (submitted == sum over statuses "
    "after drain)";

/// Warm-state fingerprint: engine slug + delta content hash, FNV-1a.
/// Options are deliberately NOT folded in — warm beliefs are a starting
/// point, never load-bearing, so a request with different thresholds can
/// still reuse them and simply re-converges under its own options. The
/// topology version is NOT here either: it lives in the graph key's
/// "#vN" suffix, so each version owns a whole fingerprint namespace.
std::uint64_t warm_fingerprint(bp::EngineKind kind,
                               std::uint64_t delta_fp) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix_byte = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  for (const char c : bp::engine_slug(kind)) {
    mix_byte(static_cast<std::uint8_t>(c));
  }
  for (int i = 0; i < 8; ++i) {
    mix_byte(static_cast<std::uint8_t>((delta_fp >> (8 * i)) & 0xffu));
  }
  return h;
}

/// The BpOptions knobs that must agree for two requests to share one
/// fused engine run. Scheduling/pool knobs follow the batch head.
bool fusable_options(const bp::BpOptions& a, const bp::BpOptions& b) noexcept {
  return a.convergence_threshold == b.convergence_threshold &&
         a.max_iterations == b.max_iterations &&
         a.work_queue == b.work_queue &&
         a.queue_threshold == b.queue_threshold &&
         a.damping == b.damping && a.syndrome_stop == b.syndrome_stop;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      metrics_(resolve_registry(options_)),
      cache_(options_.cache_capacity, &metrics_),
      pool_(options_.pool_threads == 0 ? 1 : options_.pool_threads),
      m_submitted_(metrics_.counter("credo_requests_submitted_total",
                                    "Requests accepted for accounting "
                                    "(every submit counts exactly once)")),
      m_queue_seconds_(metrics_.histogram(
          "credo_request_queue_seconds",
          "Admission-to-dequeue wait of executed requests (queue wait "
          "only, no run time)",
          obs::default_latency_buckets())),
      m_run_seconds_(metrics_.histogram(
          "credo_request_run_seconds",
          "Dequeue-to-completion time of executed requests (parse + "
          "engine run, no queue wait)",
          obs::default_latency_buckets())),
      m_queue_depth_(metrics_.gauge("credo_queue_depth",
                                    "Requests waiting in the admission "
                                    "queue")),
      m_batch_occupancy_(metrics_.histogram(
          "credo_batch_occupancy",
          "Members per fused batch that reached the engine run",
          obs::pow2_buckets(10))),
      m_delta_size_(metrics_.histogram(
          "credo_evidence_delta_size",
          "Operations per delta-carrying request (evidence or topology)",
          obs::pow2_buckets(12))),
      m_mutations_(metrics_.counter(
          "credo_mutations_total",
          "Topology mutation batches accepted and applied to a dynamic "
          "graph")) {
  const util::StatusCode categories[5] = {
      util::StatusCode::kOk, util::StatusCode::kRejected,
      util::StatusCode::kCancelled, util::StatusCode::kDeadlineExceeded,
      util::StatusCode::kError};
  for (const util::StatusCode s : categories) {
    m_finished_[static_cast<std::size_t>(s)] = &metrics_.counter(
        kRequestsTotal, kRequestsTotalHelp,
        {{"status", util::status_code_name(s)}});
  }
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

Response Server::finish_unrun(const Request& req, util::StatusCode status,
                              std::string reason) {
  Response r;
  r.status = status;
  r.error = std::move(reason);
  r.tag = req.tag;
  if (options_.spans != nullptr) {
    obs::Span span;
    span.id = obs::next_span_id();
    r.span_id = span.id;
    span.tag = req.tag;
    span.graph = req.graph.label();
    span.status = util::status_code_name(status);
    span.error = r.error;
    options_.spans->record(std::move(span));
  }
  return r;
}

std::future<Response> Server::submit(Request req) {
  std::promise<Response> promise;
  std::future<Response> fut = promise.get_future();

  // Validation failures resolve immediately with the shared status
  // vocabulary — they never consume queue capacity or a worker.
  if (const util::Status valid = req.validate(); !valid.is_ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.submitted;
    }
    m_submitted_.inc();
    count(valid.code());
    promise.set_value(finish_unrun(req, valid.code(), valid.message()));
    return fut;
  }

  std::string reject_reason;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stopping_) {
      reject_reason = "server stopped";
    } else if (queue_.size() >= options_.queue_capacity) {
      reject_reason = "admission queue full (capacity " +
                      std::to_string(options_.queue_capacity) + ")";
    } else {
      Pending p;
      p.requests.push_back(std::move(req));
      p.promises.push_back(std::move(promise));
      p.resolved.push_back(0);
      p.enqueued = std::chrono::steady_clock::now();
      queue_.push_back(std::move(p));
      m_queue_depth_.set(static_cast<double>(queue_.size()));
    }
  }
  m_submitted_.inc();
  if (!reject_reason.empty()) {
    count(util::StatusCode::kRejected);
    promise.set_value(finish_unrun(req, util::StatusCode::kRejected,
                                   std::move(reject_reason)));
    return fut;
  }
  cv_.notify_one();
  return fut;
}

std::vector<std::future<Response>> Server::submit_batch(
    std::vector<Request> requests) {
  const std::size_t n = requests.size();
  std::vector<std::promise<Response>> promises(n);
  std::vector<std::future<Response>> futures;
  futures.reserve(n);
  for (auto& p : promises) futures.push_back(p.get_future());
  if (n == 0) return futures;

  // Every member counts in the accounting identity individually, exactly
  // as if it had been submitted alone.
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.submitted += n;
  }
  for (std::size_t i = 0; i < n; ++i) m_submitted_.inc();

  // Per-member validation resolves failed members now; the survivors stay
  // index-aligned (resolved[] marks the finished slots for the worker).
  std::vector<char> resolved(n, 0);
  std::size_t live = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (const util::Status valid = requests[i].validate(); !valid.is_ok()) {
      count(valid.code());
      promises[i].set_value(
          finish_unrun(requests[i], valid.code(), valid.message()));
      resolved[i] = 1;
    } else {
      ++live;
    }
  }

  // One admission decision for the whole batch: it occupies one slot.
  std::string reject_reason;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      reject_reason = "server stopped";
    } else if (live > 0 && queue_.size() >= options_.queue_capacity) {
      reject_reason = "admission queue full (capacity " +
                      std::to_string(options_.queue_capacity) + ")";
    } else if (live > 0) {
      Pending p;
      p.requests = std::move(requests);
      p.promises = std::move(promises);
      p.resolved = resolved;
      p.enqueued = std::chrono::steady_clock::now();
      p.batch = true;
      queue_.push_back(std::move(p));
      m_queue_depth_.set(static_cast<double>(queue_.size()));
    }
  }
  if (!reject_reason.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (resolved[i]) continue;
      count(util::StatusCode::kRejected);
      promises[i].set_value(finish_unrun(
          requests[i], util::StatusCode::kRejected, reject_reason));
    }
    return futures;
  }
  if (live > 0) cv_.notify_one();
  return futures;
}

Session Server::session() {
  static std::atomic<unsigned> next_id{0};
  return Session(*this, next_id.fetch_add(1, std::memory_order_relaxed));
}

void Server::shutdown() {
  std::deque<Pending> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty() && queue_.empty()) return;
    stopping_ = true;
    if (workers_.empty()) {
      // No one will drain: resolve every queued promise as rejected so the
      // accounting identity holds. Resolved outside the lock.
      orphaned.swap(queue_);
      m_queue_depth_.set(0.0);
    }
  }
  for (auto& pending : orphaned) {
    for (std::size_t i = 0; i < pending.requests.size(); ++i) {
      if (pending.resolved[i]) continue;
      count(util::StatusCode::kRejected);
      pending.promises[i].set_value(finish_unrun(
          pending.requests[i], util::StatusCode::kRejected,
          "server stopped"));
    }
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats s = stats_;
  s.cache = cache_.stats();
  return s;
}

void Server::count(util::StatusCode s) {
  const util::StatusCode category = terminal_category(s);
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (category) {
      case util::StatusCode::kOk: ++stats_.completed; break;
      case util::StatusCode::kRejected: ++stats_.rejected; break;
      case util::StatusCode::kCancelled: ++stats_.cancelled; break;
      case util::StatusCode::kDeadlineExceeded:
        ++stats_.deadline_expired;
        break;
      default: ++stats_.failed; break;
    }
  }
  m_finished_[static_cast<std::size_t>(category)]->inc();
}

void Server::worker_loop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      pending = std::move(queue_.front());
      queue_.pop_front();
      m_queue_depth_.set(static_cast<double>(queue_.size()));
    }
    if (pending.batch) {
      execute_batch(pending);
      continue;
    }
    Response resp = execute(pending.requests[0], pending.enqueued);
    count(resp.status);
    pending.promises[0].set_value(std::move(resp));
  }
}

bp::EngineKind Server::choose_engine(const graph::FactorGraph& g,
                                     const graph::GraphMetadata* md) {
  // The §3.7 dispatcher is trained on tabular workloads and may pick a
  // device engine; closed-form families route straight to an LDPC-capable
  // engine instead (DESIGN.md §5g). Explicit per-request overrides still
  // apply and are capability-checked by Engine::run.
  if (graph::is_ldpc(g.family())) {
    return bp::engine_supports_family(options_.default_engine, g.family())
               ? options_.default_engine
               : bp::EngineKind::kResidualMq;
  }
  if (!options_.use_dispatcher) return options_.default_engine;
  std::call_once(dispatcher_once_, [&] {
    if (!options_.dispatcher_model.empty()) {
      dispatcher_ = std::make_unique<dispatch::Dispatcher>(
          dispatch::Dispatcher::load(options_.dispatcher_model));
      return;
    }
    // No pre-trained model: train on the bold benchmark subset, exactly as
    // `credo run --engine auto` does. Expensive — done once per server.
    dispatch::TrainerConfig tcfg;
    const auto runs =
        dispatch::benchmark_suite(suite::table1_bold(), {2u, 3u}, tcfg);
    dispatcher_ = std::make_unique<dispatch::Dispatcher>(
        dispatch::Dispatcher::train(runs));
  });
  if (md != nullptr) return dispatcher_->choose(*md);
  return dispatcher_->choose(graph::compute_metadata(g));
}

std::shared_ptr<const CachedGraph> Server::dynamic_current(
    const std::string& base_key) {
  std::shared_ptr<DynamicEntry> entry;
  {
    std::lock_guard<std::mutex> lock(dyn_mu_);
    const auto it = dynamic_.find(base_key);
    if (it == dynamic_.end()) return nullptr;
    entry = it->second;
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  return entry->current;
}

util::Status Server::apply_mutation(
    const Request& req, const std::shared_ptr<const CachedGraph>& parsed,
    bp::EngineKind kind, std::shared_ptr<const CachedGraph>& current_out,
    std::vector<graph::NodeId>& touched_out) {
  // Get or create the dynamic entry. Construction happens outside dyn_mu_
  // (folding a large graph into slotted CSRs is not map-lock work); if two
  // first mutations race, the emplace loser's entry is dropped and both
  // apply against the winner's.
  std::shared_ptr<DynamicEntry> entry;
  {
    std::lock_guard<std::mutex> lock(dyn_mu_);
    const auto it = dynamic_.find(parsed->key);
    if (it != dynamic_.end()) entry = it->second;
  }
  if (entry == nullptr) {
    graph::DynamicOptions dopts;
    dopts.reorder = parsed->reorder;
    auto fresh = std::make_shared<DynamicEntry>(
        graph::DynamicGraph::from_graph(parsed->graph, dopts));
    std::lock_guard<std::mutex> lock(dyn_mu_);
    entry = dynamic_.emplace(parsed->key, std::move(fresh)).first->second;
  }

  std::lock_guard<std::mutex> lock(entry->mu);
  const std::string old_key =
      entry->current != nullptr ? entry->current->key : parsed->key;
  if (const util::Status s = entry->dyn.apply(*req.delta); !s.is_ok()) {
    return s;
  }
  touched_out = entry->dyn.last_touched();

  auto snap = entry->dyn.snapshot();
  auto next = std::make_shared<CachedGraph>();
  next->graph = *snap;
  next->metadata = graph::compute_metadata(next->graph);
  next->content_hash = parsed->content_hash;
  next->reorder = parsed->reorder;
  next->version = entry->dyn.version();
  next->key = parsed->key + "#v" + std::to_string(next->version);

  // Migrate the engine's base warm state across the version bump: the old
  // fixed point with the touched region (and any new nodes) reset to
  // priors is a nearly-converged starting point for the new topology.
  // Entries left under the old key age out of the warm LRU — they can
  // never be overlaid onto the new topology because the fingerprint
  // namespace moved with the versioned key.
  const std::uint64_t base_fp = warm_fingerprint(kind, 0);
  if (auto old_warm = cache_.warm_lookup(old_key, base_fp);
      old_warm != nullptr) {
    cache_.warm_store(
        next->key, base_fp,
        std::make_shared<const std::vector<graph::BeliefVec>>(
            entry->dyn.patch_beliefs(*old_warm)));
  }
  entry->current = next;
  current_out = std::move(next);
  return util::Status::ok();
}

Response Server::execute(Request& req,
                         std::chrono::steady_clock::time_point enqueued) {
  Response resp;
  resp.tag = req.tag;
  resp.queue_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    enqueued)
          .count();
  m_queue_seconds_.observe(resp.queue_seconds);
  const util::Timer service_timer;

  obs::Span span;
  if (options_.spans != nullptr) {
    span.id = obs::next_span_id();
    resp.span_id = span.id;
  }
  span.tag = req.tag;
  span.graph = req.graph.label();
  span.queue_s = resp.queue_seconds;

  // A request cancelled while queued never starts.
  if (req.cancel.stop_requested()) {
    resp.status = util::StatusCode::kCancelled;
    resp.service_seconds = service_timer.seconds();
    m_run_seconds_.observe(resp.service_seconds);
    if (options_.spans != nullptr) {
      span.status = util::status_code_name(resp.status);
      options_.spans->record(std::move(span));
    }
    return resp;
  }

  try {
    // Resolve the graph key: cache for file keys, as-is for preloaded
    // graphs (reordered per-request when the key carries a mode — no
    // cache to amortize the pass, so preloaded callers are better off
    // reordering once upfront).
    const util::Timer parse_timer;
    std::shared_ptr<const CachedGraph> cached;
    std::shared_ptr<const CachedGraph> parsed;
    graph::FactorGraph reordered_inline;
    const graph::FactorGraph* g = nullptr;
    const graph::GraphMetadata* md = nullptr;
    std::string warm_key;  // empty = inline graph, no warm retention
    const bool has_delta = req.delta && !req.delta->empty();
    const bool mutates = has_delta && req.delta->has_topology();
    if (req.graph.inline_graph()) {
      if (mutates) {
        throw util::InvalidArgument(
            "topology mutations need a file-backed graph — inline graphs "
            "have no server-side dynamic state to mutate");
      }
      g = req.graph.graph.get();
      if (req.graph.reorder != graph::ReorderMode::kNone) {
        reordered_inline = graph::reordered(*g, req.graph.reorder);
        g = &reordered_inline;
      }
    } else {
      auto fetched = cache_.fetch(req.graph.nodes_path, req.graph.edges_path,
                                  req.graph.reorder);
      parsed = std::move(fetched.entry);
      resp.cache_hit = fetched.hit;
      // A mutated graph's dynamic snapshot supersedes the parsed bytes:
      // once topology changed server-side, every request naming these
      // files sees the current version, even after an LRU eviction
      // re-parsed the original (unchanged) files.
      cached = dynamic_current(parsed->key);
      if (cached == nullptr) cached = parsed;
      g = &cached->graph;
      md = &cached->metadata;
      warm_key = cached->key;
      resp.graph_version = cached->version;
    }
    span.parse_s = parse_timer.seconds();
    span.cache_hit = resp.cache_hit;

    const bp::EngineKind kind =
        req.engine ? *req.engine : choose_engine(*g, md);
    resp.engine = kind;
    span.engine = std::string(resp.engine_name());

    // Apply the delta. Topology ops mutate the persistent DynamicGraph
    // entry (version bump, snapshot publish, warm migration); evidence
    // ops rewrite priors/observations on a cheap structural copy visible
    // to this request alone — the edge lists, CSRs and joint tables stay
    // shared either way.
    graph::FactorGraph evidenced;
    std::vector<graph::NodeId> seed_nodes;
    if (mutates) {
      if (const util::Status s =
              apply_mutation(req, parsed, kind, cached, seed_nodes);
          !s.is_ok()) {
        throw util::InvalidArgument(s.message());
      }
      g = &cached->graph;
      md = &cached->metadata;
      warm_key = cached->key;
      resp.graph_version = cached->version;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.mutations;
      }
      m_mutations_.inc();
      m_delta_size_.observe(static_cast<double>(req.delta->size()));
    } else if (has_delta) {
      evidenced = graph::with_delta(*g, *req.delta);
      g = &evidenced;
      seed_nodes = req.delta->touched();
      m_delta_size_.observe(static_cast<double>(req.delta->size()));
    }

    bp::BpOptions opts = req.options;
    opts.with_stop(req.cancel);
    if (req.deadline.host_seconds > 0.0) {
      opts.with_host_deadline(req.deadline.host_seconds);
    }
    if (req.deadline.modelled_seconds > 0.0) {
      opts.with_modelled_deadline(req.deadline.modelled_seconds);
    }

    // Warm start (DESIGN.md §5h/§5j). Retained beliefs are filed under
    // (graph cache key, engine slug + delta hash). An evidence-delta
    // request first tries its exact fingerprint (repeat of the same
    // re-query), then the base state it perturbs; a topology mutation
    // looks up the base state apply_mutation just migrated to the new
    // versioned key — its converged result IS the new version's base, so
    // exact == base there. On a warm hit with a delta, the engine is
    // additionally seeded from the touched region so only the perturbed
    // neighbourhood re-converges. Any miss, or an engine without warm
    // support, falls back to a cold full run — warm state is an
    // accelerator, never a correctness dependency.
    const bool wants_warm = req.warm_start || has_delta;
    const std::uint64_t base_fp = warm_fingerprint(kind, 0);
    const std::uint64_t exact_fp =
        mutates ? base_fp
                : warm_fingerprint(kind,
                                   has_delta ? req.delta->fingerprint() : 0);
    std::shared_ptr<const std::vector<graph::BeliefVec>> warm;
    if (wants_warm && !warm_key.empty() &&
        bp::engine_supports_warm_start(kind, g->family())) {
      warm = cache_.warm_lookup(warm_key, exact_fp);
      if (warm == nullptr && has_delta && exact_fp != base_fp) {
        warm = cache_.warm_lookup(warm_key, base_fp);
      }
    }
    if (warm != nullptr && warm->size() == g->num_nodes()) {
      opts.with_init_beliefs(warm);
      resp.warm_start = true;
      if (has_delta && !seed_nodes.empty() &&
          bp::engine_supports_frontier_seed(kind, g->family())) {
        opts.with_frontier_seed(
            std::make_shared<const std::vector<graph::NodeId>>(
                std::move(seed_nodes)));
      }
    }

    const util::Timer run_timer;
    const auto engine = bp::make_default_engine(kind);
    bp::BpResult result;
    if (kind == bp::EngineKind::kOmpNode ||
        kind == bp::EngineKind::kOmpEdge ||
        kind == bp::EngineKind::kSharded) {
      // CPU-parallel engines share the server's one pool; the pool runs a
      // single team at a time, so these requests serialize here.
      std::lock_guard<std::mutex> pool_lock(pool_mu_);
      opts.with_shared_pool(&pool_);
      result = engine->run(*g, opts);
    } else {
      result = engine->run(*g, opts);
    }
    span.unpermute_s = result.stats.unpermute_seconds;
    span.run_s = run_timer.seconds() - span.unpermute_s;
    span.run_modelled_s = result.stats.modelled_seconds();
    span.iterations = result.stats.iterations;
    if (result.stats.frontier_seeded > 0 && g->num_nodes() > 0) {
      resp.frontier_fraction =
          static_cast<double>(result.stats.frontier_seeded) /
          static_cast<double>(g->num_nodes());
    }

    switch (result.stats.stop_reason) {
      case bp::runtime::StopReason::kNone:
        resp.status = util::StatusCode::kOk;
        break;
      case bp::runtime::StopReason::kCancelled:
        resp.status = util::StatusCode::kCancelled;
        break;
      case bp::runtime::StopReason::kDeadline:
        resp.status = util::StatusCode::kDeadlineExceeded;
        break;
    }

    // Retain converged beliefs for the next warm request. Stored under
    // the exact fingerprint: a no-delta run files the base state delta
    // requests later perturb; a delta run files the state its own exact
    // re-query would reuse. Non-converged or non-ok runs retain nothing —
    // a partial fixed point would poison later warm starts.
    if (wants_warm && !warm_key.empty() &&
        resp.status == util::StatusCode::kOk && result.stats.converged &&
        bp::engine_supports_warm_start(kind, g->family())) {
      cache_.warm_store(
          warm_key, exact_fp,
          std::make_shared<const std::vector<graph::BeliefVec>>(
              result.beliefs));
    }
    resp.result = std::move(result);
  } catch (const std::exception& e) {
    // Map through the shared vocabulary: parse/io/invalid-argument keep
    // their codes (all counted under `failed`), anything else is kError.
    const util::Status st = util::status_from_exception(e);
    resp.status = st.code();
    resp.error = st.message();
    span.error = resp.error;
  }
  resp.service_seconds = service_timer.seconds();
  m_run_seconds_.observe(resp.service_seconds);
  if (options_.spans != nullptr) {
    span.status = util::status_code_name(resp.status);
    options_.spans->record(std::move(span));
  }
  return resp;
}

void Server::execute_batch(Pending& pending) {
  const std::size_t n = pending.requests.size();
  const double queue_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pending.enqueued)
          .count();
  const util::Timer service_timer;

  // finish() is the single exit for every member: it stamps the shared
  // batch timings, records the member's span, counts its terminal status
  // and resolves its promise — so the accounting identity holds however
  // far into the fused flow the member got.
  const auto finish = [&](std::size_t i, Response resp) {
    resp.tag = pending.requests[i].tag;
    resp.queue_seconds = queue_seconds;
    resp.service_seconds = service_timer.seconds();
    m_queue_seconds_.observe(resp.queue_seconds);
    m_run_seconds_.observe(resp.service_seconds);
    if (options_.spans != nullptr) {
      obs::Span span;
      span.id = obs::next_span_id();
      resp.span_id = span.id;
      span.tag = resp.tag;
      span.graph = pending.requests[i].graph.label();
      span.queue_s = resp.queue_seconds;
      span.engine = std::string(resp.engine_name());
      span.status = util::status_code_name(resp.status);
      span.error = resp.error;
      options_.spans->record(std::move(span));
    }
    count(resp.status);
    pending.resolved[i] = 1;
    pending.promises[i].set_value(std::move(resp));
  };
  const auto fail = [&](std::size_t i, util::StatusCode code,
                        std::string reason) {
    Response resp;
    resp.status = code;
    resp.error = std::move(reason);
    finish(i, std::move(resp));
  };

  // Pre-run member triage: already-fired cancel tokens, then fusability
  // against the batch head (the first live member). Rejecting a member
  // never sinks the batch — the rest still fuse and run.
  std::size_t head = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (pending.resolved[i]) continue;
    if (pending.requests[i].cancel.stop_requested()) {
      fail(i, util::StatusCode::kCancelled, "");
      continue;
    }
    if (head == n) head = i;
  }
  if (head == n) return;  // nothing left to run

  std::vector<std::size_t> live;
  live.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (pending.resolved[i]) continue;
    const Request& req = pending.requests[i];
    const Request& ref = pending.requests[head];
    if (req.graph.reorder != graph::ReorderMode::kNone) {
      fail(i, util::StatusCode::kInvalidArgument,
           "batch members must not reorder — fused parts cannot carry "
           "per-part permutations");
      continue;
    }
    if (req.delta && !req.delta->empty()) {
      fail(i, util::StatusCode::kInvalidArgument,
           "batch members cannot carry deltas (submit evidence or mutation "
           "re-queries individually)");
      continue;
    }
    if (req.engine != ref.engine) {
      fail(i, util::StatusCode::kInvalidArgument,
           "batch member engine override differs from the batch head");
      continue;
    }
    if (!fusable_options(req.options, ref.options)) {
      fail(i, util::StatusCode::kInvalidArgument,
           "batch member options differ from the batch head");
      continue;
    }
    live.push_back(i);
  }
  if (live.empty()) return;

  // Resolve every live member's graph. cached[] keeps shared_ptrs alive
  // across the fused run; a member whose load fails drops out alone.
  std::vector<std::shared_ptr<const CachedGraph>> cached(n);
  std::vector<const graph::FactorGraph*> parts;
  std::vector<std::size_t> fused_members;
  parts.reserve(live.size());
  fused_members.reserve(live.size());
  for (const std::size_t i : live) {
    Request& req = pending.requests[i];
    try {
      const graph::FactorGraph* g = nullptr;
      if (req.graph.inline_graph()) {
        g = req.graph.graph.get();
      } else {
        auto fetched = cache_.fetch(req.graph.nodes_path,
                                    req.graph.edges_path,
                                    graph::ReorderMode::kNone);
        cached[i] = std::move(fetched.entry);
        // A mutated graph's latest snapshot supersedes the parsed bytes
        // for batch members too.
        if (auto dyn = dynamic_current(cached[i]->key); dyn != nullptr) {
          cached[i] = std::move(dyn);
        }
        g = &cached[i]->graph;
      }
      if (g->permutation() != nullptr) {
        fail(i, util::StatusCode::kInvalidArgument,
             "batch members must not carry a reorder permutation");
        continue;
      }
      if (!parts.empty() && g->family() != parts[0]->family()) {
        fail(i, util::StatusCode::kInvalidArgument,
             "batch member factor family differs from the batch head");
        continue;
      }
      parts.push_back(g);
      fused_members.push_back(i);
    } catch (const std::exception& e) {
      const util::Status st = util::status_from_exception(e);
      fail(i, st.code(), st.message());
    }
  }
  if (fused_members.empty()) return;

  // Fuse, run once, scatter. Per-member cancel tokens cannot stop a
  // shared run, so they are honoured at the boundaries: before the run
  // (above) and at scatter time below.
  try {
    const graph::GraphUnion fused = graph::disjoint_union(
        std::span<const graph::FactorGraph* const>(parts));
    const graph::FactorGraph& g = fused.graph();
    const Request& ref = pending.requests[fused_members[0]];
    const bp::EngineKind kind =
        ref.engine ? *ref.engine : choose_engine(g, nullptr);
    m_batch_occupancy_.observe(static_cast<double>(fused_members.size()));

    bp::BpOptions opts = ref.options;
    const auto engine = bp::make_default_engine(kind);
    bp::BpResult result;
    if (kind == bp::EngineKind::kOmpNode ||
        kind == bp::EngineKind::kOmpEdge ||
        kind == bp::EngineKind::kSharded) {
      std::lock_guard<std::mutex> pool_lock(pool_mu_);
      opts.with_shared_pool(&pool_);
      result = engine->run(g, opts);
    } else {
      result = engine->run(g, opts);
    }

    const bool is_ldpc = graph::is_ldpc(g.family());
    for (std::size_t k = 0; k < fused_members.size(); ++k) {
      const std::size_t i = fused_members[k];
      Response resp;
      resp.engine = kind;
      resp.cache_hit = cached[i] != nullptr;
      if (pending.requests[i].cancel.stop_requested()) {
        resp.status = util::StatusCode::kCancelled;
      } else {
        resp.status = util::StatusCode::kOk;
      }
      // Per-member view of the fused run: shared iteration/convergence
      // stats, own beliefs (original part-local ids), own parity check.
      resp.result.stats = result.stats;
      resp.result.beliefs = fused.scatter(result.beliefs, k);
      if (is_ldpc) {
        resp.result.stats.syndrome_satisfied =
            fused.part_syndrome_satisfied(result.beliefs, k);
      }
      finish(i, std::move(resp));
    }
  } catch (const std::exception& e) {
    const util::Status st = util::status_from_exception(e);
    for (const std::size_t i : fused_members) {
      if (!pending.resolved[i]) fail(i, st.code(), st.message());
    }
  }
}

}  // namespace credo::serve
