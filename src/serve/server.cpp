#include "serve/server.h"

#include <chrono>
#include <utility>

#include "credo/suite.h"
#include "credo/trainer.h"
#include "graph/metadata.h"
#include "graph/reorder.h"
#include "util/timer.h"

namespace credo::serve {
namespace {

Response make_rejection(const Request& req, std::string reason) {
  Response r;
  r.status = Status::kRejected;
  r.error = std::move(reason);
  r.tag = req.tag;
  return r;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity),
      pool_(options_.pool_threads == 0 ? 1 : options_.pool_threads) {
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

std::future<Response> Server::submit(Request req) {
  std::promise<Response> promise;
  std::future<Response> fut = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stopping_) {
      ++stats_.rejected;
      promise.set_value(make_rejection(req, "server stopped"));
      return fut;
    }
    if (queue_.size() >= options_.queue_capacity) {
      ++stats_.rejected;
      promise.set_value(make_rejection(
          req, "admission queue full (capacity " +
                   std::to_string(options_.queue_capacity) + ")"));
      return fut;
    }
    queue_.push_back(Pending{std::move(req), std::move(promise),
                             std::chrono::steady_clock::now()});
  }
  cv_.notify_one();
  return fut;
}

Session Server::session() {
  static std::atomic<unsigned> next_id{0};
  return Session(*this, next_id.fetch_add(1, std::memory_order_relaxed));
}

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty() && queue_.empty()) return;
    stopping_ = true;
    if (workers_.empty()) {
      // No one will drain: resolve every queued promise as rejected so the
      // accounting identity holds.
      while (!queue_.empty()) {
        ++stats_.rejected;
        queue_.front().promise.set_value(
            make_rejection(queue_.front().request, "server stopped"));
        queue_.pop_front();
      }
    }
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats s = stats_;
  s.cache = cache_.stats();
  return s;
}

void Server::count(Status s) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (s) {
    case Status::kOk: ++stats_.completed; break;
    case Status::kRejected: ++stats_.rejected; break;
    case Status::kCancelled: ++stats_.cancelled; break;
    case Status::kDeadlineExceeded: ++stats_.deadline_expired; break;
    case Status::kError: ++stats_.failed; break;
  }
}

void Server::worker_loop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    Response resp = execute(pending);
    count(resp.status);
    pending.promise.set_value(std::move(resp));
  }
}

bp::EngineKind Server::choose_engine(const graph::FactorGraph& g,
                                     const graph::GraphMetadata* md) {
  if (!options_.use_dispatcher) return options_.default_engine;
  std::call_once(dispatcher_once_, [&] {
    if (!options_.dispatcher_model.empty()) {
      dispatcher_ = std::make_unique<dispatch::Dispatcher>(
          dispatch::Dispatcher::load(options_.dispatcher_model));
      return;
    }
    // No pre-trained model: train on the bold benchmark subset, exactly as
    // `credo run --engine auto` does. Expensive — done once per server.
    dispatch::TrainerConfig tcfg;
    const auto runs =
        dispatch::benchmark_suite(suite::table1_bold(), {2u, 3u}, tcfg);
    dispatcher_ = std::make_unique<dispatch::Dispatcher>(
        dispatch::Dispatcher::train(runs));
  });
  if (md != nullptr) return dispatcher_->choose(*md);
  return dispatcher_->choose(graph::compute_metadata(g));
}

Response Server::execute(Pending& pending) {
  Request& req = pending.request;
  Response resp;
  resp.tag = req.tag;
  resp.queue_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pending.enqueued)
          .count();
  const util::Timer service_timer;

  // A request cancelled while queued never starts.
  if (req.cancel.stop_requested()) {
    resp.status = Status::kCancelled;
    resp.service_seconds = service_timer.seconds();
    return resp;
  }

  try {
    // Resolve the graph: cache for file refs, as-is for preloaded graphs
    // (reordered per-request when a mode is set — no cache to amortize the
    // pass, so preloaded callers are better off reordering once upfront).
    std::shared_ptr<const CachedGraph> cached;
    graph::FactorGraph reordered_inline;
    const graph::FactorGraph* g = nullptr;
    const graph::GraphMetadata* md = nullptr;
    if (req.graph.inline_graph()) {
      g = req.graph.graph.get();
      if (req.reorder != graph::ReorderMode::kNone) {
        reordered_inline = graph::reordered(*g, req.reorder);
        g = &reordered_inline;
      }
    } else {
      auto fetched = cache_.fetch(req.graph.nodes_path, req.graph.edges_path,
                                  req.reorder);
      cached = std::move(fetched.entry);
      resp.cache_hit = fetched.hit;
      g = &cached->graph;
      md = &cached->metadata;
    }

    const bp::EngineKind kind =
        req.engine ? *req.engine : choose_engine(*g, md);
    resp.engine = kind;
    resp.engine_name = std::string(bp::engine_name(kind));

    bp::BpOptions opts = req.options;
    opts.with_stop(req.cancel);
    if (req.deadline.host_seconds > 0.0) {
      opts.with_host_deadline(req.deadline.host_seconds);
    }
    if (req.deadline.modelled_seconds > 0.0) {
      opts.with_modelled_deadline(req.deadline.modelled_seconds);
    }

    const auto engine = bp::make_default_engine(kind);
    bp::BpResult result;
    if (kind == bp::EngineKind::kOmpNode ||
        kind == bp::EngineKind::kOmpEdge) {
      // CPU-parallel engines share the server's one pool; the pool runs a
      // single team at a time, so these requests serialize here.
      std::lock_guard<std::mutex> pool_lock(pool_mu_);
      opts.with_shared_pool(&pool_);
      result = engine->run(*g, opts);
    } else {
      result = engine->run(*g, opts);
    }

    switch (result.stats.stop_reason) {
      case bp::runtime::StopReason::kNone:
        resp.status = Status::kOk;
        break;
      case bp::runtime::StopReason::kCancelled:
        resp.status = Status::kCancelled;
        break;
      case bp::runtime::StopReason::kDeadline:
        resp.status = Status::kDeadlineExceeded;
        break;
    }
    resp.result = std::move(result);
  } catch (const std::exception& e) {
    resp.status = Status::kError;
    resp.error = e.what();
  }
  resp.service_seconds = service_timer.seconds();
  return resp;
}

}  // namespace credo::serve
