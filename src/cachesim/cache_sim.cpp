#include "cachesim/cache_sim.h"

#include "util/error.h"

namespace credo::cachesim {
namespace {

constexpr bool is_pow2(std::uint32_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

}  // namespace

CacheSim::CacheSim(const CacheConfig& config) : config_(config) {
  CREDO_CHECK_MSG(is_pow2(config_.line_bytes) && is_pow2(config_.sets),
                  "cache line size and set count must be powers of two");
  CREDO_CHECK_MSG(config_.ways >= 1, "cache needs at least one way");
  tags_.assign(static_cast<std::size_t>(config_.sets) * config_.ways, 0);
}

void CacheSim::reset() noexcept {
  stats_ = {};
  tags_.assign(tags_.size(), 0);
}

void CacheSim::access(std::uintptr_t addr, std::uint32_t bytes, bool write) {
  if (bytes == 0) return;
  const std::uint64_t first = addr / config_.line_bytes;
  const std::uint64_t last = (addr + bytes - 1) / config_.line_bytes;
  for (std::uint64_t line = first; line <= last; ++line) {
    touch_line(line, write);
  }
}

void CacheSim::touch_line(std::uint64_t line, bool write) {
  if (write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  const std::uint32_t set =
      static_cast<std::uint32_t>(line & (config_.sets - 1));
  // Tag 0 marks an empty way, so shift real tags up by one.
  const std::uint64_t tag = line + 1;
  std::uint64_t* ways = tags_.data() +
                        static_cast<std::size_t>(set) * config_.ways;
  // MRU-first linear scan; tiny associativities make this fast.
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (ways[w] == tag) {
      // Hit: move to MRU position.
      for (std::uint32_t k = w; k > 0; --k) ways[k] = ways[k - 1];
      ways[0] = tag;
      return;
    }
  }
  // Miss: evict LRU (last way), insert at MRU.
  if (write) {
    ++stats_.write_misses;
  } else {
    ++stats_.read_misses;
  }
  for (std::uint32_t k = config_.ways - 1; k > 0; --k) {
    ways[k] = ways[k - 1];
  }
  ways[0] = tag;
}

}  // namespace credo::cachesim
