// Set-associative data-cache simulator — a cachegrind-style stand-in.
//
// The paper chose the AoS belief layout after profiling with valgrind's
// cachegrind (§3.4: "the AoS approach has circa 56% fewer data cache reads
// and writes"). valgrind is not part of this environment, so this module
// replays the belief-store access streams through a small LRU
// set-associative cache model and reports the same quantities: data
// reads/writes (one per accessed cache line, cachegrind's Dr/Dw) and
// read/write misses (D1mr/D1mw).
#pragma once

#include <cstdint>
#include <vector>

namespace credo::cachesim {

/// Cache geometry. Defaults model a Kaby Lake L1D: 32 KiB, 8-way, 64 B
/// lines.
struct CacheConfig {
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 8;
  std::uint32_t sets = 64;

  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept {
    return static_cast<std::uint64_t>(line_bytes) * ways * sets;
  }
};

/// Access totals, cachegrind-style.
struct CacheStats {
  std::uint64_t reads = 0;         // Dr: lines touched by reads
  std::uint64_t writes = 0;        // Dw: lines touched by writes
  std::uint64_t read_misses = 0;   // D1mr
  std::uint64_t write_misses = 0;  // D1mw

  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return reads + writes;
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return read_misses + write_misses;
  }
  [[nodiscard]] double miss_rate() const noexcept {
    return accesses() > 0
               ? static_cast<double>(misses()) /
                     static_cast<double>(accesses())
               : 0.0;
  }
};

/// LRU set-associative cache over virtual addresses.
class CacheSim {
 public:
  explicit CacheSim(const CacheConfig& config = {});

  /// Simulates one access of `bytes` bytes starting at `addr`; every cache
  /// line the range touches counts as one read or write.
  void access(std::uintptr_t addr, std::uint32_t bytes, bool write);

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset() noexcept;

  [[nodiscard]] const CacheConfig& config() const noexcept {
    return config_;
  }

 private:
  void touch_line(std::uint64_t line, bool write);

  CacheConfig config_;
  CacheStats stats_;
  // ways_ per set, most-recently-used first; 0 = invalid.
  std::vector<std::uint64_t> tags_;
};

}  // namespace credo::cachesim
