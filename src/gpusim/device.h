// SIMT GPU simulator — the stand-in for the paper's CUDA platform.
//
// Kernels are C++ callables executed per thread over a grid/block geometry,
// with device-resident buffers, constant memory, device atomics and a
// shared-memory tree reduction. Execution is functional (real data, real
// results) while every hardware event is metered into perf::Counters; the
// cost model (perf/cost_model.h) turns those counts into modelled GPU time
// for the profile the device was constructed with (GTX 1070, V100, ...).
//
// Design notes:
//  * Threads run sequentially and deterministically. BP kernels are
//    data-parallel with no intra-block communication except the reduction,
//    which is provided as a device primitive (Device::reduce_sum) modelling
//    the shared-memory tree the paper describes in §3.6.
//  * Memory access pattern (coalesced vs scattered) is declared at the
//    access site, as in hand-tuned CUDA where the author chooses the layout
//    that yields coalescing. Constant-memory reads go through ConstSpan.
//  * DeviceBuffer storage actually lives in host memory; the device tracks
//    VRAM occupancy against the profile's capacity and throws
//    DeviceOutOfMemory on exhaustion (the paper's TW/OR 32-belief exclusion).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "perf/cost_model.h"
#include "perf/counters.h"
#include "perf/profiles.h"
#include "util/error.h"

namespace credo::gpusim {

/// Raised when an allocation exceeds the device profile's VRAM capacity.
class DeviceOutOfMemory : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Grid/block geometry (1-D is all BP needs; kept scalar for clarity).
struct LaunchDims {
  std::uint64_t grid_blocks = 1;
  std::uint32_t block_threads = 1024;  // the paper uses 1024 throughout

  [[nodiscard]] std::uint64_t total_threads() const noexcept {
    return grid_blocks * block_threads;
  }

  /// Geometry covering `n` work items with the given block size.
  static LaunchDims cover(std::uint64_t n, std::uint32_t block = 1024) {
    return {(n + block - 1) / block, block};
  }
};

/// Per-thread execution context handed to kernels.
class ThreadCtx {
 public:
  ThreadCtx(std::uint64_t block, std::uint32_t thread,
            const LaunchDims& dims, perf::Meter& meter) noexcept
      : block_(block), thread_(thread), dims_(dims), meter_(meter) {}

  [[nodiscard]] std::uint64_t block_idx() const noexcept { return block_; }
  [[nodiscard]] std::uint32_t thread_idx() const noexcept { return thread_; }
  [[nodiscard]] std::uint32_t block_dim() const noexcept {
    return dims_.block_threads;
  }
  [[nodiscard]] std::uint64_t global_id() const noexcept {
    return block_ * dims_.block_threads + thread_;
  }

  /// Meters `n` floating point operations by this thread.
  void flop(std::uint64_t n = 1) noexcept { meter_.flop(n); }

  [[nodiscard]] perf::Meter& meter() noexcept { return meter_; }

 private:
  std::uint64_t block_;
  std::uint32_t thread_;
  const LaunchDims& dims_;
  perf::Meter& meter_;
};

class Device;

/// Non-owning view of device-resident memory, usable inside kernels.
/// Loads/stores declare their coalescing behaviour at the call site.
template <typename T>
class DeviceSpan {
 public:
  DeviceSpan() = default;
  DeviceSpan(T* data, std::size_t n) noexcept : data_(data), n_(n) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Coalesced (warp-contiguous) load of element i.
  [[nodiscard]] const T& load(ThreadCtx& ctx, std::size_t i) const {
    ctx.meter().seq_read(sizeof(T));
    return data_[i];
  }

  /// Coalesced load of only the first `bytes` of element i (partial struct
  /// read: the live states of a BeliefVec, not its full padded extent).
  [[nodiscard]] const T& load_bytes(ThreadCtx& ctx, std::size_t i,
                                    std::uint64_t bytes) const {
    ctx.meter().seq_read(bytes);
    return data_[i];
  }

  /// Coalesced store of only the first `bytes` of element i.
  void store_bytes(ThreadCtx& ctx, std::size_t i, const T& v,
                   std::uint64_t bytes) const {
    ctx.meter().seq_write(bytes);
    data_[i] = v;
  }

  /// Scattered (uncoalesced) load of element i.
  [[nodiscard]] const T& load_scattered(ThreadCtx& ctx,
                                        std::size_t i) const {
    ctx.meter().rand_read(sizeof(T));
    return data_[i];
  }

  /// Scattered load of only the first `bytes` of element i (partial struct
  /// read, e.g. the live states of a BeliefVec).
  [[nodiscard]] const T& load_scattered_bytes(ThreadCtx& ctx, std::size_t i,
                                              std::uint64_t bytes) const {
    ctx.meter().rand_read(bytes);
    return data_[i];
  }

  /// Scattered load into an L2-resident working set (e.g. the packed
  /// accumulator array).
  [[nodiscard]] const T& load_near(ThreadCtx& ctx, std::size_t i) const {
    ctx.meter().near_read(sizeof(T));
    return data_[i];
  }

  /// Scattered store into an L2-resident working set.
  void store_near(ThreadCtx& ctx, std::size_t i, const T& v) const {
    ctx.meter().near_write(sizeof(T));
    data_[i] = v;
  }

  /// Coalesced store.
  void store(ThreadCtx& ctx, std::size_t i, const T& v) const {
    ctx.meter().seq_write(sizeof(T));
    data_[i] = v;
  }

  /// Scattered store.
  void store_scattered(ThreadCtx& ctx, std::size_t i, const T& v) const {
    ctx.meter().rand_write(sizeof(T));
    data_[i] = v;
  }

  /// Scattered store of only the first `bytes` of element i.
  void store_scattered_bytes(ThreadCtx& ctx, std::size_t i, const T& v,
                             std::uint64_t bytes) const {
    ctx.meter().rand_write(bytes);
    data_[i] = v;
  }

  /// Direct host access (outside kernels: init, verification).
  [[nodiscard]] T* host_data() noexcept { return data_; }
  [[nodiscard]] const T* host_data() const noexcept { return data_; }
  T& host(std::size_t i) noexcept { return data_[i]; }
  const T& host(std::size_t i) const noexcept { return data_[i]; }

 private:
  T* data_ = nullptr;
  std::size_t n_ = 0;

  friend class Device;
};

/// Constant-memory view: reads hit the constant cache (§3.6 places the
/// shared joint matrix here).
template <typename T>
class ConstSpan {
 public:
  ConstSpan() = default;
  ConstSpan(const T* data, std::size_t n) noexcept : data_(data), n_(n) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  [[nodiscard]] const T& load(ThreadCtx& ctx, std::size_t i) const {
    ctx.meter().const_op();
    return data_[i];
  }

  [[nodiscard]] const T* host_data() const noexcept { return data_; }

 private:
  const T* data_ = nullptr;
  std::size_t n_ = 0;
};

/// Owning device allocation. Freed (and VRAM released) on destruction.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  [[nodiscard]] std::size_t size() const noexcept {
    return storage_ ? storage_->size() : 0;
  }
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return size() * sizeof(T);
  }

  [[nodiscard]] DeviceSpan<T> span() noexcept {
    return {storage_ ? storage_->data() : nullptr, size()};
  }
  [[nodiscard]] DeviceSpan<const T> cspan() const noexcept {
    return {storage_ ? storage_->data() : nullptr, size()};
  }

  /// Host-side access for initialization and result checks.
  [[nodiscard]] std::span<T> host() noexcept {
    return {storage_ ? storage_->data() : nullptr, size()};
  }
  [[nodiscard]] std::span<const T> host() const noexcept {
    return {storage_ ? storage_->data() : nullptr, size()};
  }

 private:
  friend class Device;

  struct VramLease {
    VramLease(Device* d, std::uint64_t b) noexcept : device(d), bytes(b) {}
    VramLease(const VramLease&) = delete;
    VramLease& operator=(const VramLease&) = delete;
    ~VramLease();

    Device* device;
    std::uint64_t bytes;
  };

  std::shared_ptr<std::vector<T>> storage_;
  std::shared_ptr<VramLease> lease_;
};

/// One simulated GPU.
class Device {
 public:
  explicit Device(perf::HardwareProfile profile);

  [[nodiscard]] const perf::HardwareProfile& profile() const noexcept {
    return profile_;
  }

  /// Event counters accumulated so far (reset with reset_counters()).
  [[nodiscard]] const perf::Counters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] perf::Counters& mutable_counters() noexcept {
    return counters_;
  }
  void reset_counters() noexcept { counters_ = {}; }

  /// Modelled elapsed time for everything metered so far.
  [[nodiscard]] perf::TimeBreakdown modelled_time() const {
    return perf::model_time(counters_, profile_);
  }

  [[nodiscard]] std::uint64_t vram_used() const noexcept {
    return vram_used_;
  }

  /// Allocates a device buffer of `n` elements (cudaMalloc analogue).
  /// Throws DeviceOutOfMemory when the profile's VRAM would be exceeded.
  template <typename T>
  DeviceBuffer<T> alloc(std::size_t n) {
    const std::uint64_t bytes = n * sizeof(T);
    reserve_vram(bytes);
    perf::Meter(counters_).device_alloc(bytes);
    DeviceBuffer<T> buf;
    buf.storage_ = std::make_shared<std::vector<T>>(n);
    buf.lease_ = std::make_shared<typename DeviceBuffer<T>::VramLease>(
        this, bytes);
    return buf;
  }

  /// Host -> device copy (cudaMemcpy analogue). `packed_bytes` overrides
  /// the metered transfer size for payloads a real implementation would
  /// pack before shipping (e.g. BeliefVec arrays, whose live states are a
  /// fraction of the padded struct); 0 = the span's full byte size.
  template <typename T>
  void h2d(DeviceBuffer<T>& dst, std::span<const T> src,
           std::uint64_t packed_bytes = 0) {
    CREDO_CHECK_MSG(src.size() <= dst.size(), "h2d copy overruns buffer");
    std::copy(src.begin(), src.end(), dst.host().begin());
    perf::Meter(counters_).h2d(packed_bytes > 0 ? packed_bytes
                                                : src.size_bytes());
  }

  /// Device -> host copy.
  template <typename T>
  void d2h(std::span<T> dst, const DeviceBuffer<T>& src) {
    CREDO_CHECK_MSG(dst.size() <= src.size(), "d2h copy overruns buffer");
    std::copy_n(src.host().begin(), dst.size(), dst.begin());
    perf::Meter(counters_).d2h(dst.size_bytes());
  }

  /// Uploads constant memory (cudaMemcpyToSymbol analogue). The returned
  /// view stays valid until the next set_constant call with the same tag.
  template <typename T>
  ConstSpan<T> set_constant(std::span<const T> data) {
    auto storage = std::make_shared<std::vector<std::byte>>(
        data.size_bytes());
    std::memcpy(storage->data(), data.data(), data.size_bytes());
    constant_slots_.push_back(storage);
    perf::Meter(counters_).h2d(data.size_bytes());
    return {reinterpret_cast<const T*>(storage->data()), data.size()};
  }

  /// Launches `kernel(ThreadCtx&)` over the geometry. Threads whose
  /// global_id() >= work_items immediately return (the usual guard);
  /// pass work_items = dims.total_threads() to run every thread.
  template <typename Kernel>
  void launch(const LaunchDims& dims, std::uint64_t work_items,
              Kernel&& kernel) {
    perf::Meter meter(counters_);
    meter.kernel_launch();
    for (std::uint64_t b = 0; b < dims.grid_blocks; ++b) {
      for (std::uint32_t t = 0; t < dims.block_threads; ++t) {
        ThreadCtx ctx(b, t, dims, meter);
        if (ctx.global_id() >= work_items) break;
        kernel(ctx);
      }
    }
  }

  /// Device-wide sum of `n` floats using the §3.6 shared-memory tree
  /// reduction: each block reduces its tile in shared memory, block results
  /// are summed by a second pass. The result stays on the device
  /// conceptually; read_scalar() transfers it.
  float reduce_sum(const DeviceBuffer<float>& data, std::uint64_t n);

  /// Transfers one float device->host (the batched convergence check).
  float read_scalar(float device_value);

 private:
  template <typename T>
  friend class DeviceBuffer;

  void reserve_vram(std::uint64_t bytes);
  void release_vram(std::uint64_t bytes) noexcept;

  perf::HardwareProfile profile_;
  perf::Counters counters_;
  std::uint64_t vram_used_ = 0;
  std::vector<std::shared_ptr<std::vector<std::byte>>> constant_slots_;
};

template <typename T>
DeviceBuffer<T>::VramLease::~VramLease() {
  device->release_vram(bytes);
}

}  // namespace credo::gpusim
