// Device atomic operations.
//
// Execution inside the simulator is sequential, so the operations are
// plain read-modify-writes functionally; their cost is what matters.
// Each call meters one atomic op; callers declare the conflict-group count
// (distinct target addresses) once per kernel through
// perf::Meter::atomic(), letting the cost model serialize contended chains
// (see perf/counters.h).
#pragma once

#include "gpusim/device.h"

namespace credo::gpusim {

/// atomicAdd on a float in global memory.
inline float atomic_add(ThreadCtx& ctx, DeviceSpan<float> span,
                        std::size_t i, float v) {
  ctx.meter().atomic(1, 0);
  ctx.meter().near_write(sizeof(float));
  float& slot = *(span.host_data() + i);
  const float old = slot;
  slot = old + v;
  return old;
}

/// atomicMul emulated via atomicCAS (how a CUDA float multiply-combine is
/// actually written); meters one atomic (the CAS loop's expected single
/// iteration under the simulator's sequential execution).
inline float atomic_mul(ThreadCtx& ctx, DeviceSpan<float> span,
                        std::size_t i, float v) {
  ctx.meter().atomic(1, 0);
  ctx.meter().near_write(sizeof(float));
  float& slot = *(span.host_data() + i);
  const float old = slot;
  slot = old * v;
  return old;
}

/// atomicAdd on a 32-bit counter (work-queue append cursor).
inline std::uint32_t atomic_add_u32(ThreadCtx& ctx,
                                    DeviceSpan<std::uint32_t> span,
                                    std::size_t i, std::uint32_t v) {
  ctx.meter().atomic(1, 0);
  std::uint32_t& slot = *(span.host_data() + i);
  const std::uint32_t old = slot;
  slot = old + v;
  return old;
}

}  // namespace credo::gpusim
