#include "gpusim/device.h"

#include <cstring>

namespace credo::gpusim {

Device::Device(perf::HardwareProfile profile)
    : profile_(std::move(profile)) {
  CREDO_CHECK_MSG(profile_.kind == perf::PlatformKind::kGpu,
                  "Device requires a GPU hardware profile");
}

void Device::reserve_vram(std::uint64_t bytes) {
  if (profile_.vram_bytes > 0 &&
      static_cast<double>(vram_used_ + bytes) > profile_.vram_bytes) {
    throw DeviceOutOfMemory(
        "device allocation of " + std::to_string(bytes) +
        " bytes exceeds VRAM capacity of " +
        std::to_string(static_cast<std::uint64_t>(profile_.vram_bytes)) +
        " bytes (" + std::to_string(vram_used_) + " in use)");
  }
  vram_used_ += bytes;
}

void Device::release_vram(std::uint64_t bytes) noexcept {
  vram_used_ = bytes > vram_used_ ? 0 : vram_used_ - bytes;
}

float Device::reduce_sum(const DeviceBuffer<float>& data, std::uint64_t n) {
  CREDO_CHECK_MSG(n <= data.size(), "reduce_sum overruns buffer");
  perf::Meter meter(counters_);
  meter.kernel_launch();
  constexpr std::uint32_t kBlock = 1024;
  const std::uint64_t blocks = (n + kBlock - 1) / kBlock;
  // Pass 1: each block loads its tile coalesced into shared memory and
  // tree-reduces it: log2(block) rounds of shared ops and barriers.
  meter.seq_read(n * sizeof(float));
  meter.shared_op(n);                 // one shared store per loaded element
  meter.shared_op(2 * n);             // tree reads+writes (geometric ~2n)
  meter.flop(n);                      // adds
  meter.barrier(blocks * 10);         // log2(1024) __syncthreads per block
  // Pass 2: block partials reduced the same way (negligible but counted).
  if (blocks > 1) {
    meter.kernel_launch();
    meter.seq_read(blocks * sizeof(float));
    meter.shared_op(3 * blocks);
    meter.flop(blocks);
    meter.barrier(10);
  }
  // Functional result (Kahan not needed at test scales; matches float
  // accumulation order of a deterministic tree closely enough).
  double sum = 0.0;
  const float* p = data.host().data();
  for (std::uint64_t i = 0; i < n; ++i) sum += p[i];
  return static_cast<float>(sum);
}

float Device::read_scalar(float device_value) {
  perf::Meter(counters_).d2h(sizeof(float));
  return device_value;
}

}  // namespace credo::gpusim
