// Hardware platform profiles.
//
// A HardwareProfile holds the per-platform constants the cost model combines
// with measured event counts. The shipped profiles describe the paper's two
// evaluation machines (i7-7700HQ + GTX 1070 "Pascal"; the AWS p3.2xlarge's
// V100 "Volta") using published datasheet figures, plus derived CPU-parallel
// profiles for the OpenMP study.
#pragma once

#include <string>

namespace credo::perf {

/// Platform class; decides which overhead terms apply.
enum class PlatformKind {
  kCpuSerial,    // single thread; no launches, no transfers
  kCpuParallel,  // fork/join thread team; region overheads apply
  kGpu,          // device; launches + transfers + allocation overheads apply
};

/// Constants describing one execution platform. Times are seconds,
/// bandwidths bytes/second, rates per-second.
struct HardwareProfile {
  std::string name;
  PlatformKind kind = PlatformKind::kCpuSerial;

  /// Number of hardware execution units (threads or SMs); informational and
  /// used for fork/join scaling on CPUs.
  int parallel_units = 1;

  /// Peak sustainable FLOP rate across the whole platform.
  double flops_per_s = 1e9;

  /// Streaming (coalesced / prefetch-friendly) memory bandwidth.
  double seq_bw = 1e9;

  /// Scattered access: granularity of one transaction (cache line or DRAM
  /// sector), the latency of one transaction, and how many transactions the
  /// platform keeps in flight (memory-level parallelism). Effective random
  /// bandwidth = granularity * concurrency / latency.
  double rand_transaction_bytes = 64;
  double rand_latency_s = 80e-9;
  double rand_concurrency = 8;

  /// Scattered accesses into a cache-resident working set (the Edge
  /// paradigm's packed accumulators): same granularity, cache latency.
  double near_latency_s = 16e-9;
  double near_concurrency = 4;

  /// Memory-level parallelism a single lane sustains on its own critical
  /// path (outstanding loads per thread); divides serial_latency_ops.
  double thread_ilp = 2;

  /// On-chip memories (GPU): per-operation costs, already amortized across
  /// the platform's parallelism.
  double shared_op_s = 0;
  double const_op_s = 0;

  /// Atomics: issue cost per operation (fully parallel across units) plus a
  /// serialization cost paid per operation within the most contended group.
  double atomic_issue_s = 1e-9;
  double atomic_serial_s = 10e-9;

  /// Control overheads.
  double launch_s = 0;        // per kernel launch
  double barrier_s = 0;       // per device-wide barrier / __syncthreads wave
  double fork_join_s = 0;     // per CPU parallel region (grows with team)
  double smt_penalty = 1.0;   // multiplier on compute+memory when the team
                              // oversubscribes physical cores (hyperthreads)

  /// Host <-> device interconnect.
  double pcie_bw = 12e9;
  double transfer_latency_s = 10e-6;

  /// Last-level cache capacity (0 = unknown). The sharded engine uses
  /// this to decide whether a shard's belief working set stays
  /// cache-resident — the locality dividend sharding exists to claim
  /// (DESIGN.md §5i).
  double llc_bytes = 0;

  /// Inter-shard boundary exchange: bandwidth of ghost-buffer copies
  /// (cache-to-cache / DRAM memcpy on a CPU; a NIC for future
  /// multi-process sharding) and the per-exchange synchronization
  /// latency (buffer flip + wake).
  double shard_bw = 10e9;
  double shard_latency_s = 1e-6;

  /// Device memory management.
  double alloc_base_s = 0;       // per cudaMalloc-like call
  double alloc_per_byte_s = 0;   // page-mapping cost
  double vram_bytes = 0;         // capacity (0 = host memory, unchecked)
};

/// Intel i7-7700HQ, one thread at turbo clock — the paper's control
/// "optimized single threaded C implementation".
[[nodiscard]] HardwareProfile cpu_i7_7700hq_serial();

/// i7-7700HQ running an OpenMP-style fork/join team of `threads` threads
/// (4 physical cores + hyperthreads, as in the paper's §2.4 study).
[[nodiscard]] HardwareProfile cpu_i7_7700hq_parallel(int threads);

/// NVIDIA GTX 1070 (Pascal): 15 SMs, 1920 CUDA cores, 8 GB VRAM.
[[nodiscard]] HardwareProfile gpu_gtx1070();

/// NVIDIA V100 SXM2 16 GB (Volta): 80 SMs, 5120 CUDA cores, independent
/// thread scheduling (cheaper atomics), ~1.5x Pascal memory bandwidth.
[[nodiscard]] HardwareProfile gpu_v100();

/// OpenACC-style naive offload on the GTX 1070: same silicon, but with the
/// scheduler overheads the paper observed (imprecise device-side reductions
/// and per-iteration transfer scheduling are modelled in the engine itself;
/// this profile only adds the runtime's higher launch cost).
[[nodiscard]] HardwareProfile gpu_gtx1070_openacc();

}  // namespace credo::perf
