#include "perf/profiles.h"

#include <algorithm>

namespace credo::perf {

HardwareProfile cpu_i7_7700hq_serial() {
  HardwareProfile p;
  p.name = "i7-7700HQ (1 thread)";
  p.kind = PlatformKind::kCpuSerial;
  p.parallel_units = 1;
  // One Kaby Lake core at ~3.4 GHz turbo; scalar+partial-vector FP on the
  // pointer-chasing BP loops sustains nowhere near peak AVX2.
  p.flops_per_s = 8e9;
  p.seq_bw = 14e9;  // single-core streaming share of dual-channel DDR4-2400
  p.rand_transaction_bytes = 64;  // cache line
  p.rand_latency_s = 85e-9;       // DRAM round trip
  // BP's scatter across the padded AoS belief array sustains little
  // memory-level parallelism (index chains through the adjacency list).
  p.rand_concurrency = 2;
  p.near_latency_s = 16e-9;  // L2-resident accumulators
  p.near_concurrency = 4;
  p.atomic_issue_s = 6e-9;        // lock-prefixed RMW, uncontended
  p.atomic_serial_s = 0;          // single thread: no contention
  p.llc_bytes = 6.0 * (1 << 20);  // 6 MB shared L3
  // Shard boundary exchange moves through the shared LLC/DRAM at memcpy
  // bandwidth; the per-exchange latency covers the buffer flip and wake.
  p.shard_bw = 16e9;
  p.shard_latency_s = 2e-6;
  return p;
}

HardwareProfile cpu_i7_7700hq_parallel(int threads) {
  HardwareProfile p = cpu_i7_7700hq_serial();
  threads = std::max(1, threads);
  p.name = "i7-7700HQ (" + std::to_string(threads) + " threads)";
  p.kind = PlatformKind::kCpuParallel;
  p.parallel_units = threads;
  const int physical = 4;
  const double effective =
      threads <= physical
          ? threads
          // Hyperthreads share ports and L1/L2; each pair yields ~1.25x one
          // core, matching the paper's observation that 8 threads perform
          // worst of all.
          : physical + 0.25 * (threads - physical);
  p.flops_per_s *= effective;
  // Streaming bandwidth is shared: it grows only marginally before the
  // dual-channel controller saturates (the "memory stalls" of §2.4).
  p.seq_bw *= std::min(1.3, 1.0 + 0.15 * (threads - 1));
  // Scattered-miss concurrency does not scale with the team: the DRAM
  // banks and shared LLC queue are the bottleneck, so more threads mostly
  // queue behind the same misses (vTune's observation in §2.4).
  // rand/near concurrency therefore stay at the single-core values.
  // Contended atomics bounce cache lines between cores.
  p.atomic_serial_s = 20e-9;
  // Fork/join: OMP-style team wake + barrier, growing with team size; the
  // paper measured (gprof) regions of <1 ms where this dominates.
  p.fork_join_s = 4e-6 + 6e-6 * threads;
  p.smt_penalty = threads > physical ? 1.5 : 1.0;
  return p;
}

HardwareProfile gpu_gtx1070() {
  HardwareProfile p;
  p.name = "GTX 1070 (Pascal)";
  p.kind = PlatformKind::kGpu;
  p.parallel_units = 15;  // SMs
  p.flops_per_s = 6.5e12;
  p.seq_bw = 256e9;
  // Uncoalesced access is served in 32 B sectors; Pascal keeps a deep queue
  // of outstanding transactions across all SMs (latency hiding is the
  // GPU's core advantage over the CPU on the Node paradigm's scatter).
  p.rand_transaction_bytes = 32;
  p.rand_latency_s = 400e-9;
  p.rand_concurrency = 15 * 150.0;
  p.near_latency_s = 240e-9;  // L2-resident scatter
  p.near_concurrency = 15 * 150.0;
  p.shared_op_s = 2.2e-11;    // bank-conflict-free shared access, chipwide
  p.const_op_s = 1.2e-11;     // constant cache broadcast
  // Scattered atomics resolve in L2 at ~3 G ops/s chipwide; conflicting
  // addresses additionally serialize at ~4 ns per turn.
  p.atomic_issue_s = 0.35e-9;
  p.atomic_serial_s = 4e-9;
  p.launch_s = 8e-6;
  p.barrier_s = 3e-8;  // per-block __syncthreads wave
  p.pcie_bw = 11e9;    // PCIe 3.0 x16 effective
  p.transfer_latency_s = 9e-6;
  // cudaMalloc/cudaFree pairs for multi-MB buffers.
  p.alloc_base_s = 450e-6;
  p.alloc_per_byte_s = 9e-12;  // VRAM page mapping
  p.vram_bytes = 8.0 * (1ull << 30);
  return p;
}

HardwareProfile gpu_v100() {
  HardwareProfile p = gpu_gtx1070();
  p.name = "V100 SXM2 (Volta)";
  p.parallel_units = 80;
  p.flops_per_s = 14e12;
  // The paper calls out Volta's ~1.5x memory bandwidth over Pascal as a key
  // portability factor (900 vs 256 GB/s on paper; ~1.5x realized on the BP
  // access patterns, which are latency-limited).
  p.seq_bw = 840e9;
  p.rand_latency_s = 390e-9;
  p.rand_concurrency = 80 * 150.0;
  p.near_latency_s = 230e-9;
  p.near_concurrency = 80 * 150.0;
  p.shared_op_s = 0.9e-11;
  p.const_op_s = 0.7e-11;
  // Independent thread scheduling lowers the cost of contended atomics —
  // the second stated cause of the classifier's portability gap (§4.4).
  p.atomic_issue_s = 0.15e-9;
  p.atomic_serial_s = 1.6e-9;
  p.launch_s = 7e-6;
  p.barrier_s = 2e-8;
  p.alloc_base_s = 400e-6;
  p.vram_bytes = 16.0 * (1ull << 30);
  return p;
}

HardwareProfile gpu_gtx1070_openacc() {
  HardwareProfile p = gpu_gtx1070();
  p.name = "GTX 1070 (OpenACC runtime)";
  // The PGI runtime adds per-launch scheduling overhead over raw CUDA and
  // its generated kernels reach lower occupancy.
  p.launch_s = 22e-6;
  p.flops_per_s *= 0.7;
  p.rand_concurrency *= 0.7;
  return p;
}

}  // namespace credo::perf
