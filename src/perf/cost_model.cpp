#include "perf/cost_model.h"

#include <algorithm>
#include <cmath>

namespace credo::perf {
namespace {

/// Scattered-access time: transactions serialized through the platform's
/// miss-handling capacity.
double scattered_time(std::uint64_t bytes, std::uint64_t ops,
                      double granularity, double latency,
                      double concurrency) {
  if (ops == 0) return 0.0;
  const double avg_access = static_cast<double>(bytes) / static_cast<double>(ops);
  const double trans_per_access =
      std::max(1.0, std::ceil(avg_access / granularity));
  const double transactions = static_cast<double>(ops) * trans_per_access;
  return transactions * latency / std::max(1.0, concurrency);
}

}  // namespace

TimeBreakdown model_time(const Counters& c, const HardwareProfile& p) {
  TimeBreakdown t;

  t.compute_s = static_cast<double>(c.flops) / p.flops_per_s;
  t.compute_s += static_cast<double>(c.shared_ops) * p.shared_op_s;
  t.compute_s += static_cast<double>(c.const_ops) * p.const_op_s;

  const double stream_bytes =
      static_cast<double>(c.seq_read_bytes + c.seq_write_bytes);
  t.memory_s = stream_bytes / p.seq_bw;
  t.memory_s += scattered_time(c.rand_read_bytes, c.rand_read_ops,
                               p.rand_transaction_bytes, p.rand_latency_s,
                               p.rand_concurrency);
  t.memory_s += scattered_time(c.rand_write_bytes, c.rand_write_ops,
                               p.rand_transaction_bytes, p.rand_latency_s,
                               p.rand_concurrency);
  t.memory_s += scattered_time(c.near_read_bytes, c.near_read_ops,
                               p.rand_transaction_bytes, p.near_latency_s,
                               p.near_concurrency);
  t.memory_s += scattered_time(c.near_write_bytes, c.near_write_ops,
                               p.rand_transaction_bytes, p.near_latency_s,
                               p.near_concurrency);

  t.critical_s = static_cast<double>(c.serial_latency_ops) *
                 p.rand_latency_s / std::max(1.0, p.thread_ilp);

  if (c.atomic_ops > 0) {
    // Issue cost is paid by every op (parallel across units); the engines
    // additionally report the longest same-address conflict chain per
    // kernel/region, which serializes at the platform's turn-around cost.
    t.atomic_s = static_cast<double>(c.atomic_ops) * p.atomic_issue_s +
                 static_cast<double>(c.atomic_chain_ops) * p.atomic_serial_s;
  }

  t.overhead_s = static_cast<double>(c.kernel_launches) * p.launch_s +
                 static_cast<double>(c.barriers) * p.barrier_s +
                 static_cast<double>(c.parallel_regions) * p.fork_join_s;

  const double moved = static_cast<double>(c.h2d_bytes + c.d2h_bytes);
  t.transfer_s = moved / p.pcie_bw +
                 static_cast<double>(c.transfer_ops) * p.transfer_latency_s;

  t.alloc_s = static_cast<double>(c.device_allocs) * p.alloc_base_s +
              static_cast<double>(c.device_alloc_bytes) * p.alloc_per_byte_s;

  // Inter-shard boundary exchange (§5i): ghost-buffer copies at memcpy-like
  // bandwidth plus a per-exchange synchronization latency. Grows with the
  // edge cut and the exchange cadence — the term that bends the sharded
  // engine's curve back up past the shard-count sweet spot.
  t.exchange_s =
      static_cast<double>(c.shard_exchange_bytes) / p.shard_bw +
      static_cast<double>(c.shard_exchange_ops) * p.shard_latency_s;

  if (p.smt_penalty > 1.0) {
    t.compute_s *= p.smt_penalty;
    t.memory_s *= p.smt_penalty;
  }
  return t;
}

}  // namespace credo::perf
