// Roofline-style cost model mapping measured event counts onto a hardware
// profile.
//
// time = control overheads (launches, barriers, fork/join regions)
//      + transfer time  (PCIe latency + bytes/bandwidth)
//      + allocation time
//      + max(compute time, memory time)   [compute/memory overlap]
//      + atomic time                      [serialization does not overlap]
//
// Memory time sums a streaming term (bytes / streaming bandwidth) and a
// scattered term (transactions * latency / memory-level-parallelism), where
// one scattered access of b bytes costs ceil(b / transaction_granularity)
// transactions — 64 B lines on a CPU, 32 B sectors on a GPU. This granularity
// difference is what reproduces the paper's observation that the CUDA Node
// implementation's advantage shrinks as beliefs grow (§4.1, Fig. 8).
#pragma once

#include "perf/counters.h"
#include "perf/profiles.h"

namespace credo::perf {

/// Modelled execution time, split by cause. All values in seconds.
struct TimeBreakdown {
  double compute_s = 0;
  double memory_s = 0;
  double atomic_s = 0;
  double critical_s = 0;  // single-lane critical path (hub serialization)
  double overhead_s = 0;  // launches + barriers + fork/join
  double transfer_s = 0;  // PCIe traffic
  double alloc_s = 0;     // device memory management
  double exchange_s = 0;  // inter-shard ghost-buffer traffic (§5i)

  [[nodiscard]] double total() const noexcept {
    double exec = compute_s > memory_s ? compute_s : memory_s;
    if (critical_s > exec) exec = critical_s;
    return exec + atomic_s + overhead_s + transfer_s + alloc_s + exchange_s;
  }

  /// Fraction of total time spent in GPU memory management + transfers —
  /// the paper reports 99.8% for the smallest benchmark (§4.1.1).
  [[nodiscard]] double management_fraction() const noexcept {
    const double t = total();
    return t > 0 ? (transfer_s + alloc_s + overhead_s) / t : 0.0;
  }
};

/// Computes modelled time for `c` executed on platform `p`.
[[nodiscard]] TimeBreakdown model_time(const Counters& c,
                                       const HardwareProfile& p);

}  // namespace credo::perf
