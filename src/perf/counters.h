// Hardware-event accounting.
//
// Every BP engine executes the real algorithm on the real graph and, as it
// does so, meters the hardware events the execution would generate: floating
// point operations, streaming vs scattered memory traffic, atomic
// read-modify-writes, kernel launches, host<->device transfers, fork/join
// regions. The cost model in cost_model.h maps these measured counts onto a
// hardware profile (GTX 1070, V100, i7-7700HQ, ...) to produce modelled
// execution time. See DESIGN.md §2 for why this substitution preserves the
// paper's results.
#pragma once

#include <cstddef>
#include <cstdint>

namespace credo::perf {

/// Raw event counts accumulated during an engine run.
///
/// "seq" traffic is streaming/coalesced (prefetchable on a CPU, coalesced on
/// a GPU); "rand" traffic is scattered (cache-missing on a CPU, uncoalesced
/// on a GPU) and is counted both in bytes and in individual accesses so the
/// cost model can apply per-transaction granularity (64 B cache lines on the
/// CPU, 32 B sectors on the GPU).
struct Counters {
  // Compute.
  std::uint64_t flops = 0;

  // Streaming memory traffic, bytes.
  std::uint64_t seq_read_bytes = 0;
  std::uint64_t seq_write_bytes = 0;

  // Scattered memory traffic: bytes plus access counts. "rand" traffic
  // targets working sets beyond the cache (DRAM-latency scatter); "near"
  // traffic is scattered but cache-resident (e.g. the Edge paradigm's
  // packed n*beliefs accumulator array, which fits in L2/LLC).
  std::uint64_t rand_read_bytes = 0;
  std::uint64_t rand_read_ops = 0;
  std::uint64_t rand_write_bytes = 0;
  std::uint64_t rand_write_ops = 0;
  std::uint64_t near_read_bytes = 0;
  std::uint64_t near_read_ops = 0;
  std::uint64_t near_write_bytes = 0;
  std::uint64_t near_write_ops = 0;

  // GPU on-chip memory operations (counts, not bytes: latency dominated).
  std::uint64_t shared_ops = 0;
  std::uint64_t const_ops = 0;

  // Atomic read-modify-write operations. `atomic_ops` counts every atomic
  // issued; `atomic_chain_ops` accumulates, per kernel/region, the length of
  // the longest same-address conflict chain (ops on one address serialize;
  // different addresses proceed in parallel). Engines compute the chain from
  // the structure of the update — e.g. per-edge combines conflict
  // max-in-degree deep on the hottest node, and a single work-queue cursor
  // makes every append part of one chain.
  std::uint64_t atomic_ops = 0;
  std::uint64_t atomic_chain_ops = 0;

  // Critical-path serialization: full-latency round trips on a single
  // lane that bound a kernel from below (a hub node's adjacency walk in
  // the Node kernel — no amount of other warps can hide the last lane).
  std::uint64_t serial_latency_ops = 0;

  // Control overheads.
  std::uint64_t kernel_launches = 0;
  std::uint64_t barriers = 0;
  std::uint64_t parallel_regions = 0;

  // Host <-> device traffic.
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t transfer_ops = 0;

  // Inter-shard boundary exchange (DESIGN.md §5i): belief bytes published
  // into / imported from ghost buffers, plus the number of exchange
  // operations (each pays a synchronization latency in the cost model).
  std::uint64_t shard_exchange_bytes = 0;
  std::uint64_t shard_exchange_ops = 0;

  // Device allocations.
  std::uint64_t device_allocs = 0;
  std::uint64_t device_alloc_bytes = 0;

  /// Element-wise accumulation (atomic_groups takes the max: it describes
  /// the widest spread observed, not a sum).
  void add(const Counters& o) noexcept {
    flops += o.flops;
    seq_read_bytes += o.seq_read_bytes;
    seq_write_bytes += o.seq_write_bytes;
    rand_read_bytes += o.rand_read_bytes;
    rand_read_ops += o.rand_read_ops;
    rand_write_bytes += o.rand_write_bytes;
    rand_write_ops += o.rand_write_ops;
    near_read_bytes += o.near_read_bytes;
    near_read_ops += o.near_read_ops;
    near_write_bytes += o.near_write_bytes;
    near_write_ops += o.near_write_ops;
    shared_ops += o.shared_ops;
    const_ops += o.const_ops;
    atomic_ops += o.atomic_ops;
    atomic_chain_ops += o.atomic_chain_ops;
    serial_latency_ops += o.serial_latency_ops;
    kernel_launches += o.kernel_launches;
    barriers += o.barriers;
    parallel_regions += o.parallel_regions;
    h2d_bytes += o.h2d_bytes;
    d2h_bytes += o.d2h_bytes;
    transfer_ops += o.transfer_ops;
    shard_exchange_bytes += o.shard_exchange_bytes;
    shard_exchange_ops += o.shard_exchange_ops;
    device_allocs += o.device_allocs;
    device_alloc_bytes += o.device_alloc_bytes;
  }

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return seq_read_bytes + seq_write_bytes + rand_read_bytes +
           rand_write_bytes + near_read_bytes + near_write_bytes;
  }
};

/// Cheap inline metering facade engines write through. Non-atomic by design:
/// each engine (or simulated device) owns its own Meter and merges at the
/// end, so metering never perturbs the execution being measured.
class Meter {
 public:
  explicit Meter(Counters& c) noexcept : c_(&c) {}

  void flop(std::uint64_t n = 1) noexcept { c_->flops += n; }

  void seq_read(std::uint64_t bytes) noexcept { c_->seq_read_bytes += bytes; }
  void seq_write(std::uint64_t bytes) noexcept {
    c_->seq_write_bytes += bytes;
  }

  /// One scattered access of `bytes` contiguous bytes.
  void rand_read(std::uint64_t bytes, std::uint64_t ops = 1) noexcept {
    c_->rand_read_bytes += bytes * ops;
    c_->rand_read_ops += ops;
  }
  void rand_write(std::uint64_t bytes, std::uint64_t ops = 1) noexcept {
    c_->rand_write_bytes += bytes * ops;
    c_->rand_write_ops += ops;
  }

  /// Scattered but cache-resident accesses (compact working sets).
  void near_read(std::uint64_t bytes, std::uint64_t ops = 1) noexcept {
    c_->near_read_bytes += bytes * ops;
    c_->near_read_ops += ops;
  }
  void near_write(std::uint64_t bytes, std::uint64_t ops = 1) noexcept {
    c_->near_write_bytes += bytes * ops;
    c_->near_write_ops += ops;
  }

  void shared_op(std::uint64_t n = 1) noexcept { c_->shared_ops += n; }
  void const_op(std::uint64_t n = 1) noexcept { c_->const_ops += n; }

  void atomic(std::uint64_t ops, std::uint64_t chain_ops = 0) noexcept {
    c_->atomic_ops += ops;
    c_->atomic_chain_ops += chain_ops;
  }

  void serial_latency(std::uint64_t ops) noexcept {
    c_->serial_latency_ops += ops;
  }

  void kernel_launch() noexcept { ++c_->kernel_launches; }
  void barrier(std::uint64_t n = 1) noexcept { c_->barriers += n; }
  void parallel_region(std::uint64_t n = 1) noexcept {
    c_->parallel_regions += n;
  }

  void h2d(std::uint64_t bytes) noexcept {
    c_->h2d_bytes += bytes;
    ++c_->transfer_ops;
  }
  void d2h(std::uint64_t bytes) noexcept {
    c_->d2h_bytes += bytes;
    ++c_->transfer_ops;
  }
  void device_alloc(std::uint64_t bytes) noexcept {
    ++c_->device_allocs;
    c_->device_alloc_bytes += bytes;
  }

  /// One inter-shard ghost-buffer exchange of `bytes` boundary payload.
  void shard_exchange(std::uint64_t bytes) noexcept {
    c_->shard_exchange_bytes += bytes;
    ++c_->shard_exchange_ops;
  }

  [[nodiscard]] Counters& counters() noexcept { return *c_; }

 private:
  Counters* c_;
};

}  // namespace credo::perf
