// Disjoint-union graph fusion for batched serving (DESIGN.md §5h).
//
// Many small independent graphs of the same factor family fuse into one
// super-graph: node ids are renumbered per part, edges copied with their
// joint tables, and nothing connects the parts — so one propagation run
// over the union computes exactly the per-part fixed points (no message
// ever crosses a part boundary), amortizing per-iteration loop and
// convergence-check overhead across the whole batch. `scatter` maps the
// fused belief vector back to one part's original ids; for the LDPC
// families `part_syndrome_satisfied` re-checks each part's parity so a
// batch can report per-subgraph decode status honestly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/belief.h"
#include "graph/csr.h"
#include "graph/factor_graph.h"

namespace credo::graph {

/// A fused super-graph plus the renumbering table back to its parts.
///
/// Id convention: tabular parts are packed back to back in input order.
/// LDPC parts are renumbered variables-first GLOBALLY — every part's
/// variables come before any part's checks — because FactorGraph's LDPC
/// contract is ids [0, ldpc_variables()) are variables.
class GraphUnion {
 public:
  struct Part {
    NodeId var_base = 0;    // global id of the part's first variable
    NodeId check_base = 0;  // offset of its first check within check block
    NodeId vars = 0;        // variables in the part (== nodes when tabular)
    NodeId nodes = 0;       // total nodes in the part
  };

  [[nodiscard]] const FactorGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] std::size_t num_parts() const noexcept {
    return parts_.size();
  }
  [[nodiscard]] const Part& part(std::size_t i) const noexcept {
    return parts_[i];
  }

  /// Global (fused) id of part `i`'s local node `local`.
  [[nodiscard]] NodeId global_id(std::size_t i, NodeId local) const noexcept {
    const Part& p = parts_[i];
    if (local < p.vars) return p.var_base + local;
    return total_vars_ + p.check_base + (local - p.vars);
  }

  /// Extracts part `i`'s beliefs from a fused belief vector, indexed by the
  /// part's original node ids.
  [[nodiscard]] std::vector<BeliefVec> scatter(
      std::span<const BeliefVec> fused, std::size_t i) const;

  /// LDPC families: whether part `i`'s hard decisions (from the fused
  /// beliefs) satisfy every parity check of that part. The target parity of
  /// each check is read off its syndrome prior; the decode is the argmax of
  /// each variable's belief. Must not be called on tabular unions.
  [[nodiscard]] bool part_syndrome_satisfied(std::span<const BeliefVec> fused,
                                             std::size_t i) const;

 private:
  friend GraphUnion disjoint_union(
      std::span<const FactorGraph* const> parts);

  FactorGraph graph_;
  std::vector<Part> parts_;
  NodeId total_vars_ = 0;  // == total nodes for tabular unions
};

/// Fuses `parts` into one GraphUnion. Every part must share one factor
/// family and carry no recorded permutation (reorder happens after fusion
/// or not at all — a per-part permutation would scramble the id table).
/// Throws util::InvalidArgument on an empty list or mismatched parts.
[[nodiscard]] GraphUnion disjoint_union(
    std::span<const FactorGraph* const> parts);

}  // namespace credo::graph
