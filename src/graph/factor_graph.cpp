#include "graph/factor_graph.h"

namespace credo::graph {

std::string_view family_name(FactorFamily f) noexcept {
  switch (f) {
    case FactorFamily::kTabular: return "tabular";
    case FactorFamily::kLdpcSumProduct: return "ldpc-sum-product";
    case FactorFamily::kLdpcMinSum: return "ldpc-min-sum";
  }
  return "unknown";
}

std::optional<FactorFamily> family_from_name(std::string_view name) noexcept {
  if (name == "tabular") return FactorFamily::kTabular;
  if (name == "ldpc-sum-product" || name == "ldpc") {
    return FactorFamily::kLdpcSumProduct;
  }
  if (name == "ldpc-min-sum") return FactorFamily::kLdpcMinSum;
  return std::nullopt;
}

std::uint64_t FactorGraph::memory_bytes() const noexcept {
  std::uint64_t total = 0;
  total += priors_.size() * sizeof(BeliefVec);
  total += observed_.size() * sizeof(std::uint8_t);
  total += edges_.size() * sizeof(DirectedEdge);
  total += joints_->payload_bytes();
  total += in_csr_.index_bytes();
  total += out_csr_.index_bytes();
  for (const auto& n : names_) total += n.capacity();
  return total;
}

}  // namespace credo::graph
