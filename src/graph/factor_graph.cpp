#include "graph/factor_graph.h"

namespace credo::graph {

std::uint64_t FactorGraph::memory_bytes() const noexcept {
  std::uint64_t total = 0;
  total += priors_.size() * sizeof(BeliefVec);
  total += observed_.size() * sizeof(std::uint8_t);
  total += edges_.size() * sizeof(DirectedEdge);
  total += joints_.payload_bytes();
  total += in_csr_.index_bytes();
  total += out_csr_.index_bytes();
  for (const auto& n : names_) total += n.capacity();
  return total;
}

}  // namespace credo::graph
