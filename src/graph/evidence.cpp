#include "graph/evidence.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "graph/reorder.h"

namespace credo::graph {

EvidenceDelta& EvidenceDelta::set_prior(NodeId node, const BeliefVec& prior) {
  Op op;
  op.kind = OpKind::kSetPrior;
  op.node = node;
  op.prior = prior;
  ops_.push_back(op);
  return *this;
}

EvidenceDelta& EvidenceDelta::observe(NodeId node, std::uint32_t state) {
  Op op;
  op.kind = OpKind::kObserve;
  op.node = node;
  op.state = state;
  ops_.push_back(op);
  return *this;
}

EvidenceDelta& EvidenceDelta::unobserve(NodeId node) {
  Op op;
  op.kind = OpKind::kUnobserve;
  op.node = node;
  ops_.push_back(op);
  return *this;
}

util::Status EvidenceDelta::validate(const FactorGraph& g) const noexcept {
  const auto invalid = [](const char* msg) {
    return util::Status(util::StatusCode::kInvalidArgument, msg);
  };
  const Permutation* perm = g.permutation();
  // Observation flags as they evolve through the op list (original ids);
  // fall back to the graph's flags for nodes no earlier op touched.
  std::unordered_map<NodeId, bool> obs;
  for (const Op& op : ops_) {
    if (op.node >= g.num_nodes()) {
      return invalid("EvidenceDelta: node id out of range");
    }
    const NodeId v = perm != nullptr ? perm->to_new(op.node) : op.node;
    const auto it = obs.find(op.node);
    const bool observed_now = it != obs.end() ? it->second : g.observed(v);
    switch (op.kind) {
      case OpKind::kSetPrior:
        if (op.prior.size != g.arity(v)) {
          return invalid("EvidenceDelta: set_prior arity mismatch");
        }
        if (observed_now) {
          return invalid(
              "EvidenceDelta: set_prior on an observed node (unobserve it "
              "first — observed beliefs are pinned)");
        }
        break;
      case OpKind::kObserve:
        if (op.state >= g.arity(v)) {
          return invalid("EvidenceDelta: observed state out of range");
        }
        obs[op.node] = true;
        break;
      case OpKind::kUnobserve:
        obs[op.node] = false;
        break;
    }
  }
  return util::Status::ok();
}

std::vector<NodeId> EvidenceDelta::touched() const {
  std::vector<NodeId> nodes;
  nodes.reserve(ops_.size());
  for (const Op& op : ops_) nodes.push_back(op.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

std::uint64_t EvidenceDelta::fingerprint() const noexcept {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (const Op& op : ops_) {
    mix(static_cast<std::uint64_t>(op.kind));
    mix(op.node);
    if (op.kind == OpKind::kObserve) mix(op.state);
    if (op.kind == OpKind::kSetPrior) {
      mix(op.prior.size);
      for (std::uint32_t i = 0; i < op.prior.size; ++i) {
        std::uint32_t bits;
        std::memcpy(&bits, &op.prior.v[i], sizeof(bits));
        mix(bits);
      }
    }
  }
  return h;
}

/// Private-member access seam, mirroring ReorderAccess: the one place a
/// FactorGraph's evidence state is rewritten outside the builder.
class EvidenceAccess {
 public:
  static FactorGraph apply(const FactorGraph& g, const EvidenceDelta& d) {
    if (const auto s = d.validate(g); !s.is_ok()) {
      throw util::InvalidArgument(s.message());
    }
    FactorGraph out = g;  // structure + shared joint tables, copied indices
    const Permutation* perm = g.permutation();
    for (const EvidenceDelta::Op& op : d.ops_) {
      const NodeId v = perm != nullptr ? perm->to_new(op.node) : op.node;
      switch (op.kind) {
        case EvidenceDelta::OpKind::kSetPrior:
          out.priors_[v] = op.prior;
          break;
        case EvidenceDelta::OpKind::kObserve:
          out.priors_[v] =
              BeliefVec::observed(out.priors_[v].size, op.state);
          out.observed_[v] = 1;
          break;
        case EvidenceDelta::OpKind::kUnobserve:
          out.priors_[v] = BeliefVec::uniform(out.priors_[v].size);
          out.observed_[v] = 0;
          break;
      }
    }
    return out;
  }
};

FactorGraph with_evidence(const FactorGraph& g, const EvidenceDelta& delta) {
  return EvidenceAccess::apply(g, delta);
}

}  // namespace credo::graph
