// Graph locality pass (DESIGN.md §5d): vertex reorderings that pack
// neighborhoods onto adjacent cache lines before the engines ever run.
//
// The paper's per-edge engines spend their cycles on scattered reads of
// neighbor beliefs (§3.4 chose AoS storage for exactly that access
// pattern), and the GraphLab line of work shows CPU BP throughput is
// bounded by memory locality, not FLOPs. This module computes a
// `Permutation` of node ids — breadth-first (kBfs), reverse Cuthill-McKee
// (kRcm) or a degree-sort fallback (kDegree) — and applies it at build
// time to every structure the hot loops traverse: the priors/beliefs
// array, both CSR indices, the joint store, and the edge list, which under
// a reorder mode is sorted by (target, source) so consecutive per-edge
// combines land on warm accumulator lines (the OpenMP Edge engine's
// atomics hit the same cache line back to back instead of ping-ponging).
//
// The permutation rides inside the produced FactorGraph; Engine::run maps
// beliefs back to the caller's original node ids, so the pass is invisible
// to everything above the graph layer except as a speedup.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "graph/factor_graph.h"
#include "util/error.h"

namespace credo::graph {

/// Human-readable mode name ("none", "bfs", "rcm", "degree").
[[nodiscard]] std::string_view reorder_mode_name(ReorderMode mode) noexcept;

/// Case-insensitive parse of a mode name; nullopt for anything else.
[[nodiscard]] std::optional<ReorderMode> reorder_mode_from_name(
    std::string_view name) noexcept;

/// Throwing form for front ends: rejects unknown names with an
/// InvalidArgument that lists every valid mode (never a silent fallback).
[[nodiscard]] ReorderMode parse_reorder_mode(std::string_view name);

/// A bijection between original ("old") and reordered ("new") node ids,
/// stored in both directions so lookups are O(1) either way.
class Permutation {
 public:
  Permutation() = default;

  static Permutation identity(NodeId n);

  /// Builds from the visit sequence orderings produce: new_to_old[k] is
  /// the original id placed at new id k. Checked to be a bijection.
  static Permutation from_new_to_old(std::vector<NodeId> new_to_old);

  /// Composes two permutations applied in sequence: the result maps an
  /// original id through `first` then `then`.
  static Permutation compose(const Permutation& first,
                             const Permutation& then);

  [[nodiscard]] NodeId size() const noexcept {
    return static_cast<NodeId>(to_new_.size());
  }
  [[nodiscard]] bool is_identity() const noexcept;

  [[nodiscard]] NodeId to_new(NodeId old_id) const noexcept {
    return to_new_[old_id];
  }
  [[nodiscard]] NodeId to_old(NodeId new_id) const noexcept {
    return to_old_[new_id];
  }

  [[nodiscard]] Permutation inverse() const;

  /// Permutes a by-old-id vector into by-new-id order:
  /// out[to_new(i)] = in[i].
  template <typename T>
  [[nodiscard]] std::vector<T> apply(const std::vector<T>& by_old) const {
    CREDO_CHECK_MSG(by_old.size() == to_new_.size(),
                    "permutation size mismatch");
    std::vector<T> out(by_old.size());
    for (NodeId i = 0; i < by_old.size(); ++i) out[to_new_[i]] = by_old[i];
    return out;
  }

  /// Inverse of apply: maps a by-new-id vector back to by-old-id order,
  /// out[i] = in[to_new(i)]. This is what un-permutes engine beliefs.
  template <typename T>
  [[nodiscard]] std::vector<T> unapply(const std::vector<T>& by_new) const {
    CREDO_CHECK_MSG(by_new.size() == to_new_.size(),
                    "permutation size mismatch");
    std::vector<T> out(by_new.size());
    for (NodeId i = 0; i < by_new.size(); ++i) out[i] = by_new[to_new_[i]];
    return out;
  }

 private:
  std::vector<NodeId> to_new_;  // indexed by old id
  std::vector<NodeId> to_old_;  // indexed by new id
};

/// Computes the ordering for `mode` over the symmetrized edge list.
/// kNone yields the identity. kBfs visits each component breadth-first
/// from its smallest node id; kRcm is Cuthill-McKee from a minimum-degree
/// root with degree-sorted children, reversed; kDegree packs nodes by
/// descending degree (hubs share lines) with original-id tie-break.
[[nodiscard]] Permutation compute_order(ReorderMode mode, NodeId num_nodes,
                                        std::span<const DirectedEdge> edges);

/// A seeded uniform-random permutation — the "arbitrary on-disk id
/// assignment" baseline the locality benches and property tests relabel
/// inputs with.
[[nodiscard]] Permutation random_order(NodeId num_nodes, std::uint64_t seed);

/// Rebuilds `g` under `mode`: nodes renumbered by compute_order, edge list
/// re-sorted by (target, source), CSRs and joint store rebuilt, and the
/// permutation recorded in the result (composed with any permutation `g`
/// already carried) so BpResult beliefs still come back in the caller's
/// original ids. kNone returns `g` unchanged.
[[nodiscard]] FactorGraph reordered(const FactorGraph& g, ReorderMode mode);

/// Bakes an explicit relabeling into a *new* graph: same structure, node
/// ids renamed by `perm`, edge list re-sorted by source exactly as a fresh
/// parse would produce, and no permutation recorded — the result is
/// indistinguishable from having loaded the renamed graph from disk.
/// Requires `g` to carry no recorded permutation.
[[nodiscard]] FactorGraph relabeled(const FactorGraph& g,
                                    const Permutation& perm);

/// Locality summary of an ordering: average |src - dst| over directed
/// edges (the quantity BFS/RCM shrink) — reported by `credo info` and the
/// reorder bench.
[[nodiscard]] double mean_edge_span(const FactorGraph& g) noexcept;

/// Bounded BFS slice rooted at `root` — the subtree grower under the
/// splash scheduler (bp/runtime/mq_schedule.h, DESIGN.md §5f). Expands in
/// BFS order over out- then in-neighbors (CSR order within each), asking
/// `admit` once per not-yet-admitted candidate and stopping at `max_size`
/// nodes. Returns the admitted nodes in visit order, root first; every
/// non-root node is adjacent to an earlier one, so the result is a valid
/// tree slice of the graph. The root is included without an `admit` call
/// (callers claim it before growing); `admit` may carry side effects —
/// the splash scheduler claims nodes inside it — and duplicate suppression
/// relies on `admit` returning true at most once per node.
[[nodiscard]] std::vector<NodeId> bfs_subtree(
    const FactorGraph& g, NodeId root, std::uint32_t max_size,
    const std::function<bool(NodeId)>& admit);

}  // namespace credo::graph
