// Public belief kernels, restructured into the padded, stride-aligned
// forms of belief_kernels.h. See that header for the layout and numerical
// contracts (bit-identical to the scalar reference; convergence-feeding
// reductions stay in scalar order).
#include "graph/belief.h"

#include <cmath>

#include "graph/belief_kernels.h"

namespace credo::graph {

float normalize(BeliefVec& b) noexcept {
  const std::uint32_t n = b.size;
  const std::uint32_t w = padded_states(n);
  float* __restrict v = b.v.data();
  // Scalar-order sum: this value feeds convergence decisions downstream,
  // so its rounding must not depend on the vector width.
  float sum = 0.0f;
  for (std::uint32_t i = 0; i < n; ++i) sum += v[i];
  if (sum > 0.0f && std::isfinite(sum)) {
    const float inv = 1.0f / sum;
    // Elementwise over the padded width (pads scale 0 -> 0 exactly).
    for (std::uint32_t i = 0; i < w; ++i) v[i] *= inv;
  } else {
    const float p = 1.0f / static_cast<float>(n);
    for (std::uint32_t i = 0; i < n; ++i) v[i] = p;
  }
  return sum;
}

float l1_diff(const BeliefVec& a, const BeliefVec& b) noexcept {
  const std::uint32_t n = a.size < b.size ? a.size : b.size;
  const float* __restrict av = a.v.data();
  const float* __restrict bv = b.v.data();
  // Scalar-order sum: the per-node term of the convergence sum.
  float d = 0.0f;
  for (std::uint32_t i = 0; i < n; ++i) d += std::fabs(av[i] - bv[i]);
  return d;
}

std::uint32_t combine(BeliefVec& acc, const BeliefVec& m) noexcept {
  const std::uint32_t w = padded_states(acc.size);
  float* __restrict a = acc.v.data();
  const float* __restrict mv = m.v.data();
  // Elementwise product and max over whole vector registers: pad lanes are
  // 0 * 0 = 0 and never win the max, so results match the scalar form.
  float maxv = 0.0f;
  for (std::uint32_t i = 0; i < w; ++i) {
    a[i] *= mv[i];
    maxv = a[i] > maxv ? a[i] : maxv;
  }
  // Rescale before products of many sub-unit messages underflow float.
  if (maxv > 0.0f && maxv < 1e-20f) {
    const float inv = 1.0f / maxv;
    for (std::uint32_t i = 0; i < w; ++i) a[i] *= inv;
    return 2 * acc.size;
  }
  return acc.size;
}

JointMatrix JointMatrix::diffusion(std::uint32_t n, float stay) {
  JointMatrix j(n, n);
  const float off = n > 1 ? (1.0f - stay) / static_cast<float>(n - 1) : 0.0f;
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t c = 0; c < n; ++c) {
      j.m[r][c] = (r == c) ? stay : off;
    }
  }
  return j;
}

std::uint32_t compute_message(const BeliefVec& in, const JointMatrix& j,
                              BeliefVec& out) noexcept {
  out.size = j.cols;
  // One switch on the padded width selects a fixed-trip-count matvec the
  // compiler fully vectorizes; matrix pad columns are zero, so out's pad
  // lanes come out zero as the layout contract requires.
  const float* iv = in.v.data();
  const std::array<float, kMaxStates>* rows = j.m.data();
  float* ov = out.v.data();
  switch (padded_states(j.cols)) {
    case 8:
      detail::matvec_padded<8>(iv, rows, j.rows, ov);
      break;
    case 16:
      detail::matvec_padded<16>(iv, rows, j.rows, ov);
      break;
    case 24:
      detail::matvec_padded<24>(iv, rows, j.rows, ov);
      break;
    default:
      detail::matvec_padded<32>(iv, rows, j.rows, ov);
      break;
  }
  normalize(out);
  return 2u * j.rows * j.cols + 2u * j.cols;
}

}  // namespace credo::graph
