#include "graph/belief.h"

#include <cmath>

namespace credo::graph {

float normalize(BeliefVec& b) noexcept {
  float sum = 0.0f;
  for (std::uint32_t i = 0; i < b.size; ++i) sum += b.v[i];
  if (sum > 0.0f && std::isfinite(sum)) {
    const float inv = 1.0f / sum;
    for (std::uint32_t i = 0; i < b.size; ++i) b.v[i] *= inv;
  } else {
    const float p = 1.0f / static_cast<float>(b.size);
    for (std::uint32_t i = 0; i < b.size; ++i) b.v[i] = p;
  }
  return sum;
}

float l1_diff(const BeliefVec& a, const BeliefVec& b) noexcept {
  float d = 0.0f;
  const std::uint32_t n = a.size < b.size ? a.size : b.size;
  for (std::uint32_t i = 0; i < n; ++i) d += std::fabs(a.v[i] - b.v[i]);
  return d;
}

std::uint32_t combine(BeliefVec& acc, const BeliefVec& m) noexcept {
  float maxv = 0.0f;
  for (std::uint32_t i = 0; i < acc.size; ++i) {
    acc.v[i] *= m.v[i];
    if (acc.v[i] > maxv) maxv = acc.v[i];
  }
  // Rescale before products of many sub-unit messages underflow float.
  if (maxv > 0.0f && maxv < 1e-20f) {
    const float inv = 1.0f / maxv;
    for (std::uint32_t i = 0; i < acc.size; ++i) acc.v[i] *= inv;
    return 2 * acc.size;
  }
  return acc.size;
}

JointMatrix JointMatrix::diffusion(std::uint32_t n, float stay) {
  JointMatrix j(n, n);
  const float off = n > 1 ? (1.0f - stay) / static_cast<float>(n - 1) : 0.0f;
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t c = 0; c < n; ++c) {
      j.m[r][c] = (r == c) ? stay : off;
    }
  }
  return j;
}

std::uint32_t compute_message(const BeliefVec& in, const JointMatrix& j,
                              BeliefVec& out) noexcept {
  out.size = j.cols;
  for (std::uint32_t c = 0; c < j.cols; ++c) out.v[c] = 0.0f;
  for (std::uint32_t r = 0; r < j.rows; ++r) {
    const float w = in.v[r];
    if (w == 0.0f) continue;
    for (std::uint32_t c = 0; c < j.cols; ++c) {
      out.v[c] += w * j.m[r][c];
    }
  }
  normalize(out);
  return 2u * j.rows * j.cols + 2u * j.cols;
}

}  // namespace credo::graph
