// Public belief kernels, restructured into the padded, stride-aligned
// forms of belief_kernels.h. See that header for the layout and numerical
// contracts (bit-identical to the scalar reference; convergence-feeding
// reductions stay in scalar order).
#include "graph/belief.h"

#include <cmath>

#include "graph/belief_kernels.h"

namespace credo::graph {

float normalize(BeliefVec& b) noexcept {
  const std::uint32_t n = b.size;
  const std::uint32_t w = padded_states(n);
  float* __restrict v = b.v.data();
  // Scalar-order sum: this value feeds convergence decisions downstream,
  // so its rounding must not depend on the vector width.
  float sum = 0.0f;
  for (std::uint32_t i = 0; i < n; ++i) sum += v[i];
  if (sum > 0.0f && std::isfinite(sum)) {
    const float inv = 1.0f / sum;
    // Elementwise over the padded width (pads scale 0 -> 0 exactly).
    for (std::uint32_t i = 0; i < w; ++i) v[i] *= inv;
  } else {
    const float p = 1.0f / static_cast<float>(n);
    for (std::uint32_t i = 0; i < n; ++i) v[i] = p;
  }
  return sum;
}

float l1_diff(const BeliefVec& a, const BeliefVec& b) noexcept {
  // Selected path: scalar at every arity (kCombineScalarMaxArity comment
  // in belief_kernels.h). The sum feeds the convergence decision, so the
  // accumulation order must match the scalar reference exactly — this is
  // the reference loop, live lanes only.
  const std::uint32_t n = a.size < b.size ? a.size : b.size;
  float d = 0.0f;
  for (std::uint32_t i = 0; i < n; ++i) d += std::fabs(a.v[i] - b.v[i]);
  return d;
}

std::uint32_t combine(BeliefVec& acc, const BeliefVec& m) noexcept {
  const std::uint32_t n = acc.size;
  float* __restrict a = acc.v.data();
  const float* __restrict mv = m.v.data();
  if (n <= kCombineScalarMaxArity) {
    // Live lanes only, exactly the reference loop: padding the trip count
    // to kSimdLane touched 8 lanes to update as few as 2 (measured
    // 0.47–0.84x at these arities — see kCombineScalarMaxArity).
    float maxv = 0.0f;
    for (std::uint32_t i = 0; i < n; ++i) {
      a[i] *= mv[i];
      if (a[i] > maxv) maxv = a[i];
    }
    if (maxv > 0.0f && maxv < 1e-20f) {
      const float inv = 1.0f / maxv;
      for (std::uint32_t i = 0; i < n; ++i) a[i] *= inv;
      return 2 * n;
    }
    return n;
  }
  // Padded width, strips of four with one max accumulator per lane. A
  // single loop-carried float max is a reduction GCC will not reorder
  // without -ffast-math, so the fused one-accumulator loop compiles to a
  // serial maxss chain (~4 cycles/element); four independent accumulators
  // are throughput-bound and let the products vectorize. Beliefs are
  // non-negative and pad lanes are 0 * 0 = 0, so max is exact under any
  // order and the pads never win: bit-identical to the scalar form.
  const std::uint32_t w = padded_states(n);
  float m0 = 0.0f, m1 = 0.0f, m2 = 0.0f, m3 = 0.0f;
  for (std::uint32_t i = 0; i < w; i += 4) {
    const float p0 = a[i] * mv[i];
    const float p1 = a[i + 1] * mv[i + 1];
    const float p2 = a[i + 2] * mv[i + 2];
    const float p3 = a[i + 3] * mv[i + 3];
    a[i] = p0;
    a[i + 1] = p1;
    a[i + 2] = p2;
    a[i + 3] = p3;
    m0 = p0 > m0 ? p0 : m0;
    m1 = p1 > m1 ? p1 : m1;
    m2 = p2 > m2 ? p2 : m2;
    m3 = p3 > m3 ? p3 : m3;
  }
  const float ma = m0 > m1 ? m0 : m1;
  const float mb = m2 > m3 ? m2 : m3;
  const float maxv = ma > mb ? ma : mb;
  // Rescale before products of many sub-unit messages underflow float.
  if (maxv > 0.0f && maxv < 1e-20f) {
    const float inv = 1.0f / maxv;
    for (std::uint32_t i = 0; i < w; ++i) a[i] *= inv;
    return 2 * n;
  }
  return n;
}

JointMatrix JointMatrix::diffusion(std::uint32_t n, float stay) {
  JointMatrix j(n, n);
  const float off = n > 1 ? (1.0f - stay) / static_cast<float>(n - 1) : 0.0f;
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t c = 0; c < n; ++c) {
      j.m[r][c] = (r == c) ? stay : off;
    }
  }
  return j;
}

std::uint32_t compute_message(const BeliefVec& in, const JointMatrix& j,
                              BeliefVec& out) noexcept {
  out.size = j.cols;
  // One switch on the padded width selects a fixed-trip-count matvec the
  // compiler fully vectorizes; matrix pad columns are zero, so out's pad
  // lanes come out zero as the layout contract requires.
  const float* iv = in.v.data();
  const std::array<float, kMaxStates>* rows = j.m.data();
  float* ov = out.v.data();
  switch (padded_states(j.cols)) {
    case 8:
      detail::matvec_padded<8>(iv, rows, j.rows, ov);
      break;
    case 16:
      detail::matvec_padded<16>(iv, rows, j.rows, ov);
      break;
    case 24:
      detail::matvec_padded<24>(iv, rows, j.rows, ov);
      break;
    default:
      detail::matvec_padded<32>(iv, rows, j.rows, ov);
      break;
  }
  normalize(out);
  return 2u * j.rows * j.cols + 2u * j.cols;
}

}  // namespace credo::graph
