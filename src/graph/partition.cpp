#include "graph/partition.h"

#include <algorithm>

#include "util/error.h"

namespace credo::graph {

Partition Partition::contiguous(const FactorGraph& g, std::uint32_t shards) {
  CREDO_CHECK_MSG(shards >= 1, "Partition: shard count must be >= 1");
  Partition p;
  p.num_nodes_ = g.num_nodes();
  p.num_edges_ = g.num_edges();

  const NodeId n = g.num_nodes();
  const std::uint32_t s_count =
      n == 0 ? 1u : std::min<std::uint32_t>(shards, n);
  p.shards_.resize(s_count);
  p.readers_.resize(s_count);
  if (n == 0) return p;

  // Work-balanced split points: walk nodes in id order and cut when the
  // cumulative weight reaches the next s/S fraction of the total, while
  // reserving one node for every shard still to come so no range is empty.
  const auto& in = g.in_csr();
  std::uint64_t total_work = 0;
  for (NodeId v = 0; v < n; ++v) total_work += 1 + in.degree(v);

  NodeId cursor = 0;
  std::uint64_t work_done = 0;
  for (std::uint32_t s = 0; s < s_count; ++s) {
    Shard& sh = p.shards_[s];
    sh.begin = cursor;
    const std::uint64_t target =
        total_work * static_cast<std::uint64_t>(s + 1) / s_count;
    const NodeId remaining_shards = s_count - s - 1;
    // Always take at least one node; never eat into later shards' reserve.
    do {
      work_done += 1 + in.degree(cursor);
      ++cursor;
    } while (cursor < n - remaining_shards &&
             (s + 1 == s_count || work_done < target));
    sh.end = cursor;
  }
  CREDO_CHECK_MSG(cursor == n, "Partition: ranges must cover every node");

  // Boundary scan: classify every directed edge once. Border/ghost lists
  // are collected with duplicates then sorted+deduplicated — a node with
  // several cross-shard children appears once per list.
  std::vector<std::vector<std::uint32_t>> reader_sets(s_count);
  for (const DirectedEdge& e : g.edges()) {
    const std::uint32_t so = p.owner(e.src);
    const std::uint32_t to = p.owner(e.dst);
    if (so == to) {
      ++p.shards_[so].internal_edges;
      continue;
    }
    ++p.edge_cut_;
    ++p.shards_[to].cut_in_edges;
    p.shards_[so].border.push_back(e.src);
    p.shards_[to].ghosts.push_back(e.src);
    reader_sets[so].push_back(to);
  }
  const auto dedup = [](auto& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  for (std::uint32_t s = 0; s < s_count; ++s) {
    dedup(p.shards_[s].border);
    dedup(p.shards_[s].ghosts);
    dedup(reader_sets[s]);
    p.readers_[s] = std::move(reader_sets[s]);
  }
  return p;
}

std::uint32_t Partition::owner(NodeId v) const noexcept {
  // Upper-bound over range starts; shards are few, ranges sorted.
  std::uint32_t lo = 0;
  std::uint32_t hi = shard_count() - 1;
  while (lo < hi) {
    const std::uint32_t mid = (lo + hi + 1) / 2;
    if (shards_[mid].begin <= v) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

double Partition::edge_cut_fraction() const noexcept {
  return num_edges_ > 0
             ? static_cast<double>(edge_cut_) /
                   static_cast<double>(num_edges_)
             : 0.0;
}

double Partition::balance() const noexcept {
  std::uint64_t max_work = 0;
  std::uint64_t total = 0;
  for (const Shard& sh : shards_) {
    const std::uint64_t w =
        sh.num_nodes() + sh.internal_edges + sh.cut_in_edges;
    max_work = std::max(max_work, w);
    total += w;
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shards_.size());
  return mean > 0.0 ? static_cast<double>(max_work) / mean : 1.0;
}

}  // namespace credo::graph
