#include "graph/csr.h"

#include "util/error.h"

namespace credo::graph {

Csr Csr::build(NodeId num_nodes, std::span<const DirectedEdge> edges,
               bool key_by_target) {
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(num_nodes) + 1,
                                     0);
  for (const auto& e : edges) {
    const NodeId key = key_by_target ? e.dst : e.src;
    CREDO_CHECK_MSG(key < num_nodes && e.src < num_nodes && e.dst < num_nodes,
                    "edge endpoint out of range");
    ++offsets[key + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }
  std::vector<Csr::Entry> entries(edges.size());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (EdgeId id = 0; id < edges.size(); ++id) {
    const auto& e = edges[id];
    const NodeId key = key_by_target ? e.dst : e.src;
    const NodeId other = key_by_target ? e.src : e.dst;
    entries[cursor[key]++] = {other, id};
  }
  Csr csr;
  csr.offsets_ = std::move(offsets);
  csr.entries_ = std::move(entries);
  return csr;
}

Csr Csr::by_target(NodeId num_nodes, std::span<const DirectedEdge> edges) {
  return build(num_nodes, edges, /*key_by_target=*/true);
}

Csr Csr::by_source(NodeId num_nodes, std::span<const DirectedEdge> edges) {
  return build(num_nodes, edges, /*key_by_target=*/false);
}

}  // namespace credo::graph
