#include "graph/mutable_csr.h"

#include <algorithm>
#include <cassert>

namespace credo::graph {

MutableCsr MutableCsr::build(NodeId num_rows,
                             std::span<const DirectedEdge> edges,
                             bool by_source, std::uint32_t slack) {
  MutableCsr m;
  std::vector<std::uint32_t> deg(num_rows, 0);
  for (const DirectedEdge& e : edges) ++deg[by_source ? e.src : e.dst];

  m.rows_.resize(num_rows);
  std::uint64_t begin = 0;
  for (NodeId r = 0; r < num_rows; ++r) {
    m.rows_[r].begin = begin;
    m.rows_[r].len = 0;
    m.rows_[r].cap = deg[r] + slack;
    begin += m.rows_[r].cap;
  }
  m.arena_.resize(begin);

  for (std::size_t i = 0; i < edges.size(); ++i) {
    const DirectedEdge& e = edges[i];
    Row& row = m.rows_[by_source ? e.src : e.dst];
    m.arena_[row.begin + row.len] = Entry{by_source ? e.dst : e.src,
                                          static_cast<EdgeId>(i)};
    ++row.len;
  }
  m.live_ = edges.size();
  return m;
}

void MutableCsr::add_row(std::uint32_t slack) {
  Row row;
  row.begin = arena_.size();
  row.len = 0;
  row.cap = slack;
  arena_.resize(arena_.size() + slack);
  rows_.push_back(row);
}

void MutableCsr::add(NodeId r, Entry e) {
  Row& row = rows_[r];
  if (row.len == row.cap) {
    // Relocate to the arena tail with roughly doubled capacity; the old
    // segment becomes a husk counted by dead_fraction().
    const std::uint32_t cap = std::max<std::uint32_t>(4, row.cap * 2);
    const std::uint64_t begin = arena_.size();
    arena_.resize(arena_.size() + cap);
    std::copy(arena_.begin() + static_cast<std::ptrdiff_t>(row.begin),
              arena_.begin() + static_cast<std::ptrdiff_t>(row.begin + row.len),
              arena_.begin() + static_cast<std::ptrdiff_t>(begin));
    abandoned_ += row.cap;
    row.begin = begin;
    row.cap = cap;
  }
  arena_[row.begin + row.len] = e;
  ++row.len;
  ++live_;
}

bool MutableCsr::remove(NodeId r, EdgeId edge) {
  Row& row = rows_[r];
  for (std::uint32_t i = 0; i < row.len; ++i) {
    if (arena_[row.begin + i].edge == edge) {
      arena_[row.begin + i] = arena_[row.begin + row.len - 1];
      --row.len;
      --live_;
      return true;
    }
  }
  return false;
}

bool MutableCsr::contains(NodeId r, NodeId node) const noexcept {
  const Row& row = rows_[r];
  for (std::uint32_t i = 0; i < row.len; ++i) {
    if (arena_[row.begin + i].node == node) return true;
  }
  return false;
}

void MutableCsr::compact(std::uint32_t slack) {
  std::vector<Entry> arena;
  std::uint64_t total = 0;
  for (const Row& row : rows_) total += row.len + slack;
  arena.resize(total);

  std::uint64_t begin = 0;
  for (Row& row : rows_) {
    std::copy(arena_.begin() + static_cast<std::ptrdiff_t>(row.begin),
              arena_.begin() + static_cast<std::ptrdiff_t>(row.begin + row.len),
              arena.begin() + static_cast<std::ptrdiff_t>(begin));
    row.begin = begin;
    row.cap = row.len + slack;
    begin += row.cap;
  }
  arena_ = std::move(arena);
  abandoned_ = 0;
}

void MutableCsr::snapshot(std::vector<std::uint64_t>& offsets_out,
                          std::vector<Entry>& entries_out) const {
  offsets_out.assign(rows_.size() + 1, 0);
  entries_out.clear();
  entries_out.reserve(live_);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    offsets_out[r] = entries_out.size();
    const Row& row = rows_[r];
    entries_out.insert(
        entries_out.end(),
        arena_.begin() + static_cast<std::ptrdiff_t>(row.begin),
        arena_.begin() + static_cast<std::ptrdiff_t>(row.begin + row.len));
  }
  offsets_out[rows_.size()] = entries_out.size();
}

}  // namespace credo::graph
