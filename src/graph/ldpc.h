// LDPC codes and their Tanner-graph factor graphs (DESIGN.md §5g).
//
// A binary LDPC code is a sparse parity-check matrix H (checks x bits);
// syndrome decoding asks for the most likely error pattern e with
// H·e = s over GF(2), given a BSC crossover probability. The decode runs
// as belief propagation over the Tanner graph — variable nodes [0, bits)
// for the code bits, check nodes [bits, bits+checks) for the parity
// constraints — with closed-form tanh-domain message kernels instead of
// joint-probability tables (the first non-tabular factor family; the
// exemplar is the qLDPC decoder referenced in SNIPPETS.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/factor_graph.h"

namespace credo::graph::ldpc {

/// The sparse parity-check matrix H, stored CSR by check row. Immutable
/// after generation; the Tanner graph is built from it.
struct Code {
  std::uint32_t bits = 0;    // n — columns of H (variable nodes)
  std::uint32_t checks = 0;  // m — rows of H (check nodes)
  std::vector<std::uint32_t> row_ptr;  // size checks + 1
  std::vector<std::uint32_t> bit_idx;  // column index of each nonzero

  /// Bits participating in check `c`.
  [[nodiscard]] std::span<const std::uint32_t> check_bits(
      std::uint32_t c) const noexcept {
    return {bit_idx.data() + row_ptr[c], row_ptr[c + 1] - row_ptr[c]};
  }

  /// Column degrees (how many checks each bit participates in).
  [[nodiscard]] std::vector<std::uint32_t> bit_degrees() const;
};

/// Generates a random regular (dv, dc) code on `bits` bits: every bit is
/// in exactly dv checks, every check covers exactly dc distinct bits
/// (socket-permutation construction with local conflict repair).
/// Requires bits * dv divisible by dc; deterministic in `seed`.
[[nodiscard]] Code random_regular(std::uint32_t bits, std::uint32_t dv,
                                  std::uint32_t dc, std::uint64_t seed);

/// Syndrome of an error pattern: s[c] = XOR of error[b] over b in check c.
[[nodiscard]] std::vector<std::uint8_t> syndrome(
    const Code& code, std::span<const std::uint8_t> error);

/// Builds the decode factor graph for `syndrome` under a BSC with the
/// given crossover probability, in the requested LDPC family. Variable
/// priors carry the channel likelihood [1-p, p]; check priors carry the
/// syndrome bit as a point mass ([1,0] for s=0, [0,1] for s=1). Check
/// nodes are NOT observed — they send messages — so every schedule
/// (frontier, residual, MultiQueue, splash) prioritizes check residuals
/// exactly like variable residuals.
[[nodiscard]] FactorGraph build_graph(const Code& code,
                                      std::span<const std::uint8_t> syndrome,
                                      float crossover, FactorFamily family);

/// Hard decisions from decoded beliefs: bit b is 1 iff
/// beliefs[b][1] > beliefs[b][0]. Reads only the first `bits` entries.
[[nodiscard]] std::vector<std::uint8_t> hard_decision(
    std::span<const BeliefVec> beliefs, std::uint32_t bits);

/// True when H·decision == syndrome over GF(2) — decode success.
[[nodiscard]] bool satisfies(const Code& code,
                             std::span<const std::uint8_t> decision,
                             std::span<const std::uint8_t> syndrome);

}  // namespace credo::graph::ldpc
