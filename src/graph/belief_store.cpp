#include "graph/belief_store.h"

#include <memory>

#include "graph/factor_graph.h"
#include "util/error.h"

namespace credo::graph {

AosBeliefStore::AosBeliefStore(NodeId n, std::uint32_t arity)
    : data_(n, BeliefVec::uniform(arity)) {}

void AosBeliefStore::get(NodeId v, BeliefVec& out) const { out = data_[v]; }

void AosBeliefStore::set(NodeId v, const BeliefVec& b) { data_[v] = b; }

void AosBeliefStore::access_ranges(
    NodeId v, const std::function<void(MemRange)>& sink) const {
  const auto& e = data_[v];
  // One contiguous touch: the live floats plus the size field, which the
  // AoS layout co-locates with the data.
  sink({reinterpret_cast<std::uintptr_t>(&e),
        static_cast<std::uint32_t>(e.payload_bytes() + sizeof(e.size))});
}

SoaBeliefStore::SoaBeliefStore(NodeId n, std::uint32_t arity)
    : values_(static_cast<std::size_t>(n) * kMaxStates, 0.0f),
      sizes_(n, arity),
      stride_(kMaxStates) {
  CREDO_CHECK(arity >= 1 && arity <= kMaxStates);
  const float p = 1.0f / static_cast<float>(arity);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t i = 0; i < arity; ++i) {
      values_[static_cast<std::size_t>(v) * stride_ + i] = p;
    }
  }
}

void SoaBeliefStore::get(NodeId v, BeliefVec& out) const {
  out.size = sizes_[v];
  const float* base = values_.data() + static_cast<std::size_t>(v) * stride_;
  for (std::uint32_t i = 0; i < out.size; ++i) out.v[i] = base[i];
}

void SoaBeliefStore::set(NodeId v, const BeliefVec& b) {
  sizes_[v] = b.size;
  float* base = values_.data() + static_cast<std::size_t>(v) * stride_;
  for (std::uint32_t i = 0; i < b.size; ++i) base[i] = b.v[i];
}

void SoaBeliefStore::access_ranges(
    NodeId v, const std::function<void(MemRange)>& sink) const {
  // Two disjoint touches: the dimension entry and the values slice. This is
  // the extra parallel-array lookup the paper's cachegrind study charged
  // against SoA.
  sink({reinterpret_cast<std::uintptr_t>(&sizes_[v]),
        sizeof(std::uint32_t)});
  const float* base = values_.data() + static_cast<std::size_t>(v) * stride_;
  sink({reinterpret_cast<std::uintptr_t>(base),
        static_cast<std::uint32_t>(sizes_[v] * sizeof(float))});
}

std::unique_ptr<BeliefStore> make_belief_store(BeliefLayout layout, NodeId n,
                                               std::uint32_t arity) {
  if (layout == BeliefLayout::kAos) {
    return std::make_unique<AosBeliefStore>(n, arity);
  }
  return std::make_unique<SoaBeliefStore>(n, arity);
}

PackedAosBeliefStore::PackedAosBeliefStore(const FactorGraph& g) {
  const NodeId n = g.num_nodes();
  sizes_.resize(n);
  offsets_.resize(static_cast<std::size_t>(n) + 1);
  offsets_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    sizes_[v] = g.arity(v);
    offsets_[v + 1] = offsets_[v] + padded_states(sizes_[v]);
  }
  values_.assign(offsets_[n], 0.0f);
  for (NodeId v = 0; v < n; ++v) {
    const BeliefVec& p = g.prior(v);
    float* base = values_.data() + offsets_[v];
    for (std::uint32_t i = 0; i < p.size; ++i) base[i] = p.v[i];
  }
}

void PackedAosBeliefStore::get(NodeId v, BeliefVec& out) const {
  out = BeliefVec{};
  out.size = sizes_[v];
  const float* base = values_.data() + offsets_[v];
  for (std::uint32_t i = 0; i < out.size; ++i) out.v[i] = base[i];
}

void PackedAosBeliefStore::set(NodeId v, const BeliefVec& b) {
  CREDO_CHECK(b.size == sizes_[v]);
  float* base = values_.data() + offsets_[v];
  for (std::uint32_t i = 0; i < b.size; ++i) base[i] = b.v[i];
}

void PackedAosBeliefStore::access_ranges(
    NodeId v, const std::function<void(MemRange)>& sink) const {
  // One contiguous touch of the node's padded slice; neighboring nodes in
  // the graph order occupy the adjacent bytes, which is what the reorder
  // cachesim experiment measures.
  sink({reinterpret_cast<std::uintptr_t>(values_.data() + offsets_[v]),
        static_cast<std::uint32_t>(padded_states(sizes_[v]) *
                                   sizeof(float))});
}

}  // namespace credo::graph
