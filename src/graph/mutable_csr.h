// Slack-slotted mutable CSR (DESIGN.md §5j).
//
// The dense Csr the engines traverse is immutable by design: offsets are
// prefix sums, so one edge insert shifts every row after it. Streaming
// mutation wants the opposite trade — O(1) amortized insert/remove — while
// keeping the row-major walk the snapshot pass needs. MutableCsr stores
// rows in one shared arena with *per-row spare capacity*: each row is a
// (begin, length, capacity) triple, live entries packed at the row front.
// Inserts append into the row's slack; a full row relocates to the arena
// tail with doubled capacity, abandoning its old slots. Removals swap the
// victim with the row's last live entry — no tombstone scan on the read
// path, just a shorter row. The abandoned-segment fraction is the
// compaction trigger DynamicGraph watches; compact() repacks every row
// front-to-back with fresh slack, after which a snapshot is a single
// in-order arena walk (no sort — rows preserve insertion order, which is
// exactly the order GraphBuilder's stable sort by source produces).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"

namespace credo::graph {

class MutableCsr {
 public:
  /// One adjacency entry, mirroring Csr::Entry: the opposite endpoint and
  /// the owning edge slot id (a DynamicGraph slot, stable across row
  /// relocations; NOT a dense snapshot edge id).
  struct Entry {
    NodeId node;
    EdgeId edge;
  };

  MutableCsr() = default;

  /// Builds over `num_rows` rows from a directed edge list keyed by source
  /// (`by_source` = true) or target. `slack` spare slots are reserved per
  /// row so the first few inserts never relocate. Entry order within a row
  /// is the edge-list order (stable, like Csr's counting sort).
  static MutableCsr build(NodeId num_rows, std::span<const DirectedEdge> edges,
                          bool by_source, std::uint32_t slack);

  /// Live entries of `row`, in insertion order.
  [[nodiscard]] std::span<const Entry> row(NodeId r) const noexcept {
    const Row& m = rows_[r];
    return {arena_.data() + m.begin, arena_.data() + m.begin + m.len};
  }

  [[nodiscard]] std::uint32_t degree(NodeId r) const noexcept {
    return rows_[r].len;
  }
  [[nodiscard]] NodeId num_rows() const noexcept {
    return static_cast<NodeId>(rows_.size());
  }
  [[nodiscard]] std::uint64_t num_entries() const noexcept { return live_; }

  /// Appends an empty row (a freshly added node) with `slack` capacity.
  void add_row(std::uint32_t slack);

  /// Appends an entry to `row`: into its slack when there is room, else
  /// the row relocates to the arena tail with doubled capacity (the old
  /// segment is abandoned and counts toward dead_fraction).
  void add(NodeId r, Entry e);

  /// Removes the entry with edge slot `edge` from `row` by swapping the
  /// row's last live entry into its place. Returns false when no entry of
  /// that slot id is present (the row is unchanged).
  bool remove(NodeId r, EdgeId edge);

  /// True when `row` holds an entry whose opposite endpoint is `node`
  /// (the duplicate-insert check).
  [[nodiscard]] bool contains(NodeId r, NodeId node) const noexcept;

  /// Arena slots occupied by abandoned row segments, as a fraction of the
  /// whole arena. Working slack (unused capacity of live rows) does NOT
  /// count — it is reusable; only relocation husks are dead space. This is
  /// the slack-occupancy half of DynamicGraph's compaction trigger.
  [[nodiscard]] double dead_fraction() const noexcept {
    return arena_.empty()
               ? 0.0
               : static_cast<double>(abandoned_) /
                     static_cast<double>(arena_.size());
  }

  [[nodiscard]] std::uint64_t arena_slots() const noexcept {
    return arena_.size();
  }

  /// Repacks every row front-to-back with `slack` fresh spare slots,
  /// dropping all abandoned segments. Row order and within-row entry order
  /// are preserved; dead_fraction() is 0 afterwards.
  void compact(std::uint32_t slack);

  /// Dense snapshot of the live entries, rows concatenated in order — the
  /// shape Csr serves from. `entries_out[k]` is the k-th live entry of the
  /// row-major walk; `offsets_out[r]` the first entry of row r.
  void snapshot(std::vector<std::uint64_t>& offsets_out,
                std::vector<Entry>& entries_out) const;

 private:
  struct Row {
    std::uint64_t begin = 0;
    std::uint32_t len = 0;
    std::uint32_t cap = 0;
  };

  std::vector<Entry> arena_;
  std::vector<Row> rows_;
  std::uint64_t live_ = 0;
  std::uint64_t abandoned_ = 0;
};

}  // namespace credo::graph
