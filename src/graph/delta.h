// Unified graph-delta vocabulary (DESIGN.md §5j).
//
// PR 8's EvidenceDelta spoke only evidence: priors move, variables get
// observed or released. Dynamic graphs add topology to the same
// conversation — edges appear and vanish, nodes join and retire — and a
// serve request should express both in ONE ordered op list with one
// touched-set and one fingerprint, because both kinds of change perturb
// the same frontier and feed the same warm-table keying. GraphDelta is
// that vocabulary. Evidence-only deltas still apply ephemerally to any
// FactorGraph (`with_delta`, the old `with_evidence` path); deltas that
// carry topology ops must go through a graph::DynamicGraph, which owns the
// slack-slotted CSRs that make structural mutation cheap. EvidenceDelta
// remains as the internal evidence-application engine and is banned
// outside graph/ (header-hygiene test).
//
// All node ids are the caller's ORIGINAL ids (pre-reorder), like
// EvidenceDelta and BpOptions::frontier_seed. Ops apply in insertion
// order; a later op on the same node/edge wins.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/belief.h"
#include "graph/csr.h"
#include "graph/factor_graph.h"
#include "util/error.h"

namespace credo::graph {

/// One ordered batch of evidence and/or topology operations against a
/// graph. Fluent: `GraphDelta().add_node(p).add_edge(GraphDelta::new_node(0),
/// 17, m).observe(4, 2)`.
class GraphDelta {
 public:
  /// Placeholder id for the j-th node *this delta* adds, usable as an edge
  /// endpoint in the same batch before the real id exists. Resolved at
  /// apply time to `num_nodes_before + j` — so concurrent mutators never
  /// need to guess the id a racing batch will be assigned.
  [[nodiscard]] static constexpr NodeId new_node(std::uint32_t j) noexcept {
    return kPendingBit | j;
  }

  /// True when `v` is a new_node() placeholder rather than a real id.
  [[nodiscard]] static constexpr bool is_pending(NodeId v) noexcept {
    return (v & kPendingBit) != 0;
  }

  // --- Evidence ops (the EvidenceDelta vocabulary, verbatim) ---

  /// Replaces `node`'s prior (and current-belief starting point). The node
  /// must be unobserved at apply time and the arity must match.
  GraphDelta& set_prior(NodeId node, const BeliefVec& prior);

  /// Pins `node` to a point mass on `state` (observes it).
  GraphDelta& observe(NodeId node, std::uint32_t state);

  /// Releases an observed `node` back to a uniform prior.
  GraphDelta& unobserve(NodeId node);

  // --- Topology ops (DynamicGraph only) ---

  /// Appends a fresh unobserved node with the given prior. Reference it in
  /// later ops of the same batch via new_node(j) where j counts this
  /// delta's add_node calls from 0.
  GraphDelta& add_node(const BeliefVec& prior);

  /// Retires `node`: every incident edge is removed and the node becomes an
  /// isolated observed placeholder, pinned so engines skip it. Ids stay
  /// dense and are never reused (DESIGN.md §5j on zombie semantics).
  GraphDelta& remove_node(NodeId node);

  /// Inserts an undirected MRF edge u—v as two directed edges: `m`
  /// conditions v on u, the reverse direction uses the transpose (the
  /// GraphBuilder::add_undirected convention). Rejected when either
  /// endpoint is removed/out of range, when the edge already exists, or on
  /// a shared-joint graph (use the matrix-free overload there).
  GraphDelta& add_edge(NodeId u, NodeId v, const JointMatrix& m);

  /// Shared-joint form: the inserted pair uses the graph's shared matrix.
  GraphDelta& add_edge(NodeId u, NodeId v);

  /// Removes the undirected edge u—v (both directed halves). Rejected when
  /// no such edge is live.
  GraphDelta& remove_edge(NodeId u, NodeId v);

  /// Replaces the potential on existing edge u—v: `m` for u->v, transpose
  /// for v->u. Per-edge tabular graphs only.
  GraphDelta& set_potential(NodeId u, NodeId v, const JointMatrix& m);

  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }

  /// True when any op changes structure (add/remove edge/node,
  /// set_potential) rather than just evidence. Topology deltas need a
  /// DynamicGraph; with_delta and the serve layer reject them on plain
  /// cached/inline graphs without a dynamic entry.
  [[nodiscard]] bool has_topology() const noexcept;

  /// Sorted, deduplicated list of every *existing* node the delta touches
  /// (original ids) — endpoints of every op except add_node, with pending
  /// new_node() placeholders excluded (they have no id until apply; the
  /// DynamicGraph reports them in last_touched() after resolution). This
  /// seeds the incremental re-convergence frontier.
  [[nodiscard]] std::vector<NodeId> touched() const;

  /// FNV-1a content hash over the op list (kinds, ids, states, prior and
  /// matrix bits). Part of the warm-state fingerprint in the serve layer.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Validates against a plain FactorGraph for *ephemeral* application:
  /// evidence ops are checked like EvidenceDelta (ids in range, arity
  /// match, observe states in range, no set_prior on an observed node);
  /// any topology op fails with kInvalidArgument — structural mutation
  /// needs a DynamicGraph, whose apply() runs its own richer validation.
  [[nodiscard]] util::Status validate(const FactorGraph& g) const noexcept;

 private:
  friend class DynamicGraph;  // graph/dynamic.cpp — applies topology ops
  friend FactorGraph with_delta(const FactorGraph& g, const GraphDelta& d);

  static constexpr NodeId kPendingBit = 0x80000000u;

  enum class OpKind : std::uint8_t {
    kSetPrior,
    kObserve,
    kUnobserve,
    kAddNode,
    kRemoveNode,
    kAddEdge,
    kRemoveEdge,
    kSetPotential,
  };
  struct Op {
    OpKind kind;
    NodeId a = 0;             // node, or edge endpoint u
    NodeId b = 0;             // edge endpoint v
    std::uint32_t state = 0;  // kObserve
    BeliefVec prior;          // kSetPrior, kAddNode
    // Heap-held because a JointMatrix is ~4 KiB and most ops carry none.
    std::shared_ptr<const JointMatrix> joint;  // kAddEdge / kSetPotential
  };

  std::vector<Op> ops_;
};

/// A copy of `g` with an *evidence-only* `d` applied: priors and
/// observation flags updated, everything structural shared/unchanged.
/// Throws util::InvalidArgument when d.validate(g) fails — including when
/// `d` carries topology ops, which cannot apply ephemerally.
[[nodiscard]] FactorGraph with_delta(const FactorGraph& g,
                                     const GraphDelta& d);

}  // namespace credo::graph
