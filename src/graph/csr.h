// Compressed sparse row adjacency — §3.4's "compressed adjacency lists".
//
// The engines walk indices only and touch belief/joint payloads just when
// doing BP math, exactly as the paper describes. Both orientations are
// provided: by-target CSR (in-edges; what the Node engine pulls) and
// by-source CSR (out-edges).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace credo::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

/// One directed edge. Undirected MRF edges are stored as two directed edges
/// so that observed (statically fixed) nodes can be handled per direction
/// (§3.3).
struct DirectedEdge {
  NodeId src = 0;
  NodeId dst = 0;
};

/// Immutable CSR index over a directed edge list.
class Csr {
 public:
  Csr() = default;

  /// One adjacency entry: the opposite endpoint and the directed edge id.
  struct Entry {
    NodeId node;
    EdgeId edge;
  };

  /// Neighbors of `v` under this orientation.
  [[nodiscard]] std::span<const Entry> neighbors(NodeId v) const noexcept {
    return {entries_.data() + offsets_[v],
            entries_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return offsets_.empty() ? 0
                            : static_cast<std::uint32_t>(offsets_.size() - 1);
  }

  [[nodiscard]] std::uint64_t num_entries() const noexcept {
    return entries_.size();
  }

  /// Bytes occupied by the index (reported in the memory-footprint benches).
  [[nodiscard]] std::uint64_t index_bytes() const noexcept {
    return offsets_.size() * sizeof(std::uint64_t) +
           entries_.size() * sizeof(Entry);
  }

  /// Builds a CSR keyed by edge target: neighbors(v) are v's in-edges,
  /// Entry::node the source. Single counting-sort pass, O(n + m).
  static Csr by_target(NodeId num_nodes,
                       std::span<const DirectedEdge> edges);

  /// Builds a CSR keyed by edge source: neighbors(v) are v's out-edges,
  /// Entry::node the destination.
  static Csr by_source(NodeId num_nodes,
                       std::span<const DirectedEdge> edges);

 private:
  static Csr build(NodeId num_nodes, std::span<const DirectedEdge> edges,
                   bool key_by_target);

  std::vector<std::uint64_t> offsets_;
  std::vector<Entry> entries_;
};

}  // namespace credo::graph
