// Graph metadata and the classifier feature vector (§3.7).
//
// Credo's dispatcher decides which engine to run from metadata available
// right after parsing: node/edge counts, belief arity and the degree
// statistics. The paper's feature engineering distilled these into five
// features: number of nodes, nodes-to-edges ratio, number of beliefs,
// degree imbalance (max in-degree / max out-degree) and skew (average
// in-degree / max in-degree).
#pragma once

#include <array>
#include <cstdint>

#include "graph/factor_graph.h"

namespace credo::graph {

/// Summary statistics computed in one pass over the CSR indices.
struct GraphMetadata {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_directed_edges = 0;
  std::uint32_t beliefs = 0;  // max arity in the graph

  std::uint32_t max_in_degree = 0;
  std::uint32_t max_out_degree = 0;
  double avg_in_degree = 0.0;

  /// nodes / directed edges.
  [[nodiscard]] double nodes_to_edges_ratio() const noexcept {
    return num_directed_edges > 0
               ? static_cast<double>(num_nodes) /
                     static_cast<double>(num_directed_edges)
               : 0.0;
  }

  /// max in-degree / max out-degree.
  [[nodiscard]] double degree_imbalance() const noexcept {
    return max_out_degree > 0 ? static_cast<double>(max_in_degree) /
                                    static_cast<double>(max_out_degree)
                              : 0.0;
  }

  /// average in-degree / max in-degree.
  [[nodiscard]] double skew() const noexcept {
    return max_in_degree > 0
               ? avg_in_degree / static_cast<double>(max_in_degree)
               : 0.0;
  }

  /// The paper's five-feature vector, in its order: {num nodes,
  /// nodes-to-edges ratio, num beliefs, degree imbalance, skew}.
  [[nodiscard]] std::array<double, 5> features() const noexcept {
    return {static_cast<double>(num_nodes), nodes_to_edges_ratio(),
            static_cast<double>(beliefs), degree_imbalance(), skew()};
  }

  /// Human-readable feature names, index-aligned with features().
  static const std::array<const char*, 5>& feature_names() noexcept;
};

/// Computes metadata for a finalized graph.
[[nodiscard]] GraphMetadata compute_metadata(const FactorGraph& g);

}  // namespace credo::graph
