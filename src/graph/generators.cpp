#include "graph/generators.h"

#include <algorithm>
#include <vector>

#include "graph/builder.h"
#include "util/error.h"

namespace credo::graph {
namespace {

/// Populates the builder with `nodes` nodes: random priors, a random subset
/// observed, and the shared joint installed when configured.
void emit_nodes(GraphBuilder& b, NodeId nodes, const BeliefConfig& cfg,
                util::Prng& rng) {
  if (cfg.shared_joint) {
    b.use_shared_joint(random_joint(cfg.beliefs, cfg.coupling, rng));
  }
  b.reserve(nodes, 0);
  for (NodeId v = 0; v < nodes; ++v) {
    if (rng.bernoulli(cfg.observed_fraction)) {
      b.add_observed_node(cfg.beliefs,
                          static_cast<std::uint32_t>(
                              rng.uniform(cfg.beliefs)));
    } else {
      b.add_node(random_prior(cfg.beliefs, rng));
    }
  }
}

/// Adds one undirected edge, honoring shared vs per-edge joint mode.
void emit_undirected(GraphBuilder& b, NodeId u, NodeId v,
                     const BeliefConfig& cfg, util::Prng& rng) {
  if (cfg.shared_joint) {
    b.add_undirected(u, v);
  } else {
    b.add_undirected(u, v, random_joint(cfg.beliefs, cfg.coupling, rng));
  }
}

}  // namespace

JointMatrix random_joint(std::uint32_t arity, float coupling,
                         util::Prng& rng) {
  CREDO_CHECK_MSG(arity >= 1 && arity <= kMaxStates,
                  "arity out of range");
  JointMatrix j(arity, arity);
  const float off = arity > 1
                        ? (1.0f - coupling) / static_cast<float>(arity - 1)
                        : 0.0f;
  for (std::uint32_t r = 0; r < arity; ++r) {
    float sum = 0.0f;
    for (std::uint32_t c = 0; c < arity; ++c) {
      // Diagonal dominance (state persists across the edge with weight
      // ~coupling) plus jitter, then row-normalized.
      const float base = (r == c) ? coupling : off;
      j.at(r, c) = base * (0.5f + rng.uniform01f());
      sum += j.at(r, c);
    }
    for (std::uint32_t c = 0; c < arity; ++c) j.at(r, c) /= sum;
  }
  return j;
}

BeliefVec random_prior(std::uint32_t arity, util::Prng& rng) {
  BeliefVec b;
  b.size = arity;
  for (std::uint32_t i = 0; i < arity; ++i) {
    b.v[i] = 0.05f + rng.uniform01f();
  }
  normalize(b);
  return b;
}

FactorGraph uniform_random(NodeId nodes, std::uint64_t undirected_edges,
                           const BeliefConfig& cfg) {
  CREDO_CHECK_MSG(nodes >= 2, "need at least two nodes");
  util::Prng rng(cfg.seed);
  GraphBuilder b;
  emit_nodes(b, nodes, cfg, rng);
  for (std::uint64_t e = 0; e < undirected_edges; ++e) {
    const auto u = static_cast<NodeId>(rng.uniform(nodes));
    auto v = static_cast<NodeId>(rng.uniform(nodes - 1));
    if (v >= u) ++v;  // distinct endpoints, no self loops
    emit_undirected(b, u, v, cfg, rng);
  }
  return b.finalize();
}

FactorGraph rmat(std::uint32_t scale, std::uint64_t undirected_edges,
                 const BeliefConfig& cfg, const RmatParams& p) {
  CREDO_CHECK_MSG(scale >= 1 && scale < 32, "rmat scale out of range");
  const NodeId nodes = NodeId{1} << scale;
  util::Prng rng(cfg.seed);
  GraphBuilder b;
  emit_nodes(b, nodes, cfg, rng);
  const double ab = p.a + p.b;
  const double abc = ab + p.c;
  for (std::uint64_t e = 0; e < undirected_edges; ++e) {
    NodeId u = 0;
    NodeId v = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform01();
      if (r < p.a) {
        // upper-left quadrant: no bits set
      } else if (r < ab) {
        v |= NodeId{1} << bit;
      } else if (r < abc) {
        u |= NodeId{1} << bit;
      } else {
        u |= NodeId{1} << bit;
        v |= NodeId{1} << bit;
      }
    }
    if (u == v) v = static_cast<NodeId>((v + 1) % nodes);
    emit_undirected(b, u, v, cfg, rng);
  }
  return b.finalize();
}

FactorGraph preferential_attachment(NodeId nodes,
                                    std::uint32_t edges_per_node,
                                    const BeliefConfig& cfg) {
  CREDO_CHECK_MSG(nodes > edges_per_node && edges_per_node >= 1,
                  "need nodes > edges_per_node >= 1");
  util::Prng rng(cfg.seed);
  GraphBuilder b;
  emit_nodes(b, nodes, cfg, rng);
  // Repeated-endpoints trick: sampling a uniform element of the running
  // endpoint list is degree-proportional sampling.
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(nodes) * edges_per_node * 2);
  // Seed clique over the first edges_per_node + 1 nodes.
  for (NodeId u = 0; u <= edges_per_node; ++u) {
    for (NodeId v = u + 1; v <= edges_per_node; ++v) {
      emit_undirected(b, u, v, cfg, rng);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId u = edges_per_node + 1; u < nodes; ++u) {
    for (std::uint32_t k = 0; k < edges_per_node; ++k) {
      const NodeId v = endpoints[rng.uniform(endpoints.size())];
      if (v == u) continue;  // skip (keeps expected degree ~edges_per_node)
      emit_undirected(b, u, v, cfg, rng);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return b.finalize();
}

FactorGraph random_tree(NodeId nodes, const BeliefConfig& cfg) {
  CREDO_CHECK_MSG(nodes >= 1, "need at least one node");
  util::Prng rng(cfg.seed);
  GraphBuilder b;
  emit_nodes(b, nodes, cfg, rng);
  for (NodeId v = 1; v < nodes; ++v) {
    const auto parent = static_cast<NodeId>(rng.uniform(v));
    emit_undirected(b, parent, v, cfg, rng);
  }
  return b.finalize();
}

FactorGraph grid(std::uint32_t width, std::uint32_t height,
                 const BeliefConfig& cfg) {
  CREDO_CHECK_MSG(width >= 1 && height >= 1, "grid must be non-empty");
  util::Prng rng(cfg.seed);
  GraphBuilder b;
  const auto nodes = static_cast<NodeId>(width * height);
  emit_nodes(b, nodes, cfg, rng);
  auto id = [width](std::uint32_t x, std::uint32_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      if (x + 1 < width) emit_undirected(b, id(x, y), id(x + 1, y), cfg, rng);
      if (y + 1 < height) emit_undirected(b, id(x, y), id(x, y + 1), cfg, rng);
    }
  }
  return b.finalize();
}

}  // namespace credo::graph
