// Locality-pass orderings and their application to FactorGraph.
#include "graph/reorder.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <memory>
#include <utility>

#include "util/prng.h"

namespace credo::graph {
namespace {

/// Symmetrized adjacency for the ordering algorithms: neighbors of v over
/// the union of in- and out-edges (MRF pairs appear twice; BFS's visited
/// set and RCM's degree tie-break are insensitive to that). Built with the
/// same counting-sort pass as Csr, without edge ids.
struct SymmetricAdjacency {
  std::vector<std::uint64_t> offsets;
  std::vector<NodeId> neighbors;

  SymmetricAdjacency(NodeId n, std::span<const DirectedEdge> edges) {
    offsets.assign(static_cast<std::size_t>(n) + 1, 0);
    for (const auto& e : edges) {
      ++offsets[e.src + 1];
      ++offsets[e.dst + 1];
    }
    for (std::size_t i = 1; i < offsets.size(); ++i) {
      offsets[i] += offsets[i - 1];
    }
    neighbors.resize(2 * edges.size());
    std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto& e : edges) {
      neighbors[cursor[e.src]++] = e.dst;
      neighbors[cursor[e.dst]++] = e.src;
    }
  }

  [[nodiscard]] std::span<const NodeId> of(NodeId v) const noexcept {
    return {neighbors.data() + offsets[v],
            neighbors.data() + offsets[v + 1]};
  }
  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept {
    return static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]);
  }
};

/// Breadth-first visit sequence. Components are taken up in order of their
/// smallest-id (kBfs) or minimum-degree (kRcm) unvisited node;
/// `degree_sorted_children` additionally expands each node's neighbors in
/// increasing-degree order, which is the Cuthill-McKee rule.
std::vector<NodeId> bfs_sequence(const SymmetricAdjacency& adj, NodeId n,
                                 bool degree_sorted_children) {
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<std::uint8_t> visited(n, 0);
  std::vector<NodeId> scratch;

  for (NodeId seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    NodeId root = seed;
    if (degree_sorted_children) {
      // Cheap pseudo-peripheral stand-in: the minimum-degree node of the
      // component (found by a scouting BFS), which empirically lands on
      // the rim rather than the middle.
      const std::size_t scout_begin = order.size();
      visited[root] = 1;
      order.push_back(root);
      for (std::size_t head = scout_begin; head < order.size(); ++head) {
        for (const NodeId w : adj.of(order[head])) {
          if (!visited[w]) {
            visited[w] = 1;
            order.push_back(w);
          }
        }
      }
      for (std::size_t i = scout_begin; i < order.size(); ++i) {
        if (adj.degree(order[i]) < adj.degree(root)) root = order[i];
        visited[order[i]] = 0;
      }
      order.resize(scout_begin);
    }

    visited[root] = 1;
    order.push_back(root);
    for (std::size_t head = order.size() - 1; head < order.size(); ++head) {
      const NodeId v = order[head];
      scratch.clear();
      for (const NodeId w : adj.of(v)) {
        if (!visited[w]) {
          visited[w] = 1;
          scratch.push_back(w);
        }
      }
      if (degree_sorted_children) {
        std::stable_sort(scratch.begin(), scratch.end(),
                         [&](NodeId a, NodeId b) {
                           return adj.degree(a) < adj.degree(b);
                         });
      }
      order.insert(order.end(), scratch.begin(), scratch.end());
    }
  }
  return order;
}

std::vector<NodeId> degree_sequence(const SymmetricAdjacency& adj,
                                    NodeId n) {
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  // Descending degree, original id as tie-break: the hottest accumulators
  // and beliefs (hubs) end up packed onto a handful of shared lines.
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return adj.degree(a) > adj.degree(b);
  });
  return order;
}

}  // namespace

std::string_view reorder_mode_name(ReorderMode mode) noexcept {
  switch (mode) {
    case ReorderMode::kNone: return "none";
    case ReorderMode::kBfs: return "bfs";
    case ReorderMode::kRcm: return "rcm";
    case ReorderMode::kDegree: return "degree";
  }
  return "unknown";
}

std::optional<ReorderMode> reorder_mode_from_name(
    std::string_view name) noexcept {
  std::string key;
  key.reserve(name.size());
  for (const char c : name) {
    key.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (key == "none") return ReorderMode::kNone;
  if (key == "bfs") return ReorderMode::kBfs;
  if (key == "rcm") return ReorderMode::kRcm;
  if (key == "degree") return ReorderMode::kDegree;
  return std::nullopt;
}

ReorderMode parse_reorder_mode(std::string_view name) {
  if (const auto mode = reorder_mode_from_name(name)) return *mode;
  throw util::InvalidArgument(
      "unknown reorder mode: " + std::string(name) +
      " (expected none|bfs|rcm|degree)");
}

Permutation Permutation::identity(NodeId n) {
  Permutation p;
  p.to_new_.resize(n);
  p.to_old_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    p.to_new_[v] = v;
    p.to_old_[v] = v;
  }
  return p;
}

Permutation Permutation::from_new_to_old(std::vector<NodeId> new_to_old) {
  Permutation p;
  const auto n = static_cast<NodeId>(new_to_old.size());
  p.to_old_ = std::move(new_to_old);
  p.to_new_.assign(n, n);  // n = "unset" sentinel for the bijection check
  for (NodeId k = 0; k < n; ++k) {
    const NodeId old_id = p.to_old_[k];
    CREDO_CHECK_MSG(old_id < n && p.to_new_[old_id] == n,
                    "permutation is not a bijection");
    p.to_new_[old_id] = k;
  }
  return p;
}

Permutation Permutation::compose(const Permutation& first,
                                 const Permutation& then) {
  CREDO_CHECK_MSG(first.size() == then.size(),
                  "composed permutations must agree on size");
  const NodeId n = first.size();
  std::vector<NodeId> new_to_old(n);
  for (NodeId k = 0; k < n; ++k) {
    new_to_old[k] = first.to_old(then.to_old(k));
  }
  return from_new_to_old(std::move(new_to_old));
}

bool Permutation::is_identity() const noexcept {
  for (NodeId v = 0; v < to_new_.size(); ++v) {
    if (to_new_[v] != v) return false;
  }
  return true;
}

Permutation Permutation::inverse() const {
  Permutation p;
  p.to_new_ = to_old_;
  p.to_old_ = to_new_;
  return p;
}

Permutation compute_order(ReorderMode mode, NodeId num_nodes,
                          std::span<const DirectedEdge> edges) {
  if (mode == ReorderMode::kNone) return Permutation::identity(num_nodes);
  const SymmetricAdjacency adj(num_nodes, edges);
  std::vector<NodeId> order;
  switch (mode) {
    case ReorderMode::kBfs:
      order = bfs_sequence(adj, num_nodes, /*degree_sorted_children=*/false);
      break;
    case ReorderMode::kRcm:
      order = bfs_sequence(adj, num_nodes, /*degree_sorted_children=*/true);
      std::reverse(order.begin(), order.end());
      break;
    case ReorderMode::kDegree:
      order = degree_sequence(adj, num_nodes);
      break;
    case ReorderMode::kNone:
      break;  // handled above
  }
  return Permutation::from_new_to_old(std::move(order));
}

Permutation random_order(NodeId num_nodes, std::uint64_t seed) {
  std::vector<NodeId> order(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) order[v] = v;
  util::Prng rng(seed);
  // Fisher-Yates over the seeded Prng so relabelings are reproducible.
  for (NodeId i = num_nodes; i > 1; --i) {
    const auto j = static_cast<NodeId>(rng.uniform(i));
    std::swap(order[i - 1], order[j]);
  }
  return Permutation::from_new_to_old(std::move(order));
}

/// Private-member access for the locality pass (FactorGraph friend).
class ReorderAccess {
 public:
  /// Rebuilds `g` with node ids mapped through `perm`. Edge sort order:
  /// (target, source) under a reorder mode — consecutive combines then hit
  /// warm accumulator lines — and the parser's by-source order for kNone
  /// (so relabeled() outputs are indistinguishable from a fresh parse).
  static FactorGraph apply(const FactorGraph& g, const Permutation& perm,
                           ReorderMode mode, bool record) {
    const NodeId n = g.num_nodes();
    CREDO_CHECK_MSG(perm.size() == n, "permutation size mismatch");

    FactorGraph out;
    out.priors_ = perm.apply(g.priors_);
    out.observed_ = perm.apply(g.observed_);
    if (!g.names_.empty()) out.names_ = perm.apply(g.names_);

    // Remap endpoints, then sort edges (stably, keyed as above) carrying
    // the original edge ids along for the joint-store permutation.
    const auto m = static_cast<EdgeId>(g.edges_.size());
    std::vector<DirectedEdge> mapped(m);
    for (EdgeId e = 0; e < m; ++e) {
      mapped[e] = {perm.to_new(g.edges_[e].src), perm.to_new(g.edges_[e].dst)};
    }
    std::vector<EdgeId> order(m);
    for (EdgeId e = 0; e < m; ++e) order[e] = e;
    if (mode == ReorderMode::kNone) {
      std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
        return mapped[a].src < mapped[b].src;
      });
    } else {
      std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
        if (mapped[a].dst != mapped[b].dst) {
          return mapped[a].dst < mapped[b].dst;
        }
        return mapped[a].src < mapped[b].src;
      });
    }
    out.edges_.resize(m);
    for (EdgeId e = 0; e < m; ++e) out.edges_[e] = mapped[order[e]];

    if (g.joints_->is_shared() || g.joints_->is_closed_form()) {
      // No per-edge payload to permute: share the immutable store itself.
      out.joints_ = g.joints_;
    } else {
      std::vector<JointMatrix> permuted(m);
      for (EdgeId e = 0; e < m; ++e) permuted[e] = g.joints_->at(order[e]);
      out.joints_ = std::make_shared<JointStore>(
          JointStore::per_edge_from(std::move(permuted)));
    }

    out.in_csr_ = Csr::by_target(n, out.edges_);
    out.out_csr_ = Csr::by_source(n, out.edges_);

    if (record) {
      // Compose with any permutation g already carries so un-permutation
      // always lands back in the caller's *original* ids.
      out.reorder_ = mode;
      out.perm_ = std::make_shared<const Permutation>(
          g.perm_ ? Permutation::compose(*g.perm_, perm) : perm);
    }
    return out;
  }
};

FactorGraph reordered(const FactorGraph& g, ReorderMode mode) {
  if (mode == ReorderMode::kNone) return g;
  if (g.family() != FactorFamily::kTabular) {
    // The LDPC families encode the variable/check split as id ranges
    // (DESIGN.md §5g); any relabeling would break that convention. LDPC
    // graphs are tiny (decode-under-load serving), so the locality pass
    // has nothing to win here anyway.
    throw util::InvalidArgument(
        "graph reordering applies only to the tabular family");
  }
  const Permutation perm = compute_order(mode, g.num_nodes(), g.edges());
  return ReorderAccess::apply(g, perm, mode, /*record=*/true);
}

FactorGraph relabeled(const FactorGraph& g, const Permutation& perm) {
  CREDO_CHECK_MSG(g.permutation() == nullptr,
                  "relabeled() expects a graph without a recorded "
                  "permutation (relabel before reordering)");
  return ReorderAccess::apply(g, perm, ReorderMode::kNone, /*record=*/false);
}

std::vector<NodeId> bfs_subtree(const FactorGraph& g, NodeId root,
                                std::uint32_t max_size,
                                const std::function<bool(NodeId)>& admit) {
  std::vector<NodeId> out;
  out.reserve(std::min<std::uint64_t>(max_size, g.num_nodes()));
  out.push_back(root);
  // The result vector doubles as the BFS queue: `head` walks it while new
  // admissions append behind, which yields exactly the visit order.
  // Membership test is a linear scan of the growing slice — max_size is
  // small (a cache-sized batch), so this beats a side lookup table. The
  // scan also guarantees `admit` is consulted at most once per admitted
  // node, so claiming predicates compose cleanly.
  const auto member = [&out](NodeId v) {
    return std::find(out.begin(), out.end(), v) != out.end();
  };
  for (std::size_t head = 0; head < out.size() && out.size() < max_size;
       ++head) {
    const NodeId u = out[head];
    for (const auto& entry : g.out_csr().neighbors(u)) {
      if (out.size() >= max_size) break;
      if (!member(entry.node) && admit(entry.node)) out.push_back(entry.node);
    }
    for (const auto& entry : g.in_csr().neighbors(u)) {
      if (out.size() >= max_size) break;
      if (!member(entry.node) && admit(entry.node)) out.push_back(entry.node);
    }
  }
  return out;
}

double mean_edge_span(const FactorGraph& g) noexcept {
  if (g.num_edges() == 0) return 0.0;
  double sum = 0.0;
  for (const auto& e : g.edges()) {
    sum += std::abs(static_cast<double>(e.src) - static_cast<double>(e.dst));
  }
  return sum / static_cast<double>(g.num_edges());
}

}  // namespace credo::graph
