// Mutable construction interface for FactorGraph.
//
// Parsers and generators accumulate nodes and edges here; finalize()
// validates arities against the joint matrices and builds both CSR indices.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/factor_graph.h"

namespace credo::graph {

/// Builder for FactorGraph. Not thread-safe; build on one thread.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Starts a graph that shares one joint matrix across all edges (§2.2).
  /// Edges added afterwards must not carry their own matrices.
  void use_shared_joint(const JointMatrix& m);

  /// Switches the builder into a closed-form factor family (DESIGN.md §5g):
  /// edges carry no tables, so only the matrix-free add_edge form is valid
  /// afterwards. For the LDPC families the node-id convention is variables
  /// first, checks after; declare the split with set_ldpc_variables before
  /// finalize(). Must be called before any edges are added; incompatible
  /// with use_shared_joint.
  void use_family(FactorFamily f);

  /// LDPC families: nodes [0, v) are variables (code bits), [v, num_nodes)
  /// are parity checks. finalize() validates the split.
  void set_ldpc_variables(NodeId v);

  /// Pre-allocates for `nodes` nodes and `directed_edges` edges. Purely an
  /// optimization: per-edge matrices are ~4 KiB each, so vector regrowth
  /// is the dominant construction cost without it.
  void reserve(NodeId nodes, std::uint64_t directed_edges);

  /// Adds a node with the given prior; returns its id (dense, 0-based).
  NodeId add_node(const BeliefVec& prior, std::string name = {});

  /// Adds an observed node fixed at `state` out of `arity` states.
  NodeId add_observed_node(std::uint32_t arity, std::uint32_t state,
                           std::string name = {});

  /// Marks an existing node as observed at `state` (its prior becomes a
  /// point mass).
  void observe(NodeId v, std::uint32_t state);

  /// Adds one directed edge with its own conditional matrix (per-edge mode).
  /// NOTE: returned edge ids are provisional — finalize() re-sorts edges by
  /// source node, so they are only meaningful as insertion counters.
  EdgeId add_edge(NodeId src, NodeId dst, const JointMatrix& m);

  /// Adds one directed edge in shared-joint mode.
  EdgeId add_edge(NodeId src, NodeId dst);

  /// Adds an undirected MRF edge as two directed edges. `m` conditions dst
  /// on src; the reverse direction uses the transpose (detailed balance for
  /// symmetric potentials). Returns the id of the first of the pair.
  EdgeId add_undirected(NodeId u, NodeId v, const JointMatrix& m);

  /// Shared-joint form of add_undirected.
  EdgeId add_undirected(NodeId u, NodeId v);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(priors_.size());
  }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return edges_.size();
  }

  /// Validates and freezes the graph. The builder is left empty.
  /// Throws InvalidArgument on arity mismatches between node beliefs and
  /// edge matrices.
  FactorGraph finalize();

  /// finalize() followed by the locality pass (graph/reorder.h): the result
  /// is the reordered graph carrying its permutation. kNone is exactly
  /// finalize().
  FactorGraph finalize(ReorderMode mode);

 private:
  std::vector<BeliefVec> priors_;
  std::vector<std::uint8_t> observed_;
  std::vector<std::string> names_;
  bool any_names_ = false;
  std::vector<DirectedEdge> edges_;
  std::optional<JointMatrix> shared_;
  std::vector<JointMatrix> per_edge_;
  FactorFamily family_ = FactorFamily::kTabular;
  NodeId ldpc_variables_ = 0;
};

}  // namespace credo::graph
