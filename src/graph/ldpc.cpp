#include "graph/ldpc.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "util/error.h"
#include "util/prng.h"

namespace credo::graph::ldpc {

std::vector<std::uint32_t> Code::bit_degrees() const {
  std::vector<std::uint32_t> deg(bits, 0);
  for (const std::uint32_t b : bit_idx) ++deg[b];
  return deg;
}

Code random_regular(std::uint32_t bits, std::uint32_t dv, std::uint32_t dc,
                    std::uint64_t seed) {
  if (bits == 0 || dv == 0 || dc == 0) {
    throw util::InvalidArgument("random_regular: bits, dv, dc must be >= 1");
  }
  if (dc > bits) {
    throw util::InvalidArgument(
        "random_regular: check degree dc cannot exceed the bit count");
  }
  const std::uint64_t sockets = static_cast<std::uint64_t>(bits) * dv;
  if (sockets % dc != 0) {
    throw util::InvalidArgument(
        "random_regular: bits * dv must be divisible by dc");
  }
  const auto checks = static_cast<std::uint32_t>(sockets / dc);

  // Socket construction: dv sockets per bit, shuffled, dealt dc per check.
  std::vector<std::uint32_t> deck(sockets);
  for (std::uint32_t b = 0; b < bits; ++b) {
    for (std::uint32_t k = 0; k < dv; ++k) deck[b * dv + k] = b;
  }
  util::Prng rng(seed);
  for (std::size_t i = deck.size(); i > 1; --i) {
    std::swap(deck[i - 1], deck[rng.uniform(i)]);
  }

  // Local repair: a check that drew the same bit twice swaps the duplicate
  // with a random socket elsewhere until its dc bits are distinct. Each
  // swap is accepted only if it removes the conflict without creating one
  // in the partner check, so the pass monotonically reduces conflicts.
  const auto check_of = [dc](std::size_t s) { return s / dc; };
  const auto has_bit = [&](std::size_t c, std::uint32_t bit,
                           std::size_t skip) {
    for (std::size_t s = c * dc; s < (c + 1) * dc; ++s) {
      if (s != skip && deck[s] == bit) return true;
    }
    return false;
  };
  for (std::uint32_t pass = 0; pass < 1000; ++pass) {
    bool clean = true;
    for (std::size_t s = 0; s < deck.size(); ++s) {
      const std::size_t c = check_of(s);
      if (!has_bit(c, deck[s], s)) continue;
      clean = false;
      for (std::uint32_t attempt = 0; attempt < 64; ++attempt) {
        const std::size_t t = rng.uniform(deck.size());
        const std::size_t ct = check_of(t);
        if (ct == c) continue;
        if (has_bit(c, deck[t], s) || has_bit(ct, deck[s], t)) continue;
        std::swap(deck[s], deck[t]);
        break;
      }
    }
    if (clean) break;
  }
  for (std::size_t s = 0; s < deck.size(); ++s) {
    if (has_bit(check_of(s), deck[s], s)) {
      throw util::InvalidArgument(
          "random_regular: could not realize a simple (dv, dc) code for "
          "these parameters — try a different seed or larger bit count");
    }
  }

  Code code;
  code.bits = bits;
  code.checks = checks;
  code.row_ptr.resize(checks + 1);
  for (std::uint32_t c = 0; c <= checks; ++c) code.row_ptr[c] = c * dc;
  code.bit_idx = std::move(deck);
  for (std::uint32_t c = 0; c < checks; ++c) {
    std::sort(code.bit_idx.begin() + code.row_ptr[c],
              code.bit_idx.begin() + code.row_ptr[c + 1]);
  }
  return code;
}

std::vector<std::uint8_t> syndrome(const Code& code,
                                   std::span<const std::uint8_t> error) {
  CREDO_CHECK_MSG(error.size() == code.bits,
                  "error pattern length must equal the bit count");
  std::vector<std::uint8_t> s(code.checks, 0);
  for (std::uint32_t c = 0; c < code.checks; ++c) {
    std::uint8_t acc = 0;
    for (const std::uint32_t b : code.check_bits(c)) acc ^= error[b] & 1u;
    s[c] = acc;
  }
  return s;
}

FactorGraph build_graph(const Code& code,
                        std::span<const std::uint8_t> syndrome,
                        float crossover, FactorFamily family) {
  if (!is_ldpc(family)) {
    throw util::InvalidArgument("build_graph requires an LDPC family");
  }
  if (syndrome.size() != code.checks) {
    throw util::InvalidArgument(
        "syndrome length must equal the check count");
  }
  if (!(crossover > 0.0f && crossover < 0.5f)) {
    throw util::InvalidArgument("crossover must be in (0, 0.5)");
  }
  GraphBuilder b;
  b.use_family(family);
  b.reserve(code.bits + code.checks, 2 * code.bit_idx.size());
  // Variables first (channel likelihood for the all-zero received word:
  // each bit is in error with probability `crossover`)...
  const float channel[2] = {1.0f - crossover, crossover};
  for (std::uint32_t v = 0; v < code.bits; ++v) {
    b.add_node(BeliefVec(std::span<const float>(channel, 2)));
  }
  // ...then checks, whose prior is the syndrome bit. NOT observed: checks
  // participate in message passing like any other node.
  for (std::uint32_t c = 0; c < code.checks; ++c) {
    const float parity[2] = {syndrome[c] ? 0.0f : 1.0f,
                             syndrome[c] ? 1.0f : 0.0f};
    b.add_node(BeliefVec(std::span<const float>(parity, 2)));
  }
  b.set_ldpc_variables(code.bits);
  for (std::uint32_t c = 0; c < code.checks; ++c) {
    for (const std::uint32_t v : code.check_bits(c)) {
      b.add_edge(v, code.bits + c);
      b.add_edge(code.bits + c, v);
    }
  }
  return b.finalize();
}

std::vector<std::uint8_t> hard_decision(std::span<const BeliefVec> beliefs,
                                        std::uint32_t bits) {
  CREDO_CHECK_MSG(beliefs.size() >= bits,
                  "belief vector shorter than the bit count");
  std::vector<std::uint8_t> out(bits);
  for (std::uint32_t b = 0; b < bits; ++b) {
    out[b] = beliefs[b].v[1] > beliefs[b].v[0] ? 1 : 0;
  }
  return out;
}

bool satisfies(const Code& code, std::span<const std::uint8_t> decision,
               std::span<const std::uint8_t> syndrome) {
  CREDO_CHECK_MSG(decision.size() == code.bits &&
                      syndrome.size() == code.checks,
                  "decision/syndrome length mismatch");
  for (std::uint32_t c = 0; c < code.checks; ++c) {
    std::uint8_t acc = 0;
    for (const std::uint32_t b : code.check_bits(c)) acc ^= decision[b] & 1u;
    if (acc != (syndrome[c] & 1u)) return false;
  }
  return true;
}

}  // namespace credo::graph::ldpc
