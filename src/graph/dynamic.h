// Dynamic graphs: streaming mutation with incremental re-convergence
// (DESIGN.md §5j).
//
// FactorGraph is immutable by design — the engines' CSR walks, the reorder
// permutation and the serve cache all rely on it never changing under
// them. A DynamicGraph is the mutable twin: it holds the same node arrays
// plus slack-slotted CSRs (graph/mutable_csr.h) in the caller's ORIGINAL
// id space, applies GraphDelta batches (evidence AND topology) with
// Status-returning validation, and produces immutable `snapshot()`
// FactorGraphs the engines run unchanged. Mutation is O(degree) per op;
// the snapshot is O(n + m) with no sort (rows are kept in the canonical
// by-source order GraphBuilder produces).
//
// The §5d reorder permutation is kept *approximately* valid: snapshots
// reuse the permutation computed at the last compaction, and a compaction
// — which repacks the slotted CSRs, drops tombstoned edge slots and
// re-runs compute_order — triggers when either slack occupancy
// (dead_fraction) or `mean_edge_span` drift under the stale permutation
// crosses its threshold. Between compactions a snapshot under a reorder
// mode is therefore slightly less local than a fresh RCM/BFS would be;
// that staleness is the price of O(1) mutation, and the drift trigger
// bounds it.
//
// Node ids are dense, stable, and never reused: remove_node retires the
// node as an isolated *zombie* — every incident edge removed, the belief
// pinned to a point mass so engines skip it — rather than renumbering the
// survivors. Callers keep addressing live nodes by the ids they always
// had, warm belief tables stay index-compatible across mutations, and the
// zombie rows cost one pinned BeliefVec each until the graph is rebuilt.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/belief.h"
#include "graph/csr.h"
#include "graph/delta.h"
#include "graph/factor_graph.h"
#include "graph/mutable_csr.h"
#include "graph/reorder.h"
#include "util/error.h"

namespace credo::graph {

/// Tuning for a DynamicGraph.
struct DynamicOptions {
  /// Ordering applied to snapshots (recomputed only at compactions).
  ReorderMode reorder = ReorderMode::kNone;
  /// Spare entry slots per CSR row at build/compaction — inserts up to the
  /// slack are in-place; beyond it the row relocates.
  std::uint32_t row_slack = 2;
  /// Compact when abandoned arena slots exceed this fraction (either CSR).
  double compact_dead_fraction = 0.25;
  /// Under a reorder mode, compact when mean_edge_span under the cached
  /// permutation exceeds this multiple of its value at the last compaction.
  double compact_span_drift = 1.5;
};

/// A mutable factor graph. Not thread-safe: callers serialize mutations
/// (the serve layer holds a per-entry mutex); snapshots are immutable and
/// safe to share across threads.
class DynamicGraph {
 public:
  /// Builds from an existing graph. Any recorded permutation is folded out
  /// — the DynamicGraph always speaks original ids — and recomputed per
  /// `opts.reorder` for snapshots. Throws util::InvalidArgument for
  /// closed-form (LDPC) families: their structure encodes a code, not a
  /// mutable belief network.
  static DynamicGraph from_graph(const FactorGraph& g, DynamicOptions opts);

  /// Validates and applies one delta batch atomically: on error nothing
  /// changes; on success the version bumps, last_touched() reflects the
  /// batch, the cached snapshot is invalidated, and a compaction may run.
  [[nodiscard]] util::Status apply(const GraphDelta& delta);

  /// The immutable graph at the current version, built on first call after
  /// a mutation and cached until the next one. Under a reorder mode the
  /// snapshot carries the cached (possibly stale) permutation so engine
  /// results still come back in original ids.
  [[nodiscard]] std::shared_ptr<const FactorGraph> snapshot();

  /// Every node perturbed by the last applied delta, in original ids:
  /// delta endpoints, resolved new-node ids, and the former neighbors of
  /// removed nodes (they lost an edge even though no op named them).
  /// This is the frontier seed of the incremental re-convergence.
  [[nodiscard]] const std::vector<NodeId>& last_touched() const noexcept {
    return last_touched_;
  }

  /// Overlays converged beliefs from a previous version onto the current
  /// one: untouched nodes keep `prev`, nodes in last_touched() and nodes
  /// that did not exist yet reset to their prior. The result is a valid
  /// BpOptions::init_beliefs for the current snapshot — this is how the
  /// serve layer migrates a warm-table entry across a mutation instead of
  /// discarding it wholesale.
  [[nodiscard]] std::vector<BeliefVec> patch_beliefs(
      const std::vector<BeliefVec>& prev) const;

  /// Monotonic mutation counter; bumps once per successful apply().
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] std::uint64_t compactions() const noexcept {
    return compactions_;
  }

  /// Total node rows including zombies (dense original-id space).
  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(priors_.size());
  }
  /// Live directed edges.
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return live_edges_;
  }
  [[nodiscard]] bool removed(NodeId v) const noexcept {
    return removed_[v] != 0;
  }
  [[nodiscard]] bool observed(NodeId v) const noexcept {
    return observed_[v] != 0;
  }
  [[nodiscard]] std::uint32_t arity(NodeId v) const noexcept {
    return priors_[v].size;
  }
  /// True when a live directed edge u->v or v->u exists.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Worst abandoned-slot fraction across the two slotted CSRs — the slack
  /// half of the compaction trigger.
  [[nodiscard]] double dead_fraction() const noexcept;

  /// Mean |u - v| over live edges under the cached permutation (raw ids
  /// when reorder is kNone) — the drift half of the trigger.
  [[nodiscard]] double mean_edge_span() const noexcept;

  /// Forces a compaction: repacks both CSRs, renumbers edge slots densely,
  /// and (under a reorder mode) recomputes the permutation.
  void compact();

  [[nodiscard]] const DynamicOptions& options() const noexcept {
    return opts_;
  }

 private:
  DynamicGraph() = default;

  [[nodiscard]] util::Status validate(const GraphDelta& delta) const;
  void add_directed(NodeId src, NodeId dst, const JointMatrix* m);
  void kill_slot(EdgeId slot);
  /// Live slot id of directed edge src->dst, or nullopt.
  [[nodiscard]] std::optional<EdgeId> find_slot(NodeId src,
                                                NodeId dst) const noexcept;
  void maybe_compact();
  [[nodiscard]] std::vector<DirectedEdge> live_edges_in_order(
      std::vector<EdgeId>* slots_out) const;

  DynamicOptions opts_;

  // Node arrays, indexed by ORIGINAL id (dense, never reused).
  std::vector<BeliefVec> priors_;
  std::vector<std::uint8_t> observed_;
  std::vector<std::uint8_t> removed_;
  std::vector<std::string> names_;

  // Edge slots: endpoints in original ids plus the per-slot matrix
  // (per-edge mode). Dead slots are tombstoned (elive_ = 0) and recycled
  // through free_; compaction renumbers them densely.
  std::vector<DirectedEdge> eslots_;
  std::vector<JointMatrix> ejoint_;  // empty in shared mode
  std::vector<std::uint8_t> elive_;
  std::vector<EdgeId> free_;
  std::optional<JointMatrix> shared_;
  std::uint64_t live_edges_ = 0;

  MutableCsr out_;  // by source; rows in canonical snapshot order
  MutableCsr in_;   // by target; for remove cascades and degree checks

  // Reorder state: permutation computed at the last compaction (identity
  // when mode is kNone) and the span it achieved then.
  std::shared_ptr<const Permutation> perm_;
  double span_at_compact_ = 0.0;

  std::uint64_t version_ = 0;
  std::uint64_t compactions_ = 0;
  std::vector<NodeId> last_touched_;
  std::shared_ptr<const FactorGraph> snap_;
};

}  // namespace credo::graph
