// Belief vectors and joint (conditional) probability matrices — the numeric
// vocabulary of the whole library.
//
// Following the paper's AoS analysis (§3.4) the canonical element is a struct
// holding a statically allocated float array plus its dimension; graphs with
// up to kMaxStates states per variable are supported (the paper's largest
// use case is the 32-state image-correction workload).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/error.h"

namespace credo::graph {

/// Maximum number of discrete states a variable may take.
inline constexpr std::uint32_t kMaxStates = 32;

/// SIMD lane count the kernel layer pads to: 8 floats is one AVX register
/// (two SSE/NEON registers). Every kernel loop runs over a multiple of this
/// stride with a compile-time trip count so the compiler emits vector code
/// without peel/epilogue loops.
inline constexpr std::uint32_t kSimdLane = 8;

/// Rounds an arity up to the padded SIMD stride.
constexpr std::uint32_t padded_states(std::uint32_t n) noexcept {
  return (n + kSimdLane - 1) / kSimdLane * kSimdLane;
}

/// A (possibly unnormalized) categorical distribution over up to kMaxStates
/// states. Fixed-capacity by design: this is the AoS element of §3.4.
///
/// Kernel-layer invariant: lanes [size, padded_states(size)) are zero in any
/// vector the kernels produce, so padded-stride loops can run over whole
/// SIMD registers without masking. Lanes beyond the padded width are
/// unspecified scratch. Deliberately *not* over-aligned: unaligned vector
/// loads are cheap on every target we model, and sizeof() feeds the GPU
/// simulator's allocation/transfer metering, which must stay stable.
struct BeliefVec {
  std::array<float, kMaxStates> v{};
  std::uint32_t size = 0;

  BeliefVec() = default;

  /// Builds from a span of probabilities (size() in [1, kMaxStates]).
  explicit BeliefVec(std::span<const float> probs) {
    CREDO_CHECK_MSG(!probs.empty() && probs.size() <= kMaxStates,
                    "belief arity out of range");
    size = static_cast<std::uint32_t>(probs.size());
    for (std::uint32_t i = 0; i < size; ++i) v[i] = probs[i];
  }

  /// Uniform distribution over `n` states.
  static BeliefVec uniform(std::uint32_t n) {
    CREDO_CHECK_MSG(n >= 1 && n <= kMaxStates, "belief arity out of range");
    BeliefVec b;
    b.size = n;
    const float p = 1.0f / static_cast<float>(n);
    for (std::uint32_t i = 0; i < n; ++i) b.v[i] = p;
    return b;
  }

  /// All-ones vector of `n` states — the multiplicative identity used to
  /// reset message accumulators.
  static BeliefVec ones(std::uint32_t n) {
    CREDO_CHECK_MSG(n >= 1 && n <= kMaxStates, "belief arity out of range");
    BeliefVec b;
    b.size = n;
    for (std::uint32_t i = 0; i < n; ++i) b.v[i] = 1.0f;
    return b;
  }

  /// A point mass on `state` — the result of observing a variable.
  static BeliefVec observed(std::uint32_t n, std::uint32_t state) {
    CREDO_CHECK_MSG(state < n, "observed state out of range");
    BeliefVec b;
    b.size = n;
    b.v[state] = 1.0f;
    return b;
  }

  float& operator[](std::uint32_t i) noexcept { return v[i]; }
  const float& operator[](std::uint32_t i) const noexcept { return v[i]; }

  [[nodiscard]] std::span<const float> states() const noexcept {
    return {v.data(), size};
  }

  /// Bytes of payload actually read/written when this vector moves through
  /// memory (used by the engines' metering).
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept {
    return static_cast<std::uint64_t>(size) * sizeof(float);
  }
};

/// In-place normalization to a probability distribution. If the vector sums
/// to ~0 (all evidence contradicts), falls back to uniform so downstream
/// iterations stay finite. Returns the pre-normalization sum.
float normalize(BeliefVec& b) noexcept;

/// L1 distance between two equal-arity belief vectors (the per-node term of
/// the paper's convergence sum, Algorithm 1 line 12).
[[nodiscard]] float l1_diff(const BeliefVec& a, const BeliefVec& b) noexcept;

/// Element-wise product accumulate: acc[i] *= m[i]. Rescales the accumulator
/// if it is about to underflow (high-degree hubs multiply thousands of
/// sub-unit factors). Returns the number of flops performed.
std::uint32_t combine(BeliefVec& acc, const BeliefVec& m) noexcept;

/// Conditional probability table along a directed edge (u -> v):
/// m[i][j] = p(x_v = j | x_u = i); rows = |states(u)|, cols = |states(v)|.
/// Rows need not be normalized — the engines renormalize after combining.
struct JointMatrix {
  std::array<std::array<float, kMaxStates>, kMaxStates> m{};
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;

  JointMatrix() = default;
  JointMatrix(std::uint32_t r, std::uint32_t c) : rows(r), cols(c) {
    CREDO_CHECK_MSG(r >= 1 && r <= kMaxStates && c >= 1 && c <= kMaxStates,
                    "joint matrix shape out of range");
  }

  float& at(std::uint32_t i, std::uint32_t j) noexcept { return m[i][j]; }
  [[nodiscard]] const float& at(std::uint32_t i,
                                std::uint32_t j) const noexcept {
    return m[i][j];
  }

  /// Identity-ish matrix expressing "state tends to persist across the
  /// edge": diagonal weight `stay`, off-diagonal (1-stay)/(cols-1).
  static JointMatrix diffusion(std::uint32_t n, float stay);

  [[nodiscard]] std::uint64_t payload_bytes() const noexcept {
    return static_cast<std::uint64_t>(rows) * cols * sizeof(float);
  }
};

/// The ф/ψ update of Algorithm 1 line 8: out[j] = Σ_i in[i] * J[i][j],
/// then normalized. `in` arity must equal J.rows; result arity is J.cols.
/// Returns the number of flops performed.
std::uint32_t compute_message(const BeliefVec& in, const JointMatrix& j,
                              BeliefVec& out) noexcept;

}  // namespace credo::graph
