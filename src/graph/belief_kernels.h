// Vectorized belief kernels: the padded, stride-aligned forms behind the
// public kernels in belief.h, plus the batched multi-edge message kernel
// the engines' edge-blocked traversals use.
//
// Layout contract (see belief.h): arities are padded to kSimdLane (8
// floats), every loop's trip count is a compile-time multiple of the lane
// width, and padding lanes hold zeros — so the compiler emits straight
// vector code with no peel/epilogue loops and no masking. The fixed-width
// matvec templates below are instantiated for each padded width and
// selected by one switch per call (or per *block* of calls, in the batched
// kernel).
//
// Numerical contract: every vectorized kernel is bit-identical to the
// scalar reference in `scalar::`. Per-column matvec accumulation keeps the
// scalar row order; elementwise products and max-reductions are exact under
// any order; and the reductions that feed convergence decisions (normalize
// sums, l1_diff) deliberately stay in scalar order so engine iteration
// counts never depend on the kernel backend.
#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/belief.h"

namespace credo::graph {

/// Edges processed per batched-kernel block by the engines' edge-blocked
/// traversals. 16 edges x 32 padded states x 4 bytes of message scratch is
/// 2 KiB — comfortably L1-resident next to the (shared) joint matrix.
inline constexpr std::size_t kEdgeBlock = 16;

/// Dispatch cutoff for combine: at or below this arity the public kernel
/// takes the live-lane scalar path instead of the padded-width vector loop.
/// Measured (BENCH_kernels.json): touching kSimdLane lanes to update 2–8
/// live ones cost 0.47–0.84x at arity <= 8, while the vector loop wins
/// above (1.27x @16, 1.40x @32). Both paths are bit-identical.
///
/// l1_diff needs no cutoff: its sum feeds the convergence decision, so it
/// keeps scalar accumulation order at every arity (an ordered float
/// reduction cannot be vectorized without changing rounding) — its
/// selected path is the scalar one across the whole arity range.
inline constexpr std::uint32_t kCombineScalarMaxArity = kSimdLane;

/// Arity-aware copy: moves only the padded live lanes (plus the dimension)
/// instead of the full kMaxStates payload. The destination's lanes beyond
/// padded_states(src.size) are left untouched — callers reusing a scratch
/// vector must only read the padded width, per the layout contract.
inline void copy_belief(BeliefVec& dst, const BeliefVec& src) noexcept {
  const std::uint32_t w = padded_states(src.size);
  const float* __restrict s = src.v.data();
  float* __restrict d = dst.v.data();
  for (std::uint32_t i = 0; i < w; ++i) d[i] = s[i];
  dst.size = src.size;
}

/// Batched multi-edge message kernel (shared joint matrix, §2.2): computes
/// outs[e] = normalize(ins[e] * j) for e in [0, count). One dimension
/// switch for the whole block, and edges are processed in register-blocked
/// pairs so each joint-matrix row load is amortized across two messages.
/// Results are bit-identical to calling compute_message per edge.
/// Returns the number of flops performed.
std::uint64_t compute_messages_batched(const JointMatrix& j,
                                       const BeliefVec* const* ins,
                                       BeliefVec* outs,
                                       std::size_t count) noexcept;

/// Per-edge-matrix variant of the batched kernel (mats[e] may repeat).
/// Amortizes dispatch, not the matrix loads; all matrices in the block must
/// share one shape (the engines' graphs are fixed-arity).
std::uint64_t compute_messages_batched(const JointMatrix* const* mats,
                                       const BeliefVec* const* ins,
                                       BeliefVec* outs,
                                       std::size_t count) noexcept;

/// Scalar reference kernels: the seed's exact loop structure (runtime trip
/// counts, zero-skip branch, per-element walks). Kept as the ground truth
/// the property tests and bench_kernels compare the vectorized forms
/// against — not used by any engine.
namespace scalar {

float normalize(BeliefVec& b) noexcept;
[[nodiscard]] float l1_diff(const BeliefVec& a, const BeliefVec& b) noexcept;
std::uint32_t combine(BeliefVec& acc, const BeliefVec& m) noexcept;
std::uint32_t compute_message(const BeliefVec& in, const JointMatrix& j,
                              BeliefVec& out) noexcept;

}  // namespace scalar

namespace detail {

/// Fixed-width matvec: out[c] = sum_r in[r] * rows[r][c] over a padded
/// width W known at compile time. Column accumulators are independent
/// lanes, so vectorizing changes no result; row order matches the scalar
/// reference.
template <std::uint32_t W>
inline void matvec_padded(const float* __restrict in,
                          const std::array<float, kMaxStates>* __restrict jm,
                          std::uint32_t rows,
                          float* __restrict out) noexcept {
  for (std::uint32_t c = 0; c < W; ++c) out[c] = 0.0f;
  for (std::uint32_t r = 0; r < rows; ++r) {
    const float w = in[r];
    const float* __restrict row = jm[r].data();
    for (std::uint32_t c = 0; c < W; ++c) out[c] += w * row[c];
  }
}

/// Register-blocked pair form: two messages against one matrix walk, so
/// each row load from the (shared) joint matrix feeds two accumulator
/// sets. Per-message results are bit-identical to matvec_padded.
template <std::uint32_t W>
inline void matvec2_padded(const float* __restrict in0,
                           const float* __restrict in1,
                           const std::array<float, kMaxStates>* __restrict jm,
                           std::uint32_t rows, float* __restrict out0,
                           float* __restrict out1) noexcept {
  for (std::uint32_t c = 0; c < W; ++c) {
    out0[c] = 0.0f;
    out1[c] = 0.0f;
  }
  for (std::uint32_t r = 0; r < rows; ++r) {
    const float w0 = in0[r];
    const float w1 = in1[r];
    const float* __restrict row = jm[r].data();
    for (std::uint32_t c = 0; c < W; ++c) {
      const float m = row[c];
      out0[c] += w0 * m;
      out1[c] += w1 * m;
    }
  }
}

}  // namespace detail

}  // namespace credo::graph
