// Batched multi-edge message kernel and the scalar reference kernels.
#include "graph/belief_kernels.h"

#include <cmath>

namespace credo::graph {
namespace {

/// Block body shared by both batched entry points: pairs of edges walk the
/// matrix together (matvec2), an odd tail edge runs alone. Width is the
/// padded column count, fixed per instantiation.
template <std::uint32_t W>
void batched_block(const JointMatrix& j, const BeliefVec* const* ins,
                   BeliefVec* outs, std::size_t count) noexcept {
  const std::array<float, kMaxStates>* rows = j.m.data();
  std::size_t e = 0;
  for (; e + 1 < count; e += 2) {
    detail::matvec2_padded<W>(ins[e]->v.data(), ins[e + 1]->v.data(), rows,
                              j.rows, outs[e].v.data(),
                              outs[e + 1].v.data());
    outs[e].size = j.cols;
    outs[e + 1].size = j.cols;
    normalize(outs[e]);
    normalize(outs[e + 1]);
  }
  if (e < count) {
    detail::matvec_padded<W>(ins[e]->v.data(), rows, j.rows,
                             outs[e].v.data());
    outs[e].size = j.cols;
    normalize(outs[e]);
  }
}

}  // namespace

std::uint64_t compute_messages_batched(const JointMatrix& j,
                                       const BeliefVec* const* ins,
                                       BeliefVec* outs,
                                       std::size_t count) noexcept {
  switch (padded_states(j.cols)) {
    case 8:
      batched_block<8>(j, ins, outs, count);
      break;
    case 16:
      batched_block<16>(j, ins, outs, count);
      break;
    case 24:
      batched_block<24>(j, ins, outs, count);
      break;
    default:
      batched_block<32>(j, ins, outs, count);
      break;
  }
  return count * (2ull * j.rows * j.cols + 2ull * j.cols);
}

std::uint64_t compute_messages_batched(const JointMatrix* const* mats,
                                       const BeliefVec* const* ins,
                                       BeliefVec* outs,
                                       std::size_t count) noexcept {
  if (count == 0) return 0;
  // All matrices in a block share one shape (fixed-arity graphs), so the
  // width switch still happens once; only the row loads differ per edge.
  std::uint64_t flops = 0;
  const auto run = [&]<std::uint32_t W>() {
    for (std::size_t e = 0; e < count; ++e) {
      const JointMatrix& j = *mats[e];
      detail::matvec_padded<W>(ins[e]->v.data(), j.m.data(), j.rows,
                               outs[e].v.data());
      outs[e].size = j.cols;
      normalize(outs[e]);
      flops += 2ull * j.rows * j.cols + 2ull * j.cols;
    }
  };
  switch (padded_states(mats[0]->cols)) {
    case 8:
      run.template operator()<8>();
      break;
    case 16:
      run.template operator()<16>();
      break;
    case 24:
      run.template operator()<24>();
      break;
    default:
      run.template operator()<32>();
      break;
  }
  return flops;
}

// ---------------------------------------------------------------------------
// Scalar reference (the seed's exact loop structure).
// ---------------------------------------------------------------------------

namespace scalar {

float normalize(BeliefVec& b) noexcept {
  float sum = 0.0f;
  for (std::uint32_t i = 0; i < b.size; ++i) sum += b.v[i];
  if (sum > 0.0f && std::isfinite(sum)) {
    const float inv = 1.0f / sum;
    for (std::uint32_t i = 0; i < b.size; ++i) b.v[i] *= inv;
  } else {
    const float p = 1.0f / static_cast<float>(b.size);
    for (std::uint32_t i = 0; i < b.size; ++i) b.v[i] = p;
  }
  return sum;
}

float l1_diff(const BeliefVec& a, const BeliefVec& b) noexcept {
  float d = 0.0f;
  const std::uint32_t n = a.size < b.size ? a.size : b.size;
  for (std::uint32_t i = 0; i < n; ++i) d += std::fabs(a.v[i] - b.v[i]);
  return d;
}

std::uint32_t combine(BeliefVec& acc, const BeliefVec& m) noexcept {
  float maxv = 0.0f;
  for (std::uint32_t i = 0; i < acc.size; ++i) {
    acc.v[i] *= m.v[i];
    if (acc.v[i] > maxv) maxv = acc.v[i];
  }
  if (maxv > 0.0f && maxv < 1e-20f) {
    const float inv = 1.0f / maxv;
    for (std::uint32_t i = 0; i < acc.size; ++i) acc.v[i] *= inv;
    return 2 * acc.size;
  }
  return acc.size;
}

std::uint32_t compute_message(const BeliefVec& in, const JointMatrix& j,
                              BeliefVec& out) noexcept {
  out.size = j.cols;
  for (std::uint32_t c = 0; c < j.cols; ++c) out.v[c] = 0.0f;
  for (std::uint32_t r = 0; r < j.rows; ++r) {
    const float w = in.v[r];
    if (w == 0.0f) continue;
    for (std::uint32_t c = 0; c < j.cols; ++c) {
      out.v[c] += w * j.m[r][c];
    }
  }
  scalar::normalize(out);
  return 2u * j.rows * j.cols + 2u * j.cols;
}

}  // namespace scalar
}  // namespace credo::graph
