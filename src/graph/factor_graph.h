// The in-memory graph representation all engines operate on.
//
// A FactorGraph is an MRF/Bayesian-network-style graph of discrete random
// variables: per node a prior and a current belief vector (AoS layout, the
// winner of the §3.4 study), a directed edge list with CSR indices in both
// orientations, and a JointStore holding either one conditional-probability
// matrix per edge (the original formulation) or a single shared matrix
// (the §2.2 large-graph refinement).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/belief.h"
#include "graph/csr.h"
#include "util/error.h"

namespace credo::graph {

/// The message-kernel family a graph's factors belong to (DESIGN.md §5g).
/// Tabular factors carry dense conditional-probability tables (the paper's
/// formulation); the LDPC families carry *no* table — edges are parity
/// constraints and the check/variable updates are closed-form tanh-domain
/// kernels driven by the Tanner-graph structure alone. Dispatch is
/// per-graph (enum + branch at loop setup), never per-edge, so the tabular
/// hot path is untouched by the seam.
enum class FactorFamily : std::uint8_t {
  kTabular = 0,         // dense joint-probability tables (JointStore)
  kLdpcSumProduct = 1,  // exact tanh-domain check update
  kLdpcMinSum = 2,      // min-sum (two-min) approximation
};

/// True for the closed-form LDPC decode families.
[[nodiscard]] constexpr bool is_ldpc(FactorFamily f) noexcept {
  return f == FactorFamily::kLdpcSumProduct ||
         f == FactorFamily::kLdpcMinSum;
}

/// Canonical slug for a family ("tabular", "ldpc-sum-product",
/// "ldpc-min-sum") — the vocabulary of `--family`, `credo info` and the
/// MTX `%%family` extension header.
[[nodiscard]] std::string_view family_name(FactorFamily f) noexcept;

/// Parses a family slug; accepts "ldpc" as an alias for "ldpc-sum-product".
/// nullopt for unknown names.
[[nodiscard]] std::optional<FactorFamily> family_from_name(
    std::string_view name) noexcept;

/// Vertex orderings of the locality pass (graph/reorder.h, DESIGN.md §5d).
/// The enum lives here because FactorGraph records which ordering it was
/// built under; the algorithms live in reorder.{h,cpp}.
enum class ReorderMode : std::uint8_t {
  kNone = 0,    // parse/build order, edges sorted by source (the seed form)
  kBfs = 1,     // breadth-first per component
  kRcm = 2,     // reverse Cuthill-McKee
  kDegree = 3,  // descending-degree pack (fallback for disconnected hubs)
};

class Permutation;  // graph/reorder.h

/// Storage for edge conditional-probability matrices. One matrix per
/// directed edge, a single matrix shared by every edge (§2.2; what the GPU
/// engines place in constant memory, §3.6), or *no* matrices at all for
/// closed-form factor families whose updates are computed from structure
/// (LDPC, DESIGN.md §5g).
class JointStore {
 public:
  /// Creates a per-edge store (matrices added through push_back).
  static JointStore per_edge() { return JointStore(Mode::kPerEdge); }

  /// Creates a per-edge store by taking ownership of a prepared vector
  /// (no per-matrix copies — matters at ~4 KiB per matrix).
  static JointStore per_edge_from(std::vector<JointMatrix>&& ms) {
    JointStore s(Mode::kPerEdge);
    s.per_edge_ = std::move(ms);
    return s;
  }

  /// Creates a shared store with the given matrix.
  static JointStore shared(const JointMatrix& m) {
    JointStore s(Mode::kShared);
    s.shared_ = m;
    return s;
  }

  /// Creates an empty store for closed-form families: edges carry no
  /// tables, so the payload is genuinely zero bytes.
  static JointStore closed_form() { return JointStore(Mode::kClosedForm); }

  [[nodiscard]] bool is_shared() const noexcept {
    return mode_ == Mode::kShared;
  }
  [[nodiscard]] bool is_closed_form() const noexcept {
    return mode_ == Mode::kClosedForm;
  }

  /// Matrix for directed edge `e`. Must not be called on a closed-form
  /// store — those edges have no table (the engines dispatch per graph
  /// before ever touching this accessor).
  [[nodiscard]] const JointMatrix& at(EdgeId e) const noexcept {
    return is_shared() ? shared_ : per_edge_[e];
  }

  /// Shared matrix accessor; only valid when is_shared().
  [[nodiscard]] const JointMatrix& shared_matrix() const {
    CREDO_CHECK(is_shared());
    return shared_;
  }

  /// Appends a per-edge matrix; only valid in per-edge mode.
  void push_back(const JointMatrix& m) {
    CREDO_CHECK(mode_ == Mode::kPerEdge);
    per_edge_.push_back(m);
  }

  [[nodiscard]] std::size_t per_edge_count() const noexcept {
    return per_edge_.size();
  }

  /// Total bytes of probability-table payload (the dominant memory term the
  /// §2.2 refinement eliminates). Per-family accounting: closed-form
  /// stores hold no tables and honestly report zero.
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept {
    switch (mode_) {
      case Mode::kShared: return sizeof(JointMatrix);
      case Mode::kClosedForm: return 0;
      case Mode::kPerEdge: break;
    }
    return per_edge_.size() * sizeof(JointMatrix);
  }

 private:
  enum class Mode : std::uint8_t { kPerEdge, kShared, kClosedForm };

  explicit JointStore(Mode mode) : mode_(mode) {}

  Mode mode_;
  JointMatrix shared_{};
  std::vector<JointMatrix> per_edge_;
};

/// An immutable belief network ready for propagation. Construct through
/// GraphBuilder or a generator; engines read the structure and write only
/// the mutable belief state they copy out.
class FactorGraph {
 public:
  FactorGraph() = default;

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(priors_.size());
  }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return edges_.size();
  }

  /// Arity (number of states) of node `v`.
  [[nodiscard]] std::uint32_t arity(NodeId v) const noexcept {
    return priors_[v].size;
  }

  [[nodiscard]] const BeliefVec& prior(NodeId v) const noexcept {
    return priors_[v];
  }

  /// True when `v` was observed: its belief is statically fixed and engines
  /// must not update it (§3.3).
  [[nodiscard]] bool observed(NodeId v) const noexcept {
    return observed_[v] != 0;
  }

  [[nodiscard]] const std::vector<DirectedEdge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] const DirectedEdge& edge(EdgeId e) const noexcept {
    return edges_[e];
  }

  /// In-edge index: in_csr().neighbors(v) are the parents the Node engine
  /// pulls from.
  [[nodiscard]] const Csr& in_csr() const noexcept { return in_csr_; }
  /// Out-edge index.
  [[nodiscard]] const Csr& out_csr() const noexcept { return out_csr_; }

  [[nodiscard]] const JointStore& joints() const noexcept { return *joints_; }

  /// The joint store as a shareable handle (graph copies and the evidence
  /// overlay share one immutable table payload — ~4 KiB per edge for
  /// per-edge tabular stores; see graph/evidence.h).
  [[nodiscard]] const std::shared_ptr<const JointStore>& joints_ptr()
      const noexcept {
    return joints_;
  }

  /// Node names, if the input carried them (BIF does; MTX-belief carries
  /// numeric ids only). Empty when absent.
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }

  /// A fresh mutable belief state: every unobserved node starts at its
  /// prior, observed nodes at their fixed point-mass.
  [[nodiscard]] std::vector<BeliefVec> initial_beliefs() const {
    return priors_;
  }

  /// Total resident bytes of the representation (indices + payloads),
  /// reported by the memory-footprint benches.
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept;

  /// Which locality ordering this graph was built under (kNone unless it
  /// went through graph::reordered).
  [[nodiscard]] ReorderMode reorder_mode() const noexcept {
    return reorder_;
  }

  /// The recorded original-id -> internal-id permutation, or nullptr when
  /// node ids are the caller's own (kNone). Engine::run uses this to map
  /// result beliefs back to original ids.
  [[nodiscard]] const Permutation* permutation() const noexcept {
    return perm_.get();
  }

  /// Which message-kernel family this graph's factors belong to. Engines
  /// branch on this once at loop setup (DESIGN.md §5g).
  [[nodiscard]] FactorFamily family() const noexcept { return family_; }

  /// LDPC families only: the node-id convention is variables (code bits)
  /// first — ids [0, ldpc_variables()) — then parity checks — ids
  /// [ldpc_variables(), num_nodes()). Zero for tabular graphs.
  [[nodiscard]] NodeId ldpc_variables() const noexcept {
    return ldpc_variables_;
  }

 private:
  friend class GraphBuilder;
  friend class ReorderAccess;   // graph/reorder.cpp
  friend class EvidenceAccess;  // graph/evidence.cpp
  friend class DynamicAccess;   // graph/dynamic.cpp

  std::vector<BeliefVec> priors_;
  std::vector<std::uint8_t> observed_;
  std::vector<std::string> names_;
  std::vector<DirectedEdge> edges_;
  std::shared_ptr<const JointStore> joints_ =
      std::make_shared<JointStore>(JointStore::per_edge());
  Csr in_csr_;
  Csr out_csr_;
  ReorderMode reorder_ = ReorderMode::kNone;
  std::shared_ptr<const Permutation> perm_;
  FactorFamily family_ = FactorFamily::kTabular;
  NodeId ldpc_variables_ = 0;
};

}  // namespace credo::graph
