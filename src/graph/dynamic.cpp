#include "graph/dynamic.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <numeric>
#include <unordered_map>
#include <utility>

namespace credo::graph {

namespace {

JointMatrix transpose(const JointMatrix& m) {
  JointMatrix t(m.cols, m.rows);
  for (std::uint32_t i = 0; i < m.rows; ++i) {
    for (std::uint32_t j = 0; j < m.cols; ++j) t.at(j, i) = m.at(i, j);
  }
  return t;
}

}  // namespace

/// Private-member access seam, mirroring ReorderAccess/EvidenceAccess: the
/// one place a FactorGraph is assembled outside GraphBuilder's finalize.
class DynamicAccess {
 public:
  static std::shared_ptr<const FactorGraph> build(
      std::vector<BeliefVec> priors, std::vector<std::uint8_t> observed,
      std::vector<std::string> names, std::vector<DirectedEdge> edges,
      JointStore&& joints, ReorderMode mode,
      std::shared_ptr<const Permutation> perm) {
    auto g = std::make_shared<FactorGraph>();
    const NodeId n = static_cast<NodeId>(priors.size());
    g->in_csr_ = Csr::by_target(n, edges);
    g->out_csr_ = Csr::by_source(n, edges);
    g->priors_ = std::move(priors);
    g->observed_ = std::move(observed);
    g->names_ = std::move(names);
    g->edges_ = std::move(edges);
    g->joints_ = std::make_shared<const JointStore>(std::move(joints));
    g->reorder_ = mode;
    g->perm_ = std::move(perm);
    g->family_ = FactorFamily::kTabular;
    return g;
  }
};

DynamicGraph DynamicGraph::from_graph(const FactorGraph& g,
                                      DynamicOptions opts) {
  if (is_ldpc(g.family()) || g.joints().is_closed_form()) {
    throw util::InvalidArgument(
        "DynamicGraph: closed-form (LDPC) graphs encode a fixed code and "
        "cannot be mutated");
  }
  DynamicGraph dg;
  dg.opts_ = opts;

  const NodeId n = g.num_nodes();
  const Permutation* p = g.permutation();

  // Fold any recorded permutation out: the DynamicGraph speaks original ids.
  std::vector<BeliefVec> priors = g.initial_beliefs();
  std::vector<std::uint8_t> observed(n, 0);
  for (NodeId v = 0; v < n; ++v) observed[v] = g.observed(v) ? 1 : 0;
  dg.priors_ = p != nullptr ? p->unapply(priors) : std::move(priors);
  dg.observed_ = p != nullptr ? p->unapply(observed) : std::move(observed);
  dg.names_ = g.names().empty()
                  ? std::vector<std::string>{}
                  : (p != nullptr ? p->unapply(g.names()) : g.names());
  dg.removed_.assign(n, 0);

  dg.eslots_.reserve(g.num_edges());
  for (const DirectedEdge& e : g.edges()) {
    dg.eslots_.push_back(p != nullptr
                             ? DirectedEdge{p->to_old(e.src), p->to_old(e.dst)}
                             : e);
  }
  dg.elive_.assign(dg.eslots_.size(), 1);
  dg.live_edges_ = dg.eslots_.size();
  if (g.joints().is_shared()) {
    dg.shared_ = g.joints().shared_matrix();
  } else {
    dg.ejoint_.reserve(dg.eslots_.size());
    for (EdgeId e = 0; e < dg.eslots_.size(); ++e) {
      dg.ejoint_.push_back(g.joints().at(e));
    }
  }

  dg.out_ = MutableCsr::build(n, dg.eslots_, /*by_source=*/true,
                              opts.row_slack);
  dg.in_ = MutableCsr::build(n, dg.eslots_, /*by_source=*/false,
                             opts.row_slack);

  if (opts.reorder != ReorderMode::kNone) {
    dg.perm_ = std::make_shared<const Permutation>(
        compute_order(opts.reorder, n, dg.eslots_));
    dg.span_at_compact_ = dg.mean_edge_span();
  }
  return dg;
}

bool DynamicGraph::has_edge(NodeId u, NodeId v) const noexcept {
  return out_.contains(u, v) || out_.contains(v, u);
}

double DynamicGraph::dead_fraction() const noexcept {
  return std::max(out_.dead_fraction(), in_.dead_fraction());
}

double DynamicGraph::mean_edge_span() const noexcept {
  if (live_edges_ == 0) return 0.0;
  double sum = 0.0;
  for (EdgeId s = 0; s < eslots_.size(); ++s) {
    if (elive_[s] == 0) continue;
    NodeId u = eslots_[s].src;
    NodeId v = eslots_[s].dst;
    if (perm_ != nullptr) {
      u = perm_->to_new(u);
      v = perm_->to_new(v);
    }
    sum += std::abs(static_cast<double>(u) - static_cast<double>(v));
  }
  return sum / static_cast<double>(live_edges_);
}

std::optional<EdgeId> DynamicGraph::find_slot(NodeId src,
                                              NodeId dst) const noexcept {
  for (const MutableCsr::Entry& e : out_.row(src)) {
    if (e.node == dst) return e.edge;
  }
  return std::nullopt;
}

util::Status DynamicGraph::validate(const GraphDelta& d) const {
  using K = GraphDelta::OpKind;
  const auto invalid = [](const char* msg) {
    return util::Status(util::StatusCode::kInvalidArgument, msg);
  };

  // Priors of the nodes this delta adds, in add order — new_node(j)
  // references added[j] regardless of where the add_node op sits.
  std::vector<const BeliefVec*> added;
  for (const GraphDelta::Op& op : d.ops_) {
    if (op.kind == K::kAddNode) added.push_back(&op.prior);
  }

  const NodeId base_n = num_nodes();
  const auto resolve = [&](NodeId v) -> std::optional<NodeId> {
    if (GraphDelta::is_pending(v)) {
      const std::uint32_t j = v & ~GraphDelta::kPendingBit;
      if (j >= added.size()) return std::nullopt;
      return base_n + j;
    }
    return v < base_n ? std::optional<NodeId>(v) : std::nullopt;
  };
  const auto arity_of = [&](NodeId v) {
    return v < base_n ? priors_[v].size : added[v - base_n]->size;
  };

  // Evolving state through the op list: observation flags, removals, and
  // edge liveness overrides (canonical unordered pair), falling back to
  // the graph for anything no earlier op touched.
  std::unordered_map<NodeId, bool> obs;
  std::unordered_map<NodeId, bool> rem;
  std::map<std::pair<NodeId, NodeId>, bool> elive;
  const auto pair_key = [](NodeId u, NodeId v) {
    return std::make_pair(std::min(u, v), std::max(u, v));
  };
  const auto observed_now = [&](NodeId v) {
    const auto it = obs.find(v);
    if (it != obs.end()) return it->second;
    return v < base_n && observed_[v] != 0;
  };
  const auto removed_now = [&](NodeId v) {
    const auto it = rem.find(v);
    if (it != rem.end()) return it->second;
    return v < base_n && removed_[v] != 0;
  };
  const auto edge_live = [&](NodeId u, NodeId v) {
    const auto it = elive.find(pair_key(u, v));
    if (it != elive.end()) return it->second;
    return u < base_n && v < base_n && has_edge(u, v);
  };

  for (const GraphDelta::Op& op : d.ops_) {
    if (op.kind == K::kAddNode) {
      if (op.prior.size == 0 || op.prior.size > kMaxStates) {
        return invalid("GraphDelta: add_node prior arity out of range");
      }
      continue;
    }
    const auto a = resolve(op.a);
    if (!a.has_value()) return invalid("GraphDelta: node id out of range");
    switch (op.kind) {
      case K::kSetPrior:
        if (removed_now(*a)) {
          return invalid("GraphDelta: set_prior on a removed node");
        }
        if (op.prior.size != arity_of(*a)) {
          return invalid("GraphDelta: set_prior arity mismatch");
        }
        if (observed_now(*a)) {
          return invalid(
              "GraphDelta: set_prior on an observed node (unobserve it "
              "first — observed beliefs are pinned)");
        }
        break;
      case K::kObserve:
        if (removed_now(*a)) {
          return invalid("GraphDelta: observe on a removed node");
        }
        if (op.state >= arity_of(*a)) {
          return invalid("GraphDelta: observed state out of range");
        }
        obs[*a] = true;
        break;
      case K::kUnobserve:
        if (removed_now(*a)) {
          return invalid("GraphDelta: unobserve on a removed node");
        }
        obs[*a] = false;
        break;
      case K::kRemoveNode: {
        if (GraphDelta::is_pending(op.a)) {
          return invalid(
              "GraphDelta: remove_node on a node added in the same delta");
        }
        if (removed_now(*a)) {
          return invalid("GraphDelta: remove_node on an already-removed node");
        }
        rem[*a] = true;
        obs[*a] = true;
        // Its incident edges die with it; record so a later op in this
        // delta sees them gone.
        for (const MutableCsr::Entry& e : out_.row(*a)) {
          elive[pair_key(*a, e.node)] = false;
        }
        for (const MutableCsr::Entry& e : in_.row(*a)) {
          elive[pair_key(*a, e.node)] = false;
        }
        break;
      }
      case K::kAddEdge: {
        const auto b = resolve(op.b);
        if (!b.has_value()) return invalid("GraphDelta: node id out of range");
        if (*a == *b) return invalid("GraphDelta: add_edge self-loop");
        if (removed_now(*a) || removed_now(*b)) {
          return invalid("GraphDelta: add_edge endpoint is a removed node");
        }
        if (edge_live(*a, *b)) {
          return invalid("GraphDelta: add_edge duplicate — edge already live");
        }
        if (shared_.has_value()) {
          if (op.joint != nullptr) {
            return invalid(
                "GraphDelta: shared-joint graph — use the matrix-free "
                "add_edge overload");
          }
          if (shared_->rows != arity_of(*a) || shared_->cols != arity_of(*b)) {
            return invalid(
                "GraphDelta: add_edge arity does not match the shared joint");
          }
        } else {
          if (op.joint == nullptr) {
            return invalid(
                "GraphDelta: per-edge graph — add_edge needs a matrix");
          }
          if (op.joint->rows != arity_of(*a) ||
              op.joint->cols != arity_of(*b)) {
            return invalid("GraphDelta: add_edge matrix shape mismatch");
          }
        }
        elive[pair_key(*a, *b)] = true;
        break;
      }
      case K::kRemoveEdge: {
        const auto b = resolve(op.b);
        if (!b.has_value()) return invalid("GraphDelta: node id out of range");
        if (!edge_live(*a, *b)) {
          return invalid("GraphDelta: remove_edge on an absent edge");
        }
        elive[pair_key(*a, *b)] = false;
        break;
      }
      case K::kSetPotential: {
        const auto b = resolve(op.b);
        if (!b.has_value()) return invalid("GraphDelta: node id out of range");
        if (shared_.has_value()) {
          return invalid(
              "GraphDelta: set_potential on a shared-joint graph (the "
              "matrix is global — rebuild instead)");
        }
        const auto it = elive.find(pair_key(*a, *b));
        const bool live = it != elive.end()
                              ? it->second
                              : find_slot(*a, *b).has_value();
        if (!live) {
          return invalid("GraphDelta: set_potential on an absent edge");
        }
        if (op.joint->rows != arity_of(*a) || op.joint->cols != arity_of(*b)) {
          return invalid("GraphDelta: set_potential matrix shape mismatch");
        }
        break;
      }
      case K::kAddNode:
        break;  // handled above
    }
  }
  return util::Status::ok();
}

void DynamicGraph::add_directed(NodeId src, NodeId dst, const JointMatrix* m) {
  EdgeId slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    eslots_[slot] = DirectedEdge{src, dst};
    if (m != nullptr) ejoint_[slot] = *m;
    elive_[slot] = 1;
  } else {
    slot = static_cast<EdgeId>(eslots_.size());
    eslots_.push_back(DirectedEdge{src, dst});
    if (!shared_.has_value()) {
      ejoint_.push_back(m != nullptr ? *m : JointMatrix{});
    }
    elive_.push_back(1);
  }
  out_.add(src, MutableCsr::Entry{dst, slot});
  in_.add(dst, MutableCsr::Entry{src, slot});
  ++live_edges_;
}

void DynamicGraph::kill_slot(EdgeId slot) {
  const DirectedEdge de = eslots_[slot];
  out_.remove(de.src, slot);
  in_.remove(de.dst, slot);
  elive_[slot] = 0;
  free_.push_back(slot);
  --live_edges_;
}

util::Status DynamicGraph::apply(const GraphDelta& d) {
  using K = GraphDelta::OpKind;
  if (auto s = validate(d); !s.is_ok()) return s;

  const NodeId base_n = num_nodes();
  std::vector<NodeId> touched = d.touched();

  std::uint32_t adds = 0;
  const auto resolve = [&](NodeId v) {
    return GraphDelta::is_pending(v)
               ? base_n + (v & ~GraphDelta::kPendingBit)
               : v;
  };

  for (const GraphDelta::Op& op : d.ops_) {
    switch (op.kind) {
      case K::kAddNode: {
        priors_.push_back(op.prior);
        observed_.push_back(0);
        removed_.push_back(0);
        if (!names_.empty()) names_.emplace_back();
        out_.add_row(opts_.row_slack);
        in_.add_row(opts_.row_slack);
        touched.push_back(base_n + adds);
        ++adds;
        break;
      }
      case K::kSetPrior:
        priors_[resolve(op.a)] = op.prior;
        break;
      case K::kObserve: {
        const NodeId v = resolve(op.a);
        priors_[v] = BeliefVec::observed(priors_[v].size, op.state);
        observed_[v] = 1;
        break;
      }
      case K::kUnobserve: {
        const NodeId v = resolve(op.a);
        priors_[v] = BeliefVec::uniform(priors_[v].size);
        observed_[v] = 0;
        break;
      }
      case K::kRemoveNode: {
        const NodeId v = op.a;
        // The retiring node's neighbors lose an edge: they are perturbed
        // even though no op names them, so they must seed the frontier.
        std::vector<MutableCsr::Entry> out_row(out_.row(v).begin(),
                                               out_.row(v).end());
        for (const MutableCsr::Entry& e : out_row) {
          touched.push_back(e.node);
          kill_slot(e.edge);
        }
        std::vector<MutableCsr::Entry> in_row(in_.row(v).begin(),
                                              in_.row(v).end());
        for (const MutableCsr::Entry& e : in_row) {
          touched.push_back(e.node);
          kill_slot(e.edge);
        }
        priors_[v] = BeliefVec::observed(priors_[v].size, 0);
        observed_[v] = 1;
        removed_[v] = 1;
        break;
      }
      case K::kAddEdge: {
        const NodeId u = resolve(op.a);
        const NodeId v = resolve(op.b);
        touched.push_back(u);
        touched.push_back(v);
        if (op.joint != nullptr) {
          const JointMatrix t = transpose(*op.joint);
          add_directed(u, v, op.joint.get());
          add_directed(v, u, &t);
        } else {
          add_directed(u, v, nullptr);
          add_directed(v, u, nullptr);
        }
        break;
      }
      case K::kRemoveEdge: {
        const NodeId u = resolve(op.a);
        const NodeId v = resolve(op.b);
        touched.push_back(u);
        touched.push_back(v);
        if (const auto s = find_slot(u, v); s.has_value()) kill_slot(*s);
        if (const auto s = find_slot(v, u); s.has_value()) kill_slot(*s);
        break;
      }
      case K::kSetPotential: {
        const NodeId u = resolve(op.a);
        const NodeId v = resolve(op.b);
        touched.push_back(u);
        touched.push_back(v);
        if (const auto s = find_slot(u, v); s.has_value()) {
          ejoint_[*s] = *op.joint;
        }
        if (const auto s = find_slot(v, u); s.has_value()) {
          ejoint_[*s] = transpose(*op.joint);
        }
        break;
      }
    }
  }

  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  last_touched_ = std::move(touched);

  ++version_;
  snap_.reset();
  maybe_compact();
  return util::Status::ok();
}

std::vector<DirectedEdge> DynamicGraph::live_edges_in_order(
    std::vector<EdgeId>* slots_out) const {
  std::vector<DirectedEdge> edges;
  edges.reserve(live_edges_);
  if (slots_out != nullptr) slots_out->reserve(live_edges_);
  for (NodeId r = 0; r < out_.num_rows(); ++r) {
    for (const MutableCsr::Entry& e : out_.row(r)) {
      edges.push_back(DirectedEdge{r, e.node});
      if (slots_out != nullptr) slots_out->push_back(e.edge);
    }
  }
  return edges;
}

void DynamicGraph::maybe_compact() {
  bool need = dead_fraction() > opts_.compact_dead_fraction;
  if (!need && opts_.reorder != ReorderMode::kNone && span_at_compact_ > 0) {
    need = mean_edge_span() > opts_.compact_span_drift * span_at_compact_;
  }
  if (need) compact();
}

void DynamicGraph::compact() {
  std::vector<EdgeId> slots;
  std::vector<DirectedEdge> edges = live_edges_in_order(&slots);

  if (!shared_.has_value()) {
    std::vector<JointMatrix> joints;
    joints.reserve(slots.size());
    for (const EdgeId s : slots) joints.push_back(std::move(ejoint_[s]));
    ejoint_ = std::move(joints);
  }
  eslots_ = edges;
  elive_.assign(edges.size(), 1);
  free_.clear();

  out_ = MutableCsr::build(num_nodes(), edges, /*by_source=*/true,
                           opts_.row_slack);
  in_ = MutableCsr::build(num_nodes(), edges, /*by_source=*/false,
                          opts_.row_slack);

  if (opts_.reorder != ReorderMode::kNone) {
    perm_ = std::make_shared<const Permutation>(
        compute_order(opts_.reorder, num_nodes(), edges));
    span_at_compact_ = mean_edge_span();
  }
  ++compactions_;
  snap_.reset();
}

std::shared_ptr<const FactorGraph> DynamicGraph::snapshot() {
  if (snap_ != nullptr) return snap_;

  std::vector<EdgeId> slots;
  std::vector<DirectedEdge> edges = live_edges_in_order(&slots);

  const auto gather_joints = [&](const std::vector<EdgeId>& order) {
    std::vector<JointMatrix> out;
    out.reserve(order.size());
    for (const EdgeId s : order) out.push_back(ejoint_[s]);
    return out;
  };

  if (opts_.reorder == ReorderMode::kNone || perm_ == nullptr) {
    JointStore store = shared_.has_value()
                           ? JointStore::shared(*shared_)
                           : JointStore::per_edge_from(gather_joints(slots));
    snap_ = DynamicAccess::build(priors_, observed_, names_, std::move(edges),
                                 std::move(store), ReorderMode::kNone, nullptr);
    return snap_;
  }

  // Reorder mode: relabel through the cached permutation and sort edges by
  // (target, source) exactly as graph::reordered does, so per-edge combines
  // land on warm accumulator lines (DESIGN.md §5d).
  const Permutation& p = *perm_;
  for (DirectedEdge& e : edges) {
    e = DirectedEdge{p.to_new(e.src), p.to_new(e.dst)};
  }
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     if (edges[x].dst != edges[y].dst) {
                       return edges[x].dst < edges[y].dst;
                     }
                     return edges[x].src < edges[y].src;
                   });
  std::vector<DirectedEdge> sorted;
  sorted.reserve(edges.size());
  std::vector<EdgeId> sorted_slots;
  sorted_slots.reserve(slots.size());
  for (const std::size_t i : order) {
    sorted.push_back(edges[i]);
    sorted_slots.push_back(slots[i]);
  }

  JointStore store =
      shared_.has_value() ? JointStore::shared(*shared_)
                          : JointStore::per_edge_from(gather_joints(sorted_slots));
  snap_ = DynamicAccess::build(
      p.apply(priors_), p.apply(observed_),
      names_.empty() ? std::vector<std::string>{} : p.apply(names_),
      std::move(sorted), std::move(store), opts_.reorder, perm_);
  return snap_;
}

std::vector<BeliefVec> DynamicGraph::patch_beliefs(
    const std::vector<BeliefVec>& prev) const {
  std::vector<BeliefVec> out = prev;
  out.resize(num_nodes());
  for (std::size_t v = prev.size(); v < out.size(); ++v) {
    out[v] = priors_[v];
  }
  for (const NodeId v : last_touched_) out[v] = priors_[v];
  return out;
}

}  // namespace credo::graph
