// AoS and SoA belief storage layouts (§3.4).
//
// The paper implemented both, profiled them with cachegrind, found the AoS
// layout performed ~56% fewer data-cache accesses on the BP access pattern,
// and shipped AoS. FactorGraph therefore stores beliefs as an array of
// BeliefVec structs; this header keeps both layouts alive behind a common
// interface so the choice can be reproduced (bench_aos_soa drives them
// through the cache simulator) and ablated.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/belief.h"
#include "graph/csr.h"

namespace credo::graph {

/// Storage layout selector.
enum class BeliefLayout { kAos, kSoa };

/// A byte range touched by one logical access; consumed by the cache
/// simulator.
struct MemRange {
  std::uintptr_t addr;
  std::uint32_t bytes;
};

/// Common interface over the two layouts. Virtual dispatch is acceptable
/// here: this type exists for the layout study, not the engines' hot path
/// (they use FactorGraph's AoS vectors directly).
class BeliefStore {
 public:
  virtual ~BeliefStore() = default;

  [[nodiscard]] virtual BeliefLayout layout() const noexcept = 0;
  [[nodiscard]] virtual NodeId size() const noexcept = 0;

  /// Reads node `v`'s belief into `out`.
  virtual void get(NodeId v, BeliefVec& out) const = 0;

  /// Writes node `v`'s belief.
  virtual void set(NodeId v, const BeliefVec& b) = 0;

  /// Resident bytes.
  [[nodiscard]] virtual std::uint64_t bytes() const noexcept = 0;

  /// Reports the byte ranges a get()/set() of node `v` touches, for cache
  /// simulation.
  virtual void access_ranges(
      NodeId v, const std::function<void(MemRange)>& sink) const = 0;
};

/// Array-of-structs: one BeliefVec (padded float[32] + size) per node.
/// Values and dimension share a cache line; an access touches one
/// contiguous range.
class AosBeliefStore final : public BeliefStore {
 public:
  AosBeliefStore(NodeId n, std::uint32_t arity);

  [[nodiscard]] BeliefLayout layout() const noexcept override {
    return BeliefLayout::kAos;
  }
  [[nodiscard]] NodeId size() const noexcept override {
    return static_cast<NodeId>(data_.size());
  }
  void get(NodeId v, BeliefVec& out) const override;
  void set(NodeId v, const BeliefVec& b) override;
  [[nodiscard]] std::uint64_t bytes() const noexcept override {
    return data_.size() * sizeof(BeliefVec);
  }
  void access_ranges(
      NodeId v, const std::function<void(MemRange)>& sink) const override;

 private:
  std::vector<BeliefVec> data_;
};

/// Struct-of-arrays: one flattened, parallel-indexed float array for all
/// probabilities plus a separate dimensions array. An access touches two
/// disjoint ranges (values slice + dimension entry).
class SoaBeliefStore final : public BeliefStore {
 public:
  SoaBeliefStore(NodeId n, std::uint32_t arity);

  [[nodiscard]] BeliefLayout layout() const noexcept override {
    return BeliefLayout::kSoa;
  }
  [[nodiscard]] NodeId size() const noexcept override {
    return static_cast<NodeId>(sizes_.size());
  }
  void get(NodeId v, BeliefVec& out) const override;
  void set(NodeId v, const BeliefVec& b) override;
  [[nodiscard]] std::uint64_t bytes() const noexcept override {
    return values_.size() * sizeof(float) +
           sizes_.size() * sizeof(std::uint32_t);
  }
  void access_ranges(
      NodeId v, const std::function<void(MemRange)>& sink) const override;

 private:
  std::vector<float> values_;       // n * stride_, parallel-indexed
  std::vector<std::uint32_t> sizes_;
  std::uint32_t stride_;
};

/// Factory keyed by layout.
[[nodiscard]] std::unique_ptr<BeliefStore> make_belief_store(
    BeliefLayout layout, NodeId n, std::uint32_t arity);

}  // namespace credo::graph
