// AoS and SoA belief storage layouts (§3.4).
//
// The paper implemented both, profiled them with cachegrind, found the AoS
// layout performed ~56% fewer data-cache accesses on the BP access pattern,
// and shipped AoS. FactorGraph therefore stores beliefs as an array of
// BeliefVec structs; this header keeps both layouts alive behind a common
// interface so the choice can be reproduced (bench_aos_soa drives them
// through the cache simulator) and ablated.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/belief.h"
#include "graph/csr.h"

namespace credo::graph {

/// Storage layout selector.
enum class BeliefLayout { kAos, kSoa };

/// A byte range touched by one logical access; consumed by the cache
/// simulator.
struct MemRange {
  std::uintptr_t addr;
  std::uint32_t bytes;
};

/// Common interface over the two layouts. Virtual dispatch is acceptable
/// here: this type exists for the layout study, not the engines' hot path
/// (they use FactorGraph's AoS vectors directly).
class BeliefStore {
 public:
  virtual ~BeliefStore() = default;

  [[nodiscard]] virtual BeliefLayout layout() const noexcept = 0;
  [[nodiscard]] virtual NodeId size() const noexcept = 0;

  /// Reads node `v`'s belief into `out`.
  virtual void get(NodeId v, BeliefVec& out) const = 0;

  /// Writes node `v`'s belief.
  virtual void set(NodeId v, const BeliefVec& b) = 0;

  /// Resident bytes.
  [[nodiscard]] virtual std::uint64_t bytes() const noexcept = 0;

  /// Reports the byte ranges a get()/set() of node `v` touches, for cache
  /// simulation.
  virtual void access_ranges(
      NodeId v, const std::function<void(MemRange)>& sink) const = 0;
};

/// Array-of-structs: one BeliefVec (padded float[32] + size) per node.
/// Values and dimension share a cache line; an access touches one
/// contiguous range.
class AosBeliefStore final : public BeliefStore {
 public:
  AosBeliefStore(NodeId n, std::uint32_t arity);

  [[nodiscard]] BeliefLayout layout() const noexcept override {
    return BeliefLayout::kAos;
  }
  [[nodiscard]] NodeId size() const noexcept override {
    return static_cast<NodeId>(data_.size());
  }
  void get(NodeId v, BeliefVec& out) const override;
  void set(NodeId v, const BeliefVec& b) override;
  [[nodiscard]] std::uint64_t bytes() const noexcept override {
    return data_.size() * sizeof(BeliefVec);
  }
  void access_ranges(
      NodeId v, const std::function<void(MemRange)>& sink) const override;

 private:
  std::vector<BeliefVec> data_;
};

/// Struct-of-arrays: one flattened, parallel-indexed float array for all
/// probabilities plus a separate dimensions array. An access touches two
/// disjoint ranges (values slice + dimension entry).
class SoaBeliefStore final : public BeliefStore {
 public:
  SoaBeliefStore(NodeId n, std::uint32_t arity);

  [[nodiscard]] BeliefLayout layout() const noexcept override {
    return BeliefLayout::kSoa;
  }
  [[nodiscard]] NodeId size() const noexcept override {
    return static_cast<NodeId>(sizes_.size());
  }
  void get(NodeId v, BeliefVec& out) const override;
  void set(NodeId v, const BeliefVec& b) override;
  [[nodiscard]] std::uint64_t bytes() const noexcept override {
    return values_.size() * sizeof(float) +
           sizes_.size() * sizeof(std::uint32_t);
  }
  void access_ranges(
      NodeId v, const std::function<void(MemRange)>& sink) const override;

 private:
  std::vector<float> values_;       // n * stride_, parallel-indexed
  std::vector<std::uint32_t> sizes_;
  std::uint32_t stride_;
};

/// Factory keyed by layout.
[[nodiscard]] std::unique_ptr<BeliefStore> make_belief_store(
    BeliefLayout layout, NodeId n, std::uint32_t arity);

class FactorGraph;

/// The locality pass's arena form of AoS (DESIGN.md §5d): all beliefs in
/// one contiguous float buffer, each node occupying exactly
/// padded_states(arity) lanes at a prefix-sum offset, in the graph's
/// (possibly reordered) node order. Unlike AosBeliefStore — whose fixed
/// sizeof(BeliefVec) slots spend 136 bytes per node regardless of arity —
/// the arena packs an arity-4 node into 32 bytes, so a BFS/RCM ordering
/// puts ~4x more neighborhoods on every cache line. The cachesim reorder
/// experiment replays traversals against this layout; per-arity SIMD
/// padding from the kernel layer is preserved, so kernels could run on the
/// arena slices unchanged.
class PackedAosBeliefStore final : public BeliefStore {
 public:
  /// Lays out one slot per node of `g`, in g's node order, initialized to
  /// g's priors.
  explicit PackedAosBeliefStore(const FactorGraph& g);

  [[nodiscard]] BeliefLayout layout() const noexcept override {
    return BeliefLayout::kAos;
  }
  [[nodiscard]] NodeId size() const noexcept override {
    return static_cast<NodeId>(sizes_.size());
  }
  void get(NodeId v, BeliefVec& out) const override;
  void set(NodeId v, const BeliefVec& b) override;
  [[nodiscard]] std::uint64_t bytes() const noexcept override {
    return values_.size() * sizeof(float) +
           offsets_.size() * sizeof(std::uint64_t) +
           sizes_.size() * sizeof(std::uint32_t);
  }
  void access_ranges(
      NodeId v, const std::function<void(MemRange)>& sink) const override;

  /// Offset (in floats) of node `v`'s slice inside the arena.
  [[nodiscard]] std::uint64_t offset(NodeId v) const noexcept {
    return offsets_[v];
  }

 private:
  std::vector<float> values_;            // sum of padded_states(arity)
  std::vector<std::uint64_t> offsets_;   // n + 1 prefix sums
  std::vector<std::uint32_t> sizes_;
};

}  // namespace credo::graph
