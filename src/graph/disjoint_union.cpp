#include "graph/disjoint_union.h"

#include "graph/builder.h"
#include "graph/reorder.h"
#include "util/error.h"

namespace credo::graph {

namespace {

std::uint32_t argmax_state(const BeliefVec& b) noexcept {
  std::uint32_t best = 0;
  for (std::uint32_t s = 1; s < b.size; ++s) {
    if (b.v[s] > b.v[best]) best = s;
  }
  return best;
}

}  // namespace

std::vector<BeliefVec> GraphUnion::scatter(std::span<const BeliefVec> fused,
                                           std::size_t i) const {
  const Part& p = parts_[i];
  std::vector<BeliefVec> out(p.nodes);
  for (NodeId l = 0; l < p.nodes; ++l) out[l] = fused[global_id(i, l)];
  return out;
}

bool GraphUnion::part_syndrome_satisfied(std::span<const BeliefVec> fused,
                                         std::size_t i) const {
  CREDO_CHECK_MSG(is_ldpc(graph_.family()),
                  "part_syndrome_satisfied requires an LDPC union");
  const Part& p = parts_[i];
  const Csr& in = graph_.in_csr();
  for (NodeId l = p.vars; l < p.nodes; ++l) {
    const NodeId c = global_id(i, l);
    // The check's syndrome bit rides in its prior: [0,1] targets odd
    // parity, [1,0] even (graph::ldpc build convention).
    const bool target = graph_.prior(c).v[1] > graph_.prior(c).v[0];
    bool parity = false;
    for (const auto& entry : in.neighbors(c)) {
      parity ^= fused[entry.node].v[1] > fused[entry.node].v[0];
    }
    if (parity != target) return false;
  }
  return true;
}

GraphUnion disjoint_union(std::span<const FactorGraph* const> parts) {
  if (parts.empty()) {
    throw util::InvalidArgument("disjoint_union: empty part list");
  }
  const FactorFamily family = parts[0]->family();
  for (const FactorGraph* p : parts) {
    if (p->family() != family) {
      throw util::InvalidArgument(
          "disjoint_union: every part must share one factor family");
    }
    if (p->permutation() != nullptr) {
      throw util::InvalidArgument(
          "disjoint_union: parts must carry no reorder permutation (fuse "
          "first, reorder the union if at all)");
    }
  }

  GraphUnion u;
  u.parts_.reserve(parts.size());
  NodeId var_base = 0;
  NodeId check_total = 0;
  std::uint64_t total_edges = 0;
  for (const FactorGraph* p : parts) {
    GraphUnion::Part part;
    part.vars = is_ldpc(family) ? p->ldpc_variables() : p->num_nodes();
    part.nodes = p->num_nodes();
    part.var_base = var_base;
    part.check_base = check_total;
    var_base += part.vars;
    check_total += part.nodes - part.vars;
    total_edges += p->num_edges();
    u.parts_.push_back(part);
  }
  u.total_vars_ = var_base;

  GraphBuilder b;
  if (family != FactorFamily::kTabular) {
    b.use_family(family);
    b.set_ldpc_variables(var_base);
  }
  b.reserve(var_base + check_total, total_edges);

  // Nodes in global-id order: every part's variable block first (the LDPC
  // variables-first contract must hold for the union as a whole), then the
  // check blocks in the same part order.
  std::vector<NodeId> observed_at;  // deferred: ids assigned sequentially
  std::vector<std::uint32_t> observed_state;
  const auto add_block = [&](std::size_t i, NodeId lo, NodeId hi) {
    const FactorGraph& p = *parts[i];
    for (NodeId l = lo; l < hi; ++l) {
      const NodeId gid = b.add_node(p.prior(l));
      if (p.observed(l)) {
        observed_at.push_back(gid);
        observed_state.push_back(argmax_state(p.prior(l)));
      }
    }
  };
  for (std::size_t i = 0; i < parts.size(); ++i) {
    add_block(i, 0, u.parts_[i].vars);
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    add_block(i, u.parts_[i].vars, u.parts_[i].nodes);
  }
  for (std::size_t k = 0; k < observed_at.size(); ++k) {
    b.observe(observed_at[k], observed_state[k]);
  }

  // Edges, renumbered through the part table. Tabular unions go per-edge
  // even when a part used a shared matrix — parts may share different
  // matrices, and correctness beats the payload saving here.
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const FactorGraph& p = *parts[i];
    const auto& edges = p.edges();
    for (EdgeId e = 0; e < edges.size(); ++e) {
      const NodeId src = u.global_id(i, edges[e].src);
      const NodeId dst = u.global_id(i, edges[e].dst);
      if (family == FactorFamily::kTabular) {
        b.add_edge(src, dst, p.joints().at(e));
      } else {
        b.add_edge(src, dst);
      }
    }
  }

  u.graph_ = b.finalize();
  return u;
}

}  // namespace credo::graph
