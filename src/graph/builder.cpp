#include "graph/builder.h"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/reorder.h"
#include "util/error.h"

namespace credo::graph {
namespace {

JointMatrix transpose(const JointMatrix& m) {
  JointMatrix t(m.cols, m.rows);
  for (std::uint32_t r = 0; r < m.rows; ++r) {
    for (std::uint32_t c = 0; c < m.cols; ++c) {
      t.at(c, r) = m.at(r, c);
    }
  }
  return t;
}

}  // namespace

void GraphBuilder::use_shared_joint(const JointMatrix& m) {
  CREDO_CHECK_MSG(per_edge_.empty(),
                  "cannot switch to a shared joint after per-edge matrices "
                  "were added");
  CREDO_CHECK_MSG(family_ == FactorFamily::kTabular,
                  "shared joint matrices apply only to the tabular family");
  CREDO_CHECK_MSG(m.rows == m.cols,
                  "a shared joint matrix must be square: every edge links "
                  "variables of the same arity");
  shared_ = m;
}

void GraphBuilder::use_family(FactorFamily f) {
  if (f == FactorFamily::kTabular) {
    CREDO_CHECK_MSG(family_ == FactorFamily::kTabular,
                    "cannot switch a closed-form builder back to tabular");
    return;
  }
  CREDO_CHECK_MSG(edges_.empty() && per_edge_.empty(),
                  "use_family must be called before edges are added");
  CREDO_CHECK_MSG(!shared_.has_value(),
                  "closed-form families are incompatible with a shared "
                  "joint matrix");
  family_ = f;
}

void GraphBuilder::set_ldpc_variables(NodeId v) {
  CREDO_CHECK_MSG(is_ldpc(family_),
                  "set_ldpc_variables requires an LDPC family "
                  "(use_family first)");
  ldpc_variables_ = v;
}

void GraphBuilder::reserve(NodeId nodes, std::uint64_t directed_edges) {
  priors_.reserve(nodes);
  observed_.reserve(nodes);
  names_.reserve(nodes);
  edges_.reserve(directed_edges);
  if (!shared_.has_value() && family_ == FactorFamily::kTabular) {
    per_edge_.reserve(directed_edges);
  }
}

NodeId GraphBuilder::add_node(const BeliefVec& prior, std::string name) {
  CREDO_CHECK_MSG(prior.size >= 1 && prior.size <= kMaxStates,
                  "node arity out of range");
  const auto id = static_cast<NodeId>(priors_.size());
  priors_.push_back(prior);
  observed_.push_back(0);
  if (!name.empty()) any_names_ = true;
  names_.push_back(std::move(name));
  return id;
}

NodeId GraphBuilder::add_observed_node(std::uint32_t arity,
                                       std::uint32_t state,
                                       std::string name) {
  const NodeId id = add_node(BeliefVec::observed(arity, state),
                             std::move(name));
  observed_[id] = 1;
  return id;
}

void GraphBuilder::observe(NodeId v, std::uint32_t state) {
  CREDO_CHECK_MSG(v < priors_.size(), "node id out of range");
  priors_[v] = BeliefVec::observed(priors_[v].size, state);
  observed_[v] = 1;
}

EdgeId GraphBuilder::add_edge(NodeId src, NodeId dst, const JointMatrix& m) {
  CREDO_CHECK_MSG(!shared_.has_value(),
                  "per-edge matrix supplied to a shared-joint builder");
  CREDO_CHECK_MSG(family_ == FactorFamily::kTabular,
                  "per-edge matrix supplied to a closed-form family builder");
  CREDO_CHECK_MSG(src < priors_.size() && dst < priors_.size(),
                  "edge endpoint out of range");
  if (m.rows != priors_[src].size || m.cols != priors_[dst].size) {
    throw util::InvalidArgument(
        "joint matrix shape does not match endpoint arities");
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({src, dst});
  per_edge_.push_back(m);
  return id;
}

EdgeId GraphBuilder::add_edge(NodeId src, NodeId dst) {
  CREDO_CHECK_MSG(shared_.has_value() || family_ != FactorFamily::kTabular,
                  "matrix-free edge added before use_shared_joint() or "
                  "use_family()");
  CREDO_CHECK_MSG(src < priors_.size() && dst < priors_.size(),
                  "edge endpoint out of range");
  if (shared_.has_value() && (shared_->rows != priors_[src].size ||
                              shared_->cols != priors_[dst].size)) {
    throw util::InvalidArgument(
        "shared joint matrix shape does not match endpoint arities");
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({src, dst});
  return id;
}

EdgeId GraphBuilder::add_undirected(NodeId u, NodeId v,
                                    const JointMatrix& m) {
  const EdgeId first = add_edge(u, v, m);
  add_edge(v, u, transpose(m));
  return first;
}

EdgeId GraphBuilder::add_undirected(NodeId u, NodeId v) {
  const EdgeId first = add_edge(u, v);
  add_edge(v, u);
  return first;
}

FactorGraph GraphBuilder::finalize() {
  if (is_ldpc(family_)) {
    // Structural invariants the closed-form kernels rely on: the id-range
    // variable/check split, binary nodes, a bipartite variable<->check edge
    // set, and a reverse edge for every directed edge (the decoders store
    // one message per direction and exclude the reverse when updating).
    if (ldpc_variables_ == 0 || ldpc_variables_ >= priors_.size()) {
      throw util::InvalidArgument(
          "LDPC graph needs variables in [1, num_nodes): call "
          "set_ldpc_variables");
    }
    for (const auto& p : priors_) {
      if (p.size != 2) {
        throw util::InvalidArgument("LDPC nodes must be binary (arity 2)");
      }
    }
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(edges_.size() * 2);
    for (const auto& e : edges_) {
      const bool src_var = e.src < ldpc_variables_;
      const bool dst_var = e.dst < ldpc_variables_;
      if (src_var == dst_var) {
        throw util::InvalidArgument(
            "LDPC edges must connect a variable and a check node");
      }
      seen.insert((static_cast<std::uint64_t>(e.src) << 32) | e.dst);
    }
    for (const auto& e : edges_) {
      if (!seen.count((static_cast<std::uint64_t>(e.dst) << 32) | e.src)) {
        throw util::InvalidArgument(
            "LDPC edges must come in directed pairs (Tanner-graph messages "
            "flow both ways)");
      }
    }
  }
  FactorGraph g;
  g.family_ = family_;
  g.ldpc_variables_ = ldpc_variables_;
  g.priors_ = std::move(priors_);
  g.observed_ = std::move(observed_);
  if (any_names_) g.names_ = std::move(names_);
  // Edges are stored sorted by source node: the edge engines then stream
  // the source beliefs sequentially (coalesced on the GPU), which is the
  // access pattern the paper's Edge paradigm relies on.
  std::vector<EdgeId> order(edges_.size());
  for (EdgeId i = 0; i < edges_.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](EdgeId a, EdgeId b) {
                     return edges_[a].src < edges_[b].src;
                   });
  g.edges_.resize(edges_.size());
  for (EdgeId i = 0; i < edges_.size(); ++i) g.edges_[i] = edges_[order[i]];
  edges_.clear();
  if (family_ != FactorFamily::kTabular) {
    g.joints_ = std::make_shared<JointStore>(JointStore::closed_form());
  } else if (shared_.has_value()) {
    g.joints_ = std::make_shared<JointStore>(JointStore::shared(*shared_));
  } else {
    std::vector<JointMatrix> permuted(g.edges_.size());
    for (EdgeId i = 0; i < g.edges_.size(); ++i) {
      permuted[i] = per_edge_[order[i]];
    }
    per_edge_.clear();
    g.joints_ = std::make_shared<JointStore>(
        JointStore::per_edge_from(std::move(permuted)));
  }
  g.in_csr_ = Csr::by_target(g.num_nodes(), g.edges_);
  g.out_csr_ = Csr::by_source(g.num_nodes(), g.edges_);
  *this = GraphBuilder();
  return g;
}

FactorGraph GraphBuilder::finalize(ReorderMode mode) {
  return reordered(finalize(), mode);
}

}  // namespace credo::graph
