// Synthetic belief-network generators — the stand-ins for Table 1.
//
// The paper's benchmark suite mixes synthetic n-node/4n-edge graphs with
// real networks from networkrepository.com (Kronecker kron-g500 rows, and
// social/web graphs such as Gowalla, LiveJournal and Twitter). Those
// downloads are unavailable offline, so each family is generated: uniform
// random graphs for the synthetic rows, R-MAT for the Kronecker rows, and
// preferential attachment (heavy-tailed degrees) for the social/web rows.
// Generators also synthesize priors and joint matrices, mirroring the
// paper's "randomly encode generated beliefs into the input files".
#pragma once

#include <cstdint>

#include "graph/factor_graph.h"
#include "util/prng.h"

namespace credo::graph {

/// Common knobs for belief synthesis.
struct BeliefConfig {
  /// States per variable (2 = true/false, 3 = virus SIR, 32 = image bits).
  std::uint32_t beliefs = 2;
  /// Fraction of nodes observed (statically fixed) — the "new information"
  /// whose effects BP propagates.
  double observed_fraction = 0.05;
  /// Whether all edges share one joint matrix (§2.2) or each edge gets its
  /// own randomized one.
  bool shared_joint = true;
  /// Diagonal dominance of generated joint matrices (how strongly state
  /// persists across an edge). In (1/beliefs, 1).
  float coupling = 0.7f;
  std::uint64_t seed = 42;
};

/// Uniform random multigraph: `undirected_edges` distinct-endpoint edges
/// placed uniformly (the paper's synthetic "NxM" rows; each undirected edge
/// becomes two directed edges).
[[nodiscard]] FactorGraph uniform_random(NodeId nodes,
                                         std::uint64_t undirected_edges,
                                         const BeliefConfig& cfg);

/// R-MAT / Kronecker-style generator (a,b,c,d quadrant probabilities;
/// Graph500 uses 0.57/0.19/0.19/0.05) — stand-in for the kron-g500 rows.
struct RmatParams {
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
};
[[nodiscard]] FactorGraph rmat(std::uint32_t scale,
                               std::uint64_t undirected_edges,
                               const BeliefConfig& cfg,
                               const RmatParams& p = {});

/// Preferential attachment (Barabási–Albert-like): each new node attaches
/// to `edges_per_node` existing nodes chosen by degree — stand-in for the
/// social/web rows (heavy-tailed degree distribution).
[[nodiscard]] FactorGraph preferential_attachment(NodeId nodes,
                                                  std::uint32_t edges_per_node,
                                                  const BeliefConfig& cfg);

/// Uniform random tree on `nodes` nodes (random parent among earlier
/// nodes) — acyclic input for the exact/tree BP engine and the §2.1.1
/// algorithm comparison.
[[nodiscard]] FactorGraph random_tree(NodeId nodes, const BeliefConfig& cfg);

/// 4-connected width x height lattice — the image-correction MRF of the
/// paper's third use case.
[[nodiscard]] FactorGraph grid(std::uint32_t width, std::uint32_t height,
                               const BeliefConfig& cfg);

/// A random row-normalized joint matrix with diagonal weight `coupling`.
[[nodiscard]] JointMatrix random_joint(std::uint32_t arity, float coupling,
                                       util::Prng& rng);

/// A random normalized prior.
[[nodiscard]] BeliefVec random_prior(std::uint32_t arity, util::Prng& rng);

}  // namespace credo::graph
