// Incremental evidence deltas (DESIGN.md §5h).
//
// A serve-layer re-query rarely changes the graph — it changes the
// *evidence*: a handful of priors move, a variable gets observed or
// released. An EvidenceDelta is that list of operations, expressed in the
// caller's ORIGINAL node ids; `with_evidence` applies it to an existing
// FactorGraph as a cheap structural copy (the edge list, CSR indices and
// the joint-table payload are shared or copied as indices only — the
// ~4 KiB-per-edge tables live behind FactorGraph's shared JointStore
// handle). The `touched()` node list is what seeds the §3.5 frontier for
// re-convergence of just the perturbed region.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/belief.h"
#include "graph/csr.h"
#include "graph/factor_graph.h"
#include "util/error.h"

namespace credo::graph {

/// An ordered list of evidence operations against one graph. Ops apply in
/// insertion order, so a later op on the same node wins. Node ids are the
/// caller's original ids (pre-reorder).
class EvidenceDelta {
 public:
  /// Replaces `node`'s prior (and current-belief starting point) with
  /// `prior`. The node must be unobserved at apply time and the arity must
  /// match. The prior need not be normalized.
  EvidenceDelta& set_prior(NodeId node, const BeliefVec& prior);

  /// Pins `node` to a point mass on `state` (observes it).
  EvidenceDelta& observe(NodeId node, std::uint32_t state);

  /// Releases an observed `node`: cleared to a uniform prior over its
  /// arity and free to update again.
  EvidenceDelta& unobserve(NodeId node);

  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }

  /// Checks every op against `g`: ids in range, set_prior arity matches,
  /// observe states in range. Status (never throws) so the serve layer can
  /// reject a bad request without exceptions.
  [[nodiscard]] util::Status validate(const FactorGraph& g) const noexcept;

  /// Sorted, deduplicated list of every node the delta touches (original
  /// ids) — the frontier seed of an incremental re-convergence.
  [[nodiscard]] std::vector<NodeId> touched() const;

  /// FNV-1a content hash over the op list. Two requests with the same
  /// delta hash equal; part of the warm-state fingerprint (serve layer).
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

 private:
  friend class EvidenceAccess;

  enum class OpKind : std::uint8_t { kSetPrior, kObserve, kUnobserve };
  struct Op {
    OpKind kind;
    NodeId node;
    std::uint32_t state = 0;  // kObserve
    BeliefVec prior;          // kSetPrior
  };

  std::vector<Op> ops_;
};

/// A copy of `g` with `delta` applied: priors and observation flags
/// updated, everything structural shared/unchanged — same edges, CSRs,
/// joint tables, family, names and recorded permutation (beliefs still
/// come back in original ids). Throws util::InvalidArgument when
/// delta.validate(g) fails or an op observes/releases a node in the wrong
/// state (set_prior on an observed node must unobserve first).
[[nodiscard]] FactorGraph with_evidence(const FactorGraph& g,
                                        const EvidenceDelta& delta);

}  // namespace credo::graph
