#include "graph/metadata.h"

#include <algorithm>

namespace credo::graph {

const std::array<const char*, 5>& GraphMetadata::feature_names() noexcept {
  static const std::array<const char*, 5> names = {
      "num_nodes", "nodes_to_edges", "num_beliefs", "degree_imbalance",
      "skew"};
  return names;
}

GraphMetadata compute_metadata(const FactorGraph& g) {
  GraphMetadata md;
  md.num_nodes = g.num_nodes();
  md.num_directed_edges = g.num_edges();
  std::uint64_t in_sum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    md.beliefs = std::max(md.beliefs, g.arity(v));
    const std::uint32_t din = g.in_csr().degree(v);
    const std::uint32_t dout = g.out_csr().degree(v);
    md.max_in_degree = std::max(md.max_in_degree, din);
    md.max_out_degree = std::max(md.max_out_degree, dout);
    in_sum += din;
  }
  md.avg_in_degree = md.num_nodes > 0 ? static_cast<double>(in_sum) /
                                            static_cast<double>(md.num_nodes)
                                      : 0.0;
  return md;
}

}  // namespace credo::graph
