// Contiguous-range graph partitioning for sharded BP execution
// (DESIGN.md §5i).
//
// A Partition cuts the node-id space [0, n) into `shards` contiguous
// ranges, balanced by update work (one unit per node plus one per
// in-edge). Contiguity is the whole point: the §5d locality pass already
// renumbers nodes so neighborhoods occupy adjacent ids (BFS/RCM), which
// makes a contiguous range a low-cut, cache-coherent shard with no
// separate partitioning algorithm — cutting a BFS order of a grid yields
// band partitions whose boundary is one frontier wide.
//
// Beyond the ranges, the partition precomputes what a sharded engine
// needs to exchange state: per shard the *border* set (owned nodes some
// other shard reads as a parent) and the *ghost* set (off-shard parents
// this shard reads), plus edge-cut and balance figures `credo info
// --partition` reports so partition quality is inspectable without
// running BP.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/factor_graph.h"

namespace credo::graph {

/// One shard of a contiguous-range partition. Node ids are the graph's
/// internal ids (post-reorder when the graph went through the §5d pass).
struct Shard {
  /// Owned range [begin, end); never empty.
  NodeId begin = 0;
  NodeId end = 0;

  /// Directed edges with both endpoints owned by this shard.
  std::uint64_t internal_edges = 0;
  /// Directed edges arriving from another shard (this shard's ghost
  /// reads, counted per edge rather than per distinct parent).
  std::uint64_t cut_in_edges = 0;

  /// Owned nodes at least one other shard reads as a parent (sorted).
  std::vector<NodeId> border;
  /// Off-shard parents this shard reads (sorted): the read-only slots a
  /// sharded engine mirrors locally and refreshes at exchange points.
  std::vector<NodeId> ghosts;

  [[nodiscard]] NodeId num_nodes() const noexcept { return end - begin; }
};

/// A contiguous-range partition of a FactorGraph plus its boundary sets.
class Partition {
 public:
  /// Cuts `g` into `shards` contiguous ranges balanced by update work
  /// w(v) = 1 + in_degree(v). `shards` must be >= 1 and is clamped to the
  /// node count (every shard gets at least one node); a graph with no
  /// nodes yields a single empty shard.
  static Partition contiguous(const FactorGraph& g, std::uint32_t shards);

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return num_edges_;
  }

  [[nodiscard]] const Shard& shard(std::uint32_t s) const noexcept {
    return shards_[s];
  }
  [[nodiscard]] const std::vector<Shard>& shards() const noexcept {
    return shards_;
  }

  /// Owning shard of node `v` (binary search over the range starts).
  [[nodiscard]] std::uint32_t owner(NodeId v) const noexcept;

  /// Shards that read at least one of shard `s`'s border nodes — the
  /// set a publish from `s` can wake (sorted).
  [[nodiscard]] const std::vector<std::uint32_t>& readers(
      std::uint32_t s) const noexcept {
    return readers_[s];
  }

  /// Directed edges crossing shard boundaries.
  [[nodiscard]] std::uint64_t edge_cut() const noexcept { return edge_cut_; }
  /// edge_cut / num_edges; 0 for an edgeless graph.
  [[nodiscard]] double edge_cut_fraction() const noexcept;

  /// Work imbalance: max shard work / mean shard work (1.0 = perfectly
  /// balanced), with work w(shard) = nodes + in-edges.
  [[nodiscard]] double balance() const noexcept;

 private:
  std::vector<Shard> shards_;
  std::vector<std::vector<std::uint32_t>> readers_;
  NodeId num_nodes_ = 0;
  std::uint64_t num_edges_ = 0;
  std::uint64_t edge_cut_ = 0;
};

}  // namespace credo::graph
