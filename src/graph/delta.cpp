#include "graph/delta.h"

#include <algorithm>
#include <cstring>

#include "graph/evidence.h"

namespace credo::graph {

GraphDelta& GraphDelta::set_prior(NodeId node, const BeliefVec& prior) {
  Op op;
  op.kind = OpKind::kSetPrior;
  op.a = node;
  op.prior = prior;
  ops_.push_back(std::move(op));
  return *this;
}

GraphDelta& GraphDelta::observe(NodeId node, std::uint32_t state) {
  Op op;
  op.kind = OpKind::kObserve;
  op.a = node;
  op.state = state;
  ops_.push_back(std::move(op));
  return *this;
}

GraphDelta& GraphDelta::unobserve(NodeId node) {
  Op op;
  op.kind = OpKind::kUnobserve;
  op.a = node;
  ops_.push_back(std::move(op));
  return *this;
}

GraphDelta& GraphDelta::add_node(const BeliefVec& prior) {
  Op op;
  op.kind = OpKind::kAddNode;
  op.prior = prior;
  ops_.push_back(std::move(op));
  return *this;
}

GraphDelta& GraphDelta::remove_node(NodeId node) {
  Op op;
  op.kind = OpKind::kRemoveNode;
  op.a = node;
  ops_.push_back(std::move(op));
  return *this;
}

GraphDelta& GraphDelta::add_edge(NodeId u, NodeId v, const JointMatrix& m) {
  Op op;
  op.kind = OpKind::kAddEdge;
  op.a = u;
  op.b = v;
  op.joint = std::make_shared<const JointMatrix>(m);
  ops_.push_back(std::move(op));
  return *this;
}

GraphDelta& GraphDelta::add_edge(NodeId u, NodeId v) {
  Op op;
  op.kind = OpKind::kAddEdge;
  op.a = u;
  op.b = v;
  ops_.push_back(std::move(op));
  return *this;
}

GraphDelta& GraphDelta::remove_edge(NodeId u, NodeId v) {
  Op op;
  op.kind = OpKind::kRemoveEdge;
  op.a = u;
  op.b = v;
  ops_.push_back(std::move(op));
  return *this;
}

GraphDelta& GraphDelta::set_potential(NodeId u, NodeId v,
                                      const JointMatrix& m) {
  Op op;
  op.kind = OpKind::kSetPotential;
  op.a = u;
  op.b = v;
  op.joint = std::make_shared<const JointMatrix>(m);
  ops_.push_back(std::move(op));
  return *this;
}

bool GraphDelta::has_topology() const noexcept {
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kSetPrior:
      case OpKind::kObserve:
      case OpKind::kUnobserve:
        break;
      default:
        return true;
    }
  }
  return false;
}

std::vector<NodeId> GraphDelta::touched() const {
  std::vector<NodeId> nodes;
  nodes.reserve(ops_.size() * 2);
  for (const Op& op : ops_) {
    if (op.kind == OpKind::kAddNode) continue;
    if (!is_pending(op.a)) nodes.push_back(op.a);
    if (op.kind == OpKind::kAddEdge || op.kind == OpKind::kRemoveEdge ||
        op.kind == OpKind::kSetPotential) {
      if (!is_pending(op.b)) nodes.push_back(op.b);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

std::uint64_t GraphDelta::fingerprint() const noexcept {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  const auto mix_float = [&mix](float f) {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    mix(bits);
  };
  for (const Op& op : ops_) {
    mix(static_cast<std::uint64_t>(op.kind));
    mix(op.a);
    mix(op.b);
    if (op.kind == OpKind::kObserve) mix(op.state);
    if (op.kind == OpKind::kSetPrior || op.kind == OpKind::kAddNode) {
      mix(op.prior.size);
      for (std::uint32_t i = 0; i < op.prior.size; ++i) mix_float(op.prior.v[i]);
    }
    if (op.joint != nullptr) {
      mix(op.joint->rows);
      mix(op.joint->cols);
      for (std::uint32_t i = 0; i < op.joint->rows; ++i) {
        for (std::uint32_t j = 0; j < op.joint->cols; ++j) {
          mix_float(op.joint->at(i, j));
        }
      }
    }
  }
  return h;
}

util::Status GraphDelta::validate(const FactorGraph& g) const noexcept {
  if (has_topology()) {
    return util::Status(
        util::StatusCode::kInvalidArgument,
        "GraphDelta: topology mutations cannot apply ephemerally to a "
        "static FactorGraph — route them through a graph::DynamicGraph");
  }
  // Evidence-only: delegate to the EvidenceDelta checks so the two paths
  // cannot drift apart.
  EvidenceDelta ev;
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kSetPrior: ev.set_prior(op.a, op.prior); break;
      case OpKind::kObserve: ev.observe(op.a, op.state); break;
      case OpKind::kUnobserve: ev.unobserve(op.a); break;
      default: break;  // unreachable: has_topology() returned false
    }
  }
  return ev.validate(g);
}

FactorGraph with_delta(const FactorGraph& g, const GraphDelta& d) {
  if (d.has_topology()) {
    throw util::InvalidArgument(
        "GraphDelta: topology mutations cannot apply ephemerally to a "
        "static FactorGraph — route them through a graph::DynamicGraph");
  }
  EvidenceDelta ev;
  for (const GraphDelta::Op& op : d.ops_) {
    switch (op.kind) {
      case GraphDelta::OpKind::kSetPrior: ev.set_prior(op.a, op.prior); break;
      case GraphDelta::OpKind::kObserve: ev.observe(op.a, op.state); break;
      case GraphDelta::OpKind::kUnobserve: ev.unobserve(op.a); break;
      default: break;
    }
  }
  return with_evidence(g, ev);
}

}  // namespace credo::graph
