// Credo's a-priori engine selection (§3.7): a learned size rule picks the
// platform (C below the pivot, CUDA above — the pivot depends on the number
// of beliefs, §3.6/§4.3), and the tuned random forest picks the processing
// paradigm (Node vs Edge) from graph metadata alone.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "bp/engine.h"
#include "credo/trainer.h"
#include "ml/random_forest.h"

namespace credo::dispatch {

/// The trained dispatcher. Construct via train().
class Dispatcher {
 public:
  struct Config {
    perf::HardwareProfile cpu = perf::cpu_i7_7700hq_serial();
    perf::HardwareProfile gpu = perf::gpu_gtx1070();
    ml::RandomForestParams forest;  // paper-tuned defaults
  };

  /// Learns the platform pivots (per belief arity, from the observed
  /// C-vs-CUDA crossovers) and fits the paradigm forest on the runs.
  [[nodiscard]] static Dispatcher train(const std::vector<LabeledRun>& runs,
                                        Config config);
  /// train() with a default-constructed Config (paper-default hardware).
  [[nodiscard]] static Dispatcher train(const std::vector<LabeledRun>& runs);

  /// Picks the engine for a graph from its metadata alone.
  [[nodiscard]] bp::EngineKind choose(
      const graph::GraphMetadata& md) const;

  /// Chooses and executes; the returned result carries the chosen engine's
  /// modelled time.
  [[nodiscard]] bp::BpResult run(const graph::FactorGraph& g,
                                 const bp::BpOptions& opts) const;

  /// Node count above which CUDA is selected for the given arity
  /// (log-log interpolated between learned anchors).
  [[nodiscard]] double platform_pivot(std::uint32_t beliefs) const;

  /// Persists the trained model (pivots + forest) to a file so the
  /// expensive training sweep runs once. Hardware configuration is NOT
  /// saved — supply it again at load(). Throws util::IoError.
  void save(const std::string& path) const;

  /// Restores a dispatcher saved with save(). Throws util::IoError /
  /// util::InvalidArgument.
  [[nodiscard]] static Dispatcher load(const std::string& path,
                                       Config config);
  [[nodiscard]] static Dispatcher load(const std::string& path);

  [[nodiscard]] const ml::RandomForest& forest() const noexcept {
    return forest_;
  }

 private:
  Dispatcher(Config config, ml::RandomForest forest,
             std::map<std::uint32_t, double> pivots);

  Config config_;
  ml::RandomForest forest_;
  /// beliefs -> node-count pivot learned from the training runs.
  std::map<std::uint32_t, double> pivots_;
};

}  // namespace credo::dispatch
