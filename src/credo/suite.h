// The Table 1 benchmark suite.
//
// Every row of the paper's Table 1 is represented: synthetic uniform
// NxM rows, kron-g500 rows (R-MAT), and the social/web-network rows
// (preferential attachment). Real downloads are unavailable offline, so
// each row records both the paper-scale size and the scaled size this
// environment instantiates (DESIGN.md §6); the scaled sizes preserve the
// edge/node ratio and generator family.
//
// The paper derives three use-case variants per graph — binary beliefs (2),
// virus propagation (3: uninfected/infected/recovered) and 32-bit image
// correction (32) — for 132 total benchmark instances.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/factor_graph.h"

namespace credo::suite {

/// Generator family standing in for the row's real source.
enum class Family {
  kUniform,  // synthetic NxM rows
  kKron,     // kron-g500 rows (R-MAT)
  kSocial,   // social/web networks (preferential attachment)
};

/// One Table 1 row.
struct BenchmarkSpec {
  std::string name;    // paper's graph name
  std::string abbrev;  // paper's abbreviation
  Family family = Family::kUniform;
  std::uint64_t paper_nodes = 0;
  std::uint64_t paper_edges = 0;
  /// Scaled instantiation size (undirected edges; doubled when stored).
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  /// True for the bold subset the paper renders in its figures.
  bool bold = false;
};

/// All Table 1 rows (34 graphs).
[[nodiscard]] const std::vector<BenchmarkSpec>& table1();

/// The bold rendered subset.
[[nodiscard]] std::vector<BenchmarkSpec> table1_bold();

/// The paper's three use-case belief arities {2, 3, 32}.
[[nodiscard]] const std::vector<std::uint32_t>& use_case_beliefs();

/// Instantiates a row at its scaled size with the given belief arity.
/// Graphs use the §2.2 shared joint matrix; 5% of nodes are observed; the
/// seed is derived from the row name so every run sees identical graphs.
/// `extra_divisor` further shrinks the instantiation (32-belief sweeps use
/// 8 to keep the cost of 32x32 matrix math bounded).
[[nodiscard]] graph::FactorGraph instantiate(const BenchmarkSpec& spec,
                                             std::uint32_t beliefs,
                                             std::uint64_t extra_divisor = 1);

/// Look up a row by abbreviation ("K21", "LJ", ...). Throws
/// util::InvalidArgument when absent.
[[nodiscard]] const BenchmarkSpec& by_abbrev(const std::string& abbrev);

}  // namespace credo::suite
