#include "credo/suite.h"

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "util/error.h"
#include "util/prng.h"

namespace credo::suite {
namespace {

/// Scaling rule (DESIGN.md §6): shrink a row by the single factor that
/// keeps it inside the instantiation budget while preserving its
/// edge/node ratio (the classifier's key feature).
constexpr std::uint64_t kMaxNodes = 120'000;
constexpr std::uint64_t kMaxUndirectedEdges = 600'000;

BenchmarkSpec make(std::string name, std::string abbrev, Family family,
                   std::uint64_t paper_nodes, std::uint64_t paper_edges,
                   bool bold) {
  BenchmarkSpec s;
  s.name = std::move(name);
  s.abbrev = std::move(abbrev);
  s.family = family;
  s.paper_nodes = paper_nodes;
  s.paper_edges = paper_edges;
  s.bold = bold;
  const double factor = std::min(
      {1.0,
       static_cast<double>(kMaxNodes) / static_cast<double>(paper_nodes),
       static_cast<double>(kMaxUndirectedEdges) /
           static_cast<double>(paper_edges)});
  s.nodes = std::max<std::uint64_t>(
      4, static_cast<std::uint64_t>(
             std::llround(factor * static_cast<double>(paper_nodes))));
  s.edges = std::max<std::uint64_t>(
      4, static_cast<std::uint64_t>(
             std::llround(factor * static_cast<double>(paper_edges))));
  return s;
}

std::vector<BenchmarkSpec> build_table1() {
  // Bold = the rendered subset. The paper's PDF bolding is not recoverable
  // from the text, so the subset here is the graphs its prose discusses
  // plus a spread across size decades.
  std::vector<BenchmarkSpec> t;
  // --- Table 1, left column ---
  t.push_back(make("10_nodes_40_edges", "10x40", Family::kUniform, 10, 40,
                   true));
  t.push_back(make("1000_nodes_4000_edges", "1k4k", Family::kUniform, 1000,
                   4000, true));
  t.push_back(make("kron-g500-logn16", "K16", Family::kKron, 55'321,
                   2'456'398, false));
  t.push_back(make("100000_nodes_400000_edges", "100kx400k",
                   Family::kUniform, 100'000, 400'000, true));
  t.push_back(make("loc-gowalla", "GO", Family::kSocial, 196'591,
                   1'900'654, true));
  t.push_back(make("soc-google-plus", "GP", Family::kSocial, 211'187,
                   1'506'896, false));
  t.push_back(make("web-Stanford", "ST", Family::kSocial, 281'903,
                   2'312'497, false));
  t.push_back(make("kron-g500-logn19", "K19", Family::kKron, 409'175,
                   21'781'478, false));
  t.push_back(make("web-it-2004", "IT", Family::kSocial, 509'338,
                   7'178'413, false));
  t.push_back(make("600000_nodes_1200000_edges", "600kx1200k",
                   Family::kUniform, 600'000, 1'200'000, true));
  t.push_back(make("800000_nodes_3200000_edges", "800kx3200k",
                   Family::kUniform, 800'000, 3'200'000, false));
  t.push_back(make("com-youtube", "YO", Family::kSocial, 1'134'890,
                   2'987'624, true));
  t.push_back(make("soc-pokec-relationships", "PO", Family::kSocial,
                   1'632'803, 30'622'564, true));
  t.push_back(make("2000000_nodes_8000000_edges", "2Mx8M",
                   Family::kUniform, 2'000'000, 8'000'000, true));
  t.push_back(make("soc-orkut", "OR", Family::kSocial, 2'997'166,
                   106'349'209, false));
  t.push_back(make("soc-LiveJournal1", "LJ", Family::kSocial, 4'846'609,
                   68'475'391, true));
  t.push_back(make("friendster", "FR", Family::kSocial, 8'658'744,
                   55'170'227, false));
  t.push_back(make("soc-twitter-2010", "TW", Family::kSocial, 21'297'772,
                   265'025'809, false));
  // --- Table 1, right column ---
  t.push_back(make("100_nodes_400_edges", "100x400", Family::kUniform, 100,
                   400, true));
  t.push_back(make("10000_nodes_40000_edges", "10kx40k", Family::kUniform,
                   10'000, 40'000, true));
  t.push_back(make("hollywood-2009", "HO", Family::kSocial, 83'832,
                   549'038, false));
  t.push_back(make("kron-g500-logn17", "K17", Family::kKron, 131'071,
                   5'114'375, true));
  t.push_back(make("200000_nodes_800000_edges", "200kx800k",
                   Family::kUniform, 200'000, 800'000, false));
  t.push_back(make("kron-g500-logn18", "K18", Family::kKron, 262'144,
                   10'583'222, false));
  t.push_back(make("400000_nodes_1600000_edges", "400kx1600k",
                   Family::kUniform, 400'000, 1'600'000, false));
  t.push_back(make("soc-twitter-follows-mun", "TF", Family::kSocial,
                   465'017, 835'423, false));
  t.push_back(make("soc-delicious", "DE", Family::kSocial, 536'108,
                   1'365'961, false));
  t.push_back(make("kron-g500-logn20", "K20", Family::kKron, 795'241,
                   44'620'272, false));
  t.push_back(make("1000000_nodes_4000000_edges", "1Mx4M",
                   Family::kUniform, 1'000'000, 4'000'000, false));
  t.push_back(make("kron-g500-logn21", "K21", Family::kKron, 1'544'087,
                   91'042'010, true));
  t.push_back(make("web-wiki-ch-internal", "WW", Family::kSocial,
                   1'930'275, 9'359'108, false));
  t.push_back(make("wiki-Talk", "WT", Family::kSocial, 2'394'385,
                   5'021'410, false));
  t.push_back(make("wikipedia-link-en", "WL", Family::kSocial, 3'371'716,
                   31'956'268, false));
  t.push_back(make("tech-p2p", "TP", Family::kSocial, 5'792'297,
                   8'105'822, false));
  return t;
}

}  // namespace

const std::vector<BenchmarkSpec>& table1() {
  static const std::vector<BenchmarkSpec> t = build_table1();
  return t;
}

std::vector<BenchmarkSpec> table1_bold() {
  std::vector<BenchmarkSpec> out;
  for (const auto& s : table1()) {
    if (s.bold) out.push_back(s);
  }
  return out;
}

const std::vector<std::uint32_t>& use_case_beliefs() {
  static const std::vector<std::uint32_t> b = {2, 3, 32};
  return b;
}

graph::FactorGraph instantiate(const BenchmarkSpec& spec,
                               std::uint32_t beliefs,
                               std::uint64_t extra_divisor) {
  CREDO_CHECK_MSG(extra_divisor >= 1, "divisor must be >= 1");
  // The extra divisor trims only rows that are actually expensive; small
  // rows keep their exact Table 1 shape.
  const bool shrink = spec.nodes / extra_divisor >= 1000;
  const std::uint64_t nodes =
      shrink ? spec.nodes / extra_divisor : spec.nodes;
  const std::uint64_t edges =
      shrink ? spec.edges / extra_divisor : spec.edges;
  graph::BeliefConfig cfg;
  cfg.beliefs = beliefs;
  cfg.observed_fraction = 0.05;
  cfg.shared_joint = true;
  // Seeded from the row name so every bench and test sees the same graph.
  std::uint64_t seed = 0xcafef00d;
  for (const char c : spec.name) {
    seed = util::splitmix64(seed ^ static_cast<std::uint64_t>(c));
  }
  cfg.seed = seed ^ beliefs;

  switch (spec.family) {
    case Family::kUniform:
      return graph::uniform_random(static_cast<graph::NodeId>(nodes), edges,
                                   cfg);
    case Family::kKron: {
      const auto scale = static_cast<std::uint32_t>(std::max(
          2.0, std::round(std::log2(static_cast<double>(nodes)))));
      return graph::rmat(scale, edges, cfg);
    }
    case Family::kSocial: {
      const auto per_node = static_cast<std::uint32_t>(
          std::max<std::uint64_t>(1, edges / std::max<std::uint64_t>(
                                              1, nodes)));
      return graph::preferential_attachment(
          static_cast<graph::NodeId>(nodes), per_node, cfg);
    }
  }
  throw util::InvalidArgument("unknown benchmark family");
}

const BenchmarkSpec& by_abbrev(const std::string& abbrev) {
  for (const auto& s : table1()) {
    if (s.abbrev == abbrev) return s;
  }
  throw util::InvalidArgument("unknown benchmark abbreviation: " + abbrev);
}

}  // namespace credo::suite
