#include "credo/trainer.h"

#include <algorithm>

#include "util/error.h"

namespace credo::dispatch {

double EngineTimes::best_time() const noexcept {
  return std::min({cpu_node, cpu_edge, cuda_node, cuda_edge});
}

bp::EngineKind EngineTimes::best_kind() const noexcept {
  bp::EngineKind best = bp::EngineKind::kCpuNode;
  double t = cpu_node;
  if (cpu_edge < t) {
    t = cpu_edge;
    best = bp::EngineKind::kCpuEdge;
  }
  if (cuda_node < t) {
    t = cuda_node;
    best = bp::EngineKind::kCudaNode;
  }
  if (cuda_edge < t) {
    best = bp::EngineKind::kCudaEdge;
  }
  return best;
}

double EngineTimes::of(bp::EngineKind kind) const {
  switch (kind) {
    case bp::EngineKind::kCpuNode: return cpu_node;
    case bp::EngineKind::kCpuEdge: return cpu_edge;
    case bp::EngineKind::kCudaNode: return cuda_node;
    case bp::EngineKind::kCudaEdge: return cuda_edge;
    default:
      throw util::InvalidArgument(
          "EngineTimes only covers the four core engines");
  }
}

std::vector<LabeledRun> benchmark_suite(
    const std::vector<suite::BenchmarkSpec>& specs,
    const std::vector<std::uint32_t>& beliefs, const TrainerConfig& cfg) {
  const auto cpu_node = bp::make_engine(bp::EngineKind::kCpuNode, cfg.cpu);
  const auto cpu_edge = bp::make_engine(bp::EngineKind::kCpuEdge, cfg.cpu);
  const auto cuda_node =
      bp::make_engine(bp::EngineKind::kCudaNode, cfg.gpu);
  const auto cuda_edge =
      bp::make_engine(bp::EngineKind::kCudaEdge, cfg.gpu);

  std::vector<LabeledRun> runs;
  runs.reserve(specs.size() * beliefs.size());
  for (const auto& spec : specs) {
    for (const auto b : beliefs) {
      const std::uint64_t divisor = b >= 32 ? cfg.divisor_32 : 1;
      const auto g = suite::instantiate(spec, b, divisor);
      LabeledRun run;
      run.abbrev = spec.abbrev;
      run.beliefs = b;
      run.metadata = graph::compute_metadata(g);
      run.times.cpu_node = cpu_node->run(g, cfg.opts).stats.time.total();
      run.times.cpu_edge = cpu_edge->run(g, cfg.opts).stats.time.total();
      run.times.cuda_node = cuda_node->run(g, cfg.opts).stats.time.total();
      run.times.cuda_edge = cuda_edge->run(g, cfg.opts).stats.time.total();
      const auto best = run.times.best_kind();
      run.paradigm_label = (best == bp::EngineKind::kCpuNode ||
                            best == bp::EngineKind::kCudaNode)
                               ? 1
                               : 0;
      runs.push_back(std::move(run));
    }
  }
  return runs;
}

ml::Dataset to_dataset(const std::vector<LabeledRun>& runs) {
  ml::Dataset d;
  for (const auto& run : runs) {
    const auto f = run.metadata.features();
    d.add(std::vector<double>(f.begin(), f.end()), run.paradigm_label);
  }
  return d;
}

}  // namespace credo::dispatch
