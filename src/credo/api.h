// Umbrella header for credo's public API surface (DESIGN.md §5e).
//
// Embedders and the CLI include this one header and get the supported
// surface: engines and options (bp/), the serving layer (serve/), the
// locality pass (graph/reorder.h), the observability layer (obs/) and the
// shared status vocabulary (util/error.h). Everything else under src/ —
// notably bp/engines_internal.h, bp/runtime/*, gpusim/* and cachesim/* —
// is an internal layer: it may change or disappear between releases
// without notice, so include it only from inside the repo.
#pragma once

// Status vocabulary + exceptions (credo::util::Status, StatusOr, ...).
#include "util/error.h"

// Factor graphs, MTX-belief I/O and the locality/reordering pass.
#include "graph/factor_graph.h"
#include "graph/metadata.h"
#include "graph/reorder.h"
#include "io/mtx_belief.h"

// Dynamic graphs: the GraphDelta mutation vocabulary (evidence + topology)
// and the DynamicGraph that applies it with incremental re-convergence
// (DESIGN.md §5j).
#include "graph/delta.h"
#include "graph/dynamic.h"

// Engines: BpOptions/BpResult, EngineKind, make_default_engine.
#include "bp/engine.h"
#include "bp/options.h"

// Serving: Server/Session, Request/Response, GraphCache, stress replay.
#include "serve/graph_cache.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/stress.h"

// Observability: MetricsRegistry, Counter/Gauge/Histogram, Span/SpanLog.
#include "obs/metrics.h"
#include "obs/span.h"

// The §3.7 engine dispatcher (train/load/choose).
#include "credo/dispatcher.h"

namespace credo {

/// The fluent mutation-batch builder, promoted to the public surface:
/// `credo::MutationBatch().add_edge(u, v, m).set_prior(w, p)` and apply it
/// through graph::DynamicGraph::apply (topology) or serve
/// Request::with_delta (evidence). Validation is Status-returning — bad
/// batches (edges to removed nodes, duplicate inserts, observed-node
/// potential edits) are rejected, never asserted on.
using MutationBatch = graph::GraphDelta;

}  // namespace credo
