#include "credo/dispatcher.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "util/error.h"

namespace credo::dispatch {
namespace {

/// Learns, per belief arity, the node-count threshold that best separates
/// "a CUDA implementation won" from "a C implementation won" — the paper's
/// quickly-discerned rule, fitted as a 1-D stump on the training runs.
std::map<std::uint32_t, double> learn_pivots(
    const std::vector<LabeledRun>& runs) {
  std::map<std::uint32_t, std::vector<std::pair<double, bool>>> by_arity;
  for (const auto& run : runs) {
    const auto best = run.times.best_kind();
    const bool cuda_won = best == bp::EngineKind::kCudaNode ||
                          best == bp::EngineKind::kCudaEdge;
    by_arity[run.beliefs].emplace_back(
        static_cast<double>(run.metadata.num_nodes), cuda_won);
  }
  std::map<std::uint32_t, double> pivots;
  for (auto& [arity, points] : by_arity) {
    std::sort(points.begin(), points.end());
    // Evaluate every midpoint threshold; pick the one misclassifying the
    // fewest runs (CUDA expected above, C below).
    double best_threshold = points.back().first + 1.0;
    std::size_t best_errors = points.size() + 1;
    for (std::size_t cut = 0; cut <= points.size(); ++cut) {
      std::size_t errors = 0;
      for (std::size_t i = 0; i < points.size(); ++i) {
        const bool predicted_cuda = i >= cut;
        if (predicted_cuda != points[i].second) ++errors;
      }
      if (errors < best_errors) {
        best_errors = errors;
        if (cut == 0) {
          best_threshold = points.front().first * 0.5;
        } else if (cut == points.size()) {
          best_threshold = points.back().first * 2.0;
        } else {
          best_threshold =
              0.5 * (points[cut - 1].first + points[cut].first);
        }
      }
    }
    pivots[arity] = best_threshold;
  }
  return pivots;
}

}  // namespace

Dispatcher::Dispatcher(Config config, ml::RandomForest forest,
                       std::map<std::uint32_t, double> pivots)
    : config_(std::move(config)),
      forest_(std::move(forest)),
      pivots_(std::move(pivots)) {}

Dispatcher Dispatcher::train(const std::vector<LabeledRun>& runs) {
  return train(runs, Config());
}

Dispatcher Dispatcher::train(const std::vector<LabeledRun>& runs,
                             Config config) {
  CREDO_CHECK_MSG(!runs.empty(), "cannot train a dispatcher on no runs");
  ml::RandomForest forest(config.forest);
  forest.fit(to_dataset(runs));
  return Dispatcher(std::move(config), std::move(forest),
                    learn_pivots(runs));
}

double Dispatcher::platform_pivot(std::uint32_t beliefs) const {
  CREDO_CHECK_MSG(!pivots_.empty(), "dispatcher has no pivots");
  // Exact arity if known; otherwise log-log interpolate/extrapolate
  // between the nearest learned anchors.
  const auto it = pivots_.find(beliefs);
  if (it != pivots_.end()) return it->second;
  const auto hi = pivots_.lower_bound(beliefs);
  if (hi == pivots_.begin()) return hi->second;
  if (hi == pivots_.end()) return std::prev(hi)->second;
  const auto lo = std::prev(hi);
  const double t = (std::log2(beliefs) - std::log2(lo->first)) /
                   (std::log2(hi->first) - std::log2(lo->first));
  return std::exp2(std::log2(lo->second) +
                   t * (std::log2(hi->second) - std::log2(lo->second)));
}

bp::EngineKind Dispatcher::choose(const graph::GraphMetadata& md) const {
  const auto f = md.features();
  const int paradigm =
      forest_.predict(std::vector<double>(f.begin(), f.end()));
  const bool cuda = static_cast<double>(md.num_nodes) >=
                    platform_pivot(md.beliefs);
  if (paradigm == 1) {
    return cuda ? bp::EngineKind::kCudaNode : bp::EngineKind::kCpuNode;
  }
  return cuda ? bp::EngineKind::kCudaEdge : bp::EngineKind::kCpuEdge;
}

bp::BpResult Dispatcher::run(const graph::FactorGraph& g,
                             const bp::BpOptions& opts) const {
  const auto kind = choose(graph::compute_metadata(g));
  const bool is_gpu = kind == bp::EngineKind::kCudaNode ||
                      kind == bp::EngineKind::kCudaEdge;
  const auto engine =
      bp::make_engine(kind, is_gpu ? config_.gpu : config_.cpu);
  return engine->run(g, opts);
}

void Dispatcher::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot open for writing: " + path);
  out << "credo-dispatcher 1\n";
  out << "pivots " << pivots_.size() << '\n';
  for (const auto& [beliefs, pivot] : pivots_) {
    out << beliefs << ' ' << pivot << '\n';
  }
  out << forest_.serialize();
  if (!out) throw util::IoError("write failed: " + path);
}

Dispatcher Dispatcher::load(const std::string& path) {
  return load(path, Config());
}

Dispatcher Dispatcher::load(const std::string& path, Config config) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open dispatcher model: " + path);
  std::string tag;
  int version = 0;
  if (!(in >> tag >> version) || tag != "credo-dispatcher" || version != 1) {
    throw util::InvalidArgument("unrecognized dispatcher model format");
  }
  std::size_t count = 0;
  if (!(in >> tag >> count) || tag != "pivots") {
    throw util::InvalidArgument("malformed dispatcher model (pivots)");
  }
  std::map<std::uint32_t, double> pivots;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t beliefs = 0;
    double pivot = 0;
    if (!(in >> beliefs >> pivot)) {
      throw util::InvalidArgument("malformed dispatcher model (pivot row)");
    }
    pivots[beliefs] = pivot;
  }
  std::string rest((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return Dispatcher(std::move(config),
                    ml::RandomForest::deserialize(rest),
                    std::move(pivots));
}

}  // namespace credo::dispatch
