// Labeled-run production for the §3.7 classifier: run Credo's four core
// engines over benchmark instances, record modelled times, and label each
// instance Node or Edge by which paradigm's best implementation won.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bp/engine.h"
#include "credo/suite.h"
#include "graph/metadata.h"
#include "ml/dataset.h"
#include "perf/profiles.h"

namespace credo::dispatch {

/// Modelled execution times of the four core implementations (seconds).
struct EngineTimes {
  double cpu_node = 0.0;
  double cpu_edge = 0.0;
  double cuda_node = 0.0;
  double cuda_edge = 0.0;

  [[nodiscard]] double best_time() const noexcept;
  [[nodiscard]] bp::EngineKind best_kind() const noexcept;
  [[nodiscard]] double of(bp::EngineKind kind) const;
};

/// One benchmarked instance with its features and label.
struct LabeledRun {
  std::string abbrev;
  std::uint32_t beliefs = 0;
  graph::GraphMetadata metadata;
  EngineTimes times;
  /// 1 = a Node implementation is best, 0 = an Edge implementation (§3.7).
  int paradigm_label = 0;
};

/// Knobs for producing the labeled dataset.
struct TrainerConfig {
  bp::BpOptions opts;                 // work queues on by default
  perf::HardwareProfile cpu = perf::cpu_i7_7700hq_serial();
  perf::HardwareProfile gpu = perf::gpu_gtx1070();
  /// Extra shrink applied to 32-belief instances (32x32 matrix math).
  std::uint64_t divisor_32 = 8;

  TrainerConfig() { opts.work_queue = true; }
};

/// Runs all four engines on every (spec, beliefs) pair and labels the
/// winners. This is the expensive step; benches cache its result.
[[nodiscard]] std::vector<LabeledRun> benchmark_suite(
    const std::vector<suite::BenchmarkSpec>& specs,
    const std::vector<std::uint32_t>& beliefs, const TrainerConfig& cfg);

/// Converts runs to the 5-feature ml::Dataset of §3.7 (label 1 = Node).
[[nodiscard]] ml::Dataset to_dataset(const std::vector<LabeledRun>& runs);

}  // namespace credo::dispatch
