// Error-handling vocabulary for the library.
//
// Parsers and other operations that fail on bad *input* report through
// ParseError / IoError (exceptions carrying position information); violations
// of library invariants use CREDO_CHECK, which is active in all build types
// (the cost is negligible next to the work the checks guard).
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace credo::util {

/// Raised when an input file violates its format.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string file, std::uint64_t line, std::string what)
      : std::runtime_error(file + ":" + std::to_string(line) + ": " + what),
        file_(std::move(file)),
        line_(line),
        message_(std::move(what)) {}

  [[nodiscard]] const std::string& file() const noexcept { return file_; }
  [[nodiscard]] std::uint64_t line() const noexcept { return line_; }
  /// The message without the file:line prefix (useful when re-tagging).
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

 private:
  std::string file_;
  std::uint64_t line_;
  std::string message_;
};

/// Raised when a file cannot be opened/read/written.
class IoError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Raised when a caller violates an API precondition.
class InvalidArgument : public std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": CHECK failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}
}  // namespace detail

}  // namespace credo::util

/// Always-on invariant check. Throws std::logic_error on failure so tests can
/// assert on invariant violations without aborting the process.
#define CREDO_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::credo::util::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define CREDO_CHECK_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr))                                                            \
      ::credo::util::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)
