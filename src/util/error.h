// Error-handling vocabulary for the library.
//
// Two complementary forms, one enum:
//  * StatusCode/Status/StatusOr<T> — the value-based vocabulary. Every
//    layer that reports outcomes (the serve layer's terminal request
//    status, BpOptions validation, parser front ends) uses the same enum
//    plus a message, so statuses compose across layers instead of each one
//    inventing its own.
//  * ParseError / IoError / InvalidArgument — the throwing form for deep
//    call stacks (parsers, option validation inside Engine::run). Each
//    carries the StatusCode it maps to; status_from_exception() converts
//    at the boundary where exceptions become statuses (e.g. the server's
//    per-request catch).
// Violations of library invariants use CREDO_CHECK, which is active in all
// build types (the cost is negligible next to the work the checks guard).
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace credo::util {

/// The one status enum (DESIGN.md §5e). The first five values are the
/// serve layer's terminal request statuses and keep their historical
/// numbering; the rest classify errors by origin. Codes >= kError all
/// count as failures (Status::ok() is false).
enum class StatusCode : std::uint8_t {
  kOk = 0,                // success
  kRejected = 1,          // admission refused (queue full / stopped)
  kCancelled = 2,         // cancellation token fired
  kDeadlineExceeded = 3,  // a deadline budget expired
  kError = 4,             // unclassified failure
  kInvalidArgument = 5,   // caller violated an API precondition
  kIo = 6,                // file could not be opened/read/written
  kParse = 7,             // input file violates its format
  kNotFound = 8,          // named resource does not exist
};

/// Stable lowercase name for a code ("ok", "rejected", "deadline", ...).
[[nodiscard]] constexpr const char* status_code_name(
    StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kRejected: return "rejected";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kDeadlineExceeded: return "deadline";
    case StatusCode::kError: return "error";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kIo: return "io-error";
    case StatusCode::kParse: return "parse-error";
    case StatusCode::kNotFound: return "not-found";
  }
  return "unknown";
}

/// A code plus a human-readable message. Cheap to copy when ok (empty
/// message), explicit about failure otherwise.
class Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return {}; }
  [[nodiscard]] static Status invalid_argument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }

  [[nodiscard]] bool is_ok() const noexcept {
    return code_ == StatusCode::kOk;
  }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }
  [[nodiscard]] const char* code_name() const noexcept {
    return status_code_name(code_);
  }

  /// "ok" or "invalid-argument: <message>".
  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "ok";
    std::string out = code_name();
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or the Status explaining its absence (never both). The minimal
/// subset of the absl idiom the codebase needs.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.is_ok()) {
      status_ = Status(StatusCode::kError,
                       "StatusOr constructed from an ok Status");
    }
  }

  [[nodiscard]] bool is_ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T&& value() && { return *std::move(value_); }

  [[nodiscard]] T& operator*() & { return *value_; }
  [[nodiscard]] const T& operator*() const& { return *value_; }
  [[nodiscard]] T* operator->() { return &*value_; }
  [[nodiscard]] const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;  // ok iff value_ present
};

/// Raised when an input file violates its format.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string file, std::uint64_t line, std::string what)
      : std::runtime_error(file + ":" + std::to_string(line) + ": " + what),
        file_(std::move(file)),
        line_(line),
        message_(std::move(what)) {}

  [[nodiscard]] const std::string& file() const noexcept { return file_; }
  [[nodiscard]] std::uint64_t line() const noexcept { return line_; }
  /// The message without the file:line prefix (useful when re-tagging).
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }
  [[nodiscard]] static constexpr StatusCode code() noexcept {
    return StatusCode::kParse;
  }

 private:
  std::string file_;
  std::uint64_t line_;
  std::string message_;
};

/// Raised when a file cannot be opened/read/written.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
  [[nodiscard]] static constexpr StatusCode code() noexcept {
    return StatusCode::kIo;
  }
};

/// Raised when a caller violates an API precondition.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
  [[nodiscard]] static constexpr StatusCode code() noexcept {
    return StatusCode::kInvalidArgument;
  }
};

/// Classifies a caught exception into the shared vocabulary: the library's
/// typed exceptions map to their codes, anything else to kError. Used at
/// the boundaries where exceptions become statuses (the serve layer's
/// per-request catch, CLI error reporting).
[[nodiscard]] inline Status status_from_exception(
    const std::exception& e) noexcept {
  StatusCode code = StatusCode::kError;
  if (dynamic_cast<const ParseError*>(&e) != nullptr) {
    code = StatusCode::kParse;
  } else if (dynamic_cast<const IoError*>(&e) != nullptr) {
    code = StatusCode::kIo;
  } else if (dynamic_cast<const InvalidArgument*>(&e) != nullptr) {
    code = StatusCode::kInvalidArgument;
  }
  return {code, e.what()};
}

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": CHECK failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}
}  // namespace detail

}  // namespace credo::util

/// Always-on invariant check. Throws std::logic_error on failure so tests can
/// assert on invariant violations without aborting the process.
#define CREDO_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::credo::util::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define CREDO_CHECK_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr))                                                            \
      ::credo::util::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)
