// Small, allocation-light string and number parsing helpers shared by the
// input parsers. The MTX-belief reader's hot loop is built on these.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace credo::util {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Splits on any run of the given delimiter (empty tokens are dropped).
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char delim = ' ');

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;

/// Case-insensitive ASCII equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// Parses an unsigned integer; returns nullopt on any malformed input
/// (empty, overflow, trailing garbage).
[[nodiscard]] std::optional<std::uint64_t> parse_u64(
    std::string_view s) noexcept;

/// Parses a float; returns nullopt on malformed input.
[[nodiscard]] std::optional<float> parse_float(std::string_view s) noexcept;

/// Parses a double; returns nullopt on malformed input.
[[nodiscard]] std::optional<double> parse_double(std::string_view s) noexcept;

/// In-place cursor over a whitespace-separated record; the parsers use one
/// per line to pull fields without allocating.
class FieldCursor {
 public:
  explicit FieldCursor(std::string_view line) noexcept : rest_(line) {}

  /// Next whitespace-separated field, or nullopt when exhausted.
  std::optional<std::string_view> next() noexcept;

  /// Next field parsed as u64 / float; nullopt if missing or malformed.
  std::optional<std::uint64_t> next_u64() noexcept;
  std::optional<float> next_float() noexcept;

  /// True when no fields remain.
  [[nodiscard]] bool done() noexcept;

 private:
  std::string_view rest_;
};

}  // namespace credo::util
