// Deterministic pseudo-random number generation for graph/belief synthesis.
//
// All randomness in the library flows through Prng (xoshiro256**), seeded via
// splitmix64, so every generator, workload and test is reproducible from a
// single 64-bit seed. std::mt19937 is deliberately avoided: its state is
// large, seeding it well is error-prone, and its sequences differ across
// standard-library implementations of the distribution adaptors.
#pragma once

#include <array>
#include <cstdint>

namespace credo::util {

/// Stateless mixer used for seeding; also useful as a hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG with 2^256-1 period.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can feed
/// standard distributions, but the member helpers below are preferred since
/// their output is identical on every platform.
class Prng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes from one value via splitmix64.
  explicit Prng(std::uint64_t seed = 0x6b65706c657265ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform float in [0, 1).
  float uniform01f() noexcept;

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept;

  /// Standard normal variate (Marsaglia polar method).
  double normal() noexcept;

  /// Splits off an independent stream; the child is seeded from this
  /// generator's next output, so sibling splits are decorrelated.
  Prng split() noexcept;

  /// Long-jump equivalent: advance by re-seeding (used to derive per-worker
  /// streams that do not overlap in practice).
  void reseed(std::uint64_t seed) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace credo::util
