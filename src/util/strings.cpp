#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace credo::util {
namespace {

bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && s[i] == delim) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != delim) ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<float> parse_float(std::string_view s) noexcept {
  const auto d = parse_double(s);
  if (!d) return std::nullopt;
  return static_cast<float>(*d);
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for floating point is available in libstdc++ >= 11.
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::string_view> FieldCursor::next() noexcept {
  std::size_t i = 0;
  while (i < rest_.size() && is_space(rest_[i])) ++i;
  if (i == rest_.size()) {
    rest_ = {};
    return std::nullopt;
  }
  std::size_t j = i;
  while (j < rest_.size() && !is_space(rest_[j])) ++j;
  const auto field = rest_.substr(i, j - i);
  rest_ = rest_.substr(j);
  return field;
}

std::optional<std::uint64_t> FieldCursor::next_u64() noexcept {
  const auto f = next();
  if (!f) return std::nullopt;
  return parse_u64(*f);
}

std::optional<float> FieldCursor::next_float() noexcept {
  const auto f = next();
  if (!f) return std::nullopt;
  return parse_float(*f);
}

bool FieldCursor::done() noexcept {
  std::size_t i = 0;
  while (i < rest_.size() && is_space(rest_[i])) ++i;
  return i == rest_.size();
}

}  // namespace credo::util
