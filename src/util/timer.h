// Minimal wall-clock timing helpers used by benchmarks and the host side of
// the engines. Simulated (modelled) time lives in perf/, not here.
#pragma once

#include <chrono>
#include <cstdint>

namespace credo::util {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed, as an integer (useful for log lines).
  [[nodiscard]] std::int64_t micros() const noexcept {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace credo::util
