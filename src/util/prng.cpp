#include "util/prng.h"

#include <cmath>

namespace credo::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Prng::Prng(std::uint64_t seed) noexcept { reseed(seed); }

void Prng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& lane : s_) {
    x = splitmix64(x);
    lane = x;
  }
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // consecutive zeros, so no further check is needed.
  has_spare_normal_ = false;
}

Prng::result_type Prng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Prng::uniform(std::uint64_t bound) noexcept {
  // Lemire 2018: unbiased bounded integers without division in the hot path.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Prng::uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Prng::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

float Prng::uniform01f() noexcept {
  return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
}

bool Prng::bernoulli(double p) noexcept { return uniform01() < p; }

double Prng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * uniform01() - 1.0;
    v = 2.0 * uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

Prng Prng::split() noexcept { return Prng((*this)()); }

}  // namespace credo::util
