// Plain-text table and CSV emission for the benchmark harnesses.
//
// Every bench binary prints its figure/table as an aligned text table (the
// rows the paper reports) and can additionally dump CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace credo::util {

/// Column-aligned text table with an optional CSV mirror.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the row must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with %g-style precision.
  static std::string num(double v, int precision = 4);

  /// Renders the aligned table to `os`.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (no quoting of embedded commas needed for our
  /// content; commas in cells are replaced by semicolons).
  void print_csv(std::ostream& os) const;

  /// Writes the CSV form to a file. Throws IoError on failure.
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace credo::util
