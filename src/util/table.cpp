#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/error.h"

namespace credo::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CREDO_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  CREDO_CHECK_MSG(cells.size() == headers_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      std::replace(cell.begin(), cell.end(), ',', ';');
      os << cell;
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open for writing: " + path);
  print_csv(out);
}

}  // namespace credo::util
