// Virus propagation — the paper's second use case (§4): a three-state
// belief network (uninfected / infected / recovered) over a social graph.
//
// A preferential-attachment network stands in for a contact graph; a few
// known cases are observed as infected, and loopy BP propagates infection
// risk through the contact structure. The trained Credo dispatcher picks
// the engine from the graph's metadata (§3.7) — exactly the production
// path: parse/generate, extract metadata, choose, run.
//
// Build & run:  ./build/examples/virus_propagation [num_people]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bp/engine.h"
#include "credo/dispatcher.h"
#include "credo/suite.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/metadata.h"

using namespace credo;

namespace {

enum State : std::uint32_t { kUninfected = 0, kInfected = 1, kRecovered = 2 };

/// Contact graph with SIR-style transmission potentials.
graph::FactorGraph build_outbreak(graph::NodeId people, util::Prng& rng) {
  // Transmission potential along a contact edge: an infected contact makes
  // infection much more likely; recovered contacts are inert.
  graph::JointMatrix t(3, 3);
  const float rows[3][3] = {
      // neighbor:   S     I     R      (self state tendency given contact)
      /*S*/ {0.88f, 0.08f, 0.04f},
      /*I*/ {0.45f, 0.45f, 0.10f},
      /*R*/ {0.70f, 0.10f, 0.20f},
  };
  for (std::uint32_t r = 0; r < 3; ++r) {
    for (std::uint32_t c = 0; c < 3; ++c) t.at(r, c) = rows[r][c];
  }

  graph::GraphBuilder b;
  b.use_shared_joint(t);
  for (graph::NodeId v = 0; v < people; ++v) {
    // Population prior: mostly uninfected.
    graph::BeliefVec prior;
    prior.size = 3;
    prior[kUninfected] = 0.96f;
    prior[kInfected] = 0.03f;
    prior[kRecovered] = 0.01f;
    b.add_node(prior);
  }
  // Preferential attachment: sample contacts proportional to popularity.
  std::vector<graph::NodeId> endpoints;
  for (graph::NodeId u = 0; u < 3 && u < people; ++u) {
    for (graph::NodeId v = u + 1; v < 3 && v < people; ++v) {
      b.add_undirected(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (graph::NodeId u = 3; u < people; ++u) {
    for (int k = 0; k < 3; ++k) {
      const graph::NodeId v = endpoints[rng.uniform(endpoints.size())];
      if (v == u) continue;
      b.add_undirected(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  // Observe a handful of confirmed cases.
  const auto seeds = std::max<graph::NodeId>(2, people / 200);
  for (graph::NodeId s = 0; s < seeds; ++s) {
    b.observe(static_cast<graph::NodeId>(rng.uniform(people)), kInfected);
  }
  return b.finalize();
}

}  // namespace

int main(int argc, char** argv) {
  const auto people = static_cast<graph::NodeId>(
      argc > 1 ? std::atoll(argv[1]) : 20'000);
  util::Prng rng(2026);
  const auto g = build_outbreak(people, rng);
  const auto md = graph::compute_metadata(g);
  std::printf("contact graph: %llu people, %llu directed contact edges, "
              "max degree %u\n",
              static_cast<unsigned long long>(md.num_nodes),
              static_cast<unsigned long long>(md.num_directed_edges),
              md.max_in_degree);

  // Train the dispatcher from the benchmark suite (cached runs would be
  // used in production; the small 2/3-belief sweep here keeps the example
  // self-contained).
  std::printf("training Credo's dispatcher on the benchmark suite...\n");
  dispatch::TrainerConfig tcfg;
  const auto runs =
      dispatch::benchmark_suite(suite::table1_bold(), {2u, 3u}, tcfg);
  const auto dispatcher = dispatch::Dispatcher::train(runs);
  const auto pick = dispatcher.choose(md);
  std::printf("dispatcher picked: %s (platform pivot at %g nodes for 3 "
              "beliefs)\n",
              std::string(bp::engine_name(pick)).c_str(),
              dispatcher.platform_pivot(3));

  bp::BpOptions opts;
  opts.work_queue = true;
  const auto result = dispatcher.run(g, opts);
  std::printf("propagation: %u iterations, converged=%d, modelled %.3g ms\n",
              result.stats.iterations, result.stats.converged ? 1 : 0,
              1e3 * result.stats.modelled_seconds());

  // Risk report: people most likely to be infected (excluding the
  // observed seeds themselves).
  std::vector<std::pair<float, graph::NodeId>> risk;
  double expected_cases = 0.0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const float p = result.beliefs[v][kInfected];
    expected_cases += p;
    if (!g.observed(v)) risk.emplace_back(p, v);
  }
  std::sort(risk.rbegin(), risk.rend());
  std::printf("expected number of infected: %.1f of %u\n", expected_cases,
              g.num_nodes());
  std::printf("top contacts at risk:\n");
  for (std::size_t i = 0; i < 10 && i < risk.size(); ++i) {
    std::printf("  person %-8u p(infected) = %.3f  (degree %u)\n",
                risk[i].second, risk[i].first,
                g.in_csr().degree(risk[i].second));
  }
  return 0;
}
