// Format conversion CLI — the migration path §3.2 implies: read legacy
// BIF / XML-BIF content once, write the streaming MTX-belief pair, and
// report the size/parse-cost difference.
//
// Usage:
//   format_convert <input.{bif,xml}> <out_nodes.mtx> <out_edges.mtx>
//   format_convert --demo        (generates a 1000-node network first)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "io/bayes_net.h"
#include "io/bif.h"
#include "io/convert.h"
#include "io/mtx_belief.h"
#include "io/xmlbif.h"
#include "util/timer.h"

using namespace credo;

namespace {

std::uint64_t file_size(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<std::uint64_t>(in.tellg()) : 0;
}

int convert(const std::string& input, const std::string& nodes_out,
            const std::string& edges_out) {
  const bool is_xml = input.size() > 4 &&
                      (input.substr(input.size() - 4) == ".xml" ||
                       input.substr(input.size() - 7) == ".xmlbif");
  util::Timer parse_timer;
  const io::BayesNet net =
      is_xml ? io::read_xmlbif(input) : io::read_bif(input);
  const double parse_s = parse_timer.seconds();

  io::bayes_net_to_mtx(net, nodes_out, edges_out);

  util::Timer reread_timer;
  io::ParseStats stats;
  const auto g = io::read_mtx_belief(nodes_out, edges_out, &stats);
  const double reread_s = reread_timer.seconds();

  std::printf("input:  %s (%llu bytes, parsed in %.3f ms as %s)\n",
              input.c_str(),
              static_cast<unsigned long long>(file_size(input)),
              1e3 * parse_s, is_xml ? "XML-BIF" : "BIF");
  std::printf("output: %s + %s (%llu + %llu bytes)\n", nodes_out.c_str(),
              edges_out.c_str(),
              static_cast<unsigned long long>(file_size(nodes_out)),
              static_cast<unsigned long long>(file_size(edges_out)));
  std::printf("graph:  %u nodes, %llu directed edges; MTX re-parse %.3f ms "
              "(%llu lines streamed)\n",
              g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()), 1e3 * reread_s,
              static_cast<unsigned long long>(stats.lines));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--demo") == 0) {
    const auto net = io::BayesNet::random(1000, 2, 2, 42);
    io::write_bif(net, "demo.bif");
    io::write_xmlbif(net, "demo.xml");
    std::printf("generated demo.bif and demo.xml (1000 variables)\n\n");
    const int rc = convert("demo.bif", "demo_nodes.mtx", "demo_edges.mtx");
    std::printf("\n");
    return rc == 0 ? convert("demo.xml", "demo_nodes2.mtx",
                             "demo_edges2.mtx")
                   : rc;
  }
  if (argc != 4) {
    std::fprintf(stderr,
                 "usage: %s <input.{bif,xml}> <nodes.mtx> <edges.mtx>\n"
                 "       %s --demo\n",
                 argv[0], argv[0]);
    return 2;
  }
  try {
    return convert(argv[1], argv[2], argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
