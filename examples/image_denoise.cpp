// Image correction — the paper's third use case (§4): a grid MRF that
// cleans a noisy binary image.
//
// Classic construction: one hidden node per pixel linked 4-connectedly
// with a smoothness potential, plus one *observed* evidence node per pixel
// fixed at the noisy measurement and linked by the sensor model. Loopy BP
// recovers each pixel's most likely true value. The example draws a glyph,
// flips a fraction of pixels, denoises with the CUDA Edge engine (grids
// are edge-friendly: uniform degree 4) and reports the error reduction.
//
// Build & run:  ./build/examples/image_denoise [side] [noise]
#include <cstdio>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "bp/engine.h"
#include "graph/builder.h"
#include "util/prng.h"

using namespace credo;

namespace {

/// Ground-truth binary image: a filled ring.
std::vector<std::uint8_t> make_image(std::uint32_t side) {
  std::vector<std::uint8_t> img(static_cast<std::size_t>(side) * side, 0);
  const double cx = (side - 1) / 2.0;
  const double r_out = side * 0.38;
  const double r_in = side * 0.18;
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      const double d = std::hypot(x - cx, y - cx);
      img[y * side + x] = (d <= r_out && d >= r_in) ? 1 : 0;
    }
  }
  return img;
}

void print_image(const std::vector<std::uint8_t>& img, std::uint32_t side,
                 const char* title) {
  std::printf("%s\n", title);
  const std::uint32_t step = side > 48 ? side / 48 : 1;
  for (std::uint32_t y = 0; y < side; y += step) {
    std::string line;
    for (std::uint32_t x = 0; x < side; x += step) {
      line += img[y * side + x] ? "#" : ".";
    }
    std::printf("  %s\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto side =
      static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 48);
  const double noise = argc > 2 ? std::atof(argv[2]) : 0.12;
  util::Prng rng(99);

  const auto truth = make_image(side);
  auto noisy = truth;
  for (auto& px : noisy) {
    if (rng.bernoulli(noise)) px ^= 1;
  }

  // Hidden pixel nodes 0..n-1, evidence nodes n..2n-1.
  const auto n = static_cast<graph::NodeId>(side * side);
  graph::GraphBuilder b;
  for (graph::NodeId v = 0; v < n; ++v) {
    b.add_node(graph::BeliefVec::uniform(2));
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    b.add_observed_node(2, noisy[v]);
  }
  // Smoothness: neighboring pixels agree 80% of the time.
  const auto smooth = graph::JointMatrix::diffusion(2, 0.80f);
  // Sensor model: a pixel is measured correctly with probability 1-noise
  // (slightly pessimistic keeps the posterior calibrated).
  const auto sensor = graph::JointMatrix::diffusion(
      2, static_cast<float>(1.0 - noise * 1.1));
  auto id = [side](std::uint32_t x, std::uint32_t y) {
    return static_cast<graph::NodeId>(y * side + x);
  };
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      if (x + 1 < side) b.add_undirected(id(x, y), id(x + 1, y), smooth);
      if (y + 1 < side) b.add_undirected(id(x, y), id(x, y + 1), smooth);
      b.add_undirected(id(x, y), n + id(x, y), sensor);
    }
  }
  const auto g = b.finalize();

  bp::BpOptions opts;
  opts.work_queue = true;
  opts.max_iterations = 200;
  const auto engine = bp::make_default_engine(bp::EngineKind::kCudaEdge);
  const auto result = engine->run(g, opts);

  std::vector<std::uint8_t> restored(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    restored[v] = result.beliefs[v][1] > 0.5f ? 1 : 0;
  }
  std::uint32_t noisy_err = 0;
  std::uint32_t restored_err = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    noisy_err += noisy[v] != truth[v];
    restored_err += restored[v] != truth[v];
  }

  print_image(noisy, side, "noisy input:");
  print_image(restored, side, "denoised (loopy BP, CUDA Edge engine):");
  std::printf("pixels: %u, noise flipped %u (%.1f%%), BP left %u wrong "
              "(%.1f%%)\n",
              n, noisy_err, 100.0 * noisy_err / n, restored_err,
              100.0 * restored_err / n);
  std::printf("%u iterations, modelled %.3g ms on %s\n",
              result.stats.iterations,
              1e3 * result.stats.modelled_seconds(),
              engine->hardware().name.c_str());
  return restored_err <= noisy_err ? 0 : 1;
}
