// Quickstart: the 60-second tour of the Credo API.
//
//  1. Build the paper's family-out Bayesian network (Fig. 1) and lower it
//     to the pairwise factor graph the engines run on.
//  2. Run belief propagation on three engines — exact tree BP and the
//     loopy C Edge / simulated CUDA Node engines. (Tree BP computes exact
//     Pearl marginals with local priors re-applied; the loopy engines run
//     the paper's Algorithm 1, whose update combines incoming messages
//     only, so the two algorithms settle on different numbers — §2.1.1 is
//     precisely about this trade.)
//  3. Observe evidence (we hear barking) and watch the posteriors shift.
//  4. Round-trip the graph through the MTX-belief format (§3.2).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <sstream>

#include "bp/engine.h"
#include "graph/builder.h"
#include "io/bayes_net.h"
#include "io/mtx_belief.h"

using namespace credo;

namespace {

/// Copies `g`, additionally observing node `v` at `state`.
graph::FactorGraph with_observation(const graph::FactorGraph& g,
                                    graph::NodeId v, std::uint32_t state) {
  graph::GraphBuilder b;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    b.add_node(g.prior(u));
  }
  b.observe(v, state);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    b.add_edge(g.edge(e).src, g.edge(e).dst, g.joints().at(e));
  }
  return b.finalize();
}

}  // namespace

int main() {
  // 1. The family-out problem from the paper's Fig. 1. Variable indices:
  //    0 family-out, 1 bowel-problem, 2 light-on, 3 dog-out, 4 hear-bark.
  const io::BayesNet net = io::BayesNet::family_out();
  const graph::FactorGraph g = net.to_factor_graph();

  bp::BpOptions opts;
  opts.convergence_threshold = 1e-6f;

  // 2. Marginals with no evidence. The two loopy engines agree with each
  //    other; exact tree BP differs (see header note).
  std::printf("family-out marginals, no evidence:\n");
  std::printf("%-12s %12s %10s %11s\n", "engine", "p(fam-out)",
              "p(dog-out)", "p(bark)");
  for (const auto kind :
       {bp::EngineKind::kTree, bp::EngineKind::kCpuEdge,
        bp::EngineKind::kCudaNode}) {
    const auto engine = bp::make_default_engine(kind);
    const auto result = engine->run(g, opts);
    std::printf("%-12s %12.4f %10.4f %11.4f   (%u iters, modelled %.3g ms "
                "on %s)\n",
                std::string(engine->name()).c_str(), result.beliefs[0][0],
                result.beliefs[3][0], result.beliefs[4][0],
                result.stats.iterations,
                1e3 * result.stats.modelled_seconds(),
                engine->hardware().name.c_str());
  }

  // 3. Observe hear-bark = true (state 0) and re-run.
  const auto g_obs = with_observation(g, 4, 0);
  const auto engine = bp::make_default_engine(bp::EngineKind::kCpuEdge);
  const auto posterior = engine->run(g_obs, opts);
  std::printf("\nafter observing hear-bark = true:\n");
  std::printf("p(family-out): prior 0.1500 -> posterior %.4f\n",
              posterior.beliefs[0][0]);
  std::printf("p(dog-out):    prior %.4f -> posterior %.4f\n",
              engine->run(g, opts).beliefs[3][0], posterior.beliefs[3][0]);

  // 4. Round-trip through the streaming MTX-belief format.
  std::ostringstream nodes;
  std::ostringstream edges;
  io::write_mtx_belief_streams(g_obs, nodes, edges);
  std::istringstream nin(nodes.str());
  std::istringstream ein(edges.str());
  const auto reloaded = io::read_mtx_belief_streams(nin, ein);
  std::printf("\nMTX-belief round trip: %u nodes, %llu directed edges "
              "(%zu bytes node file, %zu bytes edge file)\n",
              reloaded.num_nodes(),
              static_cast<unsigned long long>(reloaded.num_edges()),
              nodes.str().size(), edges.str().size());
  return 0;
}
