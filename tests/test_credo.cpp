// Tests for the Credo front end: the Table 1 suite, the trainer's
// labeling, and the dispatcher's rule + classifier selection.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "credo/dispatcher.h"
#include "credo/suite.h"
#include "credo/trainer.h"
#include "graph/metadata.h"

namespace credo {
namespace {

TEST(Suite, HasAllTable1Rows) {
  EXPECT_EQ(suite::table1().size(), 34u);
  // Spot checks against the paper's Table 1.
  EXPECT_EQ(suite::by_abbrev("K21").paper_nodes, 1'544'087u);
  EXPECT_EQ(suite::by_abbrev("K21").paper_edges, 91'042'010u);
  EXPECT_EQ(suite::by_abbrev("TW").paper_nodes, 21'297'772u);
  EXPECT_EQ(suite::by_abbrev("10x40").paper_nodes, 10u);
  EXPECT_THROW((void)suite::by_abbrev("NOPE"), util::InvalidArgument);
}

TEST(Suite, ScalingPreservesEdgeNodeRatio) {
  for (const auto& spec : suite::table1()) {
    const double paper_ratio = static_cast<double>(spec.paper_edges) /
                               static_cast<double>(spec.paper_nodes);
    const double scaled_ratio = static_cast<double>(spec.edges) /
                                static_cast<double>(spec.nodes);
    EXPECT_NEAR(scaled_ratio / paper_ratio, 1.0, 0.15) << spec.abbrev;
    EXPECT_LE(spec.nodes, 120'000u) << spec.abbrev;
    EXPECT_LE(spec.edges, 600'000u) << spec.abbrev;
  }
}

TEST(Suite, SmallRowsKeepExactPaperSize) {
  EXPECT_EQ(suite::by_abbrev("10x40").nodes, 10u);
  EXPECT_EQ(suite::by_abbrev("1k4k").nodes, 1000u);
  EXPECT_EQ(suite::by_abbrev("100kx400k").nodes, 100'000u);
}

TEST(Suite, InstantiateIsDeterministic) {
  const auto& spec = suite::by_abbrev("1k4k");
  const auto a = suite::instantiate(spec, 3);
  const auto b = suite::instantiate(spec, 3);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (graph::EdgeId e = 0; e < a.num_edges(); ++e) {
    ASSERT_EQ(a.edge(e).src, b.edge(e).src);
  }
  // Different belief counts give different graphs but the same shape
  // family.
  const auto c = suite::instantiate(spec, 2);
  EXPECT_EQ(c.num_nodes(), a.num_nodes());
  const auto md = graph::compute_metadata(a);
  EXPECT_EQ(md.beliefs, 3u);
}

TEST(Suite, ExtraDivisorShrinksOnlyLargeRows) {
  const auto big = suite::instantiate(suite::by_abbrev("100kx400k"), 32, 8);
  EXPECT_EQ(big.num_nodes(), 12'500u);
  const auto small = suite::instantiate(suite::by_abbrev("100x400"), 32, 8);
  EXPECT_EQ(small.num_nodes(), 100u);
}

TEST(Suite, BoldSubsetIsNonTrivial) {
  const auto bold = suite::table1_bold();
  EXPECT_GE(bold.size(), 10u);
  EXPECT_LT(bold.size(), suite::table1().size());
}

TEST(Trainer, EngineTimesBestKind) {
  dispatch::EngineTimes t;
  t.cpu_node = 4;
  t.cpu_edge = 2;
  t.cuda_node = 3;
  t.cuda_edge = 5;
  EXPECT_EQ(t.best_kind(), bp::EngineKind::kCpuEdge);
  EXPECT_DOUBLE_EQ(t.best_time(), 2.0);
  EXPECT_DOUBLE_EQ(t.of(bp::EngineKind::kCudaNode), 3.0);
  EXPECT_THROW((void)t.of(bp::EngineKind::kTree), util::InvalidArgument);
}

TEST(Trainer, ProducesLabeledRuns) {
  dispatch::TrainerConfig cfg;
  const std::vector<suite::BenchmarkSpec> specs = {
      suite::by_abbrev("10x40"), suite::by_abbrev("100x400"),
      suite::by_abbrev("1k4k")};
  const auto runs = dispatch::benchmark_suite(specs, {2u}, cfg);
  ASSERT_EQ(runs.size(), 3u);
  for (const auto& r : runs) {
    EXPECT_GT(r.times.cpu_node, 0.0);
    EXPECT_GT(r.times.cuda_edge, 0.0);
    EXPECT_TRUE(r.paradigm_label == 0 || r.paradigm_label == 1);
    EXPECT_EQ(r.metadata.beliefs, 2u);
  }
  const auto data = dispatch::to_dataset(runs);
  EXPECT_EQ(data.size(), 3u);
  EXPECT_EQ(data.features(), 5u);
}

TEST(Dispatcher, LearnsPivotsAndDispatches) {
  // Synthetic runs: CUDA wins above 50k nodes, Node paradigm wins when the
  // nodes/edges ratio is low (dense graphs).
  std::vector<dispatch::LabeledRun> runs;
  util::Prng rng(71);
  for (int i = 0; i < 60; ++i) {
    dispatch::LabeledRun r;
    r.beliefs = 2;
    r.metadata.beliefs = 2;
    r.metadata.num_nodes = 1000 + rng.uniform(200'000);
    const bool dense = rng.bernoulli(0.5);
    r.metadata.num_directed_edges =
        r.metadata.num_nodes * (dense ? 30 : 3);
    r.metadata.max_in_degree = dense ? 500 : 10;
    r.metadata.max_out_degree = r.metadata.max_in_degree;
    r.metadata.avg_in_degree = dense ? 30 : 3;
    const bool cuda = r.metadata.num_nodes >= 50'000;
    const bool node_wins = dense;
    r.paradigm_label = node_wins ? 1 : 0;
    const double fast = 0.01;
    const double slow = 1.0;
    r.times.cpu_node = (!cuda && node_wins) ? fast : slow;
    r.times.cpu_edge = (!cuda && !node_wins) ? fast : slow;
    r.times.cuda_node = (cuda && node_wins) ? fast : slow;
    r.times.cuda_edge = (cuda && !node_wins) ? fast : slow;
    runs.push_back(r);
  }
  const auto d = dispatch::Dispatcher::train(runs);
  EXPECT_NEAR(d.platform_pivot(2), 50'000, 25'000);

  graph::GraphMetadata small_dense;
  small_dense.beliefs = 2;
  small_dense.num_nodes = 2000;
  small_dense.num_directed_edges = 60'000;
  small_dense.max_in_degree = 500;
  small_dense.max_out_degree = 500;
  small_dense.avg_in_degree = 30;
  EXPECT_EQ(d.choose(small_dense), bp::EngineKind::kCpuNode);

  graph::GraphMetadata big_sparse = small_dense;
  big_sparse.num_nodes = 150'000;
  big_sparse.num_directed_edges = 450'000;
  big_sparse.max_in_degree = 10;
  big_sparse.max_out_degree = 10;
  big_sparse.avg_in_degree = 3;
  EXPECT_EQ(d.choose(big_sparse), bp::EngineKind::kCudaEdge);
}

TEST(Dispatcher, PivotInterpolatesAcrossArities) {
  std::vector<dispatch::LabeledRun> runs;
  for (const std::uint32_t b : {2u, 32u}) {
    for (const std::uint64_t n : {1000ull, 10'000ull, 100'000ull}) {
      dispatch::LabeledRun r;
      r.beliefs = b;
      r.metadata.beliefs = b;
      r.metadata.num_nodes = n;
      r.metadata.num_directed_edges = 4 * n;
      r.metadata.max_in_degree = 8;
      r.metadata.max_out_degree = 8;
      r.metadata.avg_in_degree = 4;
      // CUDA pivot: 50k at 2 beliefs, 5k at 32 beliefs.
      const bool cuda = b == 2 ? n >= 50'000 : n >= 5'000;
      r.paradigm_label = 0;
      r.times.cpu_edge = cuda ? 1.0 : 0.01;
      r.times.cuda_edge = cuda ? 0.01 : 1.0;
      r.times.cpu_node = 2.0;
      r.times.cuda_node = 2.0;
      runs.push_back(r);
    }
  }
  const auto d = dispatch::Dispatcher::train(runs);
  const double p2 = d.platform_pivot(2);
  const double p32 = d.platform_pivot(32);
  EXPECT_GT(p2, p32);  // more beliefs -> earlier CUDA switch
  const double p8 = d.platform_pivot(8);
  EXPECT_LT(p8, p2);
  EXPECT_GT(p8, p32);
}

TEST(Dispatcher, RunExecutesChosenEngine) {
  dispatch::TrainerConfig cfg;
  const std::vector<suite::BenchmarkSpec> specs = {
      suite::by_abbrev("100x400"), suite::by_abbrev("1k4k"),
      suite::by_abbrev("10kx40k")};
  const auto runs = dispatch::benchmark_suite(specs, {2u}, cfg);
  const auto d = dispatch::Dispatcher::train(runs);
  const auto g = suite::instantiate(suite::by_abbrev("1k4k"), 2);
  bp::BpOptions opts;
  opts.work_queue = true;
  const auto result = d.run(g, opts);
  EXPECT_EQ(result.beliefs.size(), g.num_nodes());
  EXPECT_GT(result.stats.iterations, 0u);
}


TEST(Dispatcher, SaveLoadRoundTrip) {
  dispatch::TrainerConfig cfg;
  const std::vector<suite::BenchmarkSpec> specs = {
      suite::by_abbrev("100x400"), suite::by_abbrev("1k4k"),
      suite::by_abbrev("10kx40k")};
  const auto runs = dispatch::benchmark_suite(specs, {2u}, cfg);
  const auto trained = dispatch::Dispatcher::train(runs);
  const auto path = (std::filesystem::temp_directory_path() /
                     "credo_test_model.txt")
                        .string();
  trained.save(path);
  const auto loaded = dispatch::Dispatcher::load(path);
  EXPECT_DOUBLE_EQ(loaded.platform_pivot(2), trained.platform_pivot(2));
  for (const auto& run : runs) {
    EXPECT_EQ(loaded.choose(run.metadata), trained.choose(run.metadata));
  }
  std::remove(path.c_str());
  EXPECT_THROW(dispatch::Dispatcher::load("/nonexistent/model.txt"),
               util::IoError);
}

}  // namespace
}  // namespace credo
