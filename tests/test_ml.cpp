// Tests for the from-scratch ML library: dataset handling, metrics, and
// every classifier in the §4.3 comparison suite on synthetic separable and
// noisy problems.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/classifier.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/pca.h"
#include "ml/random_forest.h"
#include "util/error.h"
#include "util/prng.h"

namespace credo::ml {
namespace {

/// Two Gaussian blobs, linearly separable when `gap` is large.
Dataset blobs(std::size_t per_class, double gap, std::uint64_t seed) {
  util::Prng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({rng.normal(), rng.normal() - gap / 2}, 0);
    d.add({rng.normal() + gap, rng.normal() + gap / 2}, 1);
  }
  return d;
}

/// XOR-style dataset: not linearly separable, easy for trees with depth 2.
Dataset xor_data(std::size_t n, std::uint64_t seed) {
  util::Prng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform01();
    const double y = rng.uniform01();
    d.add({x, y}, (x < 0.5) != (y < 0.5) ? 1 : 0);
  }
  return d;
}

// ---------------------------------------------------------------------------
// Dataset utilities
// ---------------------------------------------------------------------------

TEST(Dataset, AddValidatesShape) {
  Dataset d;
  d.add({1.0, 2.0}, 0);
  EXPECT_THROW(d.add({1.0}, 0), std::logic_error);
  EXPECT_THROW(d.add({1.0, 2.0}, -1), std::logic_error);
  EXPECT_EQ(d.features(), 2u);
  EXPECT_EQ(d.num_classes(), 1);
}

TEST(Dataset, StratifiedSplitPreservesClassBalance) {
  const auto d = blobs(100, 3.0, 1);
  util::Prng rng(2);
  const auto split = stratified_split(d, 0.6, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), d.size());
  auto count1 = [](const Dataset& s) {
    int c = 0;
    for (const auto y : s.y) c += y;
    return c;
  };
  EXPECT_NEAR(static_cast<double>(count1(split.train)) / split.train.size(),
              0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(count1(split.test)) / split.test.size(),
              0.5, 0.02);
}

TEST(Dataset, BalancedSampleBalances) {
  // Imbalanced source: 150 of class 0, 50 of class 1.
  util::Prng rng(3);
  Dataset d;
  for (int i = 0; i < 150; ++i) d.add({rng.uniform01()}, 0);
  for (int i = 0; i < 50; ++i) d.add({rng.uniform01()}, 1);
  const auto sample = balanced_sample(d, 60, rng);
  int ones = 0;
  for (const auto y : sample.y) ones += y;
  EXPECT_EQ(sample.size(), 60u);
  EXPECT_EQ(ones, 30);
}

TEST(Dataset, StratifiedFoldsPartition) {
  const auto d = blobs(30, 3.0, 4);
  util::Prng rng(5);
  const auto folds = stratified_folds(d, 3, rng);
  ASSERT_EQ(folds.size(), 3u);
  std::size_t total = 0;
  for (const auto& f : folds) total += f.size();
  EXPECT_EQ(total, d.size());
}

TEST(Dataset, MinMaxScalerMapsToUnitBox) {
  Dataset d;
  d.add({0.0, 10.0}, 0);
  d.add({5.0, 20.0}, 1);
  d.add({10.0, 30.0}, 0);
  MinMaxScaler s;
  s.fit(d);
  const auto t = s.transform(d);
  EXPECT_DOUBLE_EQ(t.x[0][0], 0.0);
  EXPECT_DOUBLE_EQ(t.x[2][0], 1.0);
  EXPECT_DOUBLE_EQ(t.x[1][1], 0.5);
  // Out-of-range rows clamp.
  EXPECT_DOUBLE_EQ(s.transform_row({-5.0, 40.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(s.transform_row({-5.0, 40.0})[1], 1.0);
}

TEST(Dataset, CorrelationMatrixProperties) {
  const auto d = blobs(200, 4.0, 6);
  const auto corr = correlation_with_label(d);
  ASSERT_EQ(corr.size(), 3u);  // 2 features + label
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(corr[i][i], 1.0, 1e-9);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(corr[i][j], corr[j][i], 1e-12);
      EXPECT_LE(std::fabs(corr[i][j]), 1.0 + 1e-12);
    }
  }
  // Feature 0 strongly predicts the label in the blobs construction.
  EXPECT_GT(corr[0][2], 0.7);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Metrics, PerfectPrediction) {
  const auto rep = evaluate({0, 1, 0, 1}, {0, 1, 0, 1});
  EXPECT_DOUBLE_EQ(rep.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(rep.f1_binary, 1.0);
  EXPECT_DOUBLE_EQ(rep.f1_macro, 1.0);
}

TEST(Metrics, KnownConfusion) {
  // truth:  1 1 1 1 0 0
  // pred:   1 1 0 0 0 1   -> tp=2 fn=2 fp=1 => F1 = 4/(4+1+2) = 0.5714...
  const auto rep = evaluate({1, 1, 1, 1, 0, 0}, {1, 1, 0, 0, 0, 1});
  EXPECT_NEAR(rep.f1_binary, 2.0 * 2 / (2 * 2 + 1 + 2), 1e-12);
  EXPECT_NEAR(rep.accuracy, 0.5, 1e-12);
  EXPECT_EQ(rep.confusion[1][0], 2u);
  EXPECT_EQ(rep.confusion[0][1], 1u);
}

TEST(Metrics, RejectsEmptyOrMismatched) {
  EXPECT_THROW(evaluate({}, {}), std::logic_error);
  EXPECT_THROW(evaluate({0, 1}, {0}), std::logic_error);
}

// ---------------------------------------------------------------------------
// Classifiers (parameterized across the whole suite)
// ---------------------------------------------------------------------------

class ClassifierSuite : public ::testing::TestWithParam<ClassifierKind> {};

TEST_P(ClassifierSuite, LearnsSeparableBlobs) {
  const auto train = blobs(60, 4.0, 11);
  const auto test = blobs(40, 4.0, 12);
  const auto clf = make_classifier(GetParam());
  clf->fit(train);
  const auto rep = evaluate(test.y, clf->predict_all(test));
  EXPECT_GT(rep.f1_binary, 0.9) << clf->name();
}

TEST_P(ClassifierSuite, PredictBeforeFitThrows) {
  const auto clf = make_classifier(GetParam());
  EXPECT_THROW((void)clf->predict({0.0, 0.0}), std::logic_error);
}

TEST_P(ClassifierSuite, RefitReplacesModel) {
  // Fit on blobs, then refit on label-flipped blobs: predictions flip.
  auto train = blobs(60, 5.0, 13);
  const auto clf = make_classifier(GetParam());
  clf->fit(train);
  const int before = clf->predict({5.0, 2.5});
  for (auto& y : train.y) y = 1 - y;
  clf->fit(train);
  EXPECT_NE(clf->predict({5.0, 2.5}), before) << clf->name();
}

INSTANTIATE_TEST_SUITE_P(
    All, ClassifierSuite, ::testing::ValuesIn(all_classifier_kinds()),
    [](const ::testing::TestParamInfo<ClassifierKind>& info) {
      std::string name = classifier_kind_name(info.param);
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(DecisionTree, SolvesQuadrantProblemAtDepth2) {
  // Non-linear but greedy-splittable: class 1 iff x<0.5 AND y<0.5.
  util::Prng rng(21);
  Dataset train;
  Dataset test;
  for (int i = 0; i < 600; ++i) {
    const double x = rng.uniform01();
    const double y = rng.uniform01();
    (i < 400 ? train : test).add({x, y}, (x < 0.5 && y < 0.5) ? 1 : 0);
  }
  DecisionTreeParams p;
  p.max_depth = 2;
  DecisionTree tree(p);
  tree.fit(train);
  const auto rep = evaluate(test.y, tree.predict_all(test));
  EXPECT_GT(rep.accuracy, 0.95);
}

TEST(DecisionTree, BalancedXorIsAGreedyBlindSpot) {
  // Perfectly balanced XOR offers zero impurity gain to any single
  // axis-aligned split, so greedy CART degenerates to a majority leaf —
  // a known CART property worth pinning down (the forest's feature
  // bagging is what rescues XOR, see RandomForest.BeatsSingleStumpOnXor).
  DecisionTree tree;  // depth 2
  tree.fit(xor_data(400, 21));
  const auto rep =
      evaluate(xor_data(200, 22).y, tree.predict_all(xor_data(200, 22)));
  EXPECT_LT(rep.accuracy, 0.9);
}

TEST(DecisionTree, DepthZeroIsMajorityVote) {
  DecisionTreeParams p;
  p.max_depth = 0;
  DecisionTree tree(p);
  Dataset d;
  d.add({0.0}, 1);
  d.add({1.0}, 1);
  d.add({2.0}, 0);
  tree.fit(d);
  EXPECT_EQ(tree.predict({5.0}), 1);
}

TEST(DecisionTree, ImportancesSumToOneAndFocus) {
  // Only feature 1 is informative.
  util::Prng rng(31);
  Dataset d;
  for (int i = 0; i < 200; ++i) {
    const double informative = rng.uniform01();
    d.add({rng.uniform01(), informative}, informative > 0.5 ? 1 : 0);
  }
  DecisionTreeParams p;
  p.max_depth = 3;
  DecisionTree tree(p);
  tree.fit(d);
  const auto imp = tree.feature_importances();
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
  EXPECT_GT(imp[1], 0.95);
}

TEST(DecisionTree, ToTextRendersSplits) {
  DecisionTree tree;
  tree.fit(xor_data(200, 33));
  const auto text = tree.to_text({"x", "y"});
  EXPECT_NE(text.find("leaf"), std::string::npos);
  EXPECT_TRUE(text.find("x <") != std::string::npos ||
              text.find("y <") != std::string::npos);
}

TEST(DecisionTree, HandlesMulticlass) {
  util::Prng rng(35);
  Dataset d;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform01() * 3;
    d.add({x}, static_cast<int>(x));
  }
  DecisionTreeParams p;
  p.max_depth = 4;
  DecisionTree tree(p);
  tree.fit(d);
  EXPECT_EQ(tree.predict({0.5}), 0);
  EXPECT_EQ(tree.predict({1.5}), 1);
  EXPECT_EQ(tree.predict({2.5}), 2);
}

TEST(RandomForest, BeatsSingleStumpOnXor) {
  const auto train = xor_data(300, 41);
  const auto test = xor_data(200, 42);
  DecisionTreeParams stump_params;
  stump_params.max_depth = 1;
  DecisionTree stump(stump_params);
  stump.fit(train);
  RandomForest forest;  // depth 6, 14 trees
  forest.fit(train);
  const auto stump_rep = evaluate(test.y, stump.predict_all(test));
  const auto forest_rep = evaluate(test.y, forest.predict_all(test));
  EXPECT_GT(forest_rep.accuracy, stump_rep.accuracy);
  EXPECT_GT(forest_rep.accuracy, 0.9);
}

TEST(RandomForest, ImportancesNormalized) {
  RandomForest forest;
  forest.fit(blobs(100, 3.0, 43));
  const auto imp = forest.feature_importances();
  double sum = 0;
  for (const auto v : imp) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(BinaryOnlyModels, RejectMulticlass) {
  Dataset d;
  d.add({0.0}, 0);
  d.add({1.0}, 1);
  d.add({2.0}, 2);
  for (const auto kind :
       {ClassifierKind::kSvmLinear, ClassifierKind::kGaussianProcess,
        ClassifierKind::kGradientBoost, ClassifierKind::kMlp}) {
    const auto clf = make_classifier(kind);
    EXPECT_THROW(clf->fit(d), util::InvalidArgument)
        << classifier_kind_name(kind);
  }
}

TEST(Pca, RecoversDominantDirection) {
  // Points along y = 2x with small noise: first component must capture
  // nearly all variance.
  util::Prng rng(51);
  Dataset d;
  for (int i = 0; i < 300; ++i) {
    const double t = rng.normal();
    d.add({t + 0.01 * rng.normal(), 2 * t + 0.01 * rng.normal()}, 0);
  }
  Pca pca;
  pca.fit(d, 2);
  const auto& ev = pca.explained_variance();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_GT(ev[0] / (ev[0] + ev[1]), 0.99);
  const auto t = pca.transform(d);
  EXPECT_EQ(t.features(), 2u);
  EXPECT_EQ(t.size(), d.size());
}

TEST(Pca, RejectsBadComponentCount) {
  Pca pca;
  const auto d = blobs(10, 1.0, 52);
  EXPECT_THROW(pca.fit(d, 0), std::logic_error);
  EXPECT_THROW(pca.fit(d, 3), std::logic_error);
}


TEST(Serialization, TreeRoundTripPredictsIdentically) {
  DecisionTreeParams p;
  p.max_depth = 4;
  DecisionTree tree(p);
  const auto train = blobs(100, 2.0, 61);
  tree.fit(train);
  const auto back = DecisionTree::deserialize(tree.serialize());
  const auto test = blobs(50, 2.0, 62);
  for (std::size_t i = 0; i < test.size(); ++i) {
    ASSERT_EQ(tree.predict(test.x[i]), back.predict(test.x[i]));
  }
}

TEST(Serialization, ForestRoundTripPredictsIdentically) {
  RandomForest forest;
  const auto train = xor_data(200, 63);
  forest.fit(train);
  const auto back = RandomForest::deserialize(forest.serialize());
  const auto test = xor_data(100, 64);
  for (std::size_t i = 0; i < test.size(); ++i) {
    ASSERT_EQ(forest.predict(test.x[i]), back.predict(test.x[i]));
  }
}

TEST(Serialization, RejectsMalformedInput) {
  EXPECT_THROW(DecisionTree::deserialize("nonsense"),
               util::InvalidArgument);
  EXPECT_THROW(DecisionTree::deserialize("tree 2 2 3\n0 0.5 1 99"),
               util::InvalidArgument);
  EXPECT_THROW(RandomForest::deserialize("forest 0 2\n"),
               util::InvalidArgument);
  EXPECT_THROW(RandomForest::deserialize("forest 3 2\ntree 1 1 1\n"
                                         "-1 0 -1 -1 0 0 1\n"),
               util::InvalidArgument);
}

}  // namespace
}  // namespace credo::ml
