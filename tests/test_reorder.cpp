// Locality pass (graph/reorder.h): permutation algebra, reordered-graph
// structure preservation, engine transparency (beliefs come back in the
// caller's original ids under every mode) and the GraphCache keying.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bp/engine.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "io/mtx_belief.h"
#include "serve/graph_cache.h"
#include "util/error.h"

namespace credo {
namespace {

using bp::BpOptions;
using bp::BpResult;
using bp::EngineKind;
using graph::FactorGraph;
using graph::NodeId;
using graph::Permutation;
using graph::ReorderMode;

constexpr ReorderMode kAllModes[] = {ReorderMode::kNone, ReorderMode::kBfs,
                                     ReorderMode::kRcm,
                                     ReorderMode::kDegree};

FactorGraph shuffled_grid(std::uint32_t side, std::uint32_t beliefs = 2) {
  graph::BeliefConfig cfg;
  cfg.beliefs = beliefs;
  cfg.seed = 23;
  cfg.observed_fraction = 0.1;
  auto g = graph::grid(side, side, cfg);
  return graph::relabeled(
      g, graph::random_order(g.num_nodes(), /*seed=*/0xabc));
}

float max_belief_gap(const BpResult& a, const BpResult& b) {
  EXPECT_EQ(a.beliefs.size(), b.beliefs.size());
  float worst = 0.0f;
  for (std::size_t v = 0; v < a.beliefs.size(); ++v) {
    worst = std::max(worst, graph::l1_diff(a.beliefs[v], b.beliefs[v]));
  }
  return worst;
}

TEST(Permutation, ApplyUnapplyRoundTrip) {
  const auto perm = graph::random_order(64, 99);
  std::vector<int> ids(64);
  for (int i = 0; i < 64; ++i) ids[i] = i;
  const auto permuted = perm.apply(ids);
  // apply scatters: the value from old id i lands at to_new(i).
  for (NodeId i = 0; i < 64; ++i) EXPECT_EQ(permuted[perm.to_new(i)], i);
  // unapply is its exact inverse.
  EXPECT_EQ(perm.unapply(permuted), ids);
  // to_new / to_old are mutually inverse bijections.
  for (NodeId i = 0; i < 64; ++i) {
    EXPECT_EQ(perm.to_old(perm.to_new(i)), i);
    EXPECT_EQ(perm.to_new(perm.to_old(i)), i);
  }
}

TEST(Permutation, IdentityAndInverse) {
  EXPECT_TRUE(Permutation::identity(16).is_identity());
  const auto perm = graph::random_order(16, 5);
  const auto inv = perm.inverse();
  EXPECT_TRUE(Permutation::compose(perm, inv).is_identity());
  for (NodeId i = 0; i < 16; ++i) EXPECT_EQ(inv.to_new(i), perm.to_old(i));
}

TEST(Permutation, ComposeAppliesInSequence) {
  const auto first = graph::random_order(32, 1);
  const auto then = graph::random_order(32, 2);
  const auto both = Permutation::compose(first, then);
  for (NodeId i = 0; i < 32; ++i) {
    EXPECT_EQ(both.to_new(i), then.to_new(first.to_new(i)));
  }
}

TEST(Permutation, RejectsNonBijections) {
  EXPECT_THROW(Permutation::from_new_to_old({0, 0, 1}), std::exception);
  EXPECT_THROW(Permutation::from_new_to_old({0, 3, 1}), std::exception);
}

TEST(ReorderMode, ParseAcceptsEveryModeName) {
  for (const auto mode : kAllModes) {
    EXPECT_EQ(graph::parse_reorder_mode(graph::reorder_mode_name(mode)),
              mode);
  }
  EXPECT_EQ(graph::parse_reorder_mode("RCM"), ReorderMode::kRcm);
}

TEST(ReorderMode, ParseRejectsUnknownListingValidModes) {
  try {
    (void)graph::parse_reorder_mode("hilbert");
    FAIL() << "expected InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("hilbert"), std::string::npos);
    for (const auto mode : kAllModes) {
      EXPECT_NE(msg.find(graph::reorder_mode_name(mode)),
                std::string::npos)
          << msg;
    }
  }
}

TEST(Reordered, PreservesStructureAndPayload) {
  const auto g = shuffled_grid(12);
  for (const auto mode : kAllModes) {
    const auto r = graph::reordered(g, mode);
    ASSERT_EQ(r.num_nodes(), g.num_nodes());
    ASSERT_EQ(r.num_edges(), g.num_edges());
    if (mode == ReorderMode::kNone) {
      EXPECT_EQ(r.permutation(), nullptr);
      continue;
    }
    const auto* perm = r.permutation();
    ASSERT_NE(perm, nullptr);
    EXPECT_EQ(r.reorder_mode(), mode);
    // Per-node payload rides with the node.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const NodeId nv = perm->to_new(v);
      EXPECT_EQ(r.arity(nv), g.arity(v));
      EXPECT_EQ(r.observed(nv), g.observed(v));
      EXPECT_EQ(graph::l1_diff(r.prior(nv), g.prior(v)), 0.0f);
    }
    // The edge multiset maps 1:1 through the permutation.
    std::vector<std::pair<NodeId, NodeId>> expect, got;
    for (const auto& e : g.edges()) {
      expect.emplace_back(perm->to_new(e.src), perm->to_new(e.dst));
    }
    for (const auto& e : r.edges()) got.emplace_back(e.src, e.dst);
    std::sort(expect.begin(), expect.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(expect, got);
  }
}

TEST(Reordered, BfsAndRcmShrinkEdgeSpan) {
  const auto g = shuffled_grid(24);
  const double base = graph::mean_edge_span(g);
  EXPECT_LT(graph::mean_edge_span(graph::reordered(g, ReorderMode::kBfs)),
            base / 4);
  EXPECT_LT(graph::mean_edge_span(graph::reordered(g, ReorderMode::kRcm)),
            base / 4);
}

TEST(Reordered, EdgeListSortedByTargetThenSource) {
  const auto r = graph::reordered(shuffled_grid(10), ReorderMode::kRcm);
  const auto& edges = r.edges();
  for (std::size_t i = 1; i < edges.size(); ++i) {
    const bool ordered =
        edges[i - 1].dst < edges[i].dst ||
        (edges[i - 1].dst == edges[i].dst &&
         edges[i - 1].src <= edges[i].src);
    ASSERT_TRUE(ordered) << "edge " << i;
  }
}

TEST(Reordered, TreeEngineBeliefsBitIdenticalUnderAnyOrdering) {
  graph::BeliefConfig cfg;
  cfg.beliefs = 3;
  cfg.seed = 17;
  cfg.observed_fraction = 0.1;
  const auto tree = graph::relabeled(
      graph::random_tree(96, cfg), graph::random_order(96, 0x7ee));
  BpOptions opts;
  const auto engine = bp::make_default_engine(EngineKind::kTree);
  const auto base = engine->run(tree, opts);
  for (const auto mode :
       {ReorderMode::kBfs, ReorderMode::kRcm, ReorderMode::kDegree}) {
    const auto r = engine->run(graph::reordered(tree, mode), opts);
    // Beliefs come back in original ids. Exact two-pass BP multiplies the
    // same child messages in permuted order, and float multiplication is
    // not associative, so the fixed point can move by an ulp (measured
    // ~2e-7) — but no more: same structure, same message set, same
    // normalization points. Pin that scale, ~1000x below the loopy
    // cross-engine tolerance.
    EXPECT_LT(max_belief_gap(base, r), 1e-5f)
        << graph::reorder_mode_name(mode);
  }
}

TEST(Reordered, LoopyEnginesAgreeAcrossOrderings) {
  const auto g = shuffled_grid(12);
  BpOptions opts;
  opts.convergence_threshold = 1e-4f;
  for (const auto kind :
       {EngineKind::kCpuNode, EngineKind::kCpuEdge, EngineKind::kOmpNode,
        EngineKind::kOmpEdge, EngineKind::kResidual}) {
    const auto engine = bp::make_default_engine(kind);
    const auto base = engine->run(g, opts);
    for (const auto mode :
         {ReorderMode::kBfs, ReorderMode::kRcm, ReorderMode::kDegree}) {
      const auto r = engine->run(graph::reordered(g, mode), opts);
      // Loopy fixed points are reached through differently-ordered float
      // sums; same tolerance the cross-engine tests use.
      EXPECT_LT(max_belief_gap(base, r), 0.02f)
          << bp::engine_name(kind) << " / "
          << graph::reorder_mode_name(mode);
    }
  }
}

TEST(Reordered, RelabeledRequiresPermFreeInput) {
  const auto g = shuffled_grid(6);
  const auto r = graph::reordered(g, ReorderMode::kBfs);
  EXPECT_THROW(
      (void)graph::relabeled(r, graph::random_order(r.num_nodes(), 1)),
      std::exception);
}

TEST(GraphCache, DistinctEntriesPerReorderMode) {
  const auto dir =
      std::filesystem::temp_directory_path() / "credo_reorder_ut";
  std::filesystem::create_directories(dir);
  const std::string nodes = (dir / "g_nodes.mtx").string();
  const std::string edges = (dir / "g_edges.mtx").string();
  io::write_mtx_belief(shuffled_grid(8), nodes, edges);

  serve::GraphCache cache(8);
  const auto none = cache.fetch(nodes, edges, ReorderMode::kNone);
  const auto rcm = cache.fetch(nodes, edges, ReorderMode::kRcm);
  const auto bfs = cache.fetch(nodes, edges, ReorderMode::kBfs);
  EXPECT_FALSE(none.hit);
  EXPECT_FALSE(rcm.hit);  // same files, different key
  EXPECT_FALSE(bfs.hit);
  EXPECT_EQ(cache.fetch(nodes, edges, ReorderMode::kNone).hit, true);
  EXPECT_EQ(cache.fetch(nodes, edges, ReorderMode::kRcm).hit, true);
  EXPECT_EQ(none.entry->graph.permutation(), nullptr);
  ASSERT_NE(rcm.entry->graph.permutation(), nullptr);
  EXPECT_EQ(rcm.entry->reorder, ReorderMode::kRcm);
  EXPECT_EQ(rcm.entry->graph.reorder_mode(), ReorderMode::kRcm);
}

TEST(Builder, FinalizeWithModeRecordsPermutation) {
  graph::GraphBuilder b;
  b.use_shared_joint(graph::JointMatrix::diffusion(2, 0.7f));
  graph::BeliefVec uniform;
  uniform.size = 2;
  uniform.v[0] = uniform.v[1] = 0.5f;
  for (int i = 0; i < 4; ++i) b.add_node(uniform);
  b.add_edge(0, 3);
  b.add_edge(3, 1);
  b.add_edge(1, 2);
  const auto g = b.finalize(ReorderMode::kRcm);
  ASSERT_NE(g.permutation(), nullptr);
  EXPECT_EQ(g.reorder_mode(), ReorderMode::kRcm);
  EXPECT_EQ(g.num_nodes(), 4u);
}

}  // namespace
}  // namespace credo
