// Property-based sweeps over the loopy engines: for every (engine, graph
// family, belief arity) combination, the invariants below must hold.
//
//  P1 normalization  — every returned belief is a probability distribution;
//  P2 observed nodes — statically fixed beliefs never move;
//  P3 agreement      — all engines land near the same fixed point;
//  P4 determinism    — a rerun returns bit-identical beliefs;
//  P5 accounting     — counters and modelled time are populated sanely.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bp/engine.h"
#include "graph/generators.h"

namespace credo::bp {
namespace {

using graph::BeliefConfig;
using graph::FactorGraph;

struct SweepCase {
  EngineKind engine;
  const char* family;
  std::uint32_t beliefs;
};

FactorGraph make_graph(const std::string& family, std::uint32_t beliefs) {
  BeliefConfig cfg;
  cfg.beliefs = beliefs;
  cfg.seed = 97;
  cfg.observed_fraction = 0.08;
  if (family == "uniform") return graph::uniform_random(150, 600, cfg);
  if (family == "social") return graph::preferential_attachment(150, 4, cfg);
  if (family == "grid") return graph::grid(12, 12, cfg);
  return graph::rmat(7, 500, cfg);
}

BpOptions sweep_opts() {
  BpOptions o;
  o.convergence_threshold = 1e-5f;
  o.max_iterations = 300;
  o.work_queue = true;
  return o;
}

class LoopySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(LoopySweep, InvariantsHold) {
  const auto& p = GetParam();
  const auto g = make_graph(p.family, p.beliefs);
  const auto engine = make_default_engine(p.engine);
  const auto result = engine->run(g, sweep_opts());

  // P1: normalization.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    float sum = 0.0f;
    for (std::uint32_t s = 0; s < g.arity(v); ++s) {
      const float b = result.beliefs[v][s];
      ASSERT_GE(b, 0.0f) << "node " << v;
      ASSERT_LE(b, 1.0f + 1e-5f) << "node " << v;
      sum += b;
    }
    ASSERT_NEAR(sum, 1.0f, 1e-3f) << "node " << v;
  }

  // P2: observed nodes fixed.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.observed(v)) {
      ASSERT_LT(graph::l1_diff(result.beliefs[v], g.prior(v)), 1e-6f);
    }
  }

  // P4: determinism. The OpenMP engines perform in-place (chaotic) reads
  // across a real thread team; async BP on a multi-stable system (large
  // arities with diagonally dominant potentials admit several attractors)
  // may legitimately settle different fixed points per thread schedule,
  // so the rerun check applies only to the deterministic engines.
  const bool chaotic = p.engine == EngineKind::kOmpNode ||
                       p.engine == EngineKind::kOmpEdge;
  if (!chaotic) {
    const auto rerun = engine->run(g, sweep_opts());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(graph::l1_diff(result.beliefs[v], rerun.beliefs[v]), 0.0f)
          << "node " << v;
    }
  }

  // P5: accounting.
  EXPECT_GT(result.stats.counters.flops, 0u);
  EXPECT_GT(result.stats.time.total(), 0.0);
  EXPECT_GT(result.stats.elements_processed, 0u);
  EXPECT_LE(result.stats.iterations, sweep_opts().max_iterations);
  const bool is_gpu = p.engine == EngineKind::kCudaNode ||
                      p.engine == EngineKind::kCudaEdge ||
                      p.engine == EngineKind::kAccEdge;
  if (is_gpu) {
    EXPECT_GT(result.stats.counters.kernel_launches, 0u);
    EXPECT_GT(result.stats.counters.h2d_bytes, 0u);
  } else {
    EXPECT_EQ(result.stats.counters.kernel_launches, 0u);
  }
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const auto engine :
       {EngineKind::kCpuNode, EngineKind::kCpuEdge, EngineKind::kOmpNode,
        EngineKind::kOmpEdge, EngineKind::kCudaNode,
        EngineKind::kCudaEdge, EngineKind::kAccEdge}) {
    for (const char* family : {"uniform", "social", "grid", "rmat"}) {
      for (const std::uint32_t beliefs : {2u, 3u, 8u}) {
        cases.push_back({engine, family, beliefs});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    EnginesFamiliesBeliefs, LoopySweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string name = std::string(engine_name(info.param.engine)) + "_" +
                         info.param.family + "_b" +
                         std::to_string(info.param.beliefs);
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// P3: cross-engine agreement, swept over families and arities (one test
// per combination, comparing every engine against C Node).
struct AgreementCase {
  const char* family;
  std::uint32_t beliefs;
};

class AgreementSweep : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(AgreementSweep, EnginesAgree) {
  const auto& p = GetParam();
  const auto g = make_graph(p.family, p.beliefs);
  const auto opts = sweep_opts();
  const auto reference =
      make_default_engine(EngineKind::kCpuNode)->run(g, opts);
  for (const auto kind :
       {EngineKind::kCpuEdge, EngineKind::kOmpNode, EngineKind::kOmpEdge,
        EngineKind::kCudaNode, EngineKind::kCudaEdge, EngineKind::kAccEdge,
        EngineKind::kResidual}) {
    const auto r = make_default_engine(kind)->run(g, opts);
    float worst = 0.0f;
    double sum = 0.0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      const float gap =
          graph::l1_diff(reference.beliefs[v], r.beliefs[v]);
      worst = std::max(worst, gap);
      sum += gap;
    }
    // Engines with non-sweep update orders (the chaotic OpenMP in-place
    // reads, the residual engine's asynchronous single-site schedule) may
    // park individual stragglers in a different attractor on multi-stable
    // systems; judge them by the mean gap, synchronous-sweep engines by
    // the worst node.
    const bool chaotic = kind == EngineKind::kOmpNode ||
                         kind == EngineKind::kOmpEdge ||
                         kind == EngineKind::kResidual;
    if (chaotic) {
      // Chaotic schedules can park stragglers in a different attractor on
      // multi-stable systems; require only that the bulk of the graph
      // agrees.
      EXPECT_LT(sum / g.num_nodes(), 0.05)
          << engine_name(kind) << " on " << p.family << " b" << p.beliefs;
    } else {
      EXPECT_LT(worst, 0.05f) << engine_name(kind) << " on " << p.family
                              << " b" << p.beliefs;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesBeliefs, AgreementSweep,
    ::testing::Values(AgreementCase{"uniform", 2},
                      AgreementCase{"uniform", 8},
                      AgreementCase{"social", 3},
                      AgreementCase{"grid", 2}, AgreementCase{"rmat", 3}),
    [](const ::testing::TestParamInfo<AgreementCase>& info) {
      return std::string(info.param.family) + "_b" +
             std::to_string(info.param.beliefs);
    });

// P6: exactness — on trees, the two-pass engine must reproduce the exact
// marginals of the pairwise model, computed here by brute-force
// enumeration: P(x) ∝ Π_v prior_v(x_v) · Π_e J_e[x_src][x_dst], with one
// directed representative per undirected pair (the reverse edge carries
// the transpose, so either representative gives the same factor).
struct TreeCase {
  std::uint32_t nodes;
  std::uint32_t beliefs;
  std::uint32_t seed;
};

class TreeExactness : public ::testing::TestWithParam<TreeCase> {};

TEST_P(TreeExactness, MatchesBruteForceMarginals) {
  const auto& p = GetParam();
  BeliefConfig cfg;
  cfg.beliefs = p.beliefs;
  cfg.seed = p.seed;
  cfg.observed_fraction = 0.2;
  // Per-edge joints: the reverse edge then carries the transpose, so one
  // symmetric pairwise factor per undirected edge exists and "exact
  // marginals" are well-defined. (The shared-joint mode reuses one
  // non-symmetric matrix in both directions — no consistent MRF.)
  cfg.shared_joint = false;
  const FactorGraph g = graph::random_tree(p.nodes, cfg);
  const graph::NodeId n = g.num_nodes();

  // Enumerate all arity^n assignments.
  std::vector<std::vector<double>> marginal(n);
  for (graph::NodeId v = 0; v < n; ++v) marginal[v].assign(g.arity(v), 0.0);
  std::vector<std::uint32_t> x(n, 0);
  bool done = false;
  while (!done) {
    double w = 1.0;
    for (graph::NodeId v = 0; v < n; ++v) w *= g.prior(v).v[x[v]];
    for (graph::EdgeId e = 0; e < g.num_edges() && w > 0.0; ++e) {
      const auto& ed = g.edge(e);
      if (ed.src < ed.dst) w *= g.joints().at(e).at(x[ed.src], x[ed.dst]);
    }
    for (graph::NodeId v = 0; v < n; ++v) marginal[v][x[v]] += w;
    done = true;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (++x[v] < g.arity(v)) {
        done = false;
        break;
      }
      x[v] = 0;
    }
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    double z = 0.0;
    for (const double m : marginal[v]) z += m;
    ASSERT_GT(z, 0.0) << "node " << v;
    for (double& m : marginal[v]) m /= z;
  }

  BpOptions opts;
  const auto r = make_default_engine(EngineKind::kTree)->run(g, opts);
  ASSERT_TRUE(r.stats.converged);
  for (graph::NodeId v = 0; v < n; ++v) {
    float gap = 0.0f;
    for (std::uint32_t s = 0; s < g.arity(v); ++s) {
      gap += std::abs(r.beliefs[v][s] - static_cast<float>(marginal[v][s]));
    }
    EXPECT_LT(gap, 2e-3f) << "node " << v << " seed " << p.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    NodesBeliefsSeeds, TreeExactness,
    ::testing::Values(TreeCase{10, 2, 3}, TreeCase{10, 2, 19},
                      TreeCase{8, 3, 7}, TreeCase{8, 3, 41},
                      TreeCase{6, 4, 13}),
    [](const ::testing::TestParamInfo<TreeCase>& info) {
      return "n" + std::to_string(info.param.nodes) + "_b" +
             std::to_string(info.param.beliefs) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace credo::bp
