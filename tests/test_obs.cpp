// Tests for the observability layer (DESIGN.md §5e): registry correctness
// under concurrent increments (run under CREDO_SANITIZE in CI), histogram
// bucket boundaries and quantiles, golden Prometheus/JSON output, snapshot
// differencing, the SpanLog ring, and span lifecycle end to end — one span
// per request for each of the four terminal statuses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <future>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "credo/api.h"
#include "graph/generators.h"

namespace credo::obs {
namespace {

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

TEST(Metrics, CounterSumsConcurrentIncrements) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test_total", "concurrent increments");
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(reg.snapshot().counter("test_total"), kThreads * kPerThread);
}

TEST(Metrics, CounterSeriesAreDistinctByLabels) {
  MetricsRegistry reg;
  Counter& ok = reg.counter("req_total", "by status", {{"status", "ok"}});
  Counter& err = reg.counter("req_total", "by status", {{"status", "err"}});
  EXPECT_NE(&ok, &err);
  ok.inc(3);
  err.inc();
  // Re-registering the same series returns the same instance.
  EXPECT_EQ(&reg.counter("req_total", "by status", {{"status", "ok"}}), &ok);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("req_total{status=\"ok\"}"), 3u);
  EXPECT_EQ(snap.counter("req_total{status=\"err\"}"), 1u);
  EXPECT_EQ(snap.counter("req_total{status=\"absent\"}"), 0u);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth", "queue depth");
  g.set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.add(2.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 6.0);
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

TEST(Metrics, HistogramBucketBoundariesAreInclusiveUpper) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("sizes", "test", {1.0, 10.0, 100.0});
  // Prometheus buckets are `le` (less-or-equal): a value exactly on a bound
  // lands in that bound's bucket.
  h.observe(0.5);    // bucket le=1
  h.observe(1.0);    // bucket le=1 (inclusive upper)
  h.observe(1.001);  // bucket le=10
  h.observe(10.0);   // bucket le=10
  h.observe(99.0);   // bucket le=100
  h.observe(250.0);  // +Inf
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);  // +Inf
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.max, 250.0);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.001 + 10.0 + 99.0 + 250.0);
}

TEST(Metrics, HistogramQuantilesInterpolateAndClampToMax) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", "test", {1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.observe(1.5);  // all in (1, 2]
  const auto snap = h.snapshot();
  // Every observation is in the (1,2] bucket: quantiles interpolate inside
  // it and can never exceed the exact max (1.5, not the bucket bound 2).
  EXPECT_GE(snap.quantile(0.5), 1.0);
  EXPECT_LE(snap.quantile(0.5), 1.5);
  EXPECT_LE(snap.quantile(0.99), 1.5);
  EXPECT_GE(snap.quantile(0.99), snap.quantile(0.5));
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 1.5);
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.quantile(0.5), 0.0);  // empty
}

TEST(Metrics, HistogramConcurrentObservationsLoseNothing) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("conc", "test", pow2_buckets(8));
  constexpr unsigned kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(snap.max, 8.0);
  // Sum of t+1 over threads, kPerThread each: (1+..+8) * 5000.
  EXPECT_DOUBLE_EQ(snap.sum, 36.0 * kPerThread);
}

TEST(Metrics, BucketHelpers) {
  EXPECT_EQ(pow2_buckets(4), (std::vector<double>{1, 2, 4, 8}));
  EXPECT_EQ(decade_buckets(3), (std::vector<double>{1, 10, 100}));
  const auto lat = default_latency_buckets();
  ASSERT_GE(lat.size(), 2u);
  for (std::size_t i = 1; i < lat.size(); ++i) EXPECT_LT(lat[i - 1], lat[i]);
}

// ---------------------------------------------------------------------------
// Golden scrape output
// ---------------------------------------------------------------------------

TEST(Metrics, PrometheusGoldenOutput) {
  MetricsRegistry reg;
  reg.counter("app_requests_total", "Requests", {{"status", "ok"}}).inc(7);
  reg.gauge("app_depth", "Depth").set(3.0);
  Histogram& h = reg.histogram("app_lat_seconds", "Latency", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(0.5);
  h.observe(2.0);

  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string expected =
      "# HELP app_depth Depth\n"
      "# TYPE app_depth gauge\n"
      "app_depth 3\n"
      "# HELP app_lat_seconds Latency\n"
      "# TYPE app_lat_seconds histogram\n"
      "app_lat_seconds_bucket{le=\"0.1\"} 1\n"
      "app_lat_seconds_bucket{le=\"1\"} 3\n"
      "app_lat_seconds_bucket{le=\"+Inf\"} 4\n"
      "app_lat_seconds_sum 3.05\n"
      "app_lat_seconds_count 4\n"
      "# HELP app_requests_total Requests\n"
      "# TYPE app_requests_total counter\n"
      "app_requests_total{status=\"ok\"} 7\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(Metrics, JsonGoldenOutput) {
  MetricsRegistry reg;
  reg.counter("c_total", "help").inc(2);
  reg.gauge("g", "help").set(1.5);
  reg.histogram("h", "help", {1.0}).observe(0.5);

  std::ostringstream os;
  reg.write_json(os);
  const std::string expected =
      "{\"counters\":{\"c_total\":2},"
      "\"gauges\":{\"g\":1.5},"
      "\"histograms\":{\"h\":{\"buckets\":[{\"le\":1,\"count\":1},"
      "{\"le\":\"+Inf\",\"count\":0}],\"sum\":0.5,\"count\":1,"
      "\"max\":0.5}}}";
  EXPECT_EQ(os.str(), expected);
}

TEST(Metrics, SnapshotSinceDiffsCountersAndHistograms) {
  MetricsRegistry reg;
  Counter& c = reg.counter("d_total", "help");
  Histogram& h = reg.histogram("d_lat", "help", {1.0, 2.0});
  c.inc(5);
  h.observe(0.5);
  const MetricsSnapshot before = reg.snapshot();
  c.inc(3);
  h.observe(1.5);
  h.observe(1.5);
  const MetricsSnapshot delta = reg.snapshot().since(before);
  EXPECT_EQ(delta.counter("d_total"), 3u);
  const auto hd = delta.histogram("d_lat");
  EXPECT_EQ(hd.count, 2u);
  ASSERT_EQ(hd.counts.size(), 3u);
  EXPECT_EQ(hd.counts[0], 0u);  // the pre-window 0.5 is differenced away
  EXPECT_EQ(hd.counts[1], 2u);
}

// ---------------------------------------------------------------------------
// SpanLog
// ---------------------------------------------------------------------------

TEST(Spans, IdsAreUniqueAndMonotonic) {
  const auto a = next_span_id();
  const auto b = next_span_id();
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, a);
}

TEST(Spans, RingDropsOldestBeyondCapacity) {
  SpanLog log(3);
  for (int i = 1; i <= 5; ++i) {
    Span s;
    s.id = static_cast<std::uint64_t>(i);
    s.tag = "r" + std::to_string(i);
    log.record(std::move(s));
  }
  EXPECT_EQ(log.recorded(), 5u);
  EXPECT_EQ(log.dropped(), 2u);
  const auto spans = log.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].id, 3u);  // oldest retained first
  EXPECT_EQ(spans[2].id, 5u);
}

TEST(Spans, JsonlHasOneObjectPerLine) {
  SpanLog log(8);
  Span s;
  s.id = 42;
  s.tag = "with \"quotes\"";
  s.graph = "a|b";
  s.engine = "C Node";
  s.status = "ok";
  s.queue_s = 0.25;
  s.iterations = 7;
  log.record(std::move(s));
  std::ostringstream os;
  log.write_jsonl(os);
  const std::string line = os.str();
  EXPECT_NE(line.find("\"id\":42"), std::string::npos) << line;
  EXPECT_NE(line.find("\\\"quotes\\\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"iterations\":7"), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
}

// ---------------------------------------------------------------------------
// Span lifecycle end to end: one span per request, all four terminal
// statuses, against a Server with its own registry and span log.
// ---------------------------------------------------------------------------

std::pair<std::string, std::string> write_graph() {
  const auto dir = std::filesystem::temp_directory_path() / "credo_obs_ut";
  std::filesystem::create_directories(dir);
  graph::BeliefConfig cfg;
  cfg.beliefs = 2;
  cfg.seed = 21;
  cfg.observed_fraction = 0.1;
  const auto g = graph::grid(8, 8, cfg);
  const std::string prefix = (dir / "span_g").string();
  io::write_mtx_belief(g, prefix + "_nodes.mtx", prefix + "_edges.mtx");
  return {prefix + "_nodes.mtx", prefix + "_edges.mtx"};
}

TEST(Spans, ServerRecordsAllFourTerminalStatuses) {
  const auto [nodes, edges] = write_graph();
  MetricsRegistry reg;
  SpanLog spans(64);
  serve::ServerOptions so;
  so.workers = 1;
  so.use_dispatcher = false;
  so.queue_capacity = 64;
  so.metrics = &reg;
  so.spans = &spans;
  serve::Server server(so);

  const auto opts =
      bp::BpOptions{}.with_max_iterations(30).with_convergence_threshold(
          1e-3f);

  // ok
  auto ok_fut = server.submit(serve::Request{}
                                  .with_files(nodes, edges)
                                  .with_options(opts)
                                  .with_engine(bp::EngineKind::kCpuNode)
                                  .with_tag("ok"));
  const auto ok_resp = ok_fut.get();
  ASSERT_TRUE(ok_resp.ok()) << ok_resp.error;
  EXPECT_GT(ok_resp.span_id, 0u);

  // cancelled (token fired before the worker dequeues it)
  bp::runtime::StopSource source;
  source.request_stop();
  const auto cancel_resp = server
                               .submit(serve::Request{}
                                           .with_files(nodes, edges)
                                           .with_options(opts)
                                           .with_cancel(source.token())
                                           .with_tag("cancelled"))
                               .get();
  EXPECT_EQ(cancel_resp.status, util::StatusCode::kCancelled);

  // deadline (modelled budget below one iteration, deterministic)
  const auto dl_resp =
      server
          .submit(serve::Request{}
                      .with_files(nodes, edges)
                      .with_options(bp::BpOptions(opts)
                                        .with_convergence_threshold(1e-9f)
                                        .with_queue_threshold(1e-10f))
                      .with_engine(bp::EngineKind::kCpuNode)
                      .with_deadline(
                          serve::Deadline{}.with_modelled_seconds(1e-12))
                      .with_tag("deadline"))
          .get();
  EXPECT_EQ(dl_resp.status, util::StatusCode::kDeadlineExceeded);

  // rejected (post-shutdown submit)
  server.shutdown();
  const auto rej_resp = server
                            .submit(serve::Request{}
                                        .with_files(nodes, edges)
                                        .with_options(opts)
                                        .with_tag("rejected"))
                            .get();
  EXPECT_EQ(rej_resp.status, util::StatusCode::kRejected);
  EXPECT_GT(rej_resp.span_id, 0u);

  // One span per request; each terminal status appears exactly once.
  const auto recorded = spans.snapshot();
  ASSERT_EQ(recorded.size(), 4u);
  std::map<std::string, const Span*> by_status;
  for (const auto& s : recorded) by_status[s.status] = &s;
  ASSERT_TRUE(by_status.count("ok"));
  ASSERT_TRUE(by_status.count("cancelled"));
  ASSERT_TRUE(by_status.count("deadline"));
  ASSERT_TRUE(by_status.count("rejected"));

  const Span& ok_span = *by_status["ok"];
  EXPECT_EQ(ok_span.id, ok_resp.span_id);
  EXPECT_EQ(ok_span.tag, "ok");
  EXPECT_EQ(ok_span.graph, nodes + "|" + edges);
  // Spans record the same stable slug Response::engine_name() exposes.
  EXPECT_EQ(ok_span.engine, "c-node");
  EXPECT_GT(ok_span.run_s, 0.0);
  EXPECT_GT(ok_span.run_modelled_s, 0.0);
  EXPECT_GT(ok_span.iterations, 0u);
  EXPECT_GE(ok_span.total_wall_s(), ok_span.run_s);

  const Span& dl_span = *by_status["deadline"];
  EXPECT_GT(dl_span.iterations, 0u);  // ran, then the budget expired
  EXPECT_EQ(by_status["cancelled"]->iterations, 0u);  // never ran
  EXPECT_EQ(by_status["rejected"]->engine, "");       // never chosen

  // The registry tells the same story: one finished request per status.
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("credo_requests_submitted_total"), 4u);
  EXPECT_EQ(snap.counter("credo_requests_total{status=\"ok\"}"), 1u);
  EXPECT_EQ(snap.counter("credo_requests_total{status=\"cancelled\"}"), 1u);
  EXPECT_EQ(snap.counter("credo_requests_total{status=\"deadline\"}"), 1u);
  EXPECT_EQ(snap.counter("credo_requests_total{status=\"rejected\"}"), 1u);
  EXPECT_EQ(snap.histogram("credo_request_run_seconds").count, 3u);
  // The ok request parsed (miss); the deadline request reused it (hit);
  // the cancelled and rejected requests never touched the cache.
  EXPECT_EQ(snap.counter("credo_graph_cache_misses_total"), 1u);
  EXPECT_EQ(snap.counter("credo_graph_cache_hits_total"), 1u);
}

// ---------------------------------------------------------------------------
// Status vocabulary (util/error.h)
// ---------------------------------------------------------------------------

TEST(StatusVocabulary, CodesAndNames) {
  EXPECT_TRUE(util::Status::ok().is_ok());
  const auto bad = util::Status::invalid_argument("nope");
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.message(), "nope");
  EXPECT_STREQ(util::status_code_name(util::StatusCode::kOk), "ok");
  EXPECT_STREQ(util::status_code_name(util::StatusCode::kDeadlineExceeded),
               "deadline");
  EXPECT_STREQ(util::status_code_name(util::StatusCode::kParse),
               "parse-error");
}

TEST(StatusVocabulary, ExceptionsMapToTheirCodes) {
  EXPECT_EQ(util::status_from_exception(util::IoError("x")).code(),
            util::StatusCode::kIo);
  EXPECT_EQ(util::status_from_exception(util::ParseError("f.mtx", 3, "x"))
                .code(),
            util::StatusCode::kParse);
  EXPECT_EQ(util::status_from_exception(util::InvalidArgument("x")).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(util::status_from_exception(std::runtime_error("x")).code(),
            util::StatusCode::kError);
}

TEST(StatusVocabulary, StatusOrHoldsValueOrStatus) {
  util::StatusOr<int> good(42);
  ASSERT_TRUE(good.is_ok());
  EXPECT_EQ(*good, 42);
  util::StatusOr<int> bad(util::Status::invalid_argument("no"));
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(StatusVocabulary, BpOptionsValidateStatus) {
  EXPECT_TRUE(bp::BpOptions{}.validate_status().is_ok());
  bp::BpOptions bad;
  bad.max_iterations = 0;
  const auto st = bad.validate_status();
  EXPECT_EQ(st.code(), util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(st.message().empty());
}

}  // namespace
}  // namespace credo::obs
