// Tests for the io module: MTX-belief round trips (property-based over
// random graphs), BIF and XML-BIF parsing/writing, the XML mini-parser,
// malformed-input rejection, and format conversion.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "bp/engine.h"
#include "graph/generators.h"
#include "graph/ldpc.h"
#include "io/bayes_net.h"
#include "io/bif.h"
#include "io/convert.h"
#include "io/mtx_belief.h"
#include "io/mtx_graph.h"
#include "io/xml.h"
#include "io/xmlbif.h"
#include "util/error.h"

namespace credo::io {
namespace {

using graph::FactorGraph;

/// Structural + numeric equality of two graphs.
void expect_graphs_equal(const FactorGraph& a, const FactorGraph& b,
                         float tol = 1e-5f) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (graph::NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.arity(v), b.arity(v));
    EXPECT_EQ(a.observed(v), b.observed(v));
    EXPECT_LT(graph::l1_diff(a.prior(v), b.prior(v)), tol) << "node " << v;
  }
  ASSERT_EQ(a.joints().is_shared(), b.joints().is_shared());
  for (graph::EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).src, b.edge(e).src);
    EXPECT_EQ(a.edge(e).dst, b.edge(e).dst);
    const auto& ma = a.joints().at(e);
    const auto& mb = b.joints().at(e);
    ASSERT_EQ(ma.rows, mb.rows);
    ASSERT_EQ(ma.cols, mb.cols);
    for (std::uint32_t r = 0; r < ma.rows; ++r) {
      for (std::uint32_t c = 0; c < ma.cols; ++c) {
        EXPECT_NEAR(ma.at(r, c), mb.at(r, c), tol);
      }
    }
  }
}

FactorGraph mtx_round_trip(const FactorGraph& g, ParseStats* stats = nullptr) {
  std::ostringstream n;
  std::ostringstream e;
  write_mtx_belief_streams(g, n, e);
  std::istringstream nin(n.str());
  std::istringstream ein(e.str());
  return read_mtx_belief_streams(nin, ein, stats);
}

// ---------------------------------------------------------------------------
// MTX-belief
// ---------------------------------------------------------------------------

struct MtxCase {
  const char* name;
  bool shared;
  std::uint32_t beliefs;
  double observed;
};

class MtxRoundTrip : public ::testing::TestWithParam<MtxCase> {};

TEST_P(MtxRoundTrip, PreservesGraph) {
  const auto& p = GetParam();
  graph::BeliefConfig cfg;
  cfg.shared_joint = p.shared;
  cfg.beliefs = p.beliefs;
  cfg.observed_fraction = p.observed;
  cfg.seed = 1234;
  const auto g = graph::uniform_random(60, 240, cfg);
  expect_graphs_equal(g, mtx_round_trip(g));
}

INSTANTIATE_TEST_SUITE_P(
    Variants, MtxRoundTrip,
    ::testing::Values(MtxCase{"shared_b2", true, 2, 0.1},
                      MtxCase{"shared_b3", true, 3, 0.0},
                      MtxCase{"shared_b32", true, 32, 0.2},
                      MtxCase{"per_edge_b2", false, 2, 0.1},
                      MtxCase{"per_edge_b5", false, 5, 0.3}),
    [](const ::testing::TestParamInfo<MtxCase>& info) {
      return info.param.name;
    });

TEST(MtxBelief, StatsCountLinesAndBytes) {
  graph::BeliefConfig cfg;
  cfg.seed = 9;
  const auto g = graph::uniform_random(20, 80, cfg);
  ParseStats stats;
  (void)mtx_round_trip(g, &stats);
  // banner+comment+dims+20 nodes, banner+shared+dims+160 edges.
  EXPECT_GE(stats.lines, 20u + 160u + 5u);
  EXPECT_GT(stats.bytes, 500u);
}

TEST(MtxBelief, FileRoundTrip) {
  graph::BeliefConfig cfg;
  cfg.seed = 21;
  const auto g = graph::uniform_random(30, 100, cfg);
  const auto dir = std::filesystem::temp_directory_path();
  const auto npath = (dir / "credo_test_nodes.mtx").string();
  const auto epath = (dir / "credo_test_edges.mtx").string();
  write_mtx_belief(g, npath, epath);
  const auto back = read_mtx_belief(npath, epath);
  expect_graphs_equal(g, back);
  std::remove(npath.c_str());
  std::remove(epath.c_str());
}

TEST(MtxBelief, LdpcFamilyRoundTrips) {
  const auto code = graph::ldpc::random_regular(48, 3, 6, 77);
  std::vector<std::uint8_t> error(code.bits, 0);
  error[5] = 1;
  const auto syn = graph::ldpc::syndrome(code, error);
  for (const auto family : {graph::FactorFamily::kLdpcSumProduct,
                            graph::FactorFamily::kLdpcMinSum}) {
    const auto g = graph::ldpc::build_graph(code, syn, 0.05f, family);
    const auto back = mtx_round_trip(g);
    EXPECT_EQ(back.family(), family);
    EXPECT_EQ(back.ldpc_variables(), g.ldpc_variables());
    EXPECT_EQ(back.joints().payload_bytes(), 0u);
    ASSERT_EQ(back.num_nodes(), g.num_nodes());
    ASSERT_EQ(back.num_edges(), g.num_edges());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_LT(graph::l1_diff(g.prior(v), back.prior(v)), 1e-5f);
    }
    // The reloaded graph must decode exactly like the original.
    bp::BpOptions opts;
    opts.max_iterations = 60;
    opts.syndrome_stop = true;
    const auto r = bp::make_default_engine(bp::EngineKind::kCpuNode)
                       ->run(back, opts);
    EXPECT_TRUE(r.stats.syndrome_satisfied);
    EXPECT_EQ(graph::ldpc::hard_decision(r.beliefs, code.bits), error);
  }
}

TEST(MtxBelief, LdpcHeaderRejectsMalformedInput) {
  const std::string nodes =
      "%%MatrixMarket credo beliefs\n3 3 3\n"
      "1 1 0.9 0.1\n2 2 0.9 0.1\n3 3 1 0\n";
  const auto parse = [&](const std::string& edge_text) {
    std::istringstream nin(nodes);
    std::istringstream ein(edge_text);
    return read_mtx_belief_streams(nin, ein);
  };
  // Unknown family name.
  EXPECT_THROW(parse("%%MatrixMarket credo joints\n%%family potts\n"
                     "%%ldpc-variables 2\n3 3 2\n1 3\n2 3\n"),
               util::ParseError);
  // LDPC family without the variable-count header.
  EXPECT_THROW(parse("%%MatrixMarket credo joints\n%%family ldpc-min-sum\n"
                     "3 3 2\n1 3\n2 3\n"),
               util::ParseError);
  // Variable count out of range.
  EXPECT_THROW(parse("%%MatrixMarket credo joints\n%%family ldpc-min-sum\n"
                     "%%ldpc-variables 3\n3 3 2\n1 3\n2 3\n"),
               util::ParseError);
  // ldpc-variables without a family.
  EXPECT_THROW(parse("%%MatrixMarket credo joints\n%%ldpc-variables 2\n"
                     "3 3 2\n1 3\n2 3\n"),
               util::ParseError);
  // Per-edge matrix values in a closed-form edge file.
  EXPECT_THROW(parse("%%MatrixMarket credo joints\n%%family ldpc-min-sum\n"
                     "%%ldpc-variables 2\n3 3 2\n1 3 0.5 0.5 0.5 0.5\n2 3\n"),
               util::ParseError);
  // The tabular spelling is accepted and means the default family.
  const auto g = parse(
      "%%MatrixMarket credo joints\n%%family tabular\n3 3 2\n"
      "1 3 0.5 0.5 0.5 0.5\n2 3 0.5 0.5 0.5 0.5\n");
  EXPECT_EQ(g.family(), graph::FactorFamily::kTabular);
}

TEST(MtxBelief, MissingFileThrowsIoError) {
  EXPECT_THROW(read_mtx_belief("/nonexistent/n.mtx", "/nonexistent/e.mtx"),
               util::IoError);
}

struct BadMtxCase {
  const char* name;
  const char* nodes;
  const char* edges;
};

class MtxRejects : public ::testing::TestWithParam<BadMtxCase> {};

TEST_P(MtxRejects, MalformedInput) {
  std::istringstream n(GetParam().nodes);
  std::istringstream e(GetParam().edges);
  EXPECT_THROW((void)read_mtx_belief_streams(n, e), util::ParseError)
      << GetParam().name;
}

constexpr const char* kGoodNodes =
    "%%MatrixMarket credo beliefs\n2 2 2\n1 1 0.5 0.5\n2 2 0.4 0.6\n";

INSTANTIATE_TEST_SUITE_P(
    Cases, MtxRejects,
    ::testing::Values(
        BadMtxCase{"missing_banner", "2 2 2\n1 1 0.5 0.5\n2 2 0.4 0.6\n",
                   "%%MatrixMarket credo joints\n2 2 0\n"},
        BadMtxCase{"id_mismatch",
                   "%%MatrixMarket credo beliefs\n2 2 2\n1 2 0.5 0.5\n"
                   "2 2 0.4 0.6\n",
                   "%%MatrixMarket credo joints\n2 2 0\n"},
        BadMtxCase{"non_dense_ids",
                   "%%MatrixMarket credo beliefs\n2 2 2\n1 1 0.5 0.5\n"
                   "3 3 0.4 0.6\n",
                   "%%MatrixMarket credo joints\n2 2 0\n"},
        BadMtxCase{"negative_prob",
                   "%%MatrixMarket credo beliefs\n2 2 2\n1 1 -0.5 1.5\n"
                   "2 2 0.4 0.6\n",
                   "%%MatrixMarket credo joints\n2 2 0\n"},
        BadMtxCase{"truncated_nodes",
                   "%%MatrixMarket credo beliefs\n2 2 2\n1 1 0.5 0.5\n",
                   "%%MatrixMarket credo joints\n2 2 0\n"},
        BadMtxCase{"edge_out_of_range", kGoodNodes,
                   "%%MatrixMarket credo joints\n2 2 1\n"
                   "1 3 0.5 0.5 0.5 0.5\n"},
        BadMtxCase{"edge_matrix_truncated", kGoodNodes,
                   "%%MatrixMarket credo joints\n2 2 1\n1 2 0.5 0.5\n"},
        BadMtxCase{"edge_node_count_mismatch", kGoodNodes,
                   "%%MatrixMarket credo joints\n3 3 0\n"},
        BadMtxCase{"bad_dims", kGoodNodes,
                   "%%MatrixMarket credo joints\n2 3 0\n"}),
    [](const ::testing::TestParamInfo<BadMtxCase>& info) {
      return info.param.name;
    });

TEST(MtxBelief, ObservedMarkerParses) {
  std::istringstream n(
      "%%MatrixMarket credo beliefs\n2 2 2\n1 1 1 0 *\n2 2 0.4 0.6\n");
  std::istringstream e("%%MatrixMarket credo joints\n2 2 0\n");
  const auto g = read_mtx_belief_streams(n, e);
  EXPECT_TRUE(g.observed(0));
  EXPECT_FALSE(g.observed(1));
  EXPECT_FLOAT_EQ(g.prior(0)[0], 1.0f);
}

// ---------------------------------------------------------------------------
// BayesNet
// ---------------------------------------------------------------------------

TEST(BayesNet, FamilyOutValidatesAndLowers) {
  const auto net = BayesNet::family_out();
  net.validate();
  const auto g = net.to_factor_graph();
  EXPECT_EQ(g.num_nodes(), 5u);
  // Dependencies: lo|fo (1), do|fo + do|bp (2), hb|do (1) = 4 undirected
  // pairs = 8 directed edges.
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(g.names().at(0), "family-out");
  EXPECT_FLOAT_EQ(g.prior(0)[0], 0.15f);
}

TEST(BayesNet, ValidateCatchesBadNets) {
  BayesNet net;
  net.variables.push_back({"a", {"t", "f"}});
  // Missing CPT.
  EXPECT_THROW(net.validate(), util::InvalidArgument);
  net.cpts.push_back({0, {}, {0.5f, 0.5f}});
  net.validate();
  // Duplicate CPT.
  net.cpts.push_back({0, {}, {0.5f, 0.5f}});
  EXPECT_THROW(net.validate(), util::InvalidArgument);
  net.cpts.pop_back();
  // Wrong table size.
  net.cpts[0].values.push_back(0.1f);
  EXPECT_THROW(net.validate(), util::InvalidArgument);
  net.cpts[0].values.pop_back();
  // Self-parent.
  net.cpts[0].parents.push_back(0);
  EXPECT_THROW(net.validate(), util::InvalidArgument);
}

TEST(BayesNet, RandomNetsAreValidAndDeterministic) {
  const auto a = BayesNet::random(50, 3, 3, 77);
  const auto b = BayesNet::random(50, 3, 3, 77);
  a.validate();
  EXPECT_EQ(a.variables.size(), 50u);
  ASSERT_EQ(a.cpts.size(), b.cpts.size());
  for (std::size_t i = 0; i < a.cpts.size(); ++i) {
    EXPECT_EQ(a.cpts[i].parents, b.cpts[i].parents);
    EXPECT_EQ(a.cpts[i].values, b.cpts[i].values);
  }
}

// ---------------------------------------------------------------------------
// BIF
// ---------------------------------------------------------------------------

TEST(Bif, RoundTripFamilyOut) {
  const auto net = BayesNet::family_out();
  const auto text = write_bif_string(net);
  const auto back = read_bif_string(text, "fam.bif");
  EXPECT_EQ(back.variables.size(), net.variables.size());
  ASSERT_EQ(back.cpts.size(), net.cpts.size());
  for (std::size_t i = 0; i < net.cpts.size(); ++i) {
    EXPECT_EQ(back.cpts[i].child, net.cpts[i].child);
    EXPECT_EQ(back.cpts[i].parents, net.cpts[i].parents);
    ASSERT_EQ(back.cpts[i].values.size(), net.cpts[i].values.size());
    for (std::size_t k = 0; k < net.cpts[i].values.size(); ++k) {
      EXPECT_NEAR(back.cpts[i].values[k], net.cpts[i].values[k], 1e-5f);
    }
  }
}

TEST(Bif, RoundTripRandomNet) {
  const auto net = BayesNet::random(40, 3, 2, 5);
  const auto back = read_bif_string(write_bif_string(net), "r.bif");
  EXPECT_EQ(back.variables.size(), 40u);
  EXPECT_EQ(back.cpts.size(), 40u);
}

TEST(Bif, ParsesRowEntryForm) {
  const std::string text = R"(
network test {
}
variable rain {
  type discrete [ 2 ] { yes, no };
}
variable grass {
  type discrete [ 2 ] { wet, dry };
}
probability ( rain ) {
  table 0.2, 0.8;
}
probability ( grass | rain ) {
  (yes) 0.9, 0.1;
  (no) 0.3, 0.7;
}
)";
  const auto net = read_bif_string(text, "rain.bif");
  EXPECT_EQ(net.name, "test");
  ASSERT_EQ(net.cpts.size(), 2u);
  const auto& cpt = net.cpts[1];
  EXPECT_FLOAT_EQ(cpt.values[0], 0.9f);  // p(wet | yes)
  EXPECT_FLOAT_EQ(cpt.values[2], 0.3f);  // p(wet | no)
}

TEST(Bif, SkipsCommentsAndProperties) {
  const std::string text = R"(
// line comment
network n { property anything goes here ; }
/* block
   comment */
variable v { type discrete [ 2 ] { a, b }; property p x; }
probability ( v ) { table 0.5, 0.5; }
)";
  const auto net = read_bif_string(text, "c.bif");
  EXPECT_EQ(net.variables.size(), 1u);
}

struct BadBifCase {
  const char* name;
  const char* text;
};

class BifRejects : public ::testing::TestWithParam<BadBifCase> {};

TEST_P(BifRejects, MalformedInput) {
  EXPECT_THROW((void)read_bif_string(GetParam().text, "bad.bif"),
               util::ParseError)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BifRejects,
    ::testing::Values(
        BadBifCase{"unknown_variable",
                   "network n {}\nvariable v { type discrete [ 2 ] "
                   "{ a, b }; }\nprobability ( w ) { table 0.5, 0.5; }\n"},
        BadBifCase{"bad_count",
                   "network n {}\nvariable v { type discrete [ 0 ] { }; }\n"},
        BadBifCase{"truncated", "network n {"},
        BadBifCase{"missing_network",
                   "variable v { type discrete [ 2 ] { a, b }; }"},
        BadBifCase{"unknown_outcome",
                   "network n {}\n"
                   "variable a { type discrete [ 2 ] { t, f }; }\n"
                   "variable b { type discrete [ 2 ] { t, f }; }\n"
                   "probability ( b | a ) { (x) 0.5, 0.5; }\n"}),
    [](const ::testing::TestParamInfo<BadBifCase>& info) {
      return info.param.name;
    });

TEST(Bif, MissingFileThrows) {
  EXPECT_THROW(read_bif("/nonexistent/x.bif"), util::IoError);
}

// ---------------------------------------------------------------------------
// XML + XML-BIF
// ---------------------------------------------------------------------------

TEST(Xml, ParsesAttributesChildrenAndText) {
  const auto root = parse_xml(
      "<?xml version=\"1.0\"?><!-- c --><a x=\"1\" y='two'>"
      "hi<b/>there<c>deep</c></a>",
      "t.xml");
  EXPECT_EQ(root->name, "a");
  EXPECT_EQ(root->attribute("x"), "1");
  EXPECT_EQ(root->attribute("y"), "two");
  EXPECT_EQ(root->attribute("missing"), "");
  EXPECT_EQ(root->children.size(), 2u);
  EXPECT_EQ(root->text, "hithere");
  EXPECT_EQ(root->child("c")->text, "deep");
  EXPECT_EQ(root->child("nope"), nullptr);
}

TEST(Xml, DecodesEntities) {
  const auto root =
      parse_xml("<a>&lt;&gt;&amp;&quot;&apos;&#65;</a>", "e.xml");
  EXPECT_EQ(root->text, "<>&\"'A");
}

TEST(Xml, ParsesCdata) {
  const auto root = parse_xml("<a><![CDATA[1 < 2 & 3]]></a>", "cd.xml");
  EXPECT_EQ(root->text, "1 < 2 & 3");
}

struct BadXmlCase {
  const char* name;
  const char* text;
};

class XmlRejects : public ::testing::TestWithParam<BadXmlCase> {};

TEST_P(XmlRejects, MalformedInput) {
  EXPECT_THROW((void)parse_xml(GetParam().text, "bad.xml"),
               util::ParseError)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, XmlRejects,
    ::testing::Values(BadXmlCase{"mismatched_close", "<a></b>"},
                      BadXmlCase{"unterminated", "<a><b></b>"},
                      BadXmlCase{"trailing", "<a/><b/>"},
                      BadXmlCase{"bad_entity", "<a>&nope;</a>"},
                      BadXmlCase{"unterminated_comment", "<a><!-- x</a>"}),
    [](const ::testing::TestParamInfo<BadXmlCase>& info) {
      return info.param.name;
    });

TEST(XmlBif, RoundTripFamilyOut) {
  const auto net = BayesNet::family_out();
  const auto back =
      read_xmlbif_string(write_xmlbif_string(net), "fam.xml");
  EXPECT_EQ(back.variables.size(), net.variables.size());
  EXPECT_EQ(back.cpts.size(), net.cpts.size());
  expect_graphs_equal(net.to_factor_graph(), back.to_factor_graph(),
                      1e-4f);
}

TEST(XmlBif, RoundTripRandomNet) {
  const auto net = BayesNet::random(30, 4, 2, 3);
  const auto back = read_xmlbif_string(write_xmlbif_string(net), "r.xml");
  expect_graphs_equal(net.to_factor_graph(), back.to_factor_graph(),
                      1e-4f);
}

TEST(XmlBif, RejectsWrongRoot) {
  EXPECT_THROW((void)read_xmlbif_string("<NOTBIF/>", "w.xml"),
               util::ParseError);
}


// ---------------------------------------------------------------------------
// Plain Matrix Market graphs
// ---------------------------------------------------------------------------

TEST(MtxGraph, ParsesSymmetricCoordinate) {
  const std::string text =
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% a comment\n"
      "4 4 3\n"
      "2 1\n"
      "3 1\n"
      "4 3\n";
  std::istringstream in(text);
  graph::BeliefConfig cfg;
  cfg.beliefs = 2;
  cfg.seed = 3;
  const auto g = read_mtx_graph_stream(in, cfg);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 6u);  // 3 undirected pairs
  EXPECT_TRUE(g.joints().is_shared());
}

TEST(MtxGraph, DedupesBackEdgesAndDropsSelfLoops) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 4\n"
      "1 2 0.5\n"
      "2 1 0.5\n"
      "2 2 1.0\n"
      "2 3 0.5\n";
  std::istringstream in(text);
  graph::BeliefConfig cfg;
  cfg.seed = 4;
  const auto g = read_mtx_graph_stream(in, cfg);
  EXPECT_EQ(g.num_edges(), 4u);  // {1,2} and {2,3} as directed pairs
}

TEST(MtxGraph, BeliefSynthesisIsDeterministic) {
  const std::string text =
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "5 5 4\n2 1\n3 2\n4 3\n5 4\n";
  graph::BeliefConfig cfg;
  cfg.beliefs = 3;
  cfg.seed = 11;
  std::istringstream a(text);
  std::istringstream b(text);
  const auto ga = read_mtx_graph_stream(a, cfg);
  const auto gb = read_mtx_graph_stream(b, cfg);
  for (graph::NodeId v = 0; v < ga.num_nodes(); ++v) {
    EXPECT_EQ(graph::l1_diff(ga.prior(v), gb.prior(v)), 0.0f);
  }
}

struct BadPlainMtx {
  const char* name;
  const char* text;
};

class MtxGraphRejects : public ::testing::TestWithParam<BadPlainMtx> {};

TEST_P(MtxGraphRejects, MalformedInput) {
  std::istringstream in(GetParam().text);
  graph::BeliefConfig cfg;
  EXPECT_THROW((void)read_mtx_graph_stream(in, cfg), util::ParseError)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MtxGraphRejects,
    ::testing::Values(
        BadPlainMtx{"no_banner", "3 3 1\n1 2\n"},
        BadPlainMtx{"dense_unsupported",
                    "%%MatrixMarket matrix array real general\n3 3 9\n"},
        BadPlainMtx{"truncated_edges",
                    "%%MatrixMarket matrix coordinate pattern symmetric\n"
                    "3 3 2\n1 2\n"},
        BadPlainMtx{"endpoint_out_of_range",
                    "%%MatrixMarket matrix coordinate pattern symmetric\n"
                    "3 3 1\n1 9\n"}),
    [](const ::testing::TestParamInfo<BadPlainMtx>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Conversion
// ---------------------------------------------------------------------------

TEST(Convert, BifToMtxPreservesGraph) {
  const auto net = BayesNet::random(25, 2, 2, 9);
  const auto dir = std::filesystem::temp_directory_path();
  const auto bif = (dir / "credo_conv.bif").string();
  const auto np = (dir / "credo_conv_nodes.mtx").string();
  const auto ep = (dir / "credo_conv_edges.mtx").string();
  write_bif(net, bif);
  convert_bif_to_mtx(bif, np, ep);
  const auto back = read_mtx_belief(np, ep);
  expect_graphs_equal(net.to_factor_graph(), back, 1e-4f);
  std::remove(bif.c_str());
  std::remove(np.c_str());
  std::remove(ep.c_str());
}

}  // namespace
}  // namespace credo::io
